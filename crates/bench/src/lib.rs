//! # fecim-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results).
//!
//! * Criterion benches (`cargo bench -p fecim-bench`): kernel complexity
//!   (Fig. 4/5 claim), crossbar reads, device evaluation, engine
//!   iteration cost, and the ablation suite.
//! * Figure binaries (`cargo run -p fecim-bench --bin figN_...`): print
//!   the rows/series of each figure. All accept `--scale quick|paper`.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// Harness CLI scale, shared by the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessScale {
    /// Reduced instance sizes / run counts (default; minutes).
    Quick,
    /// The paper's full protocol (hours).
    Paper,
}

/// Parse `--scale quick|paper` from `std::env::args` (default quick).
///
/// # Panics
///
/// Panics with a usage message on an unknown scale value.
pub fn parse_scale() -> HarnessScale {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--scale" {
            match args.get(i + 1).map(String::as_str) {
                Some("quick") => return HarnessScale::Quick,
                Some("paper") => return HarnessScale::Paper,
                other => panic!("usage: --scale quick|paper (got {other:?})"),
            }
        }
        if let Some(rest) = a.strip_prefix("--scale=") {
            match rest {
                "quick" => return HarnessScale::Quick,
                "paper" => return HarnessScale::Paper,
                other => panic!("usage: --scale quick|paper (got {other:?})"),
            }
        }
    }
    HarnessScale::Quick
}

/// `true` when the flag is present in `std::env::args`.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Parse `--tile-rows N` (or `--tile-rows=N`) from `std::env::args`:
/// the physical tile height for tiled-mapping runs (`None` = monolithic).
///
/// # Panics
///
/// Panics with a usage message on a missing or non-positive value.
pub fn parse_tile_rows() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let parse = |v: Option<&str>| -> usize {
        match v.and_then(|s| s.parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => panic!("usage: --tile-rows <positive integer> (got {v:?})"),
        }
    };
    for (i, a) in args.iter().enumerate() {
        if a == "--tile-rows" {
            return Some(parse(args.get(i + 1).map(String::as_str)));
        }
        if let Some(rest) = a.strip_prefix("--tile-rows=") {
            return Some(parse(Some(rest)));
        }
    }
    None
}

/// Render an ASCII bar series `(x, y)` for terminal figures.
pub fn render_series(name: &str, series: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{name}:");
    let y_max = series.iter().map(|p| p.1).fold(f64::MIN_POSITIVE, f64::max);
    for &(x, y) in series {
        let bars = ((y / y_max) * 50.0).round() as usize;
        let _ = writeln!(out, "  {x:>10.1} | {:<50} {y:.3e}", "#".repeat(bars));
    }
    out
}

/// Write a JSON artifact under `target/fecim-artifacts/` (machine-readable
/// record for EXPERIMENTS.md diffs). Errors are reported, not fatal.
pub fn write_artifact(name: &str, json: &serde_json::Value) {
    let dir = std::path::Path::new("target/fecim-artifacts");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create artifact dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(json) {
        Ok(body) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize artifact: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_series_scales_bars() {
        let s = render_series("test", &[(0.0, 1.0), (1.0, 2.0)]);
        assert!(s.contains("test:"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        let hashes = |l: &str| l.matches('#').count();
        assert!(hashes(lines[2]) > hashes(lines[1]));
    }

    #[test]
    fn flag_detection_default() {
        assert!(!has_flag("--definitely-not-set"));
        // No --scale in the test harness args → quick.
        assert_eq!(parse_scale(), HarnessScale::Quick);
        // No --tile-rows in the test harness args → monolithic.
        assert_eq!(parse_tile_rows(), None);
    }
}
