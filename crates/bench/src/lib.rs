//! # fecim-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see `DESIGN.md` §3 in the repository root for
//! the experiment index).
//!
//! * Criterion benches (`cargo bench -p fecim-bench`): kernel complexity
//!   (Fig. 4/5 claim), crossbar reads, device evaluation, engine
//!   iteration cost, and the ablation suite.
//! * Figure binaries (`cargo run -p fecim-bench --bin figN_...`): print
//!   the rows/series of each figure. All accept `--scale quick|paper`.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// Harness CLI scale, shared by the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessScale {
    /// Reduced instance sizes / run counts (default; minutes).
    Quick,
    /// The paper's full protocol (hours).
    Paper,
}

/// Print a usage message to stderr and exit with status 2 (the
/// conventional bad-arguments code) — criterion/CI logs get one readable
/// line instead of a panic backtrace.
pub fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Print a runtime error to stderr and exit with status 1. For harness
/// binaries whose inputs were fine but whose pipeline failed (e.g. an
/// instance that cannot encode).
pub fn fail_exit(message: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

/// Parse `--scale quick|paper` from an argument list (default quick).
///
/// # Errors
///
/// Returns a usage message on an unknown scale value.
pub fn scale_from_args(args: &[String]) -> Result<HarnessScale, String> {
    for (i, a) in args.iter().enumerate() {
        let value = if a == "--scale" {
            Some(args.get(i + 1).map(String::as_str))
        } else {
            a.strip_prefix("--scale=").map(Some)
        };
        if let Some(value) = value {
            return match value {
                Some("quick") => Ok(HarnessScale::Quick),
                Some("paper") => Ok(HarnessScale::Paper),
                other => Err(format!("usage: --scale quick|paper (got {other:?})")),
            };
        }
    }
    Ok(HarnessScale::Quick)
}

/// Parse `--scale quick|paper` from `std::env::args` (default quick);
/// prints usage to stderr and exits with status 2 on a bad value.
pub fn parse_scale() -> HarnessScale {
    // audit:allow(env-read): bench binaries parse their own argv here; flags choose what to benchmark, never what any solver computes
    scale_from_args(&std::env::args().collect::<Vec<_>>())
        .unwrap_or_else(|usage| usage_exit(&usage))
}

/// `true` when the flag is present in `std::env::args`.
pub fn has_flag(flag: &str) -> bool {
    // audit:allow(env-read): bench binaries parse their own argv here; flags choose what to benchmark, never what any solver computes
    std::env::args().any(|a| a == flag)
}

/// Parse `--tile-rows N` (or `--tile-rows=N`) from an argument list:
/// the physical tile height for tiled-mapping runs (`None` = monolithic).
///
/// # Errors
///
/// Returns a usage message on a missing or non-positive value.
pub fn tile_rows_from_args(args: &[String]) -> Result<Option<usize>, String> {
    let parse = |v: Option<&str>| -> Result<usize, String> {
        match v.and_then(|s| s.parse::<usize>().ok()) {
            Some(n) if n > 0 => Ok(n),
            _ => Err(format!("usage: --tile-rows <positive integer> (got {v:?})")),
        }
    };
    for (i, a) in args.iter().enumerate() {
        if a == "--tile-rows" {
            return parse(args.get(i + 1).map(String::as_str)).map(Some);
        }
        if let Some(rest) = a.strip_prefix("--tile-rows=") {
            return parse(Some(rest)).map(Some);
        }
    }
    Ok(None)
}

/// Parse `--tile-rows N` from `std::env::args`; prints usage to stderr
/// and exits with status 2 on a bad value.
pub fn parse_tile_rows() -> Option<usize> {
    // audit:allow(env-read): bench binaries parse their own argv here; flags choose what to benchmark, never what any solver computes
    tile_rows_from_args(&std::env::args().collect::<Vec<_>>())
        .unwrap_or_else(|usage| usage_exit(&usage))
}

/// Parse `--batch-sizes a,b,c` (or `--batch-sizes=a,b,c`) from an
/// argument list: the shared-grid batch sizes a batching sweep should
/// exercise. Defaults to `1,2,4,8`.
///
/// # Errors
///
/// Returns a usage message on an empty list or a non-positive entry.
pub fn batch_sizes_from_args(args: &[String]) -> Result<Vec<usize>, String> {
    let parse = |v: Option<&str>| -> Result<Vec<usize>, String> {
        let usage =
            || format!("usage: --batch-sizes <comma-separated positive integers> (got {v:?})");
        let list = v.ok_or_else(usage)?;
        let sizes: Vec<usize> = list
            .split(',')
            .map(|s| s.trim().parse::<usize>().ok().filter(|&n| n > 0))
            .collect::<Option<_>>()
            .ok_or_else(usage)?;
        if sizes.is_empty() {
            return Err(usage());
        }
        Ok(sizes)
    };
    for (i, a) in args.iter().enumerate() {
        if a == "--batch-sizes" {
            return parse(args.get(i + 1).map(String::as_str));
        }
        if let Some(rest) = a.strip_prefix("--batch-sizes=") {
            return parse(Some(rest));
        }
    }
    Ok(vec![1, 2, 4, 8])
}

/// Parse `--batch-sizes` from `std::env::args`; prints usage to stderr
/// and exits with status 2 on a bad value.
pub fn parse_batch_sizes() -> Vec<usize> {
    // audit:allow(env-read): bench binaries parse their own argv here; flags choose what to benchmark, never what any solver computes
    batch_sizes_from_args(&std::env::args().collect::<Vec<_>>())
        .unwrap_or_else(|usage| usage_exit(&usage))
}

/// Parse `--workers 1,2,4` (scheduler worker counts to sweep) from an
/// argument list; defaults to `[1, 2]`.
///
/// # Errors
///
/// Returns a usage message on an empty or non-positive list.
pub fn workers_from_args(args: &[String]) -> Result<Vec<usize>, String> {
    let parse = |v: Option<&str>| -> Result<Vec<usize>, String> {
        let usage = || format!("usage: --workers <comma-separated positive integers> (got {v:?})");
        let list = v.ok_or_else(usage)?;
        let workers: Vec<usize> = list
            .split(',')
            .map(|s| s.trim().parse::<usize>().ok().filter(|&n| n > 0))
            .collect::<Option<_>>()
            .ok_or_else(usage)?;
        if workers.is_empty() {
            return Err(usage());
        }
        Ok(workers)
    };
    for (i, a) in args.iter().enumerate() {
        if a == "--workers" {
            return parse(args.get(i + 1).map(String::as_str));
        }
        if let Some(rest) = a.strip_prefix("--workers=") {
            return parse(Some(rest));
        }
    }
    Ok(vec![1, 2])
}

/// Parse `--repeat N` (or `--repeat=N`) from an argument list: how many
/// times a sweep's workload is offered (distinct seeds per copy).
/// Defaults to 1.
///
/// # Errors
///
/// Returns a usage message on a missing or non-positive value.
pub fn repeat_from_args(args: &[String]) -> Result<usize, String> {
    let parse = |v: Option<&str>| -> Result<usize, String> {
        match v.and_then(|s| s.parse::<usize>().ok()) {
            Some(n) if n > 0 => Ok(n),
            _ => Err(format!("usage: --repeat <positive integer> (got {v:?})")),
        }
    };
    for (i, a) in args.iter().enumerate() {
        if a == "--repeat" {
            return parse(args.get(i + 1).map(String::as_str));
        }
        if let Some(rest) = a.strip_prefix("--repeat=") {
            return parse(Some(rest));
        }
    }
    Ok(1)
}

/// Parse `--repeat N` from `std::env::args`; prints usage to stderr and
/// exits with status 2 on a bad value.
pub fn parse_repeat() -> usize {
    // audit:allow(env-read): bench binaries parse their own argv here; flags choose what to benchmark, never what any solver computes
    repeat_from_args(&std::env::args().collect::<Vec<_>>())
        .unwrap_or_else(|usage| usage_exit(&usage))
}

/// `true` when `--noisy` is present: program every simulated grid in
/// `Fidelity::DeviceAccurate` with typical variation and read noise.
/// The shared spelling keeps the sweeps' usage strings consistent.
pub fn parse_noisy() -> bool {
    has_flag("--noisy")
}

/// Render an ASCII bar series `(x, y)` for terminal figures.
pub fn render_series(name: &str, series: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{name}:");
    let y_max = series.iter().map(|p| p.1).fold(f64::MIN_POSITIVE, f64::max);
    for &(x, y) in series {
        let bars = ((y / y_max) * 50.0).round() as usize;
        let _ = writeln!(out, "  {x:>10.1} | {:<50} {y:.3e}", "#".repeat(bars));
    }
    out
}

/// Write a JSON artifact under `target/fecim-artifacts/` (machine-readable
/// record for EXPERIMENTS.md diffs). Errors are reported, not fatal.
pub fn write_artifact(name: &str, json: &serde_json::Value) {
    let dir = std::path::Path::new("target/fecim-artifacts");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create artifact dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(json) {
        Ok(body) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize artifact: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_series_scales_bars() {
        let s = render_series("test", &[(0.0, 1.0), (1.0, 2.0)]);
        assert!(s.contains("test:"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        let hashes = |l: &str| l.matches('#').count();
        assert!(hashes(lines[2]) > hashes(lines[1]));
    }

    #[test]
    fn flag_detection_default() {
        assert!(!has_flag("--definitely-not-set"));
        // No --scale in the test harness args → quick.
        assert_eq!(parse_scale(), HarnessScale::Quick);
        // No --tile-rows in the test harness args → monolithic.
        assert_eq!(parse_tile_rows(), None);
        // No --batch-sizes → the default sweep.
        assert_eq!(parse_batch_sizes(), vec![1, 2, 4, 8]);
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parsing_returns_usage_errors_instead_of_panicking() {
        // Valid forms.
        assert_eq!(
            scale_from_args(&args(&["bin", "--scale", "paper"])),
            Ok(HarnessScale::Paper)
        );
        assert_eq!(
            scale_from_args(&args(&["bin", "--scale=quick"])),
            Ok(HarnessScale::Quick)
        );
        assert_eq!(
            tile_rows_from_args(&args(&["bin", "--tile-rows", "256"])),
            Ok(Some(256))
        );
        assert_eq!(
            batch_sizes_from_args(&args(&["bin", "--batch-sizes=1, 3,9"])),
            Ok(vec![1, 3, 9])
        );
        // Invalid forms come back as Err(usage), never a panic.
        for bad in [
            args(&["bin", "--scale", "fast"]),
            args(&["bin", "--scale"]),
            args(&["bin", "--scale=hour"]),
        ] {
            let err = scale_from_args(&bad).expect_err("usage error");
            assert!(err.contains("usage: --scale"), "{err}");
        }
        for bad in [
            args(&["bin", "--tile-rows"]),
            args(&["bin", "--tile-rows", "0"]),
            args(&["bin", "--tile-rows=many"]),
        ] {
            let err = tile_rows_from_args(&bad).expect_err("usage error");
            assert!(err.contains("usage: --tile-rows"), "{err}");
        }
        for bad in [
            args(&["bin", "--batch-sizes"]),
            args(&["bin", "--batch-sizes", "2,0"]),
            args(&["bin", "--batch-sizes="]),
        ] {
            let err = batch_sizes_from_args(&bad).expect_err("usage error");
            assert!(err.contains("usage: --batch-sizes"), "{err}");
        }
        for bad in [
            args(&["bin", "--repeat"]),
            args(&["bin", "--repeat", "0"]),
            args(&["bin", "--repeat=lots"]),
        ] {
            let err = repeat_from_args(&bad).expect_err("usage error");
            assert!(err.contains("usage: --repeat"), "{err}");
        }
    }

    #[test]
    fn repeat_parses_both_spellings_and_defaults_to_one() {
        assert_eq!(repeat_from_args(&args(&["bin"])), Ok(1));
        assert_eq!(repeat_from_args(&args(&["bin", "--repeat", "3"])), Ok(3));
        assert_eq!(repeat_from_args(&args(&["bin", "--repeat=7"])), Ok(7));
        // No --noisy in the test harness args → ideal fidelity.
        assert!(!parse_noisy());
    }
}
