//! Run every figure/table harness in sequence (quick scale by default) —
//! the one-command reproduction entry point.
//!
//! `cargo run --release -p fecim-bench --bin run_all [--scale quick|paper]`

use std::process::Command;

fn main() {
    let scale_args: Vec<String> = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            vec!["--scale".into(), "quick".into()]
        } else {
            args
        }
    };
    let binaries = [
        ("fig2_device_curves", vec![]),
        ("fig6_dgfefet", vec![]),
        ("fig8_energy", vec!["--trace"]),
        ("fig9_time", vec!["--trace"]),
        ("fig10_success", vec![]),
        ("table1_summary", vec![]),
        ("ablation_sweeps", vec![]),
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();
    for (bin, extra) in binaries {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        let mut cmd = Command::new(exe_dir.join(bin));
        // Figure binaries that don't take --scale just ignore unknown args.
        if matches!(
            bin,
            "fig8_energy" | "fig9_time" | "fig10_success" | "table1_summary" | "ablation_sweeps"
        ) {
            cmd.args(&scale_args);
        }
        cmd.args(extra);
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("warning: {bin} exited with {status}"),
            Err(e) => eprintln!("warning: could not run {bin}: {e} (build with `cargo build --release -p fecim-bench` first)"),
        }
    }
}
