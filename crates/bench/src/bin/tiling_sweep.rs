//! Tile-size ablation: success probability and hardware energy of the
//! in-situ annealer running device-in-the-loop through the tiled array
//! composition, swept over the physical tile height.
//!
//! Smaller tiles mean shorter (cheaper) lines and more ADC banks but a
//! larger activated-tile count per read; in `Fidelity::Ideal` mode the
//! solve trajectory is bit-identical across tile sizes (tiling is a
//! physical re-partition, not an algorithm change), so the success
//! column doubles as a regression check while energy/activity show the
//! mapping trade-off. Each tile size is one `SolveRequest` with a
//! `BackendPlan::DeviceInLoop` plan, executed by one `Session`.
//!
//! `cargo run --release -p fecim-bench --bin tiling_sweep \
//!     [--scale quick|paper] [--device-accurate]`
//!
//! `--device-accurate` switches the analog path to per-tile variation
//! maps and read noise (typical magnitudes), where tile size *does*
//! change outcomes.

use fecim::{BackendPlan, CimAnnealer, ProblemSpec, RunPlan, Session, SolveRequest, SolverSpec};
use fecim_anneal::{multi_start_local_search, success_rate};
use fecim_crossbar::Fidelity;
use fecim_gset::{GeneratorConfig, GsetFamily};
use fecim_ising::CopProblem;

fn main() {
    let scale = fecim_bench::parse_scale();
    let device_accurate = fecim_bench::has_flag("--device-accurate");
    // Paper scale exercises a true G-set-scale instance (n = 800, the
    // paper's smallest group) where every tested tile is smaller than
    // the array; quick scale shrinks everything 4x.
    let (n, degree, iterations, runs, tile_sizes): (usize, f64, usize, usize, Vec<usize>) =
        match scale {
            fecim_bench::HarnessScale::Quick => (200, 8.0, 1000, 10, vec![32, 64, 128, 200]),
            fecim_bench::HarnessScale::Paper => (800, 24.0, 700, 25, vec![64, 128, 256, 800]),
        };
    let graph = GeneratorConfig::new(n, 0x711E)
        .with_family(GsetFamily::RandomUnit)
        .with_mean_degree(degree)
        .generate();
    let problem = graph.to_max_cut();
    let model = problem
        .to_ising()
        .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
    let (_, ref_energy) = multi_start_local_search(model.couplings(), 8, 2025);
    let reference = problem.cut_from_energy(ref_energy);
    let spec = ProblemSpec::from_graph(&graph);

    // DeviceAccurate plans default to typical variation magnitudes —
    // exactly the legacy `VariationConfig::typical()` configuration.
    let fidelity = if device_accurate {
        Fidelity::DeviceAccurate
    } else {
        Fidelity::Ideal
    };
    let session = Session::new();
    println!(
        "=== tile-size sweep: n={n}, {iterations} iters, {runs} runs, ref cut {reference:.1}, {} ===\n",
        if device_accurate {
            "device-accurate"
        } else {
            "ideal analog path"
        }
    );
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>14} {:>12}",
        "tile_rows", "grid", "mean cut", "success", "tiles/iter", "energy/run"
    );

    let mut rows = Vec::new();
    for &tile_rows in &tile_sizes {
        let request =
            SolveRequest::new(spec.clone(), SolverSpec::Cim(CimAnnealer::new(iterations)))
                .with_backend(BackendPlan::DeviceInLoop {
                    fidelity,
                    tile_rows: Some(tile_rows),
                })
                .with_run(RunPlan::Ensemble {
                    trials: runs,
                    base_seed: 2025,
                    threads: None,
                })
                .with_reference(reference);
        let response = session
            .run(&request)
            .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
        let cuts: Vec<f64> = response
            .normalized_objectives()
            .expect("request carries a reference");
        let sr = success_rate(&cuts, 0.9, true);
        let mean_cut = cuts.iter().sum::<f64>() / cuts.len() as f64;
        let mean_energy = response.summary.total_energy / response.reports.len() as f64;
        let tiles_per_iter = response
            .reports
            .iter()
            .map(|report| {
                let activity = report.run.activity.expect("device runs record stats");
                activity.tiles_activated as f64 / activity.array_ops.max(1) as f64
            })
            .sum::<f64>()
            / response.reports.len() as f64;
        let bands = n.div_ceil(tile_rows);
        println!(
            "{tile_rows:>10} {:>8} {mean_cut:>12.4} {:>11.0}% {tiles_per_iter:>14.2} {mean_energy:>12.3e}",
            format!("{bands}x{bands}"),
            sr * 100.0
        );
        rows.push(serde_json::json!({
            "tile_rows": tile_rows,
            "bands": bands,
            "mean_normalized_cut": mean_cut,
            "success_rate": sr,
            "tiles_per_iteration": tiles_per_iter,
            "mean_energy_j": mean_energy,
        }));
    }

    fecim_bench::write_artifact(
        "tiling_sweep",
        &serde_json::json!({
            "spins": n,
            "iterations": iterations,
            "runs": runs,
            "device_accurate": device_accurate,
            "reference_cut": reference,
            "rows": rows,
        }),
    );
}
