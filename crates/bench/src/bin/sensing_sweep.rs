//! Sensing-throughput sweep: sequential vs parallel stripe sensing at
//! paper scale (n = 896 on 128-row tiles), in Ideal fidelity and in
//! DeviceAccurate fidelity with typical variation and read noise — the
//! workload that used to be forced onto the serial sequencer whenever
//! `read_noise_rel > 0` and now fans out with counter-addressed noise.
//!
//! Per (fidelity, sensing mode) cell the sweep reports mean read
//! latency and reads/sec, checks sequential and parallel reads agree
//! bit for bit, and derives the parallel-over-sequential speedup. The
//! JSON artifact lands in `target/fecim-artifacts/sensing_sweep.json`;
//! with `--write-baseline` it is also written to `BENCH_sensing.json`
//! in the working directory (the committed perf-trajectory record —
//! note that on single-CPU CI runners the modes legitimately tie).
//!
//! `cargo run --release -p fecim-bench --bin sensing_sweep \
//!     [--reads N] [--write-baseline]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fecim_crossbar::{CrossbarConfig, Fidelity, SensingMode, TiledCrossbar};
use fecim_device::VariationConfig;
use fecim_ising::{CsrCoupling, DenseCoupling, SpinVector};

/// Parse `--reads N` (default 12): timed reads per cell.
fn parse_reads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == "--reads" {
            args.get(i + 1).map(String::as_str)
        } else {
            a.strip_prefix("--reads=")
        };
        if let Some(value) = value {
            match value.parse::<usize>() {
                Ok(n) if n > 0 => return n,
                _ => fecim_bench::usage_exit("usage: --reads <positive integer>"),
            }
        }
    }
    12
}

fn main() {
    let reads = parse_reads();
    let n = 896;
    let tile_rows = 128;
    let mut rng = StdRng::seed_from_u64(42);
    let coupling = CsrCoupling::from_dense(&DenseCoupling::random(n, 0.35, 1.0, &mut rng));
    let spins = SpinVector::random(n, &mut rng);
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut noisy_cfg = CrossbarConfig::paper_defaults();
    noisy_cfg.fidelity = Fidelity::DeviceAccurate;
    noisy_cfg.variation = VariationConfig::typical();
    let fidelities = [
        ("ideal", CrossbarConfig::paper_defaults()),
        ("device_noisy", noisy_cfg),
    ];

    println!(
        "=== sensing sweep: n={n}, {tile_rows}-row tiles, {reads} reads/cell, \
         {threads} hw threads ===\n"
    );
    println!(
        "{:>14} {:>12} {:>12} {:>10} {:>10}",
        "fidelity", "sequential", "parallel", "speedup", "bit-equal"
    );

    let mut rows = Vec::new();
    for (label, cfg) in fidelities {
        let mut arrays = [
            TiledCrossbar::program(&coupling, cfg.clone(), tile_rows)
                .with_sensing_mode(SensingMode::Sequential),
            TiledCrossbar::program(&coupling, cfg.clone(), tile_rows)
                .with_sensing_mode(SensingMode::Parallel),
        ];
        // Same fresh read ordinal on both sides: reads must agree bit
        // for bit whatever the fan-out.
        let mut mean_ms = [0.0f64; 2];
        for (slot, array) in arrays.iter_mut().enumerate() {
            let _warmup = array.vmv(spins.as_slice());
            let started = Instant::now();
            for _ in 0..reads {
                std::hint::black_box(array.vmv(spins.as_slice()));
            }
            mean_ms[slot] = started.elapsed().as_secs_f64() * 1e3 / reads as f64;
        }
        let [ref mut sequential, ref mut parallel] = arrays;
        let bit_equal = sequential.vmv(spins.as_slice()) == parallel.vmv(spins.as_slice());
        assert!(bit_equal, "{label}: sequential and parallel reads drifted");
        let speedup = mean_ms[0] / mean_ms[1].max(1e-12);
        println!(
            "{label:>14} {:>10.3}ms {:>10.3}ms {speedup:>9.2}x {:>10}",
            mean_ms[0],
            mean_ms[1],
            if bit_equal { "yes" } else { "NO" }
        );
        rows.push(serde_json::json!({
            "fidelity": label,
            "sequential_ms_per_read": mean_ms[0],
            "parallel_ms_per_read": mean_ms[1],
            "parallel_speedup": speedup,
            "bit_identical": bit_equal,
        }));
    }

    let report = serde_json::json!({
        "spins": n,
        "tile_rows": tile_rows,
        "reads_per_cell": reads,
        "hw_threads": threads,
        "rows": rows,
    });
    fecim_bench::write_artifact("sensing_sweep", &report);
    if fecim_bench::has_flag("--write-baseline") {
        let body = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write("BENCH_sensing.json", body + "\n")
            .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
        println!("[baseline] BENCH_sensing.json");
    }
}
