//! Beyond-capacity campaign sweep: qbsolv-style windowed decomposition
//! over the `fecim-serve` scheduler versus a monolithic software
//! reference at **equal simulated hardware time**, on Max-Cut QUBOs up
//! to 4× the grid's spin capacity.
//!
//! The decomposed arm runs entirely on the batched crossbar backend of
//! a capacity-limited scheduler grid — instances the grid could never
//! admit whole (`Admission::Impossible`) solve anyway, window by
//! clamped window, warm-started round over round. The monolithic arm is
//! the honesty check: the same problem solved in one piece on the
//! software-exact backend, its iteration count rescaled so both arms
//! spend (approximately) the same simulated hardware time.
//!
//! Reported per problem size: window jobs per round, both arms' best
//! energies and hardware time, and the energy gap. The sweep asserts,
//! per size, that the campaign trajectory is monotone non-increasing
//! and that the final energy improves on round 0 — this is the CI smoke
//! for solving a 2×-over-capacity instance end-to-end.
//!
//! `cargo run --release -p fecim-bench --bin campaign_sweep \
//!     [--scale quick|paper] [--repeat N] [--noisy]`
//!
//! `--noisy` programs the decomposed arm's grid in
//! `Fidelity::DeviceAccurate` with typical variation and read noise
//! (the monolithic software reference stays exact). `--repeat N` runs
//! every size N times with distinct base seeds — the same spelling the
//! other sweeps use (see `queue_sweep`).

use fecim::{BackendPlan, CimAnnealer, ProblemSpec, SolverSpec};
use fecim_gset::{GeneratorConfig, GsetFamily};
use fecim_serve::{
    run_campaign, CampaignOutcome, CampaignSpec, DecomposePlan, ScheduleVariant, Scheduler,
    SchedulerConfig, SubmitOptions,
};

/// Max-Cut as a minimization QUBO: per edge `w`, `+2w·x_u·x_v` off the
/// diagonal and `−w` on both endpoint diagonals, so `xᵀQx = −cut(x)`.
fn max_cut_qubo(n: usize, edges: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
    let mut q = vec![vec![0.0; n]; n];
    for &(u, v, w) in edges {
        q[u][v] += 2.0 * w;
        q[u][u] -= w;
        q[v][v] -= w;
    }
    q
}

struct Arms {
    jobs_per_round: usize,
    decomposed: CampaignOutcome,
    monolithic: CampaignOutcome,
}

#[allow(clippy::too_many_arguments)]
fn run_size(
    n: usize,
    stripes: usize,
    tile_rows: usize,
    rounds: usize,
    iterations: usize,
    trials: usize,
    workers: usize,
    seed: u64,
    noisy: bool,
) -> Arms {
    let graph = GeneratorConfig::new(n, seed)
        .with_family(GsetFamily::RandomUnit)
        .with_mean_degree(4.0)
        .generate();
    let problem = ProblemSpec::Qubo {
        q: max_cut_qubo(n, graph.edges()),
    };
    let capacity = stripes * tile_rows;
    // Window + the ancilla spin of the clamped sub-problem's linear
    // terms must fit the grid; 3/4 capacity leaves admission headroom.
    let window = (capacity * 3 / 4).min(capacity - 1).min(n - 1);
    let overlap = window / 4;
    let cim = |iters: usize| SolverSpec::Cim(CimAnnealer::new(iters).with_flips(1));

    let spec = CampaignSpec::new(
        problem.clone(),
        rounds,
        vec![ScheduleVariant::new(cim(iterations)).with_trials(trials)],
    )
    .with_decompose(DecomposePlan::window(window).with_overlap(overlap))
    .with_backend(BackendPlan::Batched {
        tile_rows,
        instances: 2,
    })
    .with_base_seed(seed);
    let mut config = SchedulerConfig::workers(workers).with_grid_stripes(stripes);
    if noisy {
        let mut cfg = fecim_crossbar::CrossbarConfig::paper_defaults();
        cfg.fidelity = fecim_crossbar::Fidelity::DeviceAccurate;
        cfg.variation = fecim_device::VariationConfig::typical();
        config = config.with_crossbar(cfg);
    }
    let scheduler = Scheduler::with_config(config);
    let decomposed = run_campaign(&scheduler, &spec, &SubmitOptions::default())
        .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
    scheduler.join();

    // Monolithic software reference at (approximately) equal hardware
    // time: probe one whole-problem round, then rescale its iteration
    // count by the measured time-per-iteration.
    let mono = |iters: usize| {
        let spec = CampaignSpec::new(
            problem.clone(),
            1,
            vec![ScheduleVariant::new(cim(iters)).with_trials(trials)],
        )
        .with_base_seed(seed);
        let scheduler = Scheduler::with_config(SchedulerConfig::workers(workers));
        let outcome = run_campaign(&scheduler, &spec, &SubmitOptions::default())
            .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
        scheduler.join();
        outcome
    };
    let probe = mono(iterations);
    let budget = decomposed.total_hw_time;
    let scaled = ((iterations as f64) * budget / probe.total_hw_time).round() as usize;
    let monolithic = mono(scaled.max(1));

    Arms {
        jobs_per_round: decomposed.rounds[0].jobs,
        decomposed,
        monolithic,
    }
}

fn main() {
    let scale = fecim_bench::parse_scale();
    let noisy = fecim_bench::parse_noisy();
    let repeat = fecim_bench::parse_repeat();
    let (stripes, tile_rows, multipliers, rounds, iterations, trials): (
        usize,
        usize,
        &[usize],
        usize,
        usize,
        usize,
    ) = match scale {
        fecim_bench::HarnessScale::Quick => (8, 4, &[1, 2], 3, 300, 2),
        fecim_bench::HarnessScale::Paper => (32, 8, &[1, 2, 4], 5, 1000, 4),
    };
    let capacity = stripes * tile_rows;
    let workers = 4;
    let mode = if noisy { "device-noisy" } else { "ideal" };

    println!(
        "=== campaign_sweep ({mode}, ×{repeat}): windowed decomposition vs monolithic at equal \
         hw time (grid capacity {capacity} spins) ===\n"
    );
    println!(
        "{:>6} {:>6} {:>6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "spins", "cap×", "copy", "jobs/r", "camp E", "camp hw(s)", "mono E", "mono hw(s)", "gap%"
    );

    let mut artifact_rows = Vec::new();
    for &multiplier in multipliers {
        for copy in 0..repeat {
            let n = multiplier * capacity;
            let seed = 17 + 1000 * copy as u64;
            let arms = run_size(
                n, stripes, tile_rows, rounds, iterations, trials, workers, seed, noisy,
            );
            let campaign = &arms.decomposed;

            assert_eq!(campaign.rounds.len(), rounds);
            for pair in campaign.rounds.windows(2) {
                assert!(
                    pair[1].best_energy <= pair[0].best_energy,
                    "trajectory must be monotone at n={n}"
                );
            }
            assert!(
                campaign.best_energy < campaign.rounds[0].round_energy
                    || campaign.best_energy < 0.0,
                "campaign must improve on round 0 at n={n}"
            );
            if multiplier > 1 {
                // The headline claim: this instance cannot be admitted whole
                // (it needs more stripes than the grid has), yet it solved.
                assert!(
                    n.div_ceil(tile_rows) > stripes,
                    "n={n} should exceed the grid's stripe capacity"
                );
            }

            let gap = 100.0 * (campaign.best_energy - arms.monolithic.best_energy)
                / arms.monolithic.best_energy.abs().max(1e-12);
            println!(
                "{:>6} {:>6} {:>6} {:>6} {:>12.1} {:>12.3e} {:>12.1} {:>12.3e} {:>8.2}",
                n,
                multiplier,
                copy,
                arms.jobs_per_round,
                campaign.best_energy,
                campaign.total_hw_time,
                arms.monolithic.best_energy,
                arms.monolithic.total_hw_time,
                gap
            );
            artifact_rows.push(serde_json::json!({
                "spins": n,
                "capacity_multiplier": multiplier,
                "copy": copy,
                "base_seed": seed,
                "jobs_per_round": arms.jobs_per_round,
                "campaign_best_energy": campaign.best_energy,
                "campaign_hw_time": campaign.total_hw_time,
                "campaign_trajectory": campaign.rounds.iter().map(|r| r.best_energy).collect::<Vec<_>>(),
                "monolithic_best_energy": arms.monolithic.best_energy,
                "monolithic_hw_time": arms.monolithic.total_hw_time,
                "energy_gap_percent": gap,
            }));
        }
    }

    println!(
        "\nevery row solved through a {capacity}-spin grid; rows with cap× > 1 cannot run \
         monolithically on that grid at all."
    );
    fecim_bench::write_artifact(
        "campaign_sweep",
        &serde_json::json!({
            "scale": format!("{scale:?}"),
            "mode": mode,
            "repeat": repeat,
            "grid_capacity_spins": capacity,
            "rows": artifact_rows,
        }),
    );
}
