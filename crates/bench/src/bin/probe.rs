//! Calibration probe (development tool): sweeps the in-situ annealer's
//! E_inc normalization divisor and flip count against the CiM/ASIC
//! baseline. Every sweep point is a `SolveRequest` executed by one
//! `Session`.
//!
//! * default: the quick suite;
//! * `--paper`: the first six 800/1000-node paper instances;
//! * `--paper-large`: a 2000/3000-node subsample.
//!
//! This is how the shipped divisor-80 default was chosen; the published
//! quality experiment is `fig10_success`, the published sweep is
//! `ablation_sweeps`.
//!
//! With `--tile-rows N`, the probe additionally runs the first instance
//! device-in-the-loop through the tiled array and prints the measured
//! per-tile activity (activated tiles, ADC conversions/slots).

use fecim::{
    BackendPlan, CimAnnealer, DirectAnnealer, ProblemSpec, RunPlan, Session, SolveRequest,
    SolverSpec,
};
use fecim_anneal::{multi_start_local_search, success_rate};
use fecim_crossbar::Fidelity;
use fecim_gset::quick_suite;
use fecim_ising::CopProblem;

/// Normalized-cut ensemble of any solver spec on a Max-Cut instance.
fn normalized_cuts(
    session: &Session,
    spec: &ProblemSpec,
    solver: SolverSpec,
    reference: f64,
    runs: usize,
    base_seed: u64,
) -> Vec<f64> {
    let request = SolveRequest::new(spec.clone(), solver)
        .with_run(RunPlan::Ensemble {
            trials: runs,
            base_seed,
            threads: None,
        })
        .with_reference(reference);
    session
        .run(&request)
        .unwrap_or_else(|e| fecim_bench::fail_exit(&e))
        .normalized_objectives()
        .expect("request carries a reference")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instances: Vec<fecim_gset::SuiteInstance> = if args.iter().any(|a| a == "--paper") {
        fecim_gset::paper_suite()
            .into_iter()
            .filter(|i| {
                matches!(
                    i.group,
                    fecim_gset::SizeGroup::N800 | fecim_gset::SizeGroup::N1000
                )
            })
            .take(6)
            .collect()
    } else if args.iter().any(|a| a == "--paper-large") {
        fecim_gset::paper_suite()
            .into_iter()
            .filter(|i| {
                matches!(
                    i.group,
                    fecim_gset::SizeGroup::N2000 | fecim_gset::SizeGroup::N3000
                )
            })
            .step_by(3)
            .collect()
    } else {
        quick_suite(0.1)
    };
    let runs = 10;
    let session = Session::new();
    for inst in &instances {
        let graph = inst.graph();
        let problem = graph.to_max_cut();
        let model = problem
            .to_ising()
            .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
        let (_, ref_energy) = multi_start_local_search(model.couplings(), 8, 2025);
        let reference = problem.cut_from_energy(ref_energy);
        let iters = inst.group.iteration_budget().min(20_000);
        let spec = ProblemSpec::from_graph(&graph);

        let mut line = format!(
            "{:8} n={:4} iters={:6} ref={:8.1} |",
            inst.label,
            graph.vertex_count(),
            iters,
            reference
        );
        // Candidate in-situ configurations, each shipped as a request.
        let mut candidates: Vec<(String, SolverSpec)> = Vec::new();
        for (label, divisor, flips) in [("d80/t2", 80.0, 2), ("d160/t2", 160.0, 2)] {
            let base_scale = fecim_anneal::suggest_einc_scale(model.couplings(), flips);
            candidates.push((
                label.to_string(),
                SolverSpec::Cim(
                    CimAnnealer::new(iters)
                        .with_flips(flips)
                        .with_einc_scale(base_scale / divisor),
                ),
            ));
        }
        for (label, solver) in candidates {
            let cuts = normalized_cuts(&session, &spec, solver, reference, runs, 2025);
            let sr = success_rate(&cuts, 0.9, true);
            let mean = cuts.iter().sum::<f64>() / cuts.len() as f64;
            line.push_str(&format!(" {label}:{mean:.3}/{:.0}%", sr * 100.0));
        }
        // Baseline for comparison.
        let base = SolverSpec::Direct(DirectAnnealer::cim_asic(iters));
        let cuts = normalized_cuts(&session, &spec, base, reference, runs, 2025);
        let sr = success_rate(&cuts, 0.9, true);
        let mean = cuts.iter().sum::<f64>() / cuts.len() as f64;
        line.push_str(&format!(" | base:{mean:.3}/{:.0}%", sr * 100.0));
        println!("{line}");
    }

    if let Some(tile_rows) = fecim_bench::parse_tile_rows() {
        let inst = instances.first().expect("suite is nonempty");
        let graph = inst.graph();
        let n = graph.vertex_count();
        let iters = inst.group.iteration_budget().min(2_000);
        let request = SolveRequest::new(
            ProblemSpec::from_graph(&graph),
            SolverSpec::Cim(CimAnnealer::new(iters)),
        )
        .with_backend(BackendPlan::DeviceInLoop {
            fidelity: Fidelity::Ideal,
            tile_rows: Some(tile_rows),
        })
        .with_run(RunPlan::Single { seed: 2025 });
        let response = session
            .run(&request)
            .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
        let report = &response.reports[0];
        let a = report
            .run
            .activity
            .expect("tiled device runs record activity");
        let bands = n.div_ceil(tile_rows);
        println!(
            "tiled probe {} (n={n}, {tile_rows}-row tiles, {bands}x{bands} grid, {iters} iters):",
            inst.label
        );
        println!(
            "  tiles activated {} ({:.1}/iter), adc conversions {}, adc slots {}, energy {:.3e} J",
            a.tiles_activated,
            a.tiles_activated as f64 / a.array_ops.max(1) as f64,
            a.adc_conversions,
            a.adc_slots,
            report.energy.total()
        );
    }
}
