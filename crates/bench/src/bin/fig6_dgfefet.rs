//! Figure 6 reproduction: the DG FeFET I_SL–V_BG characteristic (6b) and
//! the fractional annealing-factor approximation of the normalized device
//! current (6c), including the a/(bT+c)+d fit.
//!
//! `cargo run -p fecim-bench --bin fig6_dgfefet`

use fecim_device::{
    fit_fractional, AnnealFactor, DeviceFactor, DgFefet, FractionalFactor, StoredBit,
};

fn main() {
    println!("=== Fig. 6(b): I_SL-V_BG, V_FG = V_DL = 1 V ===");
    let mut one = DgFefet::new(Default::default());
    one.program(StoredBit::One);
    let mut zero = DgFefet::new(Default::default());
    zero.program(StoredBit::Zero);
    println!(
        "{:>9} {:>14} {:>14}",
        "V_BG (V)", "store '1' (A)", "store '0' (A)"
    );
    let curve_one = one.isl_vbg_curve(15);
    let curve_zero = zero.isl_vbg_curve(15);
    let mut rows = Vec::new();
    for (a, b) in curve_one.iter().zip(curve_zero.iter()) {
        println!("{:>9.2} {:>14.4e} {:>14.4e}", a.0, a.1, b.1);
        rows.push(serde_json::json!({"v_bg": a.0, "i_one": a.1, "i_zero": b.1}));
    }
    println!("paper: '1' rises ~linearly toward ~10 uA at 0.7 V; '0' stays near zero\n");

    println!("=== Fig. 6(c): normalized I_SL vs fractional f(T) ===");
    let device = DeviceFactor::paper();
    let paper = FractionalFactor::paper();
    let samples = device.samples(71);
    let fit = fit_fractional(&samples).expect("device curve is fractional-fittable");
    println!(
        "fitted constants: a=1, b={:.5}, c={:.3}, d={:.3} (rmse {:.4})",
        fit.b, fit.c, fit.d, fit.rmse
    );
    println!("paper constants:  a=1, b=-0.00600, c=5.000, d=-0.200");
    println!(
        "\n{:>8} {:>10} {:>14} {:>14} {:>10}",
        "T", "V_BG (V)", "device f(T)", "fit f(T)", "paper f(T)"
    );
    let mut fig6c = Vec::new();
    for k in 0..=14 {
        let t = 700.0 * k as f64 / 14.0;
        let device_f = device.factor(t);
        let fit_f = fit.evaluate(t);
        let paper_f = paper.factor(t);
        println!(
            "{t:>8.0} {:>10.2} {device_f:>14.4} {fit_f:>14.4} {paper_f:>10.4}",
            device.vbg_for(t)
        );
        fig6c.push(serde_json::json!({
            "t": t, "v_bg": device.vbg_for(t),
            "device": device_f, "fit": fit_f, "paper": paper_f,
        }));
    }
    // Quality of the approximation over the full range.
    let max_err = samples
        .iter()
        .map(|&(t, y)| (fit.evaluate(t) - y).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |fit - device| over 71 V_BG steps: {max_err:.4} (normalized units)");

    fecim_bench::write_artifact(
        "fig6_dgfefet",
        &serde_json::json!({
            "fig6b": rows,
            "fig6c": fig6c,
            "fit": serde_json::json!({"b": fit.b, "c": fit.c, "d": fit.d, "rmse": fit.rmse}),
        }),
    );
}
