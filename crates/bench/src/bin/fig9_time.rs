//! Figure 9 reproduction: (a) average time cost of the three annealers
//! over the four Max-Cut size groups with reduction ratios; (b) time vs
//! iteration count for the 1000-node instance (`--trace`).
//!
//! `cargo run -p fecim-bench --bin fig9_time [--scale quick|paper] [--trace]`

use fecim::experiment::{cost_trend, ExperimentConfig, Scale};
use fecim_bench::{has_flag, parse_scale, HarnessScale};
use fecim_gset::SizeGroup;
use fecim_hwcost::{AnnealerKind, CostModel, IterationProfile};

fn main() {
    let scale = parse_scale();
    let config = ExperimentConfig::new(match scale {
        HarnessScale::Quick => Scale::Quick,
        HarnessScale::Paper => Scale::Paper,
    });

    println!("=== Fig. 9(a): average time per run (s) ===");
    println!(
        "{:>8} {:>6} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "group", "n", "iters", "CiM/FPGA", "CiM/ASIC", "This Work", "FPGA ratio", "ASIC ratio"
    );
    let mut artifact = Vec::new();
    for group in SizeGroup::all() {
        let n = match config.scale {
            Scale::Quick => (group.vertex_count() / 10).max(32),
            Scale::Paper => group.vertex_count(),
        };
        let iterations = config.iterations_for(group);
        let model = CostModel::paper_22nm(n, 4);
        let profile = IterationProfile::paper(n);
        let time = |kind: AnnealerKind| profile.run_time(kind, &model, iterations).total();
        let fpga = time(AnnealerKind::CimFpga);
        let asic = time(AnnealerKind::CimAsic);
        let ours = time(AnnealerKind::InSitu);
        println!(
            "{:>8} {:>6} {:>9} {:>12.3e} {:>12.3e} {:>12.3e} {:>11.2}x {:>11.2}x",
            format!("{group:?}"),
            n,
            iterations,
            fpga,
            asic,
            ours,
            fpga / ours,
            asic / ours
        );
        artifact.push(serde_json::json!({
            "group": format!("{group:?}"), "n": n, "iterations": iterations,
            "fpga": fpga, "asic": asic, "ours": ours,
            "ratio_fpga": fpga / ours, "ratio_asic": asic / ours,
        }));
    }
    println!("\npaper Fig. 9(a) ratios: 8.01x/7.98x (800), 8.05x/8.02x (1000), 8.10x/8.04x (2000), 8.15x/8.08x (3000)");

    if has_flag("--trace") {
        println!("\n=== Fig. 9(b): time vs iteration, 1000-node instance ===");
        let n = match config.scale {
            Scale::Quick => 100,
            Scale::Paper => 1000,
        };
        let trend = cost_trend(n, 1000, 6);
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            "iteration", "CiM/FPGA", "CiM/ASIC", "This Work"
        );
        for p in &trend {
            println!(
                "{:>10} {:>12.3e} {:>12.3e} {:>12.3e}",
                p.iterations, p.time[0], p.time[1], p.time[2]
            );
        }
        println!("paper: the two baselines overlap (ADC-dominated); this work ~8x below");
    }

    fecim_bench::write_artifact("fig9_time", &serde_json::json!({"fig9a": artifact}));
}
