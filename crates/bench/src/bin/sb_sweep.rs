//! Simulated-bifurcation ablation: bSB and dSB against the CiM in-situ
//! annealer and the MESA baseline at **matched simulated hardware
//! time**, on a dense-ish Max-Cut instance (n ≥ 800) and a
//! Sherrington–Kirkpatrick spin glass.
//!
//! The SB arms spend their budget on full-vector MVM reads (one per
//! step for dSB, `in_bits` bit-serial planes for bSB), the annealer
//! arms on per-flip incremental-E sensing — the comparison the SB
//! family exists for: at equal array time the synchronous update
//! touches every spin each step, where the annealers touch `t = |F|`.
//! The bSB arm sets the per-trial time budget; every other arm's
//! iteration count is rescaled to it (analytic hardware time is linear
//! in iterations, so the match is exact up to rounding).
//!
//! Reported per arm: iterations, per-trial hardware time (the matched
//! budget), mean/best quality, and quality per unit hardware time.
//!
//! `cargo run --release -p fecim-bench --bin sb_sweep \
//!     [--scale quick|paper] [--repeat N]`
//!
//! `--repeat N` widens every arm's ensemble N-fold (distinct seeds) —
//! the same spelling the other sweeps use (see `queue_sweep`).

use fecim::{
    CimAnnealer, MesaAnnealer, ProblemSpec, RunPlan, SbAnnealer, Session, SolveRequest,
    SolveResponse, SolverSpec,
};
use fecim_anneal::multi_start_local_search;
use fecim_bench::{parse_repeat, parse_scale, HarnessScale};
use fecim_gset::{GeneratorConfig, GsetFamily};
use fecim_ising::{CopProblem, Coupling, SherringtonKirkpatrick};

/// One comparison arm: a label plus a solver builder at a given
/// iteration/step count.
struct Arm {
    label: &'static str,
    build: fn(usize) -> SolverSpec,
}

const ARMS: [Arm; 4] = [
    Arm {
        label: "bSB",
        build: |steps| SolverSpec::Sb(SbAnnealer::ballistic(steps)),
    },
    Arm {
        label: "dSB",
        build: |steps| SolverSpec::Sb(SbAnnealer::discrete(steps)),
    },
    Arm {
        label: "CiM in-situ",
        build: |iters| SolverSpec::Cim(CimAnnealer::new(iters).with_flips(1)),
    },
    Arm {
        label: "MESA",
        build: |iters| SolverSpec::Mesa(MesaAnnealer::new(iters)),
    },
];

struct ArmResult {
    label: &'static str,
    iterations: usize,
    hw_time_per_trial: f64,
    mean_objective: f64,
    best_objective: f64,
    best_energy: f64,
}

/// Run every arm on `spec` at the bSB arm's per-trial hardware budget.
fn run_matched(
    session: &Session,
    spec: &ProblemSpec,
    bsb_steps: usize,
    trials: usize,
    base_seed: u64,
) -> Vec<ArmResult> {
    let run_arm = |arm: &Arm, iterations: usize| -> (SolveResponse, usize) {
        let request =
            SolveRequest::new(spec.clone(), (arm.build)(iterations)).with_run(RunPlan::Ensemble {
                trials,
                base_seed,
                threads: None,
            });
        let response = session
            .run(&request)
            .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
        (response, iterations)
    };
    let per_trial = |response: &SolveResponse| response.summary.total_time / trials as f64;

    // The bSB arm sets the budget; the others probe once and rescale.
    let (bsb, _) = run_arm(&ARMS[0], bsb_steps);
    let budget = per_trial(&bsb);
    let mut results = Vec::new();
    for (i, arm) in ARMS.iter().enumerate() {
        let (response, iterations) = if i == 0 {
            (bsb.clone(), bsb_steps)
        } else {
            let (probe, probe_iters) = run_arm(arm, bsb_steps.max(64));
            let scaled = ((probe_iters as f64) * budget / per_trial(&probe))
                .round()
                .max(1.0) as usize;
            run_arm(arm, scaled)
        };
        let objectives: Vec<f64> = response
            .reports
            .iter()
            .map(|r| r.objective.unwrap_or(r.best_energy))
            .collect();
        let mean = objectives.iter().sum::<f64>() / objectives.len() as f64;
        let best = response
            .summary
            .best_objective
            .unwrap_or(response.summary.best_energy);
        results.push(ArmResult {
            label: arm.label,
            iterations,
            hw_time_per_trial: per_trial(&response),
            mean_objective: mean,
            best_objective: best,
            best_energy: response.summary.best_energy,
        });
    }
    results
}

fn print_table(title: &str, sense: &str, results: &[ArmResult]) -> Vec<serde_json::Value> {
    let budget = results[0].hw_time_per_trial;
    println!("--- {title} ({sense}; per-trial budget {budget:.3e} s) ---");
    println!(
        "{:>12} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "arm", "iters", "hw(s)/trial", "mean obj", "best obj", "best E"
    );
    let mut rows = Vec::new();
    for r in results {
        // The honesty check behind "matched hardware time": every arm
        // must actually land on the bSB budget (rounding aside).
        assert!(
            (r.hw_time_per_trial - budget).abs() / budget < 0.05,
            "{}: hardware time {} strays from the {} budget",
            r.label,
            r.hw_time_per_trial,
            budget
        );
        println!(
            "{:>12} {:>9} {:>12.3e} {:>12.2} {:>12.2} {:>12.2}",
            r.label,
            r.iterations,
            r.hw_time_per_trial,
            r.mean_objective,
            r.best_objective,
            r.best_energy
        );
        rows.push(serde_json::json!({
            "arm": r.label,
            "iterations": r.iterations,
            "hw_time_per_trial_s": r.hw_time_per_trial,
            "mean_objective": r.mean_objective,
            "best_objective": r.best_objective,
            "best_energy": r.best_energy,
        }));
    }
    println!();
    rows
}

fn main() {
    let scale = parse_scale();
    let repeat = parse_repeat();
    let (n_cut, degree, n_sk, bsb_steps, trials) = match scale {
        HarnessScale::Quick => (800, 6.0, 200, 250, 3),
        HarnessScale::Paper => (2000, 10.0, 800, 1500, 10),
    };
    let trials = trials * repeat;
    let session = Session::new();

    println!(
        "=== sb_sweep: bSB/dSB vs CiM/MESA annealing at matched hardware time \
         (Max-Cut n={n_cut}, SK n={n_sk}, {trials} trials) ===\n"
    );

    // --- Max-Cut, n >= 800 ------------------------------------------------
    let graph = GeneratorConfig::new(n_cut, 0x5B)
        .with_family(GsetFamily::RandomUnit)
        .with_mean_degree(degree)
        .generate();
    let problem = graph.to_max_cut();
    let model = problem
        .to_ising()
        .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
    let (_, ls_energy) = multi_start_local_search(model.couplings(), 6, 9);
    let reference = problem.cut_from_energy(ls_energy);
    let cut_results = run_matched(
        &session,
        &ProblemSpec::from_graph(&graph),
        bsb_steps,
        trials,
        2025,
    );
    for r in &cut_results {
        assert!(
            r.best_objective >= 0.8 * reference,
            "{}: cut {} below 80% of the local-search reference {}",
            r.label,
            r.best_objective,
            reference
        );
    }
    let cut_rows = print_table(
        &format!("Max-Cut n={n_cut} (reference cut {reference})"),
        "maximize cut",
        &cut_results,
    );

    // --- Sherrington–Kirkpatrick spin glass --------------------------------
    let sk = SherringtonKirkpatrick::new(n_sk, 11).unwrap_or_else(|e| fecim_bench::fail_exit(&e));
    let sk_model = sk.to_ising().unwrap_or_else(|e| fecim_bench::fail_exit(&e));
    let n = sk_model.couplings().dimension();
    let mut j = vec![vec![0.0; n]; n];
    for (row, j_row) in j.iter_mut().enumerate() {
        sk_model
            .couplings()
            .for_each_in_row(row, &mut |col, value| j_row[col] = value);
    }
    let sk_results = run_matched(
        &session,
        &ProblemSpec::Ising { h: vec![0.0; n], j },
        bsb_steps,
        trials,
        7,
    );
    let sk_rows = print_table(
        &format!("Sherrington–Kirkpatrick n={n_sk}"),
        "minimize energy",
        &sk_results,
    );

    println!(
        "(every arm spends the bSB arm's per-trial hardware budget: SB on full-vector MVM \
         reads, the annealers on per-flip incremental-E sensing)"
    );
    fecim_bench::write_artifact(
        "sb_sweep",
        &serde_json::json!({
            "scale": format!("{scale:?}"),
            "trials": trials,
            "bsb_steps": bsb_steps,
            "max_cut": serde_json::json!({
                "spins": n_cut,
                "reference_cut": reference,
                "rows": cut_rows,
            }),
            "sk": serde_json::json!({
                "spins": n_sk,
                "rows": sk_rows,
            }),
        }),
    );
}
