//! Figure 2 reproduction: FeFET I_D–V_G for the programmed low/high V_TH
//! states (2b) and the DG FeFET transfer family under back-gate bias
//! −3…5 V (2d).
//!
//! `cargo run -p fecim-bench --bin fig2_device_curves`

use fecim_device::{DgFefet, Fefet, StoredBit};

fn main() {
    println!("=== Fig. 2(b): FeFET I_D-V_G, V_DS = 1 V ===");
    let mut fefet = Fefet::new(Default::default());
    fefet.program(StoredBit::One);
    let low = fefet.transfer_curve(-0.5, 1.5, 21, 1.0);
    fefet.program(StoredBit::Zero);
    let high = fefet.transfer_curve(-0.5, 1.5, 21, 1.0);
    println!(
        "{:>8} {:>12} {:>12}",
        "V_G (V)", "low-VTH (A)", "high-VTH (A)"
    );
    let mut rows = Vec::new();
    for (l, h) in low.iter().zip(high.iter()) {
        println!("{:>8.2} {:>12.4e} {:>12.4e}", l.0, l.1, h.1);
        rows.push(serde_json::json!({"v_g": l.0, "i_low": l.1, "i_high": h.1}));
    }
    let window = fefet.params().memory_window();
    let ss = fefet.params().subthreshold_swing_mv();
    println!("memory window: {window:.2} V, subthreshold swing: {ss:.1} mV/dec");
    println!("paper: ~1 V window, exponential subthreshold, on-current ~1e-4 A\n");

    println!("=== Fig. 2(d): DG FeFET I_D-V_FG under V_BG -3..5 V ===");
    let mut cell = DgFefet::new(Default::default());
    cell.program(StoredBit::One);
    let vbg_values: Vec<f64> = (-3..=5).map(|v| v as f64).collect();
    let family = cell.transfer_family(-0.5, 1.5, 9, &vbg_values, 1.0);
    print!("{:>8}", "V_FG (V)");
    for (vbg, _) in &family {
        print!(" {:>10}", format!("VBG={vbg:+.0}"));
    }
    println!();
    let mut family_rows = Vec::new();
    for k in 0..9 {
        print!("{:>8.2}", family[0].1[k].0);
        for (_, curve) in &family {
            print!(" {:>10.2e}", curve[k].1);
        }
        println!();
        family_rows.push(serde_json::json!({
            "v_fg": family[0].1[k].0,
            "currents": family.iter().map(|(_, c)| c[k].1).collect::<Vec<f64>>(),
        }));
    }
    println!(
        "back-gate coupling: {:.2} V/V (paper: curves shift with V_BG, FE state untouched)",
        cell.params().bg_coupling
    );

    fecim_bench::write_artifact(
        "fig2_device_curves",
        &serde_json::json!({"fig2b": rows, "fig2d": family_rows}),
    );
}
