//! Figure 10 reproduction: normalized cut values and success rates of the
//! proposed in-situ annealer vs the baseline annealers across the four
//! size groups (target = 90 % of the reference optimum; Monte-Carlo runs
//! per instance as configured by the scale).
//!
//! `cargo run --release -p fecim-bench --bin fig10_success [--scale quick|paper]`

use fecim::experiment::{run_experiment, ExperimentConfig, Scale};
use fecim::report::format_outcome;
use fecim_bench::{parse_scale, HarnessScale};

fn main() {
    let scale = parse_scale();
    let config = ExperimentConfig::new(match scale {
        HarnessScale::Quick => Scale::Quick,
        HarnessScale::Paper => Scale::Paper,
    });
    println!(
        "=== Fig. 10: normalized cut + success rate ({:?} scale, {} runs/instance) ===\n",
        config.scale, config.runs_per_instance
    );
    let started = std::time::Instant::now();
    let outcome = run_experiment(config).unwrap_or_else(|e| fecim_bench::fail_exit(&e));
    println!("{}", format_outcome(&outcome));
    println!(
        "average success: this work {:.0}%, baselines {:.0}% (paper: 98% vs 50%)",
        outcome.in_situ_mean_success() * 100.0,
        outcome.baseline_mean_success() * 100.0
    );
    println!("wall time: {:.1}s", started.elapsed().as_secs_f64());

    fecim_bench::write_artifact(
        "fig10_success",
        &serde_json::to_value(&outcome).expect("outcome serializes"),
    );
}
