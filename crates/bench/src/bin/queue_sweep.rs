//! Scheduled-throughput sweep: the `fecim-serve` scheduler digesting a
//! mixed arrival trace — batched jobs sharing live grids, analytic
//! ensembles, raw QUBO/Ising payloads — across worker counts and
//! priority distributions.
//!
//! Reported per worker count:
//!
//! * wall-clock jobs/sec and trials/sec of the whole trace;
//! * p50/p99 job sojourn latency (staged start → terminal response),
//!   the serving-side saturation curve: p99 collapses as workers are
//!   added until grid capacity and priority inversions bind;
//! * total simulated hardware time (worker count changes wall-clock
//!   only — the hardware cost attribution is scheduling-invariant);
//! * live-grid saturation: admissions, grid utilization, peak
//!   concurrent instances (the batching headroom argument of the
//!   paper's array-level parallelism, now across *heterogeneous* jobs).
//!
//! Priorities only reorder work, they never change per-job results —
//! in any fidelity (counter-based read noise plus per-trial reseeding
//! keep device-accurate trials placement-independent). The completion
//! order column is where the priority distribution shows up, and the
//! sweep asserts per-job best energies are identical at every worker
//! count.
//!
//! `cargo run --release -p fecim-bench --bin queue_sweep \
//!     [--scale quick|paper] [--workers 1,2,4] [--repeat N] [--noisy]`
//!
//! `--noisy` programs every grid in `Fidelity::DeviceAccurate` with
//! typical variation and read noise. `--repeat N` offers the trace N
//! times (distinct seeds per copy) to push the queue toward
//! saturation without changing any single job's results.
//!
//! A scaled-down deterministic version of this trace (1 worker, staged
//! start) is pinned byte-for-byte in `tests/goldens/queue_sweep.json`.

use std::time::Instant;

use fecim::{BackendPlan, CimAnnealer, ProblemSpec, RunPlan, SolveRequest, SolverSpec};
use fecim_gset::{GeneratorConfig, GsetFamily};
use fecim_serve::{Scheduler, SchedulerConfig, SubmitOptions};

/// The arrival mix: `(label, request, priority)` triples, deterministic
/// from the scale.
fn trace(scale: fecim_bench::HarnessScale) -> Vec<(String, SolveRequest, i64)> {
    let (n_big, n_small, iterations, trials): (usize, usize, usize, usize) = match scale {
        fecim_bench::HarnessScale::Quick => (48, 24, 400, 4),
        fecim_bench::HarnessScale::Paper => (200, 96, 1000, 10),
    };
    let ring = |n: usize| ProblemSpec::MaxCut {
        vertices: n,
        edges: (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect(),
    };
    let cim = |iters: usize| SolverSpec::Cim(CimAnnealer::new(iters).with_flips(1));
    let mut jobs = Vec::new();
    // Batched jobs of two sizes share one live grid (tile height 8).
    for (i, priority) in [(0u64, 0i64), (1, 5), (2, 0), (3, -3)] {
        let n = if i % 2 == 0 { n_big } else { n_small };
        jobs.push((
            format!("batched-{i}"),
            SolveRequest::new(ring(n), cim(iterations))
                .with_backend(BackendPlan::Batched {
                    tile_rows: 8,
                    instances: 2,
                })
                .with_run(RunPlan::Ensemble {
                    trials,
                    base_seed: 100 + i,
                    threads: None,
                }),
            priority,
        ));
    }
    // Analytic ensembles on generated instances.
    for (i, priority) in [(0u64, 2i64), (1, 0)] {
        let graph = GeneratorConfig::new(n_big, 7 + i)
            .with_family(GsetFamily::RandomUnit)
            .with_mean_degree(6.0);
        jobs.push((
            format!("analytic-{i}"),
            SolveRequest::new(ProblemSpec::Generated(graph), cim(iterations)).with_run(
                RunPlan::Ensemble {
                    trials,
                    base_seed: 200 + i,
                    threads: None,
                },
            ),
            priority,
        ));
    }
    // Raw payloads, straight off the wire.
    jobs.push((
        "qubo".into(),
        SolveRequest::new(
            ProblemSpec::Qubo {
                q: vec![
                    vec![-1.0, 2.0, 0.0],
                    vec![0.0, -1.0, 2.0],
                    vec![0.0, 0.0, -1.0],
                ],
            },
            cim(iterations),
        )
        .with_run(RunPlan::Single { seed: 3 }),
        7,
    ));
    let n = n_small;
    let mut j = vec![vec![0.0; n]; n];
    for (a, b) in (0..n).map(|i| (i, (i + 1) % n)) {
        j[a][b] = 0.5;
        j[b][a] = 0.5;
    }
    jobs.push((
        "ising".into(),
        SolveRequest::new(ProblemSpec::Ising { h: vec![0.0; n], j }, cim(iterations)).with_run(
            RunPlan::Ensemble {
                trials: 2,
                base_seed: 400,
                threads: None,
            },
        ),
        1,
    ));
    jobs
}

/// The trace offered `repeat` times, each copy reseeded so the queue
/// fills without any copy's results depending on the others.
fn offered_load(
    scale: fecim_bench::HarnessScale,
    repeat: usize,
) -> Vec<(String, SolveRequest, i64)> {
    let mut jobs = Vec::new();
    for copy in 0..repeat {
        for (label, mut request, priority) in trace(scale) {
            if copy > 0 {
                request.run = match request.run {
                    RunPlan::Ensemble {
                        trials,
                        base_seed,
                        threads,
                    } => RunPlan::Ensemble {
                        trials,
                        base_seed: base_seed + 1000 * copy as u64,
                        threads,
                    },
                    RunPlan::Single { seed } => RunPlan::Single {
                        seed: seed + 1000 * copy as u64,
                    },
                };
            }
            jobs.push((format!("{label}/{copy}"), request, priority));
        }
    }
    jobs
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let scale = fecim_bench::parse_scale();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers_list =
        fecim_bench::workers_from_args(&args).unwrap_or_else(|msg| fecim_bench::usage_exit(&msg));
    let noisy = fecim_bench::parse_noisy();
    let repeat = fecim_bench::parse_repeat();
    let mode = if noisy { "device-noisy" } else { "ideal" };

    println!(
        "=== queue_sweep ({mode}, offered load ×{repeat}): scheduled throughput vs worker \
         count ===\n"
    );
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>10} {:>10} {:>12} {:>10} {:>8} {:>6}",
        "workers",
        "jobs",
        "jobs/s",
        "trials/s",
        "p50 lat",
        "p99 lat",
        "hw time",
        "grid util",
        "peak",
        "adm"
    );
    let mut energy_baseline: Option<Vec<(String, f64)>> = None;
    for &workers in &workers_list {
        let jobs = offered_load(scale, repeat);
        let mut config = SchedulerConfig::workers(workers)
            .with_grid_stripes(32)
            .start_paused();
        if noisy {
            let mut cfg = fecim_crossbar::CrossbarConfig::paper_defaults();
            cfg.fidelity = fecim_crossbar::Fidelity::DeviceAccurate;
            cfg.variation = fecim_device::VariationConfig::typical();
            config = config.with_crossbar(cfg);
        }
        let scheduler = Scheduler::with_config(config);
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(label, request, priority)| {
                let handle =
                    scheduler.submit(request, SubmitOptions::priority(priority).with_tag(&label));
                (label, handle)
            })
            .collect();
        let job_count = handles.len();
        let start = Instant::now();
        // One waiter per job records its sojourn latency (staged start
        // → terminal response) the moment it settles — waiting in
        // submission order would overstate early finishers.
        let waiters: Vec<_> = handles
            .into_iter()
            .map(|(label, handle)| {
                std::thread::spawn(move || {
                    let response = handle.wait();
                    (label, handle, response, start.elapsed().as_secs_f64())
                })
            })
            .collect();
        scheduler.resume();
        let mut trials = 0usize;
        let mut hw_time = 0.0f64;
        let mut latencies: Vec<f64> = Vec::new();
        let mut order: Vec<(u64, String)> = Vec::new();
        let mut energies: Vec<(String, f64)> = Vec::new();
        for waiter in waiters {
            let (label, handle, response, latency) = waiter.join().expect("waiter joins");
            let response = response.unwrap_or_else(|e| fecim_bench::fail_exit(&e));
            trials += response.reports.len();
            hw_time += response.summary.total_time;
            latencies.push(latency);
            order.push((handle.finished_event().expect("finished"), label.clone()));
            for report in &response.reports {
                energies.push((label.clone(), report.best_energy));
            }
        }
        // Scheduling must never leak into results, in any fidelity.
        match &energy_baseline {
            Some(expected) => assert_eq!(
                &energies, expected,
                "per-job results drifted at {workers} workers"
            ),
            None => energy_baseline = Some(energies),
        }
        let elapsed = start.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.total_cmp(b));
        let grids = scheduler.grid_stats();
        let (util, peak, admissions) = grids
            .first()
            .map(|g| {
                (
                    g.grid_utilization,
                    g.peak_concurrent_instances,
                    g.admissions,
                )
            })
            .unwrap_or((0.0, 0, 0));
        println!(
            "{:>8} {:>8} {:>10.2} {:>12.1} {:>8.1}ms {:>8.1}ms {:>10.2}us {:>10.4} {:>8} {:>6}",
            workers,
            job_count,
            job_count as f64 / elapsed,
            trials as f64 / elapsed,
            percentile(&latencies, 0.5) * 1e3,
            percentile(&latencies, 0.99) * 1e3,
            hw_time * 1e6,
            util,
            peak,
            admissions
        );
        order.sort();
        let sequence: Vec<&str> = order.iter().map(|(_, l)| l.as_str()).collect();
        println!("         completion order: {}\n", sequence.join(" → "));
        scheduler.join();
    }
    println!(
        "(hardware time is scheduling-invariant; wall-clock and tail latency scale with \
         workers until the trace's priority inversions and grid capacity bind)"
    );
}
