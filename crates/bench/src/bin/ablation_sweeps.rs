//! Ablation sweeps over the design choices DESIGN.md calls out:
//!
//! 1. **Back-gate sweep direction** — factor rising vs the literal
//!    falling reading of Sec. 3.4 (rising is required for convergence).
//! 2. **E_inc full-scale calibration** — the divisor behind the default
//!    normalization.
//! 3. **Flip count `t = |F|`** — quality vs the `n/t` energy advantage.
//! 4. **ADC resolution / weight bits** — device-in-the-loop quality.
//! 5. **Device variation σ_VTH** — robustness of the in-situ flow.
//!
//! Solver-level sweeps (2–6) are `SolveRequest`s executed by a
//! `Session`; device sweeps carry their custom `CrossbarConfig` via
//! `Session::with_crossbar`. Ablation 1 drives the raw engine directly
//! (it mirrors the schedule, which no solver configuration exposes).
//!
//! `cargo run --release -p fecim-bench --bin ablation_sweeps [--scale quick|paper]`

use fecim::{
    BackendPlan, CimAnnealer, FactorChoice, ProblemSpec, RunPlan, Session, SolveRequest, SolverSpec,
};
use fecim_anneal::{
    multi_start_local_search, run_in_situ, success_rate, AnnealConfig, Ensemble, ExactBackend,
    SteppedSchedule,
};
use fecim_bench::{parse_scale, HarnessScale};
use fecim_crossbar::{CrossbarConfig, Fidelity};
use fecim_device::{FractionalFactor, VariationConfig};
use fecim_gset::{GeneratorConfig, GsetFamily};
use fecim_ising::{CopProblem, SpinVector};

/// Run one sweep point, reported as mean normalized cut + success rate.
/// Every solver-level ablation goes through this request entry point.
fn sweep(label: &str, session: &Session, request: &SolveRequest) {
    let cuts: Vec<f64> = session
        .run(request)
        .unwrap_or_else(|e| fecim_bench::fail_exit(&e))
        .normalized_objectives()
        .expect("request carries a reference");
    report(label, &cuts);
}

fn main() {
    let scale = parse_scale();
    let (n, iterations, runs) = match scale {
        HarnessScale::Quick => (128, 2000, 10),
        HarnessScale::Paper => (800, 700, 100),
    };
    let graph = GeneratorConfig::new(n, 4242)
        .with_family(GsetFamily::RandomUnit)
        .with_mean_degree(if n >= 800 { 48.0 } else { 12.0 })
        .generate();
    let problem = graph.to_max_cut();
    let model = problem
        .to_ising()
        .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
    let coupling = model.couplings();
    let (_, ref_energy) = multi_start_local_search(coupling, 10, 9);
    let reference = problem.cut_from_energy(ref_energy);
    println!("instance: n={n}, iters={iterations}, runs={runs}, reference cut {reference}\n");
    let spec = ProblemSpec::from_graph(&graph);
    let session = Session::new();
    let ensemble = Ensemble::new(runs, 31337);
    // Every solver-level sweep point is the same request shape; only the
    // solver, backend, and ensemble size vary per ablation.
    let request = |solver: SolverSpec, backend: BackendPlan, trials: usize, base_seed: u64| {
        SolveRequest::new(spec.clone(), solver)
            .with_backend(backend)
            .with_run(RunPlan::Ensemble {
                trials,
                base_seed,
                threads: None,
            })
            .with_reference(reference)
    };

    // --- 1. schedule direction × calibration ------------------------------
    // The factor direction and the E_inc full-scale calibration interact:
    // a rising factor (f ≈ 1/T_eff, consistent with the paper's Eq. 10)
    // anneals properly at any calibration, while the literal falling
    // reading of Sec. 3.4 relies entirely on its early greedy phase and
    // collapses without a large calibration divisor or at tight budgets.
    println!("=== ablation 1: back-gate sweep direction x E_inc calibration ===");
    let tight = iterations.min(700);
    let schedule = SteppedSchedule::paper(tight);
    let factor = FractionalFactor::paper();
    for (label, invert, divisor) in [
        ("rising f, divisor 80 (ours)", false, 80.0),
        ("falling f, divisor 80", true, 80.0),
        ("rising f, uncalibrated", false, 1.0),
        ("falling f, uncalibrated", true, 1.0),
    ] {
        let einc = fecim_anneal::suggest_einc_scale(coupling, 2) / divisor;
        let cuts = ensemble.run(|seed| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
            let init = SpinVector::random(coupling_dim(coupling), &mut rng);
            let mut backend = ExactBackend::new(coupling, init);
            let result = if invert {
                // Re-create the literal reading: evaluate f at T itself by
                // mirroring the schedule (T rises ⇒ factor falls over time).
                let mirrored = MirroredSchedule(schedule);
                run_in_situ(
                    &mut backend,
                    &mirrored,
                    &factor,
                    einc,
                    AnnealConfig::new(tight, seed),
                )
            } else {
                run_in_situ(
                    &mut backend,
                    &schedule,
                    &factor,
                    einc,
                    AnnealConfig::new(tight, seed),
                )
            };
            problem.cut_from_energy(result.best_energy) / reference
        });
        report(label, &cuts);
    }

    // --- 2. E_inc calibration divisor -------------------------------------
    println!("\n=== ablation 2: E_inc full-scale divisor ===");
    for divisor in [1.0, 5.0, 20.0, 80.0, 320.0] {
        let base = fecim_anneal::suggest_einc_scale(coupling, 2);
        let solver = CimAnnealer::new(iterations).with_einc_scale(base / divisor);
        sweep(
            &format!("divisor {divisor:>5}"),
            &session,
            &request(SolverSpec::Cim(solver), BackendPlan::Analytic, runs, 31337),
        );
    }

    // --- 3. flip count -----------------------------------------------------
    println!("\n=== ablation 3: flip count t = |F| (energy advantage = n/t) ===");
    for flips in [1usize, 2, 4, 8] {
        let solver = CimAnnealer::new(iterations).with_flips(flips);
        sweep(
            &format!("t = {flips} (n/t = {:>4.0})", n as f64 / flips as f64),
            &session,
            &request(SolverSpec::Cim(solver), BackendPlan::Analytic, runs, 31337),
        );
    }

    // --- 4. ADC / weight precision (device in the loop) --------------------
    println!("\n=== ablation 4: quantization (device-in-the-loop) ===");
    let dl_runs = runs.min(5);
    for (adc_bits, quant_bits) in [(13u8, 4u8), (8, 4), (6, 4), (13, 2), (13, 1)] {
        let mut cfg = CrossbarConfig::paper_defaults();
        cfg.adc_bits = adc_bits;
        cfg.quant_bits = quant_bits;
        sweep(
            &format!("ADC {adc_bits}b / J {quant_bits}b"),
            &Session::new().with_crossbar(cfg),
            &request(
                SolverSpec::Cim(CimAnnealer::new(iterations)),
                BackendPlan::DeviceInLoop {
                    fidelity: Fidelity::Ideal,
                    tile_rows: None,
                },
                dl_runs,
                512,
            ),
        );
    }

    // --- 5. device variation ----------------------------------------------
    println!("\n=== ablation 5: device variation sigma_VTH (device-in-the-loop) ===");
    for sigma in [0.0, 0.027, 0.054, 0.108, 0.216] {
        let mut cfg = CrossbarConfig::paper_defaults();
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig {
            sigma_vth_d2d: sigma,
            sigma_vth_c2c: sigma / 2.0,
            read_noise_rel: 0.02,
        };
        sweep(
            &format!("sigma {sigma:.3} V"),
            &Session::new().with_crossbar(cfg),
            &request(
                SolverSpec::Cim(CimAnnealer::new(iterations)),
                BackendPlan::DeviceInLoop {
                    fidelity: Fidelity::DeviceAccurate,
                    tile_rows: None,
                },
                dl_runs,
                512,
            ),
        );
    }

    // --- 6. fractional vs device factor ------------------------------------
    println!("\n=== ablation 6: analytic fractional vs physical device factor ===");
    for (label, factor) in [
        ("analytic fractional", FactorChoice::PaperFractional),
        ("physical DG FeFET", FactorChoice::Device),
    ] {
        let solver = CimAnnealer::new(iterations).with_factor(factor);
        sweep(
            label,
            &session,
            &request(SolverSpec::Cim(solver), BackendPlan::Analytic, runs, 31337),
        );
    }
}

fn coupling_dim(c: &fecim_ising::CsrCoupling) -> usize {
    use fecim_ising::Coupling;
    c.dimension()
}

fn report(label: &str, cuts: &[f64]) {
    let mean = cuts.iter().sum::<f64>() / cuts.len() as f64;
    let sr = success_rate(cuts, 0.9, true);
    println!(
        "  {label:<28} mean cut {mean:.3}  success {:.0}%",
        sr * 100.0
    );
}

/// Mirrors a stepped schedule in time: temperature *rises* over the run,
/// which makes the (rising-in-T) fractional factor *fall* over the run —
/// the literal reading of the paper's V_BG 0.7 V → 0 V direction.
#[derive(Debug, Clone, Copy)]
struct MirroredSchedule(SteppedSchedule);

impl fecim_anneal::Schedule for MirroredSchedule {
    fn temperature(&self, iteration: usize) -> f64 {
        700.0 - self.0.temperature(iteration)
    }
}
