//! Figure 8 reproduction: (a) average energy of the three annealers over
//! the four Max-Cut size groups, with reduction ratios; (b) energy vs
//! iteration count for the 1000-node instance (`--trace`).
//!
//! Energy = per-iteration hardware activity × the 22 nm component cost
//! model (the paper's methodology; activity counts are pinned to the
//! cycle-level crossbar simulator by integration tests).
//!
//! `cargo run -p fecim-bench --bin fig8_energy [--scale quick|paper] [--trace]`

use fecim::experiment::{cost_trend, ExperimentConfig, Scale};
use fecim_bench::{has_flag, parse_scale, HarnessScale};
use fecim_gset::SizeGroup;
use fecim_hwcost::{AnnealerKind, CostModel, IterationProfile};

fn main() {
    let scale = parse_scale();
    let config = ExperimentConfig::new(match scale {
        HarnessScale::Quick => Scale::Quick,
        HarnessScale::Paper => Scale::Paper,
    });

    println!("=== Fig. 8(a): average energy per run (J) ===");
    println!(
        "{:>8} {:>6} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "group", "n", "iters", "CiM/FPGA", "CiM/ASIC", "This Work", "FPGA ratio", "ASIC ratio"
    );
    let mut artifact = Vec::new();
    for group in SizeGroup::all() {
        let n = match config.scale {
            Scale::Quick => (group.vertex_count() / 10).max(32),
            Scale::Paper => group.vertex_count(),
        };
        let iterations = config.iterations_for(group);
        let model = CostModel::paper_22nm(n, 4);
        let profile = IterationProfile::paper(n);
        let energy = |kind: AnnealerKind| profile.run_energy(kind, &model, iterations).total();
        let fpga = energy(AnnealerKind::CimFpga);
        let asic = energy(AnnealerKind::CimAsic);
        let ours = energy(AnnealerKind::InSitu);
        println!(
            "{:>8} {:>6} {:>9} {:>12.3e} {:>12.3e} {:>12.3e} {:>11.0}x {:>11.0}x",
            format!("{group:?}"),
            n,
            iterations,
            fpga,
            asic,
            ours,
            fpga / ours,
            asic / ours
        );
        artifact.push(serde_json::json!({
            "group": format!("{group:?}"), "n": n, "iterations": iterations,
            "fpga": fpga, "asic": asic, "ours": ours,
            "ratio_fpga": fpga / ours, "ratio_asic": asic / ours,
        }));
    }
    println!("\npaper Fig. 8(a) ratios: 732x/401x (800), 833x/505x (1000), 1300x/1005x (2000), 1716x/1503x (3000)");

    if has_flag("--trace") {
        println!("\n=== Fig. 8(b): energy vs iteration, 1000-node instance ===");
        let n = match config.scale {
            Scale::Quick => 100,
            Scale::Paper => 1000,
        };
        let trend = cost_trend(n, 1000, 6);
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            "iteration", "CiM/FPGA", "CiM/ASIC", "This Work"
        );
        for p in &trend {
            println!(
                "{:>10} {:>12.3e} {:>12.3e} {:>12.3e}",
                p.iterations, p.energy[0], p.energy[1], p.energy[2]
            );
        }
        println!("paper: baselines rise steeply and linearly; this work rises ~n/2x slower");
    }

    fecim_bench::write_artifact("fig8_energy", &serde_json::json!({"fig8a": artifact}));
}
