//! Multi-problem batching sweep: solve throughput vs batch size when an
//! ensemble of device-in-the-loop replicas shares ONE physical tile grid
//! (block-diagonal placement, concurrent conversion on disjoint ADC
//! banks — see `fecim_crossbar::BatchedTiledCrossbar`).
//!
//! For every batch size the sweep reports simulated-hardware solves/sec
//! (batch finishes with its slowest replica), the serial-vs-batched
//! hardware speedup, grid utilization, and host wall-clock solves/sec —
//! plus a bit-identity check against the unbatched tiled solver, since
//! Ideal-fidelity batching is a placement change, not an algorithm
//! change. Every run is submitted as a `SolveRequest` with a
//! `BackendPlan::Batched` plan and executed by one `Session`.
//!
//! With `--noisy` the grid runs in `Fidelity::DeviceAccurate` with
//! typical variation and read noise: the bit-identity check then pins
//! trial 0 across batch sizes (each trial reseeds its grid instance
//! from the trial seed, so chunking must not change results).
//!
//! `cargo run --release -p fecim-bench --bin batch_sweep \
//!     [--scale quick|paper] [--batch-sizes 1,2,4,8] [--tile-rows N] [--noisy]`

use fecim::{BackendPlan, CimAnnealer, ProblemSpec, RunPlan, Session, SolveRequest, SolverSpec};
use fecim_anneal::{multi_start_local_search, success_rate};
use fecim_crossbar::Fidelity;
use fecim_gset::{GeneratorConfig, GsetFamily};
use fecim_ising::CopProblem;

fn main() {
    let scale = fecim_bench::parse_scale();
    let batch_sizes = fecim_bench::parse_batch_sizes();
    let (n, degree, iterations, default_tile_rows): (usize, f64, usize, usize) = match scale {
        fecim_bench::HarnessScale::Quick => (200, 8.0, 600, 64),
        fecim_bench::HarnessScale::Paper => (800, 24.0, 700, 256),
    };
    let tile_rows = fecim_bench::parse_tile_rows().unwrap_or(default_tile_rows);
    let graph = GeneratorConfig::new(n, 0xBA7C)
        .with_family(GsetFamily::RandomUnit)
        .with_mean_degree(degree)
        .generate();
    let problem = graph.to_max_cut();
    let model = problem
        .to_ising()
        .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
    let (_, ref_energy) = multi_start_local_search(model.couplings(), 8, 2025);
    let reference = problem.cut_from_energy(ref_energy);
    let spec = ProblemSpec::from_graph(&graph);
    let solver = SolverSpec::Cim(CimAnnealer::new(iterations));
    let noisy = fecim_bench::has_flag("--noisy");
    let session = if noisy {
        let mut cfg = fecim_crossbar::CrossbarConfig::paper_defaults();
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = fecim_device::VariationConfig::typical();
        Session::new().with_crossbar(cfg)
    } else {
        Session::new()
    };

    // Bit-identity reference. Ideal: the first trial solved unbatched
    // through the same tiles. Noisy: the first batch size's trial 0 —
    // per-trial reseeding makes it chunking-invariant, so later batch
    // sizes must reproduce it exactly.
    let mut baseline = if noisy {
        None
    } else {
        let solo = session
            .run(
                &SolveRequest::new(spec.clone(), solver.clone())
                    .with_backend(BackendPlan::DeviceInLoop {
                        fidelity: Fidelity::Ideal,
                        tile_rows: Some(tile_rows),
                    })
                    .with_run(RunPlan::Single { seed: 2025 }),
            )
            .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
        Some(solo.reports[0].best_energy)
    };

    let mode = if noisy { "device-noisy" } else { "ideal" };
    println!(
        "=== batch sweep ({mode}): n={n}, {iterations} iters, {tile_rows}-row tiles, ref cut {reference:.1} ===\n"
    );
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "batch",
        "grid",
        "mean cut",
        "success",
        "hw inst/s",
        "hw speedup",
        "utilization",
        "wall inst/s"
    );

    let mut rows = Vec::new();
    for &batch in &batch_sizes {
        let request = SolveRequest::new(spec.clone(), solver.clone())
            .with_backend(BackendPlan::Batched {
                tile_rows,
                instances: batch,
            })
            .with_run(RunPlan::Ensemble {
                trials: batch,
                base_seed: 2025,
                threads: None,
            })
            .with_reference(reference);
        let started = std::time::Instant::now();
        let outcome = session
            .run(&request)
            .unwrap_or_else(|e| fecim_bench::fail_exit(&e));
        let wall = started.elapsed().as_secs_f64();
        match baseline {
            Some(expected) => assert_eq!(
                outcome.reports[0].best_energy, expected,
                "batched trial 0 (seed 2025) must be bit-identical across placements"
            ),
            None => baseline = Some(outcome.reports[0].best_energy),
        }
        let cuts: Vec<f64> = outcome
            .normalized_objectives()
            .expect("request carries a reference");
        let mean_cut = cuts.iter().sum::<f64>() / cuts.len() as f64;
        let sr = success_rate(&cuts, 0.9, true);
        let g = &outcome.grids[0];
        let hw_speedup = if g.batch_time > 0.0 {
            g.serial_time / g.batch_time
        } else {
            0.0
        };
        let wall_per_inst = batch as f64 / wall.max(1e-9);
        println!(
            "{batch:>6} {:>10} {mean_cut:>12.4} {:>9.0}% {:>12.1} {hw_speedup:>11.2}x {:>13.1}% {wall_per_inst:>12.2}",
            format!("{}x{}", g.grid.0, g.grid.1),
            sr * 100.0,
            g.instances_per_second,
            g.concurrent_utilization * 100.0,
        );
        rows.push(serde_json::json!({
            "batch": batch,
            "grid_bands": g.grid.0,
            "grid_stripes": g.grid.1,
            "physical_tiles": g.physical_tiles,
            "mean_normalized_cut": mean_cut,
            "success_rate": sr,
            "hw_instances_per_second": g.instances_per_second,
            "hw_speedup_vs_serial": hw_speedup,
            "concurrent_utilization": g.concurrent_utilization,
            "wall_instances_per_second": wall_per_inst,
            "total_energy_j": g.total_energy,
        }));
    }
    if noisy {
        println!("\nnoisy trial 0 bit-identical across batch sizes: yes");
    } else {
        println!("\nbatched trial 0 bit-identical to unbatched tiled solve: yes");
    }

    fecim_bench::write_artifact(
        "batch_sweep",
        &serde_json::json!({
            "spins": n,
            "iterations": iterations,
            "tile_rows": tile_rows,
            "mode": mode,
            "reference_cut": reference,
            "rows": rows,
        }),
    );
}
