//! Table 1 reproduction: the COP-solver summary — five literature solvers
//! (constants transcribed from the paper) plus the measured "This Work"
//! row from a fresh experiment run.
//!
//! `cargo run --release -p fecim-bench --bin table1_summary \
//!     [--scale quick|paper] [--tile-rows N]`
//!
//! With `--tile-rows N` the hardware costs are priced for the matrix
//! mapped onto fixed-size `N`-row tiles, and the per-architecture
//! activated-tile counts are printed per size group.

use fecim::experiment::{run_experiment, ExperimentConfig, Scale};
use fecim::report::{format_table1, this_work_row};
use fecim_bench::{parse_scale, parse_tile_rows, HarnessScale};
use fecim_hwcost::AnnealerKind;

fn main() {
    let scale = parse_scale();
    let mut config = ExperimentConfig::new(match scale {
        HarnessScale::Quick => Scale::Quick,
        HarnessScale::Paper => Scale::Paper,
    });
    config.tile_rows = parse_tile_rows();
    println!(
        "=== Table 1: summary of COP solvers ({:?} scale) ===\n",
        config.scale
    );
    let outcome = run_experiment(config).unwrap_or_else(|e| fecim_bench::fail_exit(&e));
    println!("{}", format_table1(&outcome));
    println!("paper 'This Work' row: O(n), no e^x, DG FeFET, 3000 node, 4.6 ms, 0.9 uJ, 98%");
    if let Some(tile_rows) = config.tile_rows {
        println!("\ntiled mapping ({tile_rows}-row tiles), activated tiles per iteration:");
        for g in &outcome.groups {
            let tiles = |kind: AnnealerKind| {
                g.hardware
                    .iter()
                    .find(|h| h.kind == kind)
                    .map(|h| h.tiles_per_iteration)
                    .unwrap_or(0)
            };
            println!(
                "  {:?} (n={}): in-situ {} vs direct-E baseline {}",
                g.group,
                g.spins,
                tiles(AnnealerKind::InSitu),
                tiles(AnnealerKind::CimAsic)
            );
        }
    }

    fecim_bench::write_artifact(
        "table1_summary",
        &serde_json::to_value(&this_work_row(&outcome)).expect("row serializes"),
    );
}
