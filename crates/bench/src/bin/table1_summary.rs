//! Table 1 reproduction: the COP-solver summary — five literature solvers
//! (constants transcribed from the paper) plus the measured "This Work"
//! row from a fresh experiment run.
//!
//! `cargo run --release -p fecim-bench --bin table1_summary [--scale quick|paper]`

use fecim::experiment::{run_experiment, ExperimentConfig, Scale};
use fecim::report::{format_table1, this_work_row};
use fecim_bench::{parse_scale, HarnessScale};

fn main() {
    let scale = parse_scale();
    let config = ExperimentConfig::new(match scale {
        HarnessScale::Quick => Scale::Quick,
        HarnessScale::Paper => Scale::Paper,
    });
    println!(
        "=== Table 1: summary of COP solvers ({:?} scale) ===\n",
        config.scale
    );
    let outcome = run_experiment(config);
    println!("{}", format_table1(&outcome));
    println!("paper 'This Work' row: O(n), no e^x, DG FeFET, 3000 node, 4.6 ms, 0.9 uJ, 98%");

    fecim_bench::write_artifact(
        "table1_summary",
        &serde_json::to_value(&this_work_row(&outcome)).expect("row serializes"),
    );
}
