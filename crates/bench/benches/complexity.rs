//! The paper's Fig. 4/5 complexity claim: the direct-E kernel (`σᵀJσ`,
//! `n²` products) vs the incremental-E kernel (`σ_rᵀJσ_c`,
//! `(n−|F|)·|F|` products) swept over problem size. The direct kernel must
//! scale quadratically and the incremental kernel linearly at constant
//! `|F|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fecim_ising::{direct_vmv, incremental_e, DenseCoupling, FlipMask, SpinVector};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy_kernels");
    group.sample_size(20);
    for &n in &[128usize, 256, 512, 1024] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let coupling = DenseCoupling::random(n, 0.5, 1.0, &mut rng);
        let flat = coupling.to_vec();
        let spins = SpinVector::random(n, &mut rng);
        let mask = FlipMask::random(2, n, &mut rng);
        let new_spins = spins.flipped_by(&mask);

        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("direct_vmv_O(n2)", n), &n, |b, _| {
            b.iter(|| direct_vmv(std::hint::black_box(&flat), std::hint::black_box(&spins)))
        });
        group.throughput(Throughput::Elements((2 * (n - 2)) as u64));
        group.bench_with_input(BenchmarkId::new("incremental_e_O(n)", n), &n, |b, _| {
            b.iter(|| {
                incremental_e(
                    std::hint::black_box(&flat),
                    std::hint::black_box(&new_spins),
                    std::hint::black_box(&mask),
                )
            })
        });
    }
    group.finish();
}

fn bench_flip_count_scaling(c: &mut Criterion) {
    // Incremental cost grows with |F| (the (n−|F|)·|F| term count).
    let n = 1024;
    let mut rng = StdRng::seed_from_u64(7);
    let coupling = DenseCoupling::random(n, 0.5, 1.0, &mut rng);
    let flat = coupling.to_vec();
    let spins = SpinVector::random(n, &mut rng);
    let mut group = c.benchmark_group("incremental_vs_flip_count");
    group.sample_size(20);
    for &t in &[1usize, 2, 8, 32, 128] {
        let mask = FlipMask::random(t, n, &mut rng);
        let new_spins = spins.flipped_by(&mask);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| incremental_e(&flat, &new_spins, &mask))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_flip_count_scaling);
criterion_main!(benches);
