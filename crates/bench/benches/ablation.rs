//! Ablation micro-benchmarks for the design choices DESIGN.md calls out:
//! interleaved vs blocked ADC mapping (serialization slots), quantization
//! bits (read cost), and the analytic vs device-backed annealing factor.
//! The quality-side ablations live in the `ablation_sweeps` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fecim_crossbar::{Crossbar, CrossbarConfig, MuxAssignment};
use fecim_device::{AnnealFactor, DeviceFactor, FractionalFactor};
use fecim_ising::{CsrCoupling, DenseCoupling, FlipMask, SpinVector};

fn bench_mux_mapping(c: &mut Criterion) {
    // Slot computation for sparse activations under both placements.
    let mut group = c.benchmark_group("mux_slot_model");
    let interleaved = MuxAssignment::interleaved(3000, 8);
    let blocked = MuxAssignment::blocked(3000, 8);
    let active: Vec<usize> = vec![17, 18]; // adjacent flipped spins
    group.bench_function("interleaved", |b| {
        b.iter(|| interleaved.slots_for(std::hint::black_box(&active), 4))
    });
    group.bench_function("blocked", |b| {
        b.iter(|| blocked.slots_for(std::hint::black_box(&active), 4))
    });
    group.finish();
}

fn bench_quant_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant_bits_read_cost");
    group.sample_size(20);
    let n = 256;
    let mut rng = StdRng::seed_from_u64(11);
    let coupling =
        CsrCoupling::from_dense(&DenseCoupling::random(n, 10.0 / n as f64, 1.0, &mut rng));
    let spins = SpinVector::random(n, &mut rng);
    let mask = FlipMask::random(2, n, &mut rng);
    let new_spins = spins.flipped_by(&mask);
    let r = new_spins.rest_vector(&mask);
    let cvec = new_spins.changed_vector(&mask);
    for &bits in &[1u8, 2, 4, 8] {
        let mut cfg = CrossbarConfig::paper_defaults();
        cfg.quant_bits = bits;
        let mut xb = Crossbar::program(&coupling, cfg);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| xb.incremental_form(&r, &cvec, 0.7))
        });
    }
    group.finish();
}

fn bench_factor_backends(c: &mut Criterion) {
    let analytic = FractionalFactor::paper();
    let device = DeviceFactor::paper();
    c.bench_function("factor_analytic", |b| {
        b.iter(|| analytic.factor(std::hint::black_box(350.0)))
    });
    c.bench_function("factor_device", |b| {
        b.iter(|| device.factor(std::hint::black_box(350.0)))
    });
}

criterion_group!(
    benches,
    bench_mux_mapping,
    bench_quant_bits,
    bench_factor_backends
);
criterion_main!(benches);
