//! Device-model benchmarks: transfer-curve evaluation throughput, the
//! Preisach hysteresis update, and the fractional-fit solver.

use criterion::{criterion_group, criterion_main, Criterion};

use fecim_device::{
    fit_fractional, AnnealFactor, DeviceFactor, DgFefet, Fefet, PreisachFefet, PreisachParams,
    StoredBit,
};

fn bench_iv(c: &mut Criterion) {
    let mut fefet = Fefet::new(Default::default());
    fefet.program(StoredBit::One);
    let mut cell = DgFefet::new(Default::default());
    cell.program(StoredBit::One);
    c.bench_function("fefet_drain_current", |b| {
        b.iter(|| fefet.drain_current(std::hint::black_box(0.8), 1.0))
    });
    c.bench_function("dgfefet_four_input_multiply", |b| {
        b.iter(|| cell.sl_current(true, true, std::hint::black_box(0.55)))
    });
}

fn bench_preisach(c: &mut Criterion) {
    let mut fe = PreisachFefet::new(PreisachParams::paper_reference());
    c.bench_function("preisach_pulse", |b| {
        b.iter(|| {
            fe.apply_voltage(std::hint::black_box(1.7));
            fe.apply_voltage(std::hint::black_box(-1.2));
            fe.polarization()
        })
    });
}

fn bench_factor_and_fit(c: &mut Criterion) {
    let device = DeviceFactor::paper();
    c.bench_function("device_factor_eval", |b| {
        b.iter(|| device.factor(std::hint::black_box(420.0)))
    });
    let samples = device.samples(71);
    c.bench_function("fractional_fit_71pts", |b| {
        b.iter(|| fit_fractional(std::hint::black_box(&samples)).expect("fits"))
    });
}

criterion_group!(benches, bench_iv, bench_preisach, bench_factor_and_fit);
criterion_main!(benches);
