//! Crossbar read-path benchmarks: the in-situ incremental read vs the
//! full direct VMV read, at both fidelities — the simulator-side mirror of
//! the paper's "activate only the flipped columns" argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fecim_crossbar::{Crossbar, CrossbarConfig, Fidelity, SensingMode, TiledCrossbar};
use fecim_ising::{CsrCoupling, DenseCoupling, FlipMask, SpinVector};

fn instance(n: usize, seed: u64) -> (CsrCoupling, SpinVector, FlipMask) {
    let mut rng = StdRng::seed_from_u64(seed);
    let coupling =
        CsrCoupling::from_dense(&DenseCoupling::random(n, 10.0 / n as f64, 1.0, &mut rng));
    let spins = SpinVector::random(n, &mut rng);
    let mask = FlipMask::random(2, n, &mut rng);
    (coupling, spins, mask)
}

fn bench_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_reads");
    group.sample_size(20);
    for &n in &[128usize, 512] {
        let (coupling, spins, mask) = instance(n, n as u64);
        let new_spins = spins.flipped_by(&mask);
        let r = new_spins.rest_vector(&mask);
        let cvec = new_spins.changed_vector(&mask);
        let mut xb = Crossbar::program(&coupling, CrossbarConfig::paper_defaults());
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| xb.incremental_form(&r, &cvec, 0.7))
        });
        group.bench_with_input(BenchmarkId::new("full_vmv", n), &n, |b, _| {
            b.iter(|| xb.vmv(spins.as_slice()))
        });
    }
    group.finish();
}

fn bench_fidelity(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_fidelity");
    group.sample_size(20);
    let n = 256;
    let (coupling, spins, mask) = instance(n, 99);
    let new_spins = spins.flipped_by(&mask);
    let r = new_spins.rest_vector(&mask);
    let cvec = new_spins.changed_vector(&mask);
    for (label, fidelity) in [
        ("ideal", Fidelity::Ideal),
        ("device", Fidelity::DeviceAccurate),
    ] {
        let mut cfg = CrossbarConfig::paper_defaults();
        cfg.fidelity = fidelity;
        let mut xb = Crossbar::program(&coupling, cfg);
        group.bench_function(BenchmarkId::new("incremental", label), |b| {
            b.iter(|| xb.incremental_form(&r, &cvec, 0.7))
        });
    }
    group.finish();
}

fn bench_tiled_reads(c: &mut Criterion) {
    // The tiled composition against the monolithic array at a
    // beyond-array-size instance (n = 1024 on 256-row tiles): same reads,
    // per-tile bookkeeping on top.
    let mut group = c.benchmark_group("tiled_reads_1024");
    group.sample_size(20);
    let n = 1024;
    let (coupling, spins, mask) = instance(n, 7);
    let new_spins = spins.flipped_by(&mask);
    let r = new_spins.rest_vector(&mask);
    let cvec = new_spins.changed_vector(&mask);
    let mut mono = Crossbar::program(&coupling, CrossbarConfig::paper_defaults());
    let mut tiled = TiledCrossbar::program(&coupling, CrossbarConfig::paper_defaults(), 256);
    group.bench_function("incremental/monolithic", |b| {
        b.iter(|| mono.incremental_form(&r, &cvec, 0.7))
    });
    group.bench_function("incremental/tiled256", |b| {
        b.iter(|| tiled.incremental_form(&r, &cvec, 0.7))
    });
    group.bench_function("vmv/tiled256", |b| b.iter(|| tiled.vmv(spins.as_slice())));
    group.finish();
}

fn bench_parallel_sensing(c: &mut Criterion) {
    // The acceptance number for per-stripe rayon fan-out: paper-scale
    // (n ≥ 800) direct reads with stripes sensed in parallel vs the
    // serial sequencer. Results are bit-identical (ordered reduction,
    // counter-addressed read noise); only wall-clock differs. Three
    // workloads: a dense Ideal read (the coupling-bound case), a
    // device-accurate noiseless read (per-cell FeFET evaluation, the
    // simulation-bound case), and a device-accurate read with typical
    // variation and read noise — the case that used to fall back to the
    // serial sequencer and now fans out like the others.
    let mut group = c.benchmark_group("tiled_sensing_n896");
    group.sample_size(20);
    let n = 896;
    let mut rng = StdRng::seed_from_u64(42);
    let coupling = CsrCoupling::from_dense(&DenseCoupling::random(n, 0.35, 1.0, &mut rng));
    let spins = SpinVector::random(n, &mut rng);
    let mut device_cfg = CrossbarConfig::paper_defaults();
    device_cfg.fidelity = Fidelity::DeviceAccurate;
    let mut noisy_cfg = device_cfg.clone();
    noisy_cfg.variation = fecim_device::VariationConfig::typical();
    for (label, cfg) in [
        ("ideal", CrossbarConfig::paper_defaults()),
        ("device", device_cfg),
        ("device_noisy", noisy_cfg),
    ] {
        let mut sequential = TiledCrossbar::program(&coupling, cfg.clone(), 128)
            .with_sensing_mode(SensingMode::Sequential);
        let mut parallel =
            TiledCrossbar::program(&coupling, cfg, 128).with_sensing_mode(SensingMode::Parallel);
        assert_eq!(
            sequential.vmv(spins.as_slice()),
            parallel.vmv(spins.as_slice()),
            "modes must agree bit for bit"
        );
        group.bench_function(BenchmarkId::new("vmv_sequential", label), |b| {
            b.iter(|| sequential.vmv(spins.as_slice()))
        });
        group.bench_function(BenchmarkId::new("vmv_parallel", label), |b| {
            b.iter(|| parallel.vmv(spins.as_slice()))
        });
    }
    group.finish();
}

fn bench_programming(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_programming");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let (coupling, _, _) = instance(n, n as u64 + 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| Crossbar::program(&coupling, CrossbarConfig::paper_defaults()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reads,
    bench_fidelity,
    bench_tiled_reads,
    bench_parallel_sensing,
    bench_programming
);
criterion_main!(benches);
