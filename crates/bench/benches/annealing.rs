//! Annealing-engine benchmarks: per-iteration cost of the in-situ flow vs
//! the direct-E Metropolis baseline on exact and crossbar backends, and
//! whole-run throughput at the paper's 800-node operating point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fecim_anneal::{
    run_direct, run_in_situ, suggest_einc_scale, Acceptance, AnnealConfig, CrossbarBackend,
    ExactBackend, GeometricSchedule, SteppedSchedule,
};
use fecim_crossbar::CrossbarConfig;
use fecim_device::FractionalFactor;
use fecim_gset::{GeneratorConfig, GsetFamily};
use fecim_ising::{CopProblem, CsrCoupling, SpinVector};

fn coupling(n: usize, degree: f64, seed: u64) -> CsrCoupling {
    let graph = GeneratorConfig::new(n, seed)
        .with_family(GsetFamily::RandomUnit)
        .with_mean_degree(degree)
        .generate();
    graph
        .to_max_cut()
        .to_ising()
        .expect("valid")
        .couplings()
        .clone()
}

fn bench_exact_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_exact_1000_iters");
    group.sample_size(20);
    for &n in &[200usize, 800] {
        let j = coupling(n, 12.0, n as u64);
        let schedule = SteppedSchedule::paper(1000);
        let factor = FractionalFactor::paper();
        let scale = suggest_einc_scale(&j, 2) / 80.0;
        group.bench_with_input(BenchmarkId::new("in_situ", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut backend = ExactBackend::new(&j, SpinVector::random(n, &mut rng));
                run_in_situ(
                    &mut backend,
                    &schedule,
                    &factor,
                    scale,
                    AnnealConfig::new(1000, 1),
                )
            })
        });
        let metro_schedule = GeometricSchedule::over_iterations(10.0, 0.1, 1000);
        group.bench_with_input(BenchmarkId::new("direct_metropolis", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut backend = ExactBackend::new(&j, SpinVector::random(n, &mut rng));
                run_direct(
                    &mut backend,
                    &metro_schedule,
                    Acceptance::Metropolis,
                    AnnealConfig::new(1000, 1),
                )
            })
        });
    }
    group.finish();
}

fn bench_crossbar_engine(c: &mut Criterion) {
    // Device-in-the-loop is the expensive path; benchmark a short run.
    let mut group = c.benchmark_group("engine_crossbar_200_iters");
    group.sample_size(10);
    let n = 128;
    let j = coupling(n, 10.0, 5);
    let schedule = SteppedSchedule::paper(200);
    let factor = FractionalFactor::paper();
    let scale = suggest_einc_scale(&j, 2) / 80.0;
    group.bench_function("in_situ_device_in_loop", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut backend = CrossbarBackend::new(
                &j,
                SpinVector::random(n, &mut rng),
                CrossbarConfig::paper_defaults(),
            );
            run_in_situ(
                &mut backend,
                &schedule,
                &factor,
                scale,
                AnnealConfig::new(200, 2),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exact_engines, bench_crossbar_engine);
criterion_main!(benches);
