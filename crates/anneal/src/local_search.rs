//! Greedy 1-flip local search and multi-start refinement.
//!
//! Used to (i) compute reference near-optimal cut values for the success
//! criterion of the paper's Fig. 10 (target = 90 % of the optimum) and
//! (ii) serve as a sanity baseline for the annealers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fecim_ising::{Coupling, CsrCoupling, FlipMask, LocalFieldState, SpinVector};

/// Run steepest-descent 1-flip local search until no improving flip
/// exists. Returns the local optimum and its exact energy.
///
/// Complexity: each sweep is `O(n)` over cached local fields; flips update
/// fields in `O(deg)`.
pub fn local_search(coupling: &CsrCoupling, start: SpinVector) -> (SpinVector, f64) {
    let n = coupling.dimension();
    let mut state = LocalFieldState::new(coupling, start);
    loop {
        // ΔE of flipping i alone is −4·σ_i·l_i; pick the most negative.
        let mut best_gain = -1e-12;
        let mut best_idx = None;
        for i in 0..n {
            let gain = -4.0 * state.spins().get(i) as f64 * state.field(i);
            if gain < best_gain {
                best_gain = gain;
                best_idx = Some(i);
            }
        }
        match best_idx {
            Some(i) => {
                state.apply(&FlipMask::single(i, n));
            }
            None => break,
        }
    }
    let energy = state.energy();
    (state.spins().clone(), energy)
}

/// Multi-start local search: `starts` random initializations, best local
/// optimum kept. Deterministic per seed.
///
/// # Panics
///
/// Panics if `starts == 0`.
pub fn multi_start_local_search(
    coupling: &CsrCoupling,
    starts: usize,
    seed: u64,
) -> (SpinVector, f64) {
    assert!(starts > 0, "need at least one start");
    let n = coupling.dimension();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(SpinVector, f64)> = None;
    for _ in 0..starts {
        let start = SpinVector::random(n, &mut rng);
        let (spins, energy) = local_search(coupling, start);
        if best.as_ref().is_none_or(|(_, e)| energy < *e) {
            best = Some((spins, energy));
        }
    }
    // audit:allow(panic-path): the `assert!(starts > 0)` guard above (a documented `# Panics` contract) guarantees the loop body ran and set `best`
    best.expect("starts > 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_ising::{CopProblem, MaxCut};
    use rand::Rng;

    fn ring(n: usize) -> (MaxCut, CsrCoupling) {
        let edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        let mc = MaxCut::new(n, edges).unwrap();
        let j = mc.to_ising().unwrap().couplings().clone();
        (mc, j)
    }

    #[test]
    fn local_search_reaches_local_optimum() {
        let (_, j) = ring(20);
        let mut rng = StdRng::seed_from_u64(1);
        let start = SpinVector::random(20, &mut rng);
        let (spins, energy) = local_search(&j, start);
        // No single flip improves further.
        let state = LocalFieldState::new(&j, spins);
        for i in 0..20 {
            let gain = -4.0 * state.spins().get(i) as f64 * state.field(i);
            assert!(gain >= -1e-9, "flip {i} would still improve by {gain}");
        }
        assert!((state.energy() - energy).abs() < 1e-9);
    }

    #[test]
    fn multi_start_finds_ring_optimum() {
        let (mc, j) = ring(16);
        let (spins, energy) = multi_start_local_search(&j, 20, 3);
        let cut = mc.cut_from_energy(energy);
        assert_eq!(cut, mc.cut_value(&spins));
        assert!(cut >= 14.0, "cut={cut}, optimum 16");
    }

    #[test]
    fn multi_start_is_deterministic() {
        let (_, j) = ring(12);
        let a = multi_start_local_search(&j, 5, 7);
        let b = multi_start_local_search(&j, 5, 7);
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn more_starts_never_hurt() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut edges = Vec::new();
        for i in 0..30usize {
            for jx in (i + 1)..30 {
                if rng.gen::<f64>() < 0.2 {
                    edges.push((i, jx, if rng.gen::<bool>() { 1.0 } else { -1.0 }));
                }
            }
        }
        let mc = MaxCut::new(30, edges).unwrap();
        let j = mc.to_ising().unwrap().couplings().clone();
        let few = multi_start_local_search(&j, 2, 11).1;
        let many = multi_start_local_search(&j, 20, 11).1;
        assert!(many <= few + 1e-12);
    }
}
