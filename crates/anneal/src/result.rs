//! Results of annealing runs.

use serde::{Deserialize, Serialize};

use fecim_crossbar::ActivityStats;
use fecim_ising::SpinVector;

use crate::trace::Trace;

/// Outcome of one annealing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Iterations executed.
    pub iterations: usize,
    /// Accepted proposals.
    pub accepted: usize,
    /// Exact Ising energy of the final configuration.
    pub final_energy: f64,
    /// Final configuration.
    pub final_spins: SpinVector,
    /// Best exact energy visited during the run.
    pub best_energy: f64,
    /// Configuration achieving `best_energy`.
    pub best_spins: SpinVector,
    /// First iteration at which the best energy reached the configured
    /// target (`None` when no target was set or it was never reached).
    /// Iteration 0 means the random initialization already met it.
    pub first_target_hit: Option<usize>,
    /// Sampled trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// Hardware activity (present for crossbar-backed runs).
    pub activity: Option<ActivityStats>,
}

impl RunResult {
    /// Acceptance ratio over the run.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.accepted as f64 / self.iterations as f64
    }
}

/// Aggregate statistics over a set of per-run scalar outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Number of values aggregated.
    pub count: usize,
    /// Mean value.
    pub mean: f64,
    /// Standard deviation (population).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Aggregate {
    /// Aggregate a slice of values.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Aggregate {
        assert!(!values.is_empty(), "cannot aggregate zero values");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Aggregate {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_basic_statistics() {
        let a = Aggregate::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.count, 4);
        assert!((a.mean - 2.5).abs() < 1e-12);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
        assert!((a.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero values")]
    fn aggregate_rejects_empty() {
        let _ = Aggregate::of(&[]);
    }

    #[test]
    fn acceptance_ratio_handles_zero_iterations() {
        let r = RunResult {
            iterations: 0,
            accepted: 0,
            final_energy: 0.0,
            final_spins: SpinVector::all_up(1),
            best_energy: 0.0,
            best_spins: SpinVector::all_up(1),
            first_target_hit: None,
            trace: Trace::new(),
            activity: None,
        };
        assert_eq!(r.acceptance_ratio(), 0.0);
    }
}
