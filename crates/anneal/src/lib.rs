//! # fecim-anneal
//!
//! Annealing algorithms for the ferroelectric CiM in-situ annealer
//! (Qian et al., DAC 2025): the proposed in-situ flow (Algorithm 1 —
//! incremental-E measurement, fractional annealing factor, stepped
//! back-gate temperature descent), the direct-E Metropolis baseline the
//! CiM/FPGA and CiM/ASIC annealers run, MESA (ref \[7\]), greedy local
//! search for reference optima, and the rayon-backed [`Ensemble`] runner
//! for success-probability experiments (deterministic at any thread
//! count).
//!
//! ```
//! use fecim_anneal::{run_in_situ, AnnealConfig, ExactBackend, SteppedSchedule, suggest_einc_scale};
//! use fecim_device::FractionalFactor;
//! use fecim_ising::{CopProblem, MaxCut, SpinVector};
//!
//! let mc = MaxCut::new(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])?;
//! let model = mc.to_ising()?;
//! let j = model.couplings();
//! let mut backend = ExactBackend::new(j, SpinVector::all_up(4));
//! let schedule = SteppedSchedule::paper(200);
//! let factor = FractionalFactor::paper();
//! let scale = suggest_einc_scale(j, 1);
//! let result = run_in_situ(&mut backend, &schedule, &factor, scale,
//!                          AnnealConfig::new(200, 7).with_flips(1));
//! assert!(mc.cut_from_energy(result.best_energy) >= 3.0);
//! # Ok::<(), fecim_ising::IsingError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod engine;
mod ensemble;
mod local_search;
mod mesa;
mod montecarlo;
mod result;
mod schedule;
mod tabu;
mod trace;

pub use backend::{
    BatchedBackend, CrossbarBackend, DeviceBackend, EnergyBackend, ExactBackend, TiledBackend,
};
pub use engine::{run_direct, run_in_situ, suggest_einc_scale, Acceptance, AnnealConfig};
pub use ensemble::Ensemble;
pub use local_search::{local_search, multi_start_local_search};
pub use mesa::{run_mesa, MesaConfig};
pub use montecarlo::{success_rate, MonteCarlo};
pub use result::{Aggregate, RunResult};
pub use schedule::{
    ConstantSchedule, GeometricSchedule, LinearSchedule, Schedule, SteppedSchedule,
};
pub use tabu::{multi_start_tabu, tabu_search, tabu_search_from, TabuConfig};
pub use trace::{Trace, TraceMode, TracePoint};
