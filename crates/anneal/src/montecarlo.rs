//! Legacy Monte-Carlo harness, now a thin wrapper over the rayon-backed
//! [`Ensemble`] runner: many independent seeded runs in parallel, plus
//! success-rate computation against a quality target — the methodology of
//! the paper's Fig. 10 (100 runs per instance, success = reaching 90 % of
//! the optimal cut).
//!
//! New code should use [`Ensemble`] directly; [`MonteCarlo`] is kept for
//! source compatibility and forwards to it. Execution order, seed
//! derivation (`base_seed + run_index`) and outcome order are identical,
//! and results are deterministic at any thread count.

use serde::{Deserialize, Serialize};

use crate::ensemble::Ensemble;

/// Monte-Carlo execution plan (wrapper over [`Ensemble`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarlo {
    /// Number of independent runs.
    pub runs: usize,
    /// Base seed; run `r` receives seed `base_seed + r`.
    pub base_seed: u64,
    /// Upper bound on worker threads (1 = sequential). The effective
    /// count is additionally capped by `RAYON_NUM_THREADS`.
    pub threads: usize,
}

impl MonteCarlo {
    /// Plan `runs` runs from `base_seed`, using up to
    /// `available_parallelism` threads.
    pub fn new(runs: usize, base_seed: u64) -> MonteCarlo {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(runs.max(1));
        MonteCarlo {
            runs,
            base_seed,
            threads,
        }
    }

    /// Fix the worker thread cap.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> MonteCarlo {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Execute `run_fn(seed)` for every planned seed, in parallel, and
    /// return the outcomes in seed order (delegates to [`Ensemble::run`]).
    /// A `threads` value of 0 (possible through the public field or
    /// deserialization) is treated as 1, like the pre-`Ensemble`
    /// implementation did.
    pub fn execute<T, F>(&self, run_fn: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        Ensemble::new(self.runs, self.base_seed)
            .with_max_threads(self.threads.max(1))
            .run(run_fn)
    }
}

/// Fraction of `values` meeting-or-exceeding `target` (the paper's success
/// rate; use `maximize = false` for minimization objectives).
pub fn success_rate(values: &[f64], target: f64, maximize: bool) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let hits = values
        .iter()
        .filter(|&&v| if maximize { v >= target } else { v <= target })
        .count();
    hits as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_returns_in_seed_order() {
        let mc = MonteCarlo::new(16, 100).with_threads(4);
        let out = mc.execute(|seed| seed * 2);
        let expected: Vec<u64> = (100..116).map(|s| s * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let mc1 = MonteCarlo::new(8, 5).with_threads(1);
        let mc4 = MonteCarlo::new(8, 5).with_threads(4);
        let f = |seed: u64| seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        assert_eq!(mc1.execute(f), mc4.execute(f));
    }

    #[test]
    fn zero_runs_is_empty() {
        let mc = MonteCarlo::new(0, 0);
        let out: Vec<u64> = mc.execute(|s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn success_rate_directions() {
        let vals = [0.5, 0.95, 0.99, 0.8];
        assert!((success_rate(&vals, 0.9, true) - 0.5).abs() < 1e-12);
        assert!((success_rate(&vals, 0.9, false) - 0.5).abs() < 1e-12);
        assert_eq!(success_rate(&[], 0.9, true), 0.0);
    }

    #[test]
    fn zero_threads_field_runs_sequentially() {
        // `threads` is a public field, so 0 is constructible; the
        // pre-Ensemble implementation treated it as sequential.
        let mc = MonteCarlo {
            runs: 4,
            base_seed: 3,
            threads: 0,
        };
        assert_eq!(mc.execute(|s| s), vec![3, 4, 5, 6]);
    }

    #[test]
    fn matches_ensemble_exactly() {
        let f = |seed: u64| seed.wrapping_mul(6364136223846793005);
        let via_mc = MonteCarlo::new(32, 9).execute(f);
        let via_ensemble = Ensemble::new(32, 9).run(f);
        assert_eq!(via_mc, via_ensemble);
    }

    #[test]
    fn parallel_execution_actually_uses_threads() {
        // Smoke test: heavy-ish closure across threads completes and is
        // correct (catches deadlocks in the dispatch plumbing).
        let mc = MonteCarlo::new(32, 0).with_threads(8);
        let out = mc.execute(|seed| {
            let mut acc = seed;
            for _ in 0..1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        });
        assert_eq!(out.len(), 32);
        let mut expected = 0u64;
        for _ in 0..1000 {
            expected = expected.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        assert_eq!(out[0], expected);
    }
}
