//! The annealing engines.
//!
//! [`run_in_situ`] is Algorithm 1 of the paper: flip `t` spins, measure
//! `E_inc = σ_rᵀJσ_c · f(T)` in one array operation, accept if
//! `E_inc ≤ 0`, otherwise accept if `E_inc ≤ rand(0,1)`; the temperature
//! follows the stepped back-gate descent and pins at zero.
//!
//! [`run_direct`] is the baseline direct-E flow (Fig. 1b): recompute
//! `E_new = σᵀJσ`, form `ΔE`, and apply the Metropolis exponential test
//! `rand < e^(−ΔE/T)` (or its ablation variants).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fecim_device::AnnealFactor;
use fecim_ising::{Coupling, FlipMask};

use crate::backend::EnergyBackend;
use crate::result::RunResult;
use crate::schedule::Schedule;
use crate::trace::{Trace, TraceMode, TracePoint};

/// Acceptance rule of the direct-E baseline engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Acceptance {
    /// Classical Metropolis: accept uphill with probability `e^(−ΔE/T)`.
    Metropolis,
    /// First-order approximation `max(0, 1 − ΔE/T)` (ablation).
    LinearApprox,
    /// Never accept uphill moves (greedy descent ablation).
    Greedy,
}

impl Acceptance {
    /// Probability of accepting an uphill move of `de > 0` at temperature
    /// `t`.
    pub fn uphill_probability(self, de: f64, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match self {
            Acceptance::Metropolis => (-de / t).exp().min(1.0),
            Acceptance::LinearApprox => (1.0 - de / t).clamp(0.0, 1.0),
            Acceptance::Greedy => 0.0,
        }
    }
}

/// Common engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Number of annealing iterations.
    pub iterations: usize,
    /// Flip-set size `t = |F|` per iteration (the paper uses 2).
    pub flips_per_iteration: usize,
    /// RNG seed for proposals and acceptance draws.
    pub seed: u64,
    /// Trace sampling.
    pub trace: TraceMode,
    /// Optional target energy: when set, the engine records the first
    /// iteration whose best energy reaches it (time-to-solution metric of
    /// the paper's Table 1).
    pub target_energy: Option<f64>,
}

impl AnnealConfig {
    /// Paper defaults: `t = 2`, tracing off, no target.
    pub fn new(iterations: usize, seed: u64) -> AnnealConfig {
        AnnealConfig {
            iterations,
            flips_per_iteration: 2,
            seed,
            trace: TraceMode::Off,
            target_energy: None,
        }
    }

    /// Enable trace sampling every `n` iterations.
    pub fn with_trace(mut self, every: usize) -> AnnealConfig {
        self.trace = TraceMode::Every(every);
        self
    }

    /// Override the flip-set size.
    ///
    /// # Panics
    ///
    /// Panics if `flips` is zero.
    pub fn with_flips(mut self, flips: usize) -> AnnealConfig {
        assert!(flips > 0, "need at least one flip per iteration");
        self.flips_per_iteration = flips;
        self
    }

    /// Record the first iteration at which the best energy reaches
    /// `target` (lower is better).
    pub fn with_target_energy(mut self, target: f64) -> AnnealConfig {
        self.target_energy = Some(target);
        self
    }
}

/// Track the first iteration whose best energy reached the target.
fn update_first_hit(
    first_hit: &mut Option<usize>,
    target: Option<f64>,
    best_energy: f64,
    iteration: usize,
) {
    if first_hit.is_none() {
        if let Some(t) = target {
            if best_energy <= t {
                *first_hit = Some(iteration);
            }
        }
    }
}

/// Run the proposed in-situ annealing flow (paper Algorithm 1).
///
/// `einc_scale` normalizes the measured `E_inc` before comparison with
/// `rand(0,1)`; use [`suggest_einc_scale`] for a problem-adapted default.
///
/// # Panics
///
/// Panics if `einc_scale` is not strictly positive or the flip count
/// exceeds the problem size.
pub fn run_in_situ<B: EnergyBackend, S: Schedule, F: AnnealFactor + ?Sized>(
    backend: &mut B,
    schedule: &S,
    factor: &F,
    einc_scale: f64,
    config: AnnealConfig,
) -> RunResult {
    assert!(einc_scale > 0.0, "einc_scale must be positive");
    let n = backend.dimension();
    assert!(
        config.flips_per_iteration <= n,
        "cannot flip more spins than exist"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace = Trace::new();
    let mut best_energy = backend.exact_energy();
    let mut best_spins = backend.spins().clone();
    let mut accepted = 0usize;
    let mut first_target_hit = None;
    update_first_hit(&mut first_target_hit, config.target_energy, best_energy, 0);

    for iteration in 0..config.iterations {
        let t = schedule.temperature(iteration);
        // Back-gate sweep direction: as the SA temperature descends
        // T_max → 0, V_BG ramps up so the factor *rises*. The first-order
        // Metropolis expansion the paper invokes (Eq. 10,
        // e^(−ΔE/T) ≈ 1 − ΔE/T) makes the factor the inverse effective
        // temperature (f ≈ 1/T_eff), which must grow as the anneal cools.
        // The `ablation_sweeps` harness measures the direction/calibration
        // interaction; the rising direction is uniformly at least as good
        // and is the only one consistent with Eq. 10 (see DESIGN.md §5).
        let f = factor.factor(factor.t_max() - t);
        let mask = FlipMask::random(config.flips_per_iteration, n, &mut rng);
        let e_inc = backend.weighted_increment(&mask, f) / einc_scale;
        // Algorithm 1, lines 7–13.
        let accept = if e_inc <= 0.0 {
            true
        } else {
            e_inc <= rng.gen::<f64>()
        };
        if accept {
            backend.apply(&mask);
            accepted += 1;
            let e = backend.exact_energy();
            if e < best_energy {
                best_energy = e;
                best_spins = backend.spins().clone();
                update_first_hit(
                    &mut first_target_hit,
                    config.target_energy,
                    best_energy,
                    iteration + 1,
                );
            }
        }
        trace.record(
            config.trace,
            TracePoint {
                iteration,
                energy: backend.exact_energy(),
                best_energy,
                temperature: t,
                accepted: accept,
            },
        );
    }

    RunResult {
        iterations: config.iterations,
        accepted,
        final_energy: backend.exact_energy(),
        final_spins: backend.spins().clone(),
        best_energy,
        best_spins,
        first_target_hit,
        trace,
        activity: backend.activity(),
    }
}

/// Run the baseline direct-E simulated-annealing flow (Fig. 1b).
///
/// # Panics
///
/// Panics if the flip count exceeds the problem size.
pub fn run_direct<B: EnergyBackend, S: Schedule>(
    backend: &mut B,
    schedule: &S,
    acceptance: Acceptance,
    config: AnnealConfig,
) -> RunResult {
    let n = backend.dimension();
    assert!(
        config.flips_per_iteration <= n,
        "cannot flip more spins than exist"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace = Trace::new();
    let mut best_energy = backend.exact_energy();
    let mut best_spins = backend.spins().clone();
    let mut accepted = 0usize;
    let mut first_target_hit = None;
    update_first_hit(&mut first_target_hit, config.target_energy, best_energy, 0);

    for iteration in 0..config.iterations {
        let t = schedule.temperature(iteration);
        let mask = FlipMask::random(config.flips_per_iteration, n, &mut rng);
        let de = backend.direct_delta(&mask);
        let accept = de <= 0.0 || rng.gen::<f64>() < acceptance.uphill_probability(de, t);
        if accept {
            backend.apply(&mask);
            accepted += 1;
            let e = backend.exact_energy();
            if e < best_energy {
                best_energy = e;
                best_spins = backend.spins().clone();
                update_first_hit(
                    &mut first_target_hit,
                    config.target_energy,
                    best_energy,
                    iteration + 1,
                );
            }
        }
        trace.record(
            config.trace,
            TracePoint {
                iteration,
                energy: backend.exact_energy(),
                best_energy,
                temperature: t,
                accepted: accept,
            },
        );
    }

    RunResult {
        iterations: config.iterations,
        accepted,
        final_energy: backend.exact_energy(),
        final_spins: backend.spins().clone(),
        best_energy,
        best_spins,
        first_target_hit,
        trace,
        activity: backend.activity(),
    }
}

/// Problem-adapted normalization for `E_inc` (see [`run_in_situ`]): an
/// estimate of the typical magnitude of `σ_rᵀJσ_c` for `t` flips,
/// `2·√(t·deg)·rms(J)`, so the normalized `E_inc` lands in the unit range
/// the `rand(0,1)` comparison expects.
pub fn suggest_einc_scale<C: Coupling>(coupling: &C, flips: usize) -> f64 {
    let n = coupling.dimension();
    if n == 0 {
        return 1.0;
    }
    let mut sum_sq = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        coupling.for_each_in_row(i, &mut |_, v| {
            sum_sq += v * v;
            count += 1;
        });
    }
    if count == 0 {
        return 1.0;
    }
    let rms = (sum_sq / count as f64).sqrt();
    let mean_degree = count as f64 / n as f64;
    let scale = 2.0 * (flips as f64 * mean_degree).sqrt() * rms;
    scale.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ExactBackend;
    use crate::schedule::{GeometricSchedule, SteppedSchedule};
    use fecim_device::FractionalFactor;
    use fecim_ising::{CopProblem, CsrCoupling, MaxCut, SpinVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_max_cut(n: usize) -> (MaxCut, CsrCoupling) {
        let edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        let mc = MaxCut::new(n, edges).unwrap();
        let model = mc.to_ising().unwrap();
        (mc, model.couplings().clone())
    }

    #[test]
    fn in_situ_solves_even_ring_max_cut() {
        // Even ring: optimal cut = n (alternating partition).
        let (mc, j) = ring_max_cut(16);
        let mut rng = StdRng::seed_from_u64(100);
        let init = SpinVector::random(16, &mut rng);
        let mut backend = ExactBackend::new(&j, init);
        let schedule = SteppedSchedule::paper(2000);
        let factor = FractionalFactor::paper();
        let scale = suggest_einc_scale(&j, 1);
        let result = run_in_situ(
            &mut backend,
            &schedule,
            &factor,
            scale,
            AnnealConfig::new(2000, 7).with_flips(1),
        );
        let cut = mc.cut_from_energy(result.best_energy);
        assert!(cut >= 14.0, "cut={cut} (optimal 16)");
        assert!(result.accepted > 0);
    }

    #[test]
    fn direct_metropolis_solves_even_ring_max_cut() {
        let (mc, j) = ring_max_cut(16);
        let mut rng = StdRng::seed_from_u64(101);
        let init = SpinVector::random(16, &mut rng);
        let mut backend = ExactBackend::new(&j, init);
        let schedule = GeometricSchedule::over_iterations(2.0, 0.01, 4000);
        let result = run_direct(
            &mut backend,
            &schedule,
            Acceptance::Metropolis,
            AnnealConfig::new(4000, 8).with_flips(1),
        );
        let cut = mc.cut_from_energy(result.best_energy);
        assert!(cut >= 14.0, "cut={cut} (optimal 16)");
    }

    #[test]
    fn greedy_never_accepts_uphill() {
        assert_eq!(Acceptance::Greedy.uphill_probability(0.1, 10.0), 0.0);
        assert_eq!(Acceptance::Metropolis.uphill_probability(0.0, 1.0), 1.0);
        let p = Acceptance::Metropolis.uphill_probability(1.0, 1.0);
        assert!((p - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(Acceptance::LinearApprox.uphill_probability(2.0, 1.0), 0.0);
        assert_eq!(Acceptance::LinearApprox.uphill_probability(0.5, 1.0), 0.5);
    }

    #[test]
    fn zero_temperature_rejects_all_uphill() {
        for acc in [
            Acceptance::Metropolis,
            Acceptance::LinearApprox,
            Acceptance::Greedy,
        ] {
            assert_eq!(acc.uphill_probability(1.0, 0.0), 0.0);
        }
    }

    #[test]
    fn same_seed_same_result() {
        let (_, j) = ring_max_cut(12);
        let run = |seed: u64| {
            let init = SpinVector::all_up(12);
            let mut backend = ExactBackend::new(&j, init);
            let schedule = SteppedSchedule::paper(500);
            let factor = FractionalFactor::paper();
            run_in_situ(
                &mut backend,
                &schedule,
                &factor,
                1.0,
                AnnealConfig::new(500, seed),
            )
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.final_spins, b.final_spins);
        let c = run(43);
        // Different seeds explore differently (overwhelmingly likely).
        assert!(a.final_spins != c.final_spins || a.accepted != c.accepted);
    }

    #[test]
    fn best_energy_never_worse_than_final() {
        let (_, j) = ring_max_cut(20);
        let mut rng = StdRng::seed_from_u64(103);
        let init = SpinVector::random(20, &mut rng);
        let mut backend = ExactBackend::new(&j, init);
        let schedule = SteppedSchedule::paper(300);
        let factor = FractionalFactor::paper();
        let result = run_in_situ(
            &mut backend,
            &schedule,
            &factor,
            1.0,
            AnnealConfig::new(300, 9),
        );
        assert!(result.best_energy <= result.final_energy + 1e-12);
    }

    #[test]
    fn trace_sampling_records_points() {
        let (_, j) = ring_max_cut(10);
        let init = SpinVector::all_up(10);
        let mut backend = ExactBackend::new(&j, init);
        let schedule = SteppedSchedule::paper(100);
        let factor = FractionalFactor::paper();
        let result = run_in_situ(
            &mut backend,
            &schedule,
            &factor,
            1.0,
            AnnealConfig::new(100, 1).with_trace(10),
        );
        assert_eq!(result.trace.points().len(), 10);
        // Best-energy series is monotone non-increasing.
        let pts = result.trace.points();
        for w in pts.windows(2) {
            assert!(w[1].best_energy <= w[0].best_energy + 1e-12);
        }
    }

    #[test]
    fn suggest_scale_is_positive_and_sane() {
        let (_, j) = ring_max_cut(50);
        let s = suggest_einc_scale(&j, 2);
        // Ring: degree 2, |J| = 0.25 → 2·√(2·2)·0.25 = 1.0.
        assert!((s - 1.0).abs() < 1e-9, "s={s}");
        let empty = CsrCoupling::from_triplets(5, &[]).unwrap();
        assert_eq!(suggest_einc_scale(&empty, 2), 1.0);
    }
}
