//! Run traces: sampled time series of energy/temperature over an
//! annealing run (the raw material of the paper's Fig. 8(b)/9(b) iteration
//! sweeps and the convergence comparison of Fig. 10).

use serde::{Deserialize, Serialize};

/// One sampled point of an annealing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Iteration index.
    pub iteration: usize,
    /// Exact Ising energy after this iteration.
    pub energy: f64,
    /// Best exact energy seen so far.
    pub best_energy: f64,
    /// Temperature (or control value) at this iteration.
    pub temperature: f64,
    /// Whether the proposal of this iteration was accepted.
    pub accepted: bool,
}

/// Sampling policy for traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// Record nothing (fastest).
    Off,
    /// Record every `n`-th iteration (plus the final one).
    Every(usize),
}

/// A sampled run trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Trace {
        Trace { points: Vec::new() }
    }

    /// Record a point if `mode` samples this iteration.
    pub fn record(&mut self, mode: TraceMode, point: TracePoint) {
        match mode {
            TraceMode::Off => {}
            TraceMode::Every(n) => {
                let n = n.max(1);
                if point.iteration.is_multiple_of(n) {
                    self.points.push(point);
                }
            }
        }
    }

    /// Force-record a point (used for the final iteration).
    pub fn push(&mut self, point: TracePoint) {
        self.points.push(point);
    }

    /// The sampled points in iteration order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Render as CSV (`iteration,energy,best_energy,temperature,accepted`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("iteration,energy,best_energy,temperature,accepted\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                p.iteration, p.energy, p.best_energy, p.temperature, p.accepted as u8
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(iteration: usize) -> TracePoint {
        TracePoint {
            iteration,
            energy: -1.0,
            best_energy: -2.0,
            temperature: 0.5,
            accepted: true,
        }
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.record(TraceMode::Off, pt(i));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn every_mode_samples() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.record(TraceMode::Every(3), pt(i));
        }
        let iters: Vec<usize> = t.points().iter().map(|p| p.iteration).collect();
        assert_eq!(iters, vec![0, 3, 6, 9]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Trace::new();
        t.push(pt(5));
        let csv = t.to_csv();
        assert!(csv.starts_with("iteration,"));
        assert!(csv.contains("5,-1,-2,0.5,1"));
    }

    #[test]
    fn zero_interval_is_treated_as_one() {
        let mut t = Trace::new();
        for i in 0..3 {
            t.record(TraceMode::Every(0), pt(i));
        }
        assert_eq!(t.points().len(), 3);
    }
}
