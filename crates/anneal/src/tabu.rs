//! Tabu search over single-spin flips — a stronger reference-optimum
//! generator than plain multi-start local search, used to tighten the
//! success-rate targets of the Fig. 10 reproduction.
//!
//! Classic best-improvement tabu with an aspiration criterion: each
//! iteration flips the best non-tabu spin (or a tabu one that would beat
//! the incumbent), then forbids flipping it back for `tenure` iterations.

use serde::{Deserialize, Serialize};

use fecim_ising::{Coupling, CsrCoupling, FlipMask, LocalFieldState, SpinVector};

/// Tabu-search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TabuConfig {
    /// Search iterations (single flips).
    pub iterations: usize,
    /// Tabu tenure in iterations; `None` picks `n/10 + 7` adaptively.
    pub tenure: Option<usize>,
    /// RNG seed for the initial configuration.
    pub seed: u64,
}

impl TabuConfig {
    /// A reasonable default: `20·n` iterations, adaptive tenure.
    pub fn for_dimension(n: usize, seed: u64) -> TabuConfig {
        TabuConfig {
            iterations: 20 * n.max(1),
            tenure: None,
            seed,
        }
    }
}

/// Run tabu search from a random start. Returns the best configuration
/// and its energy.
///
/// # Panics
///
/// Panics if the coupling is empty.
pub fn tabu_search(coupling: &CsrCoupling, config: TabuConfig) -> (SpinVector, f64) {
    let n = coupling.dimension();
    assert!(n > 0, "empty problem");
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let start = SpinVector::random(n, &mut rng);
    tabu_search_from(coupling, start, config)
}

/// Run tabu search from a given start configuration.
pub fn tabu_search_from(
    coupling: &CsrCoupling,
    start: SpinVector,
    config: TabuConfig,
) -> (SpinVector, f64) {
    let n = coupling.dimension();
    let tenure = config.tenure.unwrap_or(n / 10 + 7).max(1);
    let mut state = LocalFieldState::new(coupling, start);
    let mut tabu_until = vec![0usize; n];
    let mut best_energy = state.energy();
    let mut best_spins = state.spins().clone();

    for iteration in 0..config.iterations {
        // Best admissible single flip: ΔE_i = −4σ_i·l_i.
        let mut chosen: Option<(usize, f64)> = None;
        for (i, &until) in tabu_until.iter().enumerate() {
            let gain = -4.0 * state.spins().get(i) as f64 * state.field(i);
            let is_tabu = until > iteration;
            // Aspiration: a tabu move is allowed if it beats the incumbent.
            let aspires = state.energy() + gain < best_energy - 1e-12;
            if is_tabu && !aspires {
                continue;
            }
            if chosen.is_none_or(|(_, g)| gain < g) {
                chosen = Some((i, gain));
            }
        }
        let Some((i, _)) = chosen else {
            break; // everything tabu and nothing aspires: stuck
        };
        state.apply(&FlipMask::single(i, n));
        tabu_until[i] = iteration + tenure;
        if state.energy() < best_energy {
            best_energy = state.energy();
            best_spins = state.spins().clone();
        }
    }
    (best_spins, best_energy)
}

/// The better of multi-start tabu results (the reference-optimum helper).
///
/// # Panics
///
/// Panics if `starts == 0`.
pub fn multi_start_tabu(coupling: &CsrCoupling, starts: usize, seed: u64) -> (SpinVector, f64) {
    assert!(starts > 0, "need at least one start");
    let mut best: Option<(SpinVector, f64)> = None;
    for k in 0..starts {
        let config = TabuConfig::for_dimension(coupling.dimension(), seed.wrapping_add(k as u64));
        let (spins, energy) = tabu_search(coupling, config);
        if best.as_ref().is_none_or(|(_, e)| energy < *e) {
            best = Some((spins, energy));
        }
    }
    // audit:allow(panic-path): the `assert!(starts > 0)` guard above (a documented `# Panics` contract) guarantees the loop body ran and set `best`
    best.expect("starts > 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_search::multi_start_local_search;
    use fecim_ising::{CopProblem, MaxCut};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, p: f64, seed: u64) -> (MaxCut, CsrCoupling) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f64>() < p {
                    edges.push((i, j, if rng.gen::<bool>() { 1.0 } else { -1.0 }));
                }
            }
        }
        let mc = MaxCut::new(n, edges).unwrap();
        let j = mc.to_ising().unwrap().couplings().clone();
        (mc, j)
    }

    #[test]
    fn tabu_escapes_local_optima_that_trap_local_search() {
        // On a signed random graph, tabu with the same seed budget should
        // match or beat plain local search.
        let (_, j) = random_instance(60, 0.2, 1);
        let (_, ls) = multi_start_local_search(&j, 4, 11);
        let (_, tabu) = multi_start_tabu(&j, 4, 11);
        assert!(tabu <= ls + 1e-9, "tabu {tabu} vs local search {ls}");
    }

    #[test]
    fn tabu_is_deterministic() {
        let (_, j) = random_instance(40, 0.3, 2);
        let a = tabu_search(&j, TabuConfig::for_dimension(40, 5));
        let b = tabu_search(&j, TabuConfig::for_dimension(40, 5));
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn tabu_solves_ring_exactly() {
        let edges: Vec<(usize, usize, f64)> = (0..16).map(|i| (i, (i + 1) % 16, 1.0)).collect();
        let mc = MaxCut::new(16, edges).unwrap();
        let j = mc.to_ising().unwrap().couplings().clone();
        let (spins, energy) = tabu_search(&j, TabuConfig::for_dimension(16, 3));
        assert_eq!(mc.cut_from_energy(energy), 16.0);
        assert_eq!(mc.cut_value(&spins), 16.0);
    }

    #[test]
    fn best_energy_is_consistent_with_returned_spins() {
        let (_, j) = random_instance(30, 0.3, 4);
        let (spins, energy) = tabu_search(&j, TabuConfig::for_dimension(30, 7));
        assert!((j.energy(&spins) - energy).abs() < 1e-9);
    }

    #[test]
    fn tenure_one_reduces_to_steepest_descent_with_memory() {
        let (_, j) = random_instance(20, 0.4, 6);
        let cfg = TabuConfig {
            iterations: 200,
            tenure: Some(1),
            seed: 9,
        };
        let (_, energy) = tabu_search(&j, cfg);
        assert!(energy.is_finite());
    }
}
