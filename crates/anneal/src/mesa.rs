//! Multi-Epoch Simulated Annealing (MESA), the enhanced SA of the FeFET
//! CiM annealer the paper compares against (ref [7]): the run is split
//! into epochs; each epoch re-heats to a progressively lower starting
//! temperature and continues from the best configuration seen so far.

use serde::{Deserialize, Serialize};

use fecim_ising::{CsrCoupling, SpinVector};

use crate::backend::ExactBackend;
use crate::engine::{run_direct, Acceptance, AnnealConfig};
use crate::result::RunResult;
use crate::schedule::GeometricSchedule;

/// MESA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MesaConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Iterations per epoch.
    pub iterations_per_epoch: usize,
    /// Initial temperature of the first epoch.
    pub t0: f64,
    /// Final temperature of each epoch's geometric schedule.
    pub t_end: f64,
    /// Re-heat factor: epoch `e` starts at `t0 · reheat^e`.
    pub reheat: f64,
    /// Flips per iteration.
    pub flips_per_iteration: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MesaConfig {
    /// Defaults matching the MESA description of ref \[7\]: 4 epochs, 0.5×
    /// re-heating, single-spin flips.
    pub fn new(total_iterations: usize, t0: f64, seed: u64) -> MesaConfig {
        let epochs = 4;
        MesaConfig {
            epochs,
            iterations_per_epoch: (total_iterations / epochs).max(1),
            t0,
            t_end: (t0 * 1e-3).max(1e-9),
            reheat: 0.5,
            flips_per_iteration: 1,
            seed,
        }
    }
}

/// Run MESA on an exact software backend.
///
/// Returns the result of the *whole* process: best over all epochs, final
/// state of the last epoch, accepted/iteration counts summed.
///
/// # Panics
///
/// Panics if `epochs == 0` or schedule parameters are invalid.
pub fn run_mesa(coupling: &CsrCoupling, initial: SpinVector, config: MesaConfig) -> RunResult {
    assert!(config.epochs > 0, "need at least one epoch");
    let mut current = initial;
    let mut total_accepted = 0usize;
    let mut total_iterations = 0usize;
    let mut best: Option<(f64, SpinVector)> = None;
    let mut last: Option<RunResult> = None;

    for epoch in 0..config.epochs {
        let t0 = (config.t0 * config.reheat.powi(epoch as i32)).max(config.t_end * 2.0);
        let schedule =
            GeometricSchedule::over_iterations(t0, config.t_end, config.iterations_per_epoch);
        let mut backend = ExactBackend::new(coupling, current.clone());
        let result = run_direct(
            &mut backend,
            &schedule,
            Acceptance::Metropolis,
            AnnealConfig {
                iterations: config.iterations_per_epoch,
                flips_per_iteration: config.flips_per_iteration,
                seed: config.seed.wrapping_add(epoch as u64),
                trace: crate::trace::TraceMode::Off,
                target_energy: None,
            },
        );
        total_accepted += result.accepted;
        total_iterations += result.iterations;
        if best.as_ref().is_none_or(|(e, _)| result.best_energy < *e) {
            best = Some((result.best_energy, result.best_spins.clone()));
        }
        // Next epoch continues from the best configuration found so far.
        // audit:allow(panic-path): `best` was set (or kept) by the `is_none_or` branch a few lines up, unconditionally on the first epoch
        current = best.as_ref().expect("set above").1.clone();
        last = Some(result);
    }

    // audit:allow(panic-path): the `assert!(config.epochs > 0)` guard above (documented `# Panics` contract) guarantees the loop ran and set both
    let (best_energy, best_spins) = best.expect("epochs > 0");
    // audit:allow(panic-path): same `epochs > 0` assert-backed invariant as the line above
    let last = last.expect("epochs > 0");
    RunResult {
        iterations: total_iterations,
        accepted: total_accepted,
        final_energy: last.final_energy,
        final_spins: last.final_spins,
        best_energy,
        best_spins,
        first_target_hit: None,
        trace: crate::trace::Trace::new(),
        activity: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_ising::{CopProblem, MaxCut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> (MaxCut, CsrCoupling) {
        let edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        let mc = MaxCut::new(n, edges).unwrap();
        let j = mc.to_ising().unwrap().couplings().clone();
        (mc, j)
    }

    #[test]
    fn mesa_solves_ring() {
        let (mc, j) = ring(16);
        let mut rng = StdRng::seed_from_u64(31);
        let init = SpinVector::random(16, &mut rng);
        let result = run_mesa(&j, init, MesaConfig::new(4000, 2.0, 5));
        let cut = mc.cut_from_energy(result.best_energy);
        assert!(cut >= 14.0, "cut={cut}");
        assert_eq!(result.iterations, 4000);
    }

    #[test]
    fn mesa_beats_or_equals_single_epoch_with_same_budget() {
        let (_, j) = ring(24);
        let mut rng = StdRng::seed_from_u64(33);
        let init = SpinVector::random(24, &mut rng);
        let mesa = run_mesa(&j, init.clone(), MesaConfig::new(2000, 2.0, 9));
        // Single epoch == epochs:1.
        let single = run_mesa(
            &j,
            init,
            MesaConfig {
                epochs: 1,
                iterations_per_epoch: 2000,
                ..MesaConfig::new(2000, 2.0, 9)
            },
        );
        assert!(mesa.best_energy <= single.best_energy + 1e-9);
    }

    #[test]
    fn mesa_is_deterministic() {
        let (_, j) = ring(12);
        let init = SpinVector::all_up(12);
        let a = run_mesa(&j, init.clone(), MesaConfig::new(500, 2.0, 1));
        let b = run_mesa(&j, init, MesaConfig::new(500, 2.0, 1));
        assert_eq!(a.best_energy, b.best_energy);
    }
}
