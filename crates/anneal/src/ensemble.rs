//! Rayon-backed ensemble runner: the fan-out shape behind every
//! success-probability experiment in the paper (Fig. 10, Table 1) — many
//! independent trials of the same solver, each with its own deterministic
//! seed, executed in parallel.
//!
//! Determinism contract: trial `i` always receives seed `base_seed + i`
//! and outputs are returned in trial order, so results are **bit-identical
//! at any thread count** (including `RAYON_NUM_THREADS=1` or
//! [`Ensemble::with_max_threads`]`(1)`).

use std::sync::{Arc, Mutex, PoisonError};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use fecim_crossbar::{BatchInstance, BatchedTiledCrossbar};

/// A plan for `trials` independent seeded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ensemble {
    trials: usize,
    base_seed: u64,
    max_threads: Option<usize>,
}

impl Ensemble {
    /// Plan `trials` runs; trial `i` receives seed `base_seed + i`.
    pub fn new(trials: usize, base_seed: u64) -> Ensemble {
        Ensemble {
            trials,
            base_seed,
            max_threads: None,
        }
    }

    /// Cap the worker count (`1` forces sequential execution on the
    /// calling thread). Results are identical either way; this only
    /// trades wall-clock for CPU share.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads == 0`.
    pub fn with_max_threads(mut self, max_threads: usize) -> Ensemble {
        assert!(max_threads > 0, "need at least one thread");
        self.max_threads = Some(max_threads);
        self
    }

    /// Number of planned trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Base seed of the plan.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The per-trial seeds, in trial order.
    pub fn seeds(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.trials as u64).map(move |i| self.base_seed.wrapping_add(i))
    }

    /// Execute `run_fn(seed)` for every planned trial, in parallel, and
    /// return the outcomes in trial order.
    ///
    /// `run_fn` must derive all of its randomness from the seed it is
    /// given (e.g. by building a per-trial `StdRng` with
    /// `StdRng::seed_from_u64`) — that is what makes the ensemble
    /// reproducible regardless of how trials are scheduled over threads.
    pub fn run<T, F>(&self, run_fn: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let seeds: Vec<u64> = self.seeds().collect();
        let pool = rayon::current_num_threads();
        let workers = self.max_threads.unwrap_or(pool).min(pool).max(1);
        if workers == 1 || seeds.len() <= 1 {
            return seeds.into_iter().map(run_fn).collect();
        }
        if self.max_threads.is_none_or(|cap| cap >= pool) {
            // The cap doesn't bind: one task per trial, so the pool's
            // dynamic dispatch load-balances uneven trial costs.
            return seeds.into_par_iter().map(run_fn).collect();
        }
        // A binding cap: exactly `workers` contiguous chunks guarantees at
        // most `workers` trials in flight (the price is static splitting;
        // use `RAYON_NUM_THREADS` to shrink the whole pool when dynamic
        // balancing matters more than a per-ensemble cap).
        let chunk_size = seeds.len().div_ceil(workers);
        let chunks: Vec<Vec<u64>> = seeds.chunks(chunk_size).map(<[u64]>::to_vec).collect();
        let nested: Vec<Vec<T>> = chunks
            .into_par_iter()
            .map(|chunk| chunk.into_iter().map(&run_fn).collect())
            .collect();
        nested.into_iter().flatten().collect()
    }

    /// [`Ensemble::run`], additionally handing `run_fn` the trial index.
    pub fn run_indexed<T, F>(&self, run_fn: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        let base = self.base_seed;
        self.run(move |seed| run_fn(seed.wrapping_sub(base) as usize, seed))
    }

    /// The batched device-in-the-loop mode: every trial drives its own
    /// instance of ONE shared physical tile grid, so an ensemble of
    /// replicas amortizes a single array instead of fabricating
    /// `trials` of them. Trial `i` receives `(i, base_seed + i, handle)`
    /// where `handle` is the grid's
    /// [`BatchInstance`](fecim_crossbar::BatchInstance) for instance `i`
    /// (wrap it in a [`BatchedBackend`](crate::BatchedBackend)).
    ///
    /// The determinism contract of [`Ensemble::run`] carries over:
    /// instances occupy disjoint stripes with their own seeds and noise
    /// streams, so outcomes are bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the grid's instance count differs from the planned
    /// trial count.
    pub fn run_batched<T, F>(&self, grid: &Arc<Mutex<BatchedTiledCrossbar>>, run_fn: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64, BatchInstance) -> T + Sync,
    {
        let instances = grid
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .instance_count();
        assert_eq!(
            instances, self.trials,
            "shared grid holds {instances} instances but the ensemble plans {} trials",
            self.trials
        );
        self.run_indexed(move |index, seed| {
            run_fn(index, seed, BatchInstance::new(Arc::clone(grid), index))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_in_trial_order() {
        let out = Ensemble::new(16, 100).run(|seed| seed * 2);
        assert_eq!(out, (100..116).map(|s| s * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn thread_cap_does_not_change_results() {
        let heavy = |seed: u64| {
            let mut acc = seed;
            for _ in 0..10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let parallel = Ensemble::new(64, 7).run(heavy);
        let sequential = Ensemble::new(64, 7).with_max_threads(1).run(heavy);
        let capped = Ensemble::new(64, 7).with_max_threads(3).run(heavy);
        assert_eq!(parallel, sequential);
        assert_eq!(parallel, capped);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = Ensemble::new(0, 9).run(|s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn indexed_run_matches_seed_arithmetic() {
        let out = Ensemble::new(8, 1000).run_indexed(|index, seed| (index, seed));
        for (i, (index, seed)) in out.into_iter().enumerate() {
            assert_eq!(index, i);
            assert_eq!(seed, 1000 + i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Ensemble::new(4, 0).with_max_threads(0);
    }
}
