//! Energy backends: where the annealing engine gets its (incremental)
//! energies from.
//!
//! [`ExactBackend`] evaluates everything in software with exact arithmetic
//! (the algorithmic reference, fast enough for the paper's 10⁵-iteration
//! runs via local fields). [`CrossbarBackend`] routes the same queries
//! through the simulated DG FeFET crossbar, picking up quantization,
//! device variation and activity statistics — the device-in-the-loop mode.
//! [`TiledBackend`] does the same through the fixed-size-tile composition
//! (`fecim_crossbar::TiledCrossbar`), which is how instances larger than
//! one physical array run device-in-the-loop.

use fecim_crossbar::{
    ActivityStats, BatchInstance, Crossbar, CrossbarConfig, InSituArray, TiledCrossbar,
};
use fecim_ising::{CsrCoupling, FlipMask, LocalFieldState, SpinVector};

/// Source of energies for the annealing engines.
///
/// The two queries mirror the two architectures of the paper:
/// [`EnergyBackend::weighted_increment`] is the in-situ path
/// (`σ_rᵀJσ_c · factor` in one array operation);
/// [`EnergyBackend::direct_delta`] is the baseline path
/// (`E(σ_new) − E(σ)` via full direct-E evaluation).
pub trait EnergyBackend {
    /// Number of spins.
    fn dimension(&self) -> usize;

    /// Current spin configuration.
    fn spins(&self) -> &SpinVector;

    /// Exact software energy of the current configuration (for traces and
    /// solution quality; never consumed by the hardware flow).
    fn exact_energy(&self) -> f64;

    /// The in-situ incremental measurement `σ_rᵀ J σ_c · factor` for
    /// flipping `mask` from the current configuration.
    fn weighted_increment(&mut self, mask: &FlipMask, factor: f64) -> f64;

    /// The direct-E measurement `E(σ_new) − E(σ)` for flipping `mask`
    /// (baseline annealers recompute the full energy of the new state).
    fn direct_delta(&mut self, mask: &FlipMask) -> f64;

    /// Commit the flip of `mask`.
    fn apply(&mut self, mask: &FlipMask);

    /// Hardware activity accumulated so far (`None` for pure software).
    fn activity(&self) -> Option<ActivityStats>;
}

/// Exact software backend over local fields.
#[derive(Debug)]
pub struct ExactBackend<'a> {
    state: LocalFieldState<'a, CsrCoupling>,
}

impl<'a> ExactBackend<'a> {
    /// Build from a coupling matrix and an initial configuration.
    pub fn new(coupling: &'a CsrCoupling, initial: SpinVector) -> ExactBackend<'a> {
        ExactBackend {
            state: LocalFieldState::new(coupling, initial),
        }
    }
}

impl EnergyBackend for ExactBackend<'_> {
    fn dimension(&self) -> usize {
        self.state.spins().len()
    }

    fn spins(&self) -> &SpinVector {
        self.state.spins()
    }

    fn exact_energy(&self) -> f64 {
        self.state.energy()
    }

    fn weighted_increment(&mut self, mask: &FlipMask, factor: f64) -> f64 {
        // ΔE = 4·σ_rᵀJσ_c, so the bilinear form is ΔE/4 (paper Eq. 9).
        self.state.delta_energy(mask) / 4.0 * factor
    }

    fn direct_delta(&mut self, mask: &FlipMask) -> f64 {
        self.state.delta_energy(mask)
    }

    fn apply(&mut self, mask: &FlipMask) {
        self.state.apply(mask);
    }

    fn activity(&self) -> Option<ActivityStats> {
        None
    }
}

/// Device-in-the-loop backend: all energy-form measurements go through a
/// simulated array (monolithic [`Crossbar`] or [`TiledCrossbar`], via the
/// [`InSituArray`] read interface); an exact shadow state tracks true
/// energies for reporting.
///
/// Use the [`CrossbarBackend`] / [`TiledBackend`] aliases and their
/// constructors.
#[derive(Debug)]
pub struct DeviceBackend<'a, A: InSituArray> {
    array: A,
    shadow: LocalFieldState<'a, CsrCoupling>,
    /// Measured (quantized) energy of the current state, as the baseline
    /// hardware would hold it in its digital accumulator.
    measured_energy: f64,
    /// Measurement of the last `direct_delta` proposal, committed by
    /// `apply`.
    pending_measured: Option<f64>,
}

/// Device-in-the-loop backend over the monolithic `n × (n·k)` array.
pub type CrossbarBackend<'a> = DeviceBackend<'a, Crossbar>;

/// Device-in-the-loop backend over the tiled fixed-size-array
/// composition — the backend that lets G-set-scale instances run through
/// physically plausible tiles.
pub type TiledBackend<'a> = DeviceBackend<'a, TiledCrossbar>;

/// Device-in-the-loop backend over one instance of a *shared*
/// [`BatchedTiledCrossbar`](fecim_crossbar::BatchedTiledCrossbar) grid:
/// the solver drives its own replica while sibling replicas occupy the
/// same physical tiles from other threads — the multi-problem batching
/// mode of [`Ensemble::run_batched`](crate::Ensemble::run_batched).
pub type BatchedBackend<'a> = DeviceBackend<'a, BatchInstance>;

impl<'a, A: InSituArray> DeviceBackend<'a, A> {
    fn from_array(
        mut array: A,
        coupling: &'a CsrCoupling,
        initial: SpinVector,
    ) -> DeviceBackend<'a, A> {
        let measured_energy = array.vmv(initial.as_slice());
        let shadow = LocalFieldState::new(coupling, initial);
        DeviceBackend {
            array,
            shadow,
            measured_energy,
            pending_measured: None,
        }
    }

    /// Hardware annealing factor for a back-gate voltage (forwarded from
    /// the array's reference cell).
    pub fn cell_factor(&self, vbg: f64) -> f64 {
        self.array.cell_factor(vbg)
    }
}

impl<'a> CrossbarBackend<'a> {
    /// Program `coupling` into a monolithic crossbar and start from
    /// `initial`.
    pub fn new(
        coupling: &'a CsrCoupling,
        initial: SpinVector,
        config: CrossbarConfig,
    ) -> CrossbarBackend<'a> {
        DeviceBackend::from_array(Crossbar::program(coupling, config), coupling, initial)
    }

    /// The underlying crossbar (e.g. to inspect configuration or wires).
    pub fn crossbar(&self) -> &Crossbar {
        &self.array
    }
}

impl<'a> TiledBackend<'a> {
    /// Program `coupling` onto a grid of `tile_rows`-row tiles and start
    /// from `initial`.
    pub fn new(
        coupling: &'a CsrCoupling,
        initial: SpinVector,
        config: CrossbarConfig,
        tile_rows: usize,
    ) -> TiledBackend<'a> {
        DeviceBackend::from_array(
            TiledCrossbar::program(coupling, config, tile_rows),
            coupling,
            initial,
        )
    }

    /// The underlying tiled array (tile grid, activity, configuration).
    pub fn tiled(&self) -> &TiledCrossbar {
        &self.array
    }
}

impl<'a> BatchedBackend<'a> {
    /// Drive the grid instance behind `handle`, starting from `initial`.
    ///
    /// The handle's instance must have been programmed with `coupling`
    /// (the caller built the grid); `initial.len()` must equal the
    /// instance dimension.
    pub fn new(
        coupling: &'a CsrCoupling,
        initial: SpinVector,
        handle: BatchInstance,
    ) -> BatchedBackend<'a> {
        DeviceBackend::from_array(handle, coupling, initial)
    }

    /// The shared-grid handle this backend reads through.
    pub fn handle(&self) -> &BatchInstance {
        &self.array
    }
}

impl<A: InSituArray> EnergyBackend for DeviceBackend<'_, A> {
    fn dimension(&self) -> usize {
        self.shadow.spins().len()
    }

    fn spins(&self) -> &SpinVector {
        self.shadow.spins()
    }

    fn exact_energy(&self) -> f64 {
        self.shadow.energy()
    }

    fn weighted_increment(&mut self, mask: &FlipMask, factor: f64) -> f64 {
        let new_spins = self.shadow.spins().flipped_by(mask);
        let r = new_spins.rest_vector(mask);
        let c = new_spins.changed_vector(mask);
        self.array.incremental_form(&r, &c, factor)
    }

    fn direct_delta(&mut self, mask: &FlipMask) -> f64 {
        let new_spins = self.shadow.spins().flipped_by(mask);
        let e_new = self.array.vmv(new_spins.as_slice());
        self.pending_measured = Some(e_new);
        e_new - self.measured_energy
    }

    fn apply(&mut self, mask: &FlipMask) {
        self.shadow.apply(mask);
        if let Some(e) = self.pending_measured.take() {
            self.measured_energy = e;
        }
    }

    fn activity(&self) -> Option<ActivityStats> {
        Some(*self.array.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_crossbar::CrossbarConfig;
    use fecim_ising::{Coupling, DenseCoupling};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn coupling(n: usize, seed: u64) -> CsrCoupling {
        let mut rng = StdRng::seed_from_u64(seed);
        CsrCoupling::from_dense(&DenseCoupling::random(n, 0.4, 1.0, &mut rng))
    }

    #[test]
    fn exact_backend_matches_coupling_math() {
        let j = coupling(16, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let init = SpinVector::random(16, &mut rng);
        let mut b = ExactBackend::new(&j, init.clone());
        let mask = FlipMask::random(2, 16, &mut rng);
        let new = init.flipped_by(&mask);
        let expected_delta = j.energy(&new) - j.energy(&init);
        assert!((b.direct_delta(&mask) - expected_delta).abs() < 1e-9);
        assert!((b.weighted_increment(&mask, 1.0) * 4.0 - expected_delta).abs() < 1e-9);
        assert!((b.weighted_increment(&mask, 0.5) * 8.0 - expected_delta).abs() < 1e-9);
        b.apply(&mask);
        assert_eq!(b.spins(), &new);
        assert!(b.activity().is_none());
    }

    #[test]
    fn crossbar_backend_tracks_measured_energy() {
        let j = coupling(16, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let init = SpinVector::random(16, &mut rng);
        let mut cfg = CrossbarConfig::paper_defaults();
        cfg.quant_bits = 8;
        cfg.adc_bits = 14;
        let mut b = CrossbarBackend::new(&j, init.clone(), cfg);
        for _ in 0..5 {
            let mask = FlipMask::random(2, 16, &mut rng);
            let exact = {
                let new = b.spins().flipped_by(&mask);
                j.energy(&new) - j.energy(b.spins())
            };
            let measured = b.direct_delta(&mask);
            assert!(
                (measured - exact).abs() < 1.5,
                "measured={measured} exact={exact}"
            );
            b.apply(&mask);
        }
        let a = b.activity().expect("crossbar backend records activity");
        assert!(a.adc_conversions > 0);
    }

    #[test]
    fn crossbar_weighted_increment_close_to_exact() {
        let j = coupling(20, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let init = SpinVector::random(20, &mut rng);
        let mut cfg = CrossbarConfig::paper_defaults();
        cfg.quant_bits = 8;
        cfg.adc_bits = 14;
        let mut b = CrossbarBackend::new(&j, init, cfg);
        let mask = FlipMask::random(2, 20, &mut rng);
        let exact_form = {
            let new = b.spins().flipped_by(&mask);
            j.incremental_form(&new, &mask)
        };
        let measured = b.weighted_increment(&mask, 1.0);
        assert!(
            (measured - exact_form).abs() < 1.0,
            "measured={measured} exact={exact_form}"
        );
    }

    #[test]
    fn tiled_backend_matches_crossbar_backend_in_ideal_mode() {
        // Ideal-fidelity tiled reads are bit-identical to the monolithic
        // array, so the two backends must agree measurement for
        // measurement.
        let j = coupling(24, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let init = SpinVector::random(24, &mut rng);
        let cfg = CrossbarConfig::paper_defaults();
        let mut mono = CrossbarBackend::new(&j, init.clone(), cfg.clone());
        let mut tiled = TiledBackend::new(&j, init, cfg, 7);
        assert_eq!(tiled.tiled().tile_grid(), (4, 4));
        for _ in 0..5 {
            let mask = FlipMask::random(2, 24, &mut rng);
            assert_eq!(
                mono.weighted_increment(&mask, 0.6),
                tiled.weighted_increment(&mask, 0.6)
            );
            assert_eq!(mono.direct_delta(&mask), tiled.direct_delta(&mask));
            mono.apply(&mask);
            tiled.apply(&mask);
            assert_eq!(mono.spins(), tiled.spins());
        }
        let a = tiled.activity().expect("tiled backend records activity");
        assert!(a.tiles_activated > 0, "per-tile activity recorded");
    }

    #[test]
    fn apply_without_pending_keeps_measured_energy() {
        let j = coupling(12, 7);
        let init = SpinVector::all_up(12);
        let mut b = CrossbarBackend::new(&j, init, CrossbarConfig::paper_defaults());
        let mask = FlipMask::single(3, 12);
        // In-situ flow never calls direct_delta; apply must not corrupt the
        // (unused) measured energy.
        let _ = b.weighted_increment(&mask, 0.7);
        b.apply(&mask);
        assert_eq!(b.pending_measured, None);
    }
}
