//! Temperature schedules.
//!
//! The baselines use classical geometric/linear cooling; the in-situ
//! annealer uses the paper's stepped descent (Sec. 3.4): the temperature
//! maps onto the back-gate voltage grid (0.7 V → 0 V in 0.01 V steps), is
//! held for a pre-set number of iterations per level, and pins to zero at
//! the end of the run.

use serde::{Deserialize, Serialize};

/// A cooling schedule: temperature as a function of the iteration index.
pub trait Schedule {
    /// Temperature at `iteration` (0-based).
    fn temperature(&self, iteration: usize) -> f64;

    /// Initial temperature.
    fn initial(&self) -> f64 {
        self.temperature(0)
    }
}

/// Geometric cooling `T_k = T_0 · α^k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeometricSchedule {
    t0: f64,
    alpha: f64,
}

impl GeometricSchedule {
    /// Build from an initial temperature and decay rate `α ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `t0` or `alpha` outside `(0, 1]`.
    pub fn new(t0: f64, alpha: f64) -> GeometricSchedule {
        assert!(t0 > 0.0, "t0 must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        GeometricSchedule { t0, alpha }
    }

    /// Choose `α` so the schedule decays from `t0` to `t_end` over
    /// `iterations` steps.
    ///
    /// # Panics
    ///
    /// Panics if `t_end >= t0`, either is non-positive, or
    /// `iterations == 0`.
    pub fn over_iterations(t0: f64, t_end: f64, iterations: usize) -> GeometricSchedule {
        assert!(t0 > 0.0 && t_end > 0.0 && t_end < t0, "need 0 < t_end < t0");
        assert!(iterations > 0, "need at least one iteration");
        let alpha = (t_end / t0).powf(1.0 / iterations as f64);
        GeometricSchedule { t0, alpha }
    }

    /// The decay rate α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Schedule for GeometricSchedule {
    fn temperature(&self, iteration: usize) -> f64 {
        self.t0 * self.alpha.powi(iteration as i32)
    }
}

/// Linear cooling from `t0` to `t_end` over a fixed horizon, clamped at
/// `t_end` afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearSchedule {
    t0: f64,
    t_end: f64,
    iterations: usize,
}

impl LinearSchedule {
    /// Build a linear ramp.
    ///
    /// # Panics
    ///
    /// Panics if `t0 <= t_end` or `iterations == 0`.
    pub fn new(t0: f64, t_end: f64, iterations: usize) -> LinearSchedule {
        assert!(t0 > t_end, "t0 must exceed t_end");
        assert!(iterations > 0, "need at least one iteration");
        LinearSchedule {
            t0,
            t_end,
            iterations,
        }
    }
}

impl Schedule for LinearSchedule {
    fn temperature(&self, iteration: usize) -> f64 {
        if iteration >= self.iterations {
            return self.t_end;
        }
        let frac = iteration as f64 / self.iterations as f64;
        self.t0 + (self.t_end - self.t0) * frac
    }
}

/// The paper's stepped back-gate descent: `levels + 1` discrete
/// temperature plateaus from `t_max` down to exactly `0`, each held for
/// `iterations / (levels + 1)` iterations (the "pre-set number of
/// iterations" of Sec. 3.4). With `t_max = 700` and `levels = 70` the
/// plateaus map 1:1 onto the 0.7 V → 0 V, 0.01 V back-gate grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteppedSchedule {
    t_max: f64,
    levels: usize,
    hold: usize,
}

impl SteppedSchedule {
    /// Build a stepped descent over a run of `total_iterations`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero/non-positive.
    pub fn over_iterations(t_max: f64, levels: usize, total_iterations: usize) -> SteppedSchedule {
        assert!(t_max > 0.0, "t_max must be positive");
        assert!(levels > 0, "need at least one level");
        assert!(total_iterations > 0, "need at least one iteration");
        let hold = (total_iterations / (levels + 1)).max(1);
        SteppedSchedule {
            t_max,
            levels,
            hold,
        }
    }

    /// The paper's grid: 70 levels (0.01 V steps over 0.7 V), `t_max=700`.
    pub fn paper(total_iterations: usize) -> SteppedSchedule {
        SteppedSchedule::over_iterations(700.0, 70, total_iterations)
    }

    /// Iterations spent on each temperature plateau.
    pub fn hold_iterations(&self) -> usize {
        self.hold
    }

    /// Number of descending levels (plateau count minus one).
    pub fn level_count(&self) -> usize {
        self.levels
    }
}

impl Schedule for SteppedSchedule {
    fn temperature(&self, iteration: usize) -> f64 {
        let level = (iteration / self.hold).min(self.levels);
        self.t_max * (1.0 - level as f64 / self.levels as f64)
    }
}

/// A constant temperature (degenerate schedule for tests/ablations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantSchedule(pub f64);

impl Schedule for ConstantSchedule {
    fn temperature(&self, _iteration: usize) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_hits_target_at_horizon() {
        let s = GeometricSchedule::over_iterations(10.0, 0.1, 100);
        assert!((s.temperature(0) - 10.0).abs() < 1e-12);
        assert!((s.temperature(100) - 0.1).abs() < 1e-9);
        assert!(s.temperature(50) > 0.1 && s.temperature(50) < 10.0);
    }

    #[test]
    fn geometric_is_monotone_decreasing() {
        let s = GeometricSchedule::new(5.0, 0.99);
        for k in 0..100 {
            assert!(s.temperature(k + 1) < s.temperature(k));
        }
    }

    #[test]
    fn linear_ramps_and_clamps() {
        let s = LinearSchedule::new(8.0, 2.0, 6);
        assert_eq!(s.temperature(0), 8.0);
        assert_eq!(s.temperature(3), 5.0);
        assert_eq!(s.temperature(6), 2.0);
        assert_eq!(s.temperature(100), 2.0);
    }

    #[test]
    fn stepped_descends_to_exactly_zero() {
        let s = SteppedSchedule::paper(710);
        assert_eq!(s.temperature(0), 700.0);
        // hold = 710/71 = 10 iterations per level.
        assert_eq!(s.hold_iterations(), 10);
        assert_eq!(s.temperature(9), 700.0, "plateau holds");
        assert!((s.temperature(10) - 690.0).abs() < 1e-9, "one 0.01V step");
        assert_eq!(s.temperature(700), 0.0);
        assert_eq!(s.temperature(10_000), 0.0, "V_BG pins at zero");
    }

    #[test]
    fn stepped_has_quantized_plateaus() {
        let s = SteppedSchedule::paper(7100);
        let mut seen = std::collections::BTreeSet::new();
        for it in 0..7100 {
            seen.insert((s.temperature(it) * 1000.0).round() as i64);
        }
        assert_eq!(seen.len(), 71, "exactly 71 distinct V_BG levels");
    }

    #[test]
    fn short_runs_still_reach_low_levels() {
        // 700-iteration run (the paper's 800-node budget) with 70 levels.
        let s = SteppedSchedule::paper(700);
        assert!(s.temperature(699) <= 10.0 + 1e-9);
    }

    #[test]
    fn constant_is_constant() {
        let s = ConstantSchedule(3.5);
        assert_eq!(s.temperature(0), 3.5);
        assert_eq!(s.temperature(1000), 3.5);
    }
}
