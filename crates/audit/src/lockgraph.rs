//! Per-crate mutex-acquisition graph extraction (rule R3).
//!
//! The extractor answers one question per crate: *which lock can be
//! acquired while which other lock is held?* Nodes are lock names
//! (struct fields or locals typed `Mutex<_>`/`RwLock<_>`); a directed
//! edge `A -> B` means some code path acquires `B` while holding `A`. A
//! cycle in this graph is a potential lock-order inversion and fails the
//! audit (`lock-cycle`).
//!
//! The analysis is deliberately conservative-but-syntactic:
//!
//! * Locks are identified **by name**, not by instance — two `Mutex`
//!   fields with the same name on different structs are merged. Workspace
//!   lock fields are named distinctly to keep this sound.
//! * Guard lifetimes are tracked lexically: `let g = lock(&x);` holds to
//!   end of scope or `drop(g)`; a chained temporary
//!   (`lock(&x).method(..)`) holds to the end of the statement; an
//!   acquisition in a `for`/`if`/`match` head holds through the block.
//! * Acquisitions propagate through intra-crate calls to a fixpoint, so
//!   `fn a` holding `L` and calling `fn b` that takes `M` yields
//!   `L -> M`. Dotted calls whose method name collides with a std method
//!   (`wait`, `join`, `spawn`, …) are not resolved, which avoids
//!   fabricating edges through `Condvar::wait` or `JoinHandle::join`.
//! * Self-edges (`A -> A`) are dropped: with name-granularity nodes they
//!   are almost always re-entry on a *different* instance.
//!
//! False negatives are possible (guards returned from functions, locks
//! reached through trait objects); false positives are what the design
//! avoids, since a fabricated cycle would block CI.

use std::collections::{BTreeMap, BTreeSet};

/// Where an edge was first observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
    /// Human-readable provenance, e.g. `process -> finalize`.
    pub via: String,
}

/// A crate's lock-acquisition graph.
#[derive(Debug, Clone)]
pub struct LockGraph {
    /// Crate the graph was extracted from.
    pub crate_name: String,
    /// Every lock name that participates in an acquisition.
    pub nodes: BTreeSet<String>,
    /// `(held, acquired)` edges with the first site observed.
    pub edges: BTreeMap<(String, String), EdgeSite>,
}

/// One source file handed to the extractor (already scrubbed and
/// test-blanked).
#[derive(Debug, Clone)]
pub struct FileSrc {
    /// Workspace-relative path (used in edge sites).
    pub path: String,
    /// Scrubbed, test-blanked source text.
    pub code: String,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// Dotted method names that are never resolved against the crate's own
/// function table: they collide with std-library methods (`Condvar::wait`,
/// `JoinHandle::join`, `io::Read::read`, channel `send`/`recv`, …) and
/// resolving them would fabricate edges.
const SKIP_METHODS: &[&str] = &[
    "wait",
    "wait_timeout",
    "join",
    "lock",
    "read",
    "write",
    "try_lock",
    "flush",
    "shutdown",
    "send",
    "recv",
    "try_recv",
    "spawn",
    "take",
    "abort",
    "notify_all",
    "notify_one",
    "clone",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "get",
    "insert",
    "remove",
    "push",
    "pop",
    "drain",
    "iter",
    "into_iter",
    "collect",
    "extend",
    "map",
    "and_then",
    "finish",
];

/// Function names never resolved at all — overwhelmingly trait-impl
/// names (`Drop::drop`, `Default::default`, …) whose bare-call syntax is
/// a std operation, not a crate call.
const NEVER_RESOLVE: &[&str] = &[
    "drop",
    "new",
    "default",
    "clone",
    "fmt",
    "from",
    "into",
    "next",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "deref",
    "deref_mut",
    "index",
    "borrow",
    "as_ref",
    "as_mut",
    "to_string",
    "write_str",
    "len",
    "is_empty",
];

#[derive(Debug, Clone)]
struct FnDef {
    name: String,
    file_idx: usize,
    /// Byte span of the body including braces.
    body: (usize, usize),
    /// Whether this function is a lock helper (`fn lock(m: &Mutex<T>)`):
    /// calling it *is* an acquisition of its argument.
    is_helper: bool,
}

/// Offsets of line starts, for offset -> 1-based line mapping.
fn line_starts(code: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_of(starts: &[usize], offset: usize) -> usize {
    match starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn matching_paren(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Collect lock names declared in a file: `name: Mutex<..>` /
/// `name: RwLock<..>` (through wrapper generics and `&`), and
/// `let name = …Mutex::new(..)` bindings.
fn collect_lock_names(code: &str, names: &mut BTreeSet<String>, condvars: &mut BTreeSet<String>) {
    let bytes = code.as_bytes();
    for marker in ["Mutex", "RwLock", "Condvar"] {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(marker) {
            let at = from + rel;
            from = at + marker.len();
            if at > 0 && is_ident_byte(bytes[at - 1]) {
                continue;
            }
            let after = bytes.get(at + marker.len()).copied();
            let dest: &mut BTreeSet<String> = if marker == "Condvar" { condvars } else { names };
            match after {
                Some(b'<') => {
                    if let Some(name) = decl_name_before(bytes, at) {
                        dest.insert(name);
                    }
                }
                Some(b':') if bytes.get(at + marker.len() + 1) == Some(&b':') => {
                    if let Some(name) = constructor_binding_before(bytes, at) {
                        dest.insert(name);
                    }
                }
                _ => {
                    // Bare `Condvar` field type without generics.
                    if marker == "Condvar" {
                        if let Some(name) = decl_name_before(bytes, at) {
                            condvars.insert(name);
                        }
                    }
                }
            }
        }
    }
}

/// Walk left from a type marker through wrapper generics to `name:`.
/// `end` points at the first byte of the marker (or just past the type
/// for bare types): accepts `name: Arc<Mutex<`, `name: &Mutex<`, …
fn decl_name_before(bytes: &[u8], marker_at: usize) -> Option<String> {
    let mut at = marker_at;
    loop {
        while at > 0 && bytes[at - 1].is_ascii_whitespace() {
            at -= 1;
        }
        if at == 0 {
            return None;
        }
        match bytes[at - 1] {
            b'<' => {
                at -= 1;
                while at > 0 && (is_ident_byte(bytes[at - 1]) || bytes[at - 1] == b':') {
                    at -= 1;
                }
            }
            b'&' => at -= 1,
            b':' => {
                if at >= 2 && bytes[at - 2] == b':' {
                    return None; // `::` path, not a declaration colon
                }
                at -= 1;
                while at > 0 && bytes[at - 1].is_ascii_whitespace() {
                    at -= 1;
                }
                let end = at;
                while at > 0 && is_ident_byte(bytes[at - 1]) {
                    at -= 1;
                }
                if at == end {
                    return None;
                }
                let name = String::from_utf8_lossy(&bytes[at..end]).into_owned();
                if name == "mut" || name == "dyn" {
                    return None;
                }
                return Some(name);
            }
            _ => return None,
        }
    }
}

/// Walk left from `Mutex::new(` across wrapper constructors
/// (`Arc::new(`) to the `=` of a `let` binding, returning the bound name.
fn constructor_binding_before(bytes: &[u8], marker_at: usize) -> Option<String> {
    let mut at = marker_at;
    while at > 0 {
        let b = bytes[at - 1];
        if b == b'=' {
            at -= 1;
            if at > 0 && matches!(bytes[at - 1], b'=' | b'!' | b'<' | b'>') {
                return None;
            }
            while at > 0 && bytes[at - 1].is_ascii_whitespace() {
                at -= 1;
            }
            let end = at;
            while at > 0 && is_ident_byte(bytes[at - 1]) {
                at -= 1;
            }
            if at == end {
                return None;
            }
            return Some(String::from_utf8_lossy(&bytes[at..end]).into_owned());
        }
        if b == b'(' || b == b':' || b.is_ascii_whitespace() || is_ident_byte(b) {
            at -= 1;
            continue;
        }
        return None;
    }
    None
}

/// Find every `fn` definition (with a body) in a file.
fn collect_fns(code: &str, file_idx: usize, out: &mut Vec<FnDef>) {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find("fn ") {
        let at = from + rel;
        from = at + 3;
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue; // e.g. `graph_fn `
        }
        let name_start = skip_ws(bytes, at + 3);
        let mut name_end = name_start;
        while name_end < bytes.len() && is_ident_byte(bytes[name_end]) {
            name_end += 1;
        }
        if name_end == name_start {
            continue;
        }
        let name = code[name_start..name_end].to_string();
        // Optional generics, then the parameter list.
        let mut i = name_end;
        if bytes.get(i) == Some(&b'<') {
            let mut depth = 0isize;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'>' if i > 0 && bytes[i - 1] == b'-' => {} // `->` in Fn bounds
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        i = skip_ws(bytes, i);
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        let Some(params_close) = matching_paren(bytes, i) else {
            continue;
        };
        let params = &code[i..=params_close];
        // Body: first `{` before a `;` at bracket depth zero.
        let mut j = params_close + 1;
        let mut body_open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    body_open = Some(j);
                    break;
                }
                b';' => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let Some(close) = matching_brace(bytes, open) else {
            continue;
        };
        let body = &code[open..=close];
        let takes_lock_param = params.contains("Mutex<") || params.contains("RwLock<");
        let is_helper = takes_lock_param
            && (body.contains(".lock()") || body.contains(".read()") || body.contains(".write()"));
        out.push(FnDef {
            name,
            file_idx,
            body: (open, close + 1),
            is_helper,
        });
        from = open; // keep scanning inside the body for nested fns
    }
}

/// Last path segment of an expression like `&self.core.queue` or
/// `&mut shared.socks` — the lock name at a call/acquisition site.
fn last_segment(expr: &str) -> Option<String> {
    let trimmed = expr
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim()
        .trim_end_matches(')');
    let last = trimmed.rsplit(['.', ':', '(', '*', ' ']).next()?.trim();
    if last.is_empty() || !last.bytes().all(is_ident_byte) {
        return None;
    }
    Some(last.to_string())
}

/// Walk a dotted receiver path leftward from `dot` (the `.` before the
/// method name); returns the last path segment.
fn receiver_before(bytes: &[u8], dot: usize) -> Option<String> {
    let mut at = dot; // position of the '.'
    let end = at;
    while at > 0 && is_ident_byte(bytes[at - 1]) {
        at -= 1;
    }
    if at == end {
        return None;
    }
    Some(String::from_utf8_lossy(&bytes[at..end]).into_owned())
}

/// One acquisition or call event found in a function body (pass 1).
#[derive(Debug, Clone)]
enum Event {
    /// Acquire the named lock at this offset; `binds` carries the `let`
    /// pattern decision made by the scanner in pass 2.
    Acquire { lock: String, at: usize },
    /// Call a crate function by name at this offset.
    Call { callee: String, at: usize },
}

struct BodyScan {
    events: Vec<Event>,
}

/// Scan a function body, producing acquisition and call events in source
/// order. Used by both the fixpoint pass and the edge-emission pass.
fn scan_body(
    code: &str,
    span: (usize, usize),
    lock_names: &BTreeSet<String>,
    condvars: &BTreeSet<String>,
    helpers: &BTreeSet<String>,
    fn_names: &BTreeSet<String>,
) -> BodyScan {
    let bytes = code.as_bytes();
    let mut events = Vec::new();
    let mut i = span.0;
    while i < span.1 {
        let b = bytes[i];
        if !is_ident_start(b) {
            i += 1;
            continue;
        }
        if i > 0 && is_ident_byte(bytes[i - 1]) {
            // mid-identifier (can't happen given the advance below, but safe)
            i += 1;
            continue;
        }
        let start = i;
        while i < span.1 && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let ident = &code[start..i];
        let after = bytes.get(i).copied();
        let dotted = start > 0 && bytes[start - 1] == b'.';
        if after != Some(b'(') {
            continue;
        }
        // `.lock()` / `.read()` / `.write()` on a known lock receiver.
        if dotted && matches!(ident, "lock" | "read" | "write" | "try_lock") {
            if let Some(recv) = receiver_before(bytes, start - 1) {
                if lock_names.contains(&recv) && !condvars.contains(&recv) {
                    events.push(Event::Acquire {
                        lock: recv,
                        at: start,
                    });
                }
            }
            continue;
        }
        // Helper call: `lock(&self.queue)` — the call is the acquisition.
        if !dotted && helpers.contains(ident) {
            if let Some(close) = matching_paren(bytes, i) {
                let arg = code[i + 1..close].split(',').next().unwrap_or("");
                if let Some(lock) = last_segment(arg) {
                    if !condvars.contains(&lock) {
                        events.push(Event::Acquire { lock, at: start });
                    }
                }
            }
            continue;
        }
        // Intra-crate call.
        if fn_names.contains(ident)
            && !NEVER_RESOLVE.contains(&ident)
            && !(dotted && SKIP_METHODS.contains(&ident))
        {
            events.push(Event::Call {
                callee: ident.to_string(),
                at: start,
            });
        }
    }
    BodyScan { events }
}

/// A guard being held during pass 2.
#[derive(Debug, Clone)]
struct Guard {
    name: Option<String>,
    lock: String,
    depth: usize,
}

/// Decide how an acquisition at `at` binds: returns `true` when the
/// acquisition is the whole right-hand side of a `let` (modulo poison
/// chains like `.unwrap_or_else(PoisonError::into_inner)`), i.e. the
/// guard persists under the `let` name.
fn binds_to_let(bytes: &[u8], at: usize, span_end: usize) -> bool {
    // Find the call's closing paren (acquisitions are `name(…)` or
    // `recv.lock(…)` — either way the next `(` after `at` opens the call).
    let mut i = at;
    while i < span_end && bytes[i] != b'(' {
        if bytes[i] == b';' || bytes[i] == b'\n' {
            return false;
        }
        i += 1;
    }
    let Some(mut close) = matching_paren(bytes, i) else {
        return false;
    };
    // Consume chained poison-recovery calls.
    loop {
        let next = skip_ws(bytes, close + 1);
        if bytes.get(next) == Some(&b'.') {
            let ms = next + 1;
            let mut me = ms;
            while me < bytes.len() && is_ident_byte(bytes[me]) {
                me += 1;
            }
            let method = std::str::from_utf8(&bytes[ms..me]).unwrap_or("");
            if matches!(
                method,
                "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or" | "unwrap_or_default"
            ) && bytes.get(me) == Some(&b'(')
            {
                if let Some(c2) = matching_paren(bytes, me) {
                    close = c2;
                    continue;
                }
            }
            return false; // further chaining: the guard is a temporary
        }
        return bytes.get(next) == Some(&b';');
    }
}

impl LockGraph {
    /// Extract the lock graph for one crate from its library sources.
    pub fn build(crate_name: &str, files: &[FileSrc]) -> LockGraph {
        let mut lock_names = BTreeSet::new();
        let mut condvars = BTreeSet::new();
        for f in files {
            collect_lock_names(&f.code, &mut lock_names, &mut condvars);
        }
        let mut fns: Vec<FnDef> = Vec::new();
        for (idx, f) in files.iter().enumerate() {
            collect_fns(&f.code, idx, &mut fns);
        }
        let helpers: BTreeSet<String> = fns
            .iter()
            .filter(|f| f.is_helper)
            .map(|f| f.name.clone())
            .collect();
        let fn_names: BTreeSet<String> = fns
            .iter()
            .filter(|f| !f.is_helper)
            .map(|f| f.name.clone())
            .collect();

        // Pass 1: per-fn events, then propagate acquisitions through
        // calls to a fixpoint (union over same-named fns).
        let scans: Vec<BodyScan> = fns
            .iter()
            .map(|f| {
                scan_body(
                    &files[f.file_idx].code,
                    f.body,
                    &lock_names,
                    &condvars,
                    &helpers,
                    &fn_names,
                )
            })
            .collect();
        let mut acquires: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (f, scan) in fns.iter().zip(&scans) {
            let acc = acquires.entry(f.name.clone()).or_default();
            let cal = calls.entry(f.name.clone()).or_default();
            for ev in &scan.events {
                match ev {
                    Event::Acquire { lock, .. } => {
                        acc.insert(lock.clone());
                    }
                    Event::Call { callee, .. } => {
                        cal.insert(callee.clone());
                    }
                }
            }
        }
        loop {
            let mut changed = false;
            let names: Vec<String> = acquires.keys().cloned().collect();
            for name in names {
                let callees = calls.get(&name).cloned().unwrap_or_default();
                let mut add = BTreeSet::new();
                for callee in callees {
                    if let Some(set) = acquires.get(&callee) {
                        add.extend(set.iter().cloned());
                    }
                }
                let entry = acquires.entry(name).or_default();
                for lock in add {
                    changed |= entry.insert(lock);
                }
            }
            if !changed {
                break;
            }
        }

        // Pass 2: lexical guard tracking and edge emission.
        let mut nodes = BTreeSet::new();
        let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
        let starts_per_file: Vec<Vec<usize>> = files.iter().map(|f| line_starts(&f.code)).collect();
        for (f, scan) in fns.iter().zip(&scans) {
            let code = &files[f.file_idx].code;
            let bytes = code.as_bytes();
            let starts = &starts_per_file[f.file_idx];
            let mut guards: Vec<Guard> = Vec::new();
            let mut stmt_locks: Vec<String> = Vec::new();
            let mut depth = 0usize;
            let mut pending_let: Option<String> = None;
            let mut ev_iter = scan.events.iter().peekable();
            let mut i = f.body.0;
            while i < f.body.1 {
                // Fire any events at (or before) this position first.
                while let Some(ev) = ev_iter.peek() {
                    let at = match ev {
                        Event::Acquire { at, .. } | Event::Call { at, .. } => *at,
                    };
                    if at <= i {
                        let held: BTreeSet<String> = guards
                            .iter()
                            .map(|g| g.lock.clone())
                            .chain(stmt_locks.iter().cloned())
                            .collect();
                        match ev_iter.next() {
                            Some(Event::Acquire { lock, at }) => {
                                nodes.insert(lock.clone());
                                for h in &held {
                                    if h != lock {
                                        edges.entry((h.clone(), lock.clone())).or_insert(
                                            EdgeSite {
                                                file: files[f.file_idx].path.clone(),
                                                line: line_of(starts, *at),
                                                via: f.name.clone(),
                                            },
                                        );
                                    }
                                }
                                if binds_to_let(bytes, *at, f.body.1) {
                                    guards.push(Guard {
                                        name: pending_let.take(),
                                        lock: lock.clone(),
                                        depth,
                                    });
                                } else {
                                    stmt_locks.push(lock.clone());
                                }
                            }
                            Some(Event::Call { callee, at }) => {
                                if let Some(acquired) = acquires.get(callee) {
                                    for t in acquired {
                                        nodes.insert(t.clone());
                                        for h in &held {
                                            if h != t {
                                                edges.entry((h.clone(), t.clone())).or_insert(
                                                    EdgeSite {
                                                        file: files[f.file_idx].path.clone(),
                                                        line: line_of(starts, *at),
                                                        via: format!("{} -> {}", f.name, callee),
                                                    },
                                                );
                                            }
                                        }
                                    }
                                }
                            }
                            None => {}
                        }
                    } else {
                        break;
                    }
                }
                match bytes[i] {
                    b'{' => {
                        depth += 1;
                        for lock in stmt_locks.drain(..) {
                            guards.push(Guard {
                                name: None,
                                lock,
                                depth,
                            });
                        }
                        pending_let = None;
                        i += 1;
                    }
                    b'}' => {
                        let new_depth = depth.saturating_sub(1);
                        guards.retain(|g| g.depth <= new_depth);
                        depth = new_depth;
                        stmt_locks.clear();
                        pending_let = None;
                        i += 1;
                    }
                    b';' => {
                        stmt_locks.clear();
                        pending_let = None;
                        i += 1;
                    }
                    b if is_ident_start(b) && (i == 0 || !is_ident_byte(bytes[i - 1])) => {
                        let start = i;
                        while i < f.body.1 && is_ident_byte(bytes[i]) {
                            i += 1;
                        }
                        match &code[start..i] {
                            "let" => {
                                let mut j = skip_ws(bytes, i);
                                // `let mut name`, skip the `mut`.
                                if code[j..].starts_with("mut")
                                    && bytes.get(j + 3).is_some_and(|b| !is_ident_byte(*b))
                                {
                                    j = skip_ws(bytes, j + 3);
                                }
                                let ns = j;
                                let mut ne = j;
                                while ne < f.body.1 && is_ident_byte(bytes[ne]) {
                                    ne += 1;
                                }
                                if ne > ns {
                                    pending_let = Some(code[ns..ne].to_string());
                                }
                            }
                            "drop" => {
                                let open = skip_ws(bytes, i);
                                if bytes.get(open) == Some(&b'(') {
                                    if let Some(close) = matching_paren(bytes, open) {
                                        let arg = code[open + 1..close].trim();
                                        // Only honor a drop at the guard's own
                                        // binding depth: a deeper drop sits in a
                                        // conditional block (early-exit arms),
                                        // and the fall-through path still holds
                                        // the guard. The scan is linear, not
                                        // path-sensitive, so keeping the guard
                                        // is the conservative choice.
                                        guards.retain(|g| {
                                            g.name.as_deref() != Some(arg) || g.depth != depth
                                        });
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    _ => {
                        i += 1;
                    }
                }
            }
        }
        LockGraph {
            crate_name: crate_name.to_string(),
            nodes,
            edges,
        }
    }

    /// Adjacency map of the graph, self-edges removed.
    fn adjacency(&self) -> BTreeMap<&str, BTreeSet<&str>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for node in &self.nodes {
            adj.entry(node.as_str()).or_default();
        }
        for (from, to) in self.edges.keys() {
            if from != to {
                adj.entry(from.as_str()).or_default().insert(to.as_str());
            }
        }
        adj
    }

    /// Find cycles (lock-order inversions). Returns each cycle as the
    /// node path that closes it, e.g. `["a", "b", "a"]`.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let adj = self.adjacency();
        let mut color: BTreeMap<&str, u8> = adj.keys().map(|k| (*k, 0u8)).collect();
        let mut cycles = Vec::new();
        let mut stack: Vec<&str> = Vec::new();

        fn dfs<'a>(
            node: &'a str,
            adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
            color: &mut BTreeMap<&'a str, u8>,
            stack: &mut Vec<&'a str>,
            cycles: &mut Vec<Vec<String>>,
        ) {
            color.insert(node, 1);
            stack.push(node);
            if let Some(nexts) = adj.get(node) {
                for next in nexts {
                    match color.get(next).copied().unwrap_or(0) {
                        0 => dfs(next, adj, color, stack, cycles),
                        1 => {
                            if let Some(pos) = stack.iter().position(|n| n == next) {
                                let mut cycle: Vec<String> =
                                    stack[pos..].iter().map(|s| s.to_string()).collect();
                                cycle.push(next.to_string());
                                cycles.push(cycle);
                            }
                        }
                        _ => {}
                    }
                }
            }
            stack.pop();
            color.insert(node, 2);
        }

        let roots: Vec<&str> = adj.keys().copied().collect();
        for root in roots {
            if color.get(root).copied().unwrap_or(0) == 0 {
                dfs(root, &adj, &mut color, &mut stack, &mut cycles);
            }
        }
        cycles
    }

    /// Render the graph in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "digraph \"{}\" {{\n",
            dot_escape(&self.crate_name)
        ));
        out.push_str("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n");
        for node in &self.nodes {
            out.push_str(&format!("  \"{}\";\n", dot_escape(node)));
        }
        for ((from, to), site) in &self.edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}:{}\"];\n",
                dot_escape(from),
                dot_escape(to),
                dot_escape(&site.file),
                site.line
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Render the graph (plus any cycles) as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"crate\": \"{}\",\n",
            json_escape(&self.crate_name)
        ));
        out.push_str("  \"nodes\": [");
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(node)));
        }
        out.push_str("],\n  \"edges\": [\n");
        for (i, ((from, to), site)) in self.edges.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"from\": \"{}\", \"to\": \"{}\", \"file\": \"{}\", \"line\": {}, \"via\": \"{}\"}}{}\n",
                json_escape(from),
                json_escape(to),
                json_escape(&site.file),
                site.line,
                json_escape(&site.via),
                if i + 1 < self.edges.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"cycles\": [");
        let cycles = self.cycles();
        for (i, cycle) in cycles.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (j, node) in cycle.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(node)));
            }
            out.push(']');
        }
        out.push_str("]\n}\n");
        out
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
