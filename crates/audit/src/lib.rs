//! `fecim-audit` — workspace determinism & panic-safety static analysis.
//!
//! Every figure this workspace reproduces depends on one invariant:
//! results are a pure function of `(request, seed)` — bit-identical
//! across ensemble threads, scheduler workers, and batched-vs-monolithic
//! placement. This crate enforces that invariant *statically*, before a
//! regression can reach a golden:
//!
//! * **R1 nondeterminism** (`hash-iter`, `ambient-rng`, `wall-clock`,
//!   `env-read`): iteration over `HashMap`/`HashSet`, ambient RNG
//!   seeding, wall-clock reads, and `std::env` reads in library code.
//! * **R2 panic safety** (`panic-path`): `unwrap()` / `expect(` /
//!   `panic!` / `todo!` / `unimplemented!` in library code.
//! * **R3 lock discipline** (`lock-cycle`): a per-crate
//!   mutex-acquisition graph — which lock is taken while which is held —
//!   emitted as DOT/JSON and failed on cycles.
//!
//! Violations are either fixed or waived inline with
//! `// audit:allow(<rule>): <reason>`; a waiver without a reason, naming
//! an unknown rule, or matching no finding is itself a finding
//! (`bad-waiver` / `stale-waiver`), so the justification inventory can
//! never rot silently.
//!
//! The crate has **no dependencies** — the lexer, rule engine, graph
//! extraction and DOT/JSON emission are hand-rolled — so it builds in
//! the offline environment and does not trust the code it audits.
//!
//! See `DESIGN.md` §5 for the rule table and analysis limits, and the
//! `fecim-audit` binary (`cargo run -p fecim-audit -- check --deny`) for
//! the CI gate.

pub mod lexer;
pub mod lockgraph;
pub mod rules;
pub mod workspace;

pub use lexer::{blank_test_items, scrub, Scrubbed, Waiver};
pub use lockgraph::{EdgeSite, FileSrc, LockGraph};
pub use rules::{collect_hash_names, scan_file, FileScope, Finding, Rule};
pub use workspace::{audit_workspace, find_root, AuditError, WorkspaceAudit};
