//! CLI for the `fecim-audit` static-analysis pass.
//!
//! ```text
//! fecim-audit check [--deny] [--root DIR]   # findings summary; --deny exits 1 on violations
//! fecim-audit report [--root DIR]           # full finding + waiver inventory
//! fecim-audit graph [--root DIR] [--json] [--out DIR]   # lock graphs (DOT default)
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use fecim_audit::{audit_workspace, Finding, Rule, WorkspaceAudit};

fn usage() -> ! {
    eprintln!(
        "usage: fecim-audit <check [--deny] | report | graph [--json] [--out DIR]> [--root DIR]"
    );
    std::process::exit(2);
}

struct Args {
    cmd: String,
    deny: bool,
    json: bool,
    root: PathBuf,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    if !matches!(cmd.as_str(), "check" | "report" | "graph") {
        usage();
    }
    let mut args = Args {
        cmd,
        deny: false,
        json: false,
        root: PathBuf::from("."),
        out: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--root" => match argv.next() {
                Some(dir) => args.root = PathBuf::from(dir),
                None => usage(),
            },
            "--out" => match argv.next() {
                Some(dir) => args.out = Some(PathBuf::from(dir)),
                None => usage(),
            },
            _ => usage(),
        }
    }
    args
}

fn print_findings(label: &str, findings: &[&Finding]) {
    if findings.is_empty() {
        return;
    }
    println!("{label} ({}):", findings.len());
    for f in findings {
        println!("  [{}] {}:{}  {}", f.rule.name(), f.file, f.line, f.excerpt);
        if let Some(reason) = &f.waived {
            println!("      waived: {reason}");
        }
    }
}

fn rule_histogram(findings: &[&Finding]) -> BTreeMap<&'static str, usize> {
    let mut hist = BTreeMap::new();
    for f in findings {
        *hist.entry(f.rule.name()).or_insert(0usize) += 1;
    }
    hist
}

fn cmd_check(audit: &WorkspaceAudit, deny: bool) -> ExitCode {
    let violations: Vec<&Finding> = audit.violations().collect();
    let waived: Vec<&Finding> = audit.waived().collect();
    print_findings("violations", &violations);
    println!(
        "audit: {} crates, {} files scanned; {} violation(s), {} waived, {} lock graph(s)",
        audit.crates,
        audit.files,
        violations.len(),
        waived.len(),
        audit.graphs.len()
    );
    for graph in &audit.graphs {
        let cycles = graph.cycles();
        println!(
            "  lock graph [{}]: {} lock(s), {} edge(s), {} cycle(s)",
            graph.crate_name,
            graph.nodes.len(),
            graph.edges.len(),
            cycles.len()
        );
    }
    if !violations.is_empty() && deny {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_report(audit: &WorkspaceAudit) -> ExitCode {
    let violations: Vec<&Finding> = audit.violations().collect();
    let waived: Vec<&Finding> = audit.waived().collect();
    print_findings("violations", &violations);
    print_findings("waived", &waived);
    println!("per-rule counts (violations):");
    for (rule, count) in rule_histogram(&violations) {
        println!("  {rule:<14} {count}");
    }
    println!("per-rule counts (waived):");
    for (rule, count) in rule_histogram(&waived) {
        println!("  {rule:<14} {count}");
    }
    for graph in &audit.graphs {
        println!("lock graph [{}]:", graph.crate_name);
        for ((from, to), site) in &graph.edges {
            println!(
                "  {from} -> {to}  ({}:{} via {})",
                site.file, site.line, site.via
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_graph(audit: &WorkspaceAudit, json: bool, out: Option<&PathBuf>) -> ExitCode {
    if let Some(dir) = out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("fecim-audit: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        for graph in &audit.graphs {
            let dot = dir.join(format!("lock_graph_{}.dot", graph.crate_name));
            let js = dir.join(format!("lock_graph_{}.json", graph.crate_name));
            if let Err(e) = std::fs::write(&dot, graph.to_dot()) {
                eprintln!("fecim-audit: cannot write {}: {e}", dot.display());
                return ExitCode::from(2);
            }
            if let Err(e) = std::fs::write(&js, graph.to_json()) {
                eprintln!("fecim-audit: cannot write {}: {e}", js.display());
                return ExitCode::from(2);
            }
            println!("wrote {} and {}", dot.display(), js.display());
        }
        return ExitCode::SUCCESS;
    }
    for graph in &audit.graphs {
        if json {
            print!("{}", graph.to_json());
        } else {
            print!("{}", graph.to_dot());
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    let audit = match audit_workspace(&args.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fecim-audit: {e}");
            return ExitCode::from(2);
        }
    };
    // Sanity: the auditor's own rule names must round-trip, otherwise
    // waivers written against the docs would silently go stale.
    debug_assert!(Rule::from_name(Rule::PanicPath.name()) == Some(Rule::PanicPath));
    match args.cmd.as_str() {
        "check" => cmd_check(&audit, args.deny),
        "report" => cmd_report(&audit),
        "graph" => cmd_graph(&audit, args.json, args.out.as_ref()),
        _ => unreachable!("validated in parse_args"),
    }
}
