//! A minimal Rust surface lexer for static analysis.
//!
//! The rule engine must never fire on text inside comments or string
//! literals (a doc comment mentioning `unwrap()` is not a panic path), and
//! must never fire on test-only code. This module "scrubs" a source file:
//! every byte inside a comment, string/char/byte literal, or
//! `#[cfg(test)]`-gated item is replaced with a space, preserving newlines
//! so byte offsets and line numbers in the scrubbed text match the
//! original exactly.
//!
//! Waiver comments (`// audit:allow(<rule>): <reason>`) are collected
//! *during* scrubbing, so a waiver-shaped string literal in ordinary code
//! can never register as a waiver.

/// An inline waiver collected from a comment.
///
/// Syntax: `// audit:allow(<rule>): <reason>`. The waiver applies to
/// findings on the same line or on the line immediately below the comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Rule name inside the parentheses (may be empty if malformed).
    pub rule: String,
    /// Free-text justification after the closing `):` (may be empty).
    pub reason: String,
    /// True when the `audit:allow` marker was present but not of the form
    /// `audit:allow(<rule>): <reason>`.
    pub malformed: bool,
}

/// Result of scrubbing a source file.
#[derive(Debug, Clone)]
pub struct Scrubbed {
    /// Source text with comments and literals blanked to spaces
    /// (newlines preserved, so offsets/lines match the original).
    pub code: String,
    /// Waivers found in comments, in file order.
    pub waivers: Vec<Waiver>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn blank(out: &mut [u8], start: usize, end: usize) {
    let end = end.min(out.len());
    for slot in out.iter_mut().take(end).skip(start) {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// Parse a waiver out of raw comment text, if the marker is present.
///
/// The marker must *start* the comment (after the `//`/`/*` sigils and
/// whitespace), so prose or docs that merely mention the syntax — e.g.
/// this sentence — never register as waivers.
fn parse_waiver(text: &str, line: usize) -> Option<Waiver> {
    let marker = "audit:allow";
    let content = text.trim_start_matches(['/', '*', '!']).trim_start();
    if !content.starts_with(marker) {
        return None;
    }
    let at = text.find(marker)?;
    let rest = &text[at + marker.len()..];
    let Some(stripped) = rest.strip_prefix('(') else {
        return Some(Waiver {
            line,
            rule: String::new(),
            reason: String::new(),
            malformed: true,
        });
    };
    let Some(close) = stripped.find(')') else {
        return Some(Waiver {
            line,
            rule: String::new(),
            reason: String::new(),
            malformed: true,
        });
    };
    let rule = stripped[..close].trim().to_string();
    let after = &stripped[close + 1..];
    let reason = match after.trim_start().strip_prefix(':') {
        Some(r) => r.trim().trim_end_matches("*/").trim().to_string(),
        None => String::new(),
    };
    let malformed = rule.is_empty() || reason.is_empty();
    Some(Waiver {
        line,
        rule,
        reason,
        malformed,
    })
}

/// Blank a normal (escaped) string literal starting at the opening quote.
/// Returns the index one past the closing quote.
fn scrub_string(bytes: &[u8], out: &mut [u8], open: usize, line: &mut usize) -> usize {
    let mut i = open + 1;
    out[open] = b' ';
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // A backslash-newline continuation escapes the newline
                // itself — count it, or every later line number drifts.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                blank(out, i, i + 2);
                i += 2;
            }
            b'"' => {
                out[i] = b' ';
                return i + 1;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => {
                out[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

/// Try to consume a raw string (`r"…"`, `r#"…"#`), byte string (`b"…"`),
/// raw byte string (`br#"…"#`) or byte char (`b'x'`) starting at `i`
/// (which points at `r` or `b`). Returns the index past the literal, or
/// `None` if this is not such a literal.
fn scrub_raw_or_byte(bytes: &[u8], out: &mut [u8], i: usize, line: &mut usize) -> Option<usize> {
    let mut j = i + 1;
    if bytes[i] == b'b' {
        match bytes.get(j) {
            Some(b'\'') => {
                // byte char literal b'x' / b'\n'
                let mut k = j + 1;
                while k < bytes.len() {
                    match bytes[k] {
                        b'\\' => k += 2,
                        b'\'' => {
                            blank(out, i, k + 1);
                            return Some(k + 1);
                        }
                        _ => k += 1,
                    }
                }
                return None;
            }
            Some(b'"') => {
                out[i] = b' ';
                return Some(scrub_string(bytes, out, j, line));
            }
            Some(b'r') => j += 1, // "br…" raw byte string; fall through
            _ => return None,
        }
    }
    // `j` points just past the `r`; expect zero or more '#' then '"'.
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                blank(out, i, k);
                return Some(k);
            }
        }
        j += 1;
    }
    blank(out, i, bytes.len());
    Some(bytes.len())
}

/// Handle a `'` that is either a char literal or a lifetime.
/// Returns the index to resume scanning at.
fn scrub_char_or_lifetime(bytes: &[u8], out: &mut [u8], i: usize) -> usize {
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char literal: '\n', '\'', '\u{1F600}'.
            let mut k = i + 2;
            while k < bytes.len() {
                match bytes[k] {
                    b'\\' => k += 2,
                    b'\'' => {
                        blank(out, i, k + 1);
                        return k + 1;
                    }
                    _ => k += 1,
                }
            }
            i + 1
        }
        Some(&c) => {
            // Decode one UTF-8 char; if the next byte is `'`, it was a
            // char literal, otherwise a lifetime (leave untouched).
            let len = if c < 0x80 {
                1
            } else if c >= 0xF0 {
                4
            } else if c >= 0xE0 {
                3
            } else {
                2
            };
            let close = i + 1 + len;
            if bytes.get(close) == Some(&b'\'') {
                blank(out, i, close + 1);
                close + 1
            } else {
                i + 1
            }
        }
        None => i + 1,
    }
}

/// Scrub comments and literals out of `source`, collecting waivers.
pub fn scrub(source: &str) -> Scrubbed {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut waivers = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                if let Some(w) = parse_waiver(&source[start..i], line) {
                    waivers.push(w);
                }
                blank(&mut out, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if let Some(w) = parse_waiver(&source[start..i], start_line) {
                    waivers.push(w);
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                i = scrub_string(bytes, &mut out, i, &mut line);
            }
            b'r' | b'b' if i == 0 || !is_ident_byte(bytes[i - 1]) => {
                match scrub_raw_or_byte(bytes, &mut out, i, &mut line) {
                    Some(j) => i = j,
                    None => i += 1,
                }
            }
            b'\'' => {
                i = scrub_char_or_lifetime(bytes, &mut out, i);
            }
            _ => {
                i += 1;
            }
        }
    }
    let code = String::from_utf8(out).unwrap_or_else(|e| {
        // Blanking replaces whole literals with ASCII spaces and leaves
        // code bytes untouched, so the buffer stays valid UTF-8; fall
        // back to lossy conversion rather than panic if that ever breaks.
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    });
    Scrubbed { code, waivers }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Find the matching close delimiter for the open delimiter at `open`.
fn matching(bytes: &[u8], open: usize, lhs: u8, rhs: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        if bytes[i] == lhs {
            depth += 1;
        } else if bytes[i] == rhs {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

fn has_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = text[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// True when an attribute body (the text inside `#[...]`) gates the item
/// to test builds: `cfg(test)`, `cfg(all(test, ...))`, `test`, `bench`.
/// `cfg(not(test))` is *not* test-gated.
fn is_test_gate(content: &str) -> bool {
    let trimmed = content.trim_start();
    let ident: String = trimmed
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    match ident.as_str() {
        "cfg" => has_word(content, "test") && !has_word(content, "not"),
        "test" | "bench" => true,
        _ => false,
    }
}

/// Given scrubbed code and the index just past a test-gating attribute's
/// `]`, return the index one past the end of the gated item (its closing
/// `}` or terminating `;`).
fn item_end(bytes: &[u8], mut i: usize) -> usize {
    loop {
        i = skip_ws(bytes, i);
        // Skip any further attributes stacked on the item.
        if bytes.get(i) == Some(&b'#') {
            let open = skip_ws(bytes, i + 1);
            if bytes.get(open) == Some(&b'[') {
                match matching(bytes, open, b'[', b']') {
                    Some(close) => {
                        i = close + 1;
                        continue;
                    }
                    None => return bytes.len(),
                }
            }
        }
        break;
    }
    // Scan forward to the item body `{ ... }` or a `;` terminator.
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'{' if paren == 0 && bracket == 0 => {
                return matching(bytes, i, b'{', b'}')
                    .map(|c| c + 1)
                    .unwrap_or(bytes.len());
            }
            b';' if paren == 0 && bracket == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Blank every item gated behind `#[cfg(test)]` / `#[test]` / `#[bench]`
/// in already-scrubbed code. A file-level `#![cfg(test)]` blanks the rest
/// of the file.
pub fn blank_test_items(code: &str) -> String {
    let mut out = code.as_bytes().to_vec();
    let bytes = code.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = bytes.get(j) == Some(&b'!');
        if inner {
            j += 1;
        }
        j = skip_ws(bytes, j);
        if bytes.get(j) != Some(&b'[') {
            i += 1;
            continue;
        }
        let Some(close) = matching(bytes, j, b'[', b']') else {
            break;
        };
        let content = &code[j + 1..close];
        if is_test_gate(content) {
            if inner {
                blank(&mut out, i, bytes.len());
                break;
            }
            let end = item_end(bytes, close + 1);
            blank(&mut out, i, end);
            i = end;
        } else {
            i = close + 1;
        }
    }
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}
