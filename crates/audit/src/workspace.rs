//! Workspace walking, scope classification and finding aggregation.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Waiver};
use crate::lockgraph::{FileSrc, LockGraph};
use crate::rules::{self, FileScope, Finding, Rule};

/// Errors the audit itself can hit (distinct from findings *about* the
/// audited code).
#[derive(Debug)]
pub enum AuditError {
    /// An I/O failure reading the workspace.
    Io {
        /// Path that failed.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The given root does not look like the fecim workspace.
    NotAWorkspace(PathBuf),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Io { path, source } => {
                write!(f, "i/o error at {}: {}", path.display(), source)
            }
            AuditError::NotAWorkspace(path) => write!(
                f,
                "{} is not a cargo workspace root (no Cargo.toml with [workspace])",
                path.display()
            ),
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::Io { source, .. } => Some(source),
            AuditError::NotAWorkspace(_) => None,
        }
    }
}

/// The result of auditing a workspace.
#[derive(Debug)]
pub struct WorkspaceAudit {
    /// Every finding, waived or not, in (file, line) order per crate.
    pub findings: Vec<Finding>,
    /// Per-crate lock graphs (only crates where locks were observed).
    pub graphs: Vec<LockGraph>,
    /// Number of crates scanned.
    pub crates: usize,
    /// Number of library files scanned.
    pub files: usize,
}

impl WorkspaceAudit {
    /// Findings that gate CI (not waived).
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_violation())
    }

    /// Findings covered by an inline waiver.
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.is_violation())
    }
}

/// Locate the workspace root: ascend from `start` until a `Cargo.toml`
/// containing `[workspace]` is found.
pub fn find_root(start: &Path) -> Result<PathBuf, AuditError> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(AuditError::NotAWorkspace(start.to_path_buf()));
        }
    }
}

fn read(path: &Path) -> Result<String, AuditError> {
    fs::read_to_string(path).map_err(|e| AuditError::Io {
        path: path.to_path_buf(),
        source: e,
    })
}

/// Recursively list `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).map_err(|e| AuditError::Io {
            path: d.clone(),
            source: e,
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| AuditError::Io {
                path: d.clone(),
                source: e,
            })?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Classify a source file within its crate directory.
///
/// * `src/main.rs` and `src/bin/**` are binary roots — exempt from
///   R1/R2 (entry points legitimately read argv/clock and may abort).
/// * `tests/`, `benches/`, `examples/` are not scanned at all (the
///   caller only walks `src/`).
fn classify(crate_dir: &Path, file: &Path) -> FileScope {
    let rel = file.strip_prefix(crate_dir).unwrap_or(file);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    if rel_str == "src/main.rs" || rel_str.starts_with("src/bin/") {
        FileScope::Binary
    } else {
        FileScope::Library
    }
}

struct ScannedFile {
    rel_path: String,
    original: String,
    /// Scrubbed + test-blanked code.
    code: String,
    waivers: Vec<Waiver>,
    scope: FileScope,
}

/// Apply waivers to raw findings: a finding is waived when a waiver for
/// its rule sits on the same line or the line immediately above. Returns
/// extra findings for waiver hygiene (`bad-waiver`, `stale-waiver`).
fn apply_waivers(file: &ScannedFile, findings: &mut [Finding]) -> Vec<Finding> {
    let mut used = vec![false; file.waivers.len()];
    let mut extra = Vec::new();
    for finding in findings.iter_mut() {
        if !finding.rule.waivable() {
            continue;
        }
        for (wi, waiver) in file.waivers.iter().enumerate() {
            if waiver.malformed {
                continue;
            }
            if Rule::from_name(&waiver.rule) != Some(finding.rule) {
                continue;
            }
            if waiver.line == finding.line || waiver.line + 1 == finding.line {
                finding.waived = Some(waiver.reason.clone());
                used[wi] = true;
                break;
            }
        }
    }
    let orig_lines: Vec<&str> = file.original.lines().collect();
    for (wi, waiver) in file.waivers.iter().enumerate() {
        let excerpt = orig_lines
            .get(waiver.line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        if waiver.malformed || Rule::from_name(&waiver.rule).is_none() {
            extra.push(Finding {
                rule: Rule::BadWaiver,
                file: file.rel_path.clone(),
                line: waiver.line,
                excerpt,
                waived: None,
            });
        } else if !used[wi] {
            extra.push(Finding {
                rule: Rule::StaleWaiver,
                file: file.rel_path.clone(),
                line: waiver.line,
                excerpt,
                waived: None,
            });
        }
    }
    extra
}

/// Audit one crate directory. `rel_prefix` is the workspace-relative
/// path of the crate (e.g. `crates/serve`).
fn audit_crate(
    crate_dir: &Path,
    rel_prefix: &str,
    audit: &mut WorkspaceAudit,
) -> Result<(), AuditError> {
    let src = crate_dir.join("src");
    if !src.is_dir() {
        return Ok(());
    }
    let mut scanned: Vec<ScannedFile> = Vec::new();
    for path in rs_files(&src)? {
        let original = read(&path)?;
        let scrubbed = lexer::scrub(&original);
        let code = lexer::blank_test_items(&scrubbed.code);
        let rel = path.strip_prefix(crate_dir).unwrap_or(&path);
        let rel_path = format!(
            "{}/{}",
            rel_prefix,
            rel.to_string_lossy().replace('\\', "/")
        );
        scanned.push(ScannedFile {
            rel_path,
            original,
            code,
            waivers: scrubbed.waivers,
            scope: classify(crate_dir, &path),
        });
    }
    audit.files += scanned.len();

    for file in &scanned {
        // Hash-typed names are collected per file, not per crate: a
        // crate-wide union would let `jobs: Mutex<HashMap<..>>` in one
        // module flag an unrelated `Vec` local named `jobs` in another.
        // The cost is that iterating a hash field declared in a sibling
        // module is missed — in this workspace hash fields are used in
        // the file that declares them (see DESIGN.md §5).
        let hash_names = rules::collect_hash_names(&file.code);
        let mut findings = rules::scan_file(
            &file.rel_path,
            &file.original,
            &file.code,
            file.scope,
            &hash_names,
        );
        let extra = apply_waivers(file, &mut findings);
        audit.findings.extend(findings);
        audit.findings.extend(extra);
    }

    // Lock graph over library sources.
    let lib_files: Vec<FileSrc> = scanned
        .iter()
        .filter(|f| f.scope == FileScope::Library)
        .map(|f| FileSrc {
            path: f.rel_path.clone(),
            code: f.code.clone(),
        })
        .collect();
    let crate_name = rel_prefix.rsplit('/').next().unwrap_or(rel_prefix);
    let graph = LockGraph::build(crate_name, &lib_files);
    if !graph.nodes.is_empty() {
        for cycle in graph.cycles() {
            let site = graph
                .edges
                .iter()
                .find(|((from, _), _)| from == &cycle[0])
                .map(|(_, s)| (s.file.clone(), s.line));
            audit.findings.push(Finding {
                rule: Rule::LockCycle,
                file: site
                    .as_ref()
                    .map(|(f, _)| f.clone())
                    .unwrap_or_else(|| rel_prefix.to_string()),
                line: site.map(|(_, l)| l).unwrap_or(0),
                excerpt: format!("lock-order cycle: {}", cycle.join(" -> ")),
                waived: None,
            });
        }
        audit.graphs.push(graph);
    }
    audit.crates += 1;
    Ok(())
}

/// Audit every crate under `<root>/crates/`.
///
/// Vendored shims under `third_party/` are *not* audited: they stand in
/// for external registry dependencies and are replaced wholesale when a
/// network-enabled build becomes available. Workspace-level `tests/` and
/// `examples/` members are test scope by definition.
pub fn audit_workspace(root: &Path) -> Result<WorkspaceAudit, AuditError> {
    let root = find_root(root)?;
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(AuditError::NotAWorkspace(root));
    }
    let mut audit = WorkspaceAudit {
        findings: Vec::new(),
        graphs: Vec::new(),
        crates: 0,
        files: 0,
    };
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    let entries = fs::read_dir(&crates_dir).map_err(|e| AuditError::Io {
        path: crates_dir.clone(),
        source: e,
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| AuditError::Io {
            path: crates_dir.clone(),
            source: e,
        })?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let rel_prefix = format!("crates/{name}");
        audit_crate(&dir, &rel_prefix, &mut audit)?;
    }
    Ok(audit)
}
