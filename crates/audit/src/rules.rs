//! Rule definitions and per-file scanning.
//!
//! All scanning runs over *scrubbed* code (comments, literals and
//! test-gated items blanked — see [`crate::lexer`]), so a needle inside a
//! doc comment or string can never fire. Line numbers refer to the
//! original source because scrubbing preserves offsets.

use std::collections::BTreeSet;

/// The rules the auditor enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: iteration over `HashMap`/`HashSet` in library code. Hash
    /// iteration order is randomized per process, so anything
    /// result-affecting must use `BTreeMap`/`BTreeSet` or sort first.
    HashIter,
    /// R1: ambient randomness (`thread_rng`, `from_entropy`, `OsRng`,
    /// `rand::random`) — results must be a pure function of the request
    /// seed.
    AmbientRng,
    /// R1: wall-clock reads (`Instant::now`, `SystemTime::now`) outside
    /// waived timing-attribution sites.
    WallClock,
    /// R1: `std::env` reads in library crates (ambient configuration).
    EnvRead,
    /// R2: panic paths in library code: `unwrap()`, `expect(`, `panic!`,
    /// `todo!`, `unimplemented!`.
    PanicPath,
    /// A waiver comment that is malformed, names an unknown rule, or has
    /// no reason.
    BadWaiver,
    /// A waiver comment that matched no finding on its line or the next.
    StaleWaiver,
    /// R3: a cycle in a crate's mutex-acquisition graph.
    LockCycle,
}

impl Rule {
    /// Stable kebab-case rule name used in waivers and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::AmbientRng => "ambient-rng",
            Rule::WallClock => "wall-clock",
            Rule::EnvRead => "env-read",
            Rule::PanicPath => "panic-path",
            Rule::BadWaiver => "bad-waiver",
            Rule::StaleWaiver => "stale-waiver",
            Rule::LockCycle => "lock-cycle",
        }
    }

    /// Parse a rule name as written in a waiver.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "hash-iter" => Some(Rule::HashIter),
            "ambient-rng" => Some(Rule::AmbientRng),
            "wall-clock" => Some(Rule::WallClock),
            "env-read" => Some(Rule::EnvRead),
            "panic-path" => Some(Rule::PanicPath),
            "bad-waiver" => Some(Rule::BadWaiver),
            "stale-waiver" => Some(Rule::StaleWaiver),
            "lock-cycle" => Some(Rule::LockCycle),
            _ => None,
        }
    }

    /// Rules that may be waived inline. Waiver-hygiene findings cannot
    /// themselves be waived.
    pub fn waivable(self) -> bool {
        !matches!(self, Rule::BadWaiver | Rule::StaleWaiver)
    }
}

/// One finding produced by the audit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The original source line (trimmed) for context.
    pub excerpt: String,
    /// `Some(reason)` when an inline waiver covers this finding.
    pub waived: Option<String>,
}

impl Finding {
    /// True when the finding still gates CI (no waiver covers it).
    pub fn is_violation(&self) -> bool {
        self.waived.is_none()
    }
}

/// How a file participates in the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileScope {
    /// Library source (`src/**` except binary roots): all rules apply.
    Library,
    /// Binary root (`src/main.rs`, `src/bin/**`): exempt from R1/R2 —
    /// process entry points legitimately read argv/clock and may abort.
    Binary,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte offsets of every boundary-checked occurrence of `needle` in
/// `line`: the character before the match must not be an identifier
/// character (so `env::var` does not match inside `some_env::var`).
fn needle_positions(line: &str, needle: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    // Only needles that *start* with an identifier character need a
    // left-boundary check (`.unwrap()` starts with `.`, so the receiver
    // identifier right before it is expected).
    let check_left = needle.as_bytes().first().is_some_and(|b| is_ident_byte(*b));
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        let boundary = !check_left || at == 0 || !is_ident_byte(bytes[at - 1]);
        if boundary {
            hits.push(at);
        }
        from = at + needle.len();
    }
    hits
}

/// Scan one line for simple-needle rules and append findings.
fn scan_needles(
    file: &str,
    lineno: usize,
    code_line: &str,
    orig_line: &str,
    out: &mut Vec<Finding>,
) {
    const PANIC: &[&str] = &[".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"];
    const RNG: &[&str] = &["thread_rng(", "from_entropy(", "OsRng", "rand::random"];
    const CLOCK: &[&str] = &["Instant::now(", "SystemTime::now("];
    const ENV: &[&str] = &[
        "std::env::",
        "env::var",
        "env::args",
        "env::vars",
        "env::current_dir",
        "env::current_exe",
        "env::set_var",
    ];
    let groups: [(&[&str], Rule); 4] = [
        (PANIC, Rule::PanicPath),
        (RNG, Rule::AmbientRng),
        (CLOCK, Rule::WallClock),
        (ENV, Rule::EnvRead),
    ];
    for (needles, rule) in groups {
        let mut hit = false;
        for needle in needles {
            if !needle_positions(code_line, needle).is_empty() {
                hit = true;
                break;
            }
        }
        if hit {
            out.push(Finding {
                rule,
                file: file.to_string(),
                line: lineno,
                excerpt: orig_line.trim().to_string(),
                waived: None,
            });
        }
    }
}

/// Collect identifiers declared (or plausibly bound) with a hash-ordered
/// collection type in scrubbed code: `name: HashMap<..>` (through wrapper
/// generics like `Mutex<HashMap<..>>`) and `let name = HashMap::new()`.
pub fn collect_hash_names(code: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let bytes = code.as_bytes();
    for marker in ["HashMap", "HashSet"] {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(marker) {
            let at = from + rel;
            from = at + marker.len();
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            if !before_ok {
                continue;
            }
            let after = bytes.get(at + marker.len()).copied();
            match after {
                Some(b'<') => {
                    if let Some(name) = decl_name_before(bytes, at) {
                        names.insert(name);
                    }
                }
                Some(b':') if bytes.get(at + marker.len() + 1) == Some(&b':') => {
                    if let Some(name) = binding_name_before(bytes, at) {
                        names.insert(name);
                    }
                }
                _ => {}
            }
        }
    }
    names
}

/// Walk left from a `HashMap<` type position through wrapper generics
/// (`Mutex<`, `Arc<`, `Option<` …) to the `name:` declaring it.
fn decl_name_before(bytes: &[u8], mut at: usize) -> Option<String> {
    loop {
        // Skip whitespace leftward.
        while at > 0 && bytes[at - 1].is_ascii_whitespace() {
            at -= 1;
        }
        if at == 0 {
            return None;
        }
        match bytes[at - 1] {
            b'<' => {
                // Wrapper generic: skip the wrapper's identifier/path.
                at -= 1;
                while at > 0 && (is_ident_byte(bytes[at - 1]) || bytes[at - 1] == b':') {
                    at -= 1;
                }
            }
            b'&' => at -= 1,
            b':' => {
                // `name:` (single colon; `::` paths were consumed above).
                at -= 1;
                while at > 0 && bytes[at - 1].is_ascii_whitespace() {
                    at -= 1;
                }
                let end = at;
                while at > 0 && is_ident_byte(bytes[at - 1]) {
                    at -= 1;
                }
                if at == end {
                    return None;
                }
                let name = String::from_utf8_lossy(&bytes[at..end]).into_owned();
                if name == "mut" {
                    return None;
                }
                return Some(name);
            }
            _ => return None,
        }
    }
}

/// Walk left from a `HashMap::` constructor position across `= ` to the
/// bound identifier: `let seen = HashSet::new()`.
fn binding_name_before(bytes: &[u8], mut at: usize) -> Option<String> {
    while at > 0 && bytes[at - 1].is_ascii_whitespace() {
        at -= 1;
    }
    if at == 0 || bytes[at - 1] != b'=' {
        return None;
    }
    at -= 1;
    if at > 0 && matches!(bytes[at - 1], b'=' | b'!' | b'<' | b'>' | b'+') {
        return None; // comparison or compound assignment, not a binding
    }
    while at > 0 && bytes[at - 1].is_ascii_whitespace() {
        at -= 1;
    }
    let end = at;
    while at > 0 && is_ident_byte(bytes[at - 1]) {
        at -= 1;
    }
    if at == end {
        return None;
    }
    Some(String::from_utf8_lossy(&bytes[at..end]).into_owned())
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Scan one scrubbed line for iteration over any known hash-typed name.
fn scan_hash_iter(
    file: &str,
    lineno: usize,
    code_line: &str,
    orig_line: &str,
    names: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let bytes = code_line.as_bytes();
    let mut hit = false;
    for name in names {
        for at in needle_positions(code_line, name) {
            let end = at + name.len();
            if end < bytes.len() && is_ident_byte(bytes[end]) {
                continue; // partial identifier match
            }
            // Skip closing parens/whitespace: `lock(&self.jobs).values()`.
            let mut k = end;
            while k < bytes.len() && (bytes[k] == b')' || bytes[k].is_ascii_whitespace()) {
                k += 1;
            }
            if bytes.get(k) != Some(&b'.') {
                continue;
            }
            let mstart = k + 1;
            let mut mend = mstart;
            while mend < bytes.len() && is_ident_byte(bytes[mend]) {
                mend += 1;
            }
            if bytes.get(mend) != Some(&b'(') {
                continue;
            }
            let method = &code_line[mstart..mend];
            if ITER_METHODS.contains(&method) {
                hit = true;
            }
        }
        if hit {
            break;
        }
    }
    // `for x in &map {` / `for x in map {` — iteration without a method.
    if !hit {
        if let Some(for_at) = code_line.find("for ") {
            if let Some(in_rel) = code_line[for_at..].find(" in ") {
                let expr = code_line[for_at + in_rel + 4..].trim();
                let expr = expr.strip_suffix('{').unwrap_or(expr).trim_end();
                let expr = expr
                    .trim_start_matches('&')
                    .trim_start_matches("mut ")
                    .trim();
                let last = expr.rsplit(['.', ':', '*', '(']).next().unwrap_or(expr);
                if names.contains(last) {
                    hit = true;
                }
            }
        }
    }
    if hit {
        out.push(Finding {
            rule: Rule::HashIter,
            file: file.to_string(),
            line: lineno,
            excerpt: orig_line.trim().to_string(),
            waived: None,
        });
    }
}

/// Scan one file for R1/R2 findings.
///
/// `code` must be scrubbed and test-blanked; `original` is the raw source
/// (for excerpts); `hash_names` is the set of hash-typed identifiers
/// collected via [`collect_hash_names`] from *this file* (per-file on
/// purpose — a crate-wide union would flag unrelated same-named locals in
/// sibling modules; the cost is that a hash field iterated only from a
/// sibling module is missed).
pub fn scan_file(
    file: &str,
    original: &str,
    code: &str,
    scope: FileScope,
    hash_names: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if scope == FileScope::Binary {
        return out;
    }
    let orig_lines: Vec<&str> = original.lines().collect();
    for (idx, code_line) in code.lines().enumerate() {
        let lineno = idx + 1;
        let orig_line = orig_lines.get(idx).copied().unwrap_or("");
        scan_needles(file, lineno, code_line, orig_line, &mut out);
        scan_hash_iter(file, lineno, code_line, orig_line, hash_names, &mut out);
    }
    out
}
