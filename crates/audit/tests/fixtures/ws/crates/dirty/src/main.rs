//! Binary root: argv/clock reads and aborts are legitimate here, so none
//! of the needles below may produce findings.

fn main() {
    let arg = std::env::args().nth(1).unwrap();
    let started = std::time::Instant::now();
    println!("{arg} {:?}", started.elapsed());
}
