//! Audit fixture: one unwaived positive per R1/R2 rule, one correctly
//! waived site, and the waiver-hygiene failure shapes (unknown rule,
//! missing reason, stale waiver). Never compiled — only scanned.

use std::collections::HashMap;
use std::time::Instant;

pub fn hash_iteration_total(scores: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for v in scores.values() {
        total += v;
    }
    total
}

pub fn ambient_seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn configured_threads() -> Option<String> {
    std::env::var("FIXTURE_THREADS").ok()
}

pub fn first_byte(data: &[u8]) -> u8 {
    *data.first().unwrap()
}

pub fn checked_first(data: &[u8]) -> u8 {
    // audit:allow(panic-path): fixture — callers always pass nonempty slices
    *data.first().expect("nonempty")
}

pub fn misnamed_waiver(data: &[u8]) -> u8 {
    // audit:allow(no-such-rule): the rule name here is unknown
    *data.first().unwrap()
}

pub fn reasonless_waiver(data: &[u8]) -> u8 {
    // audit:allow(panic-path):
    *data.first().unwrap()
}

pub fn tidy() -> u64 {
    // audit:allow(panic-path): nothing on the next line panics anymore
    42
}
