//! `src/bin/**` is binary scope too: exempt from R1/R2.

fn main() {
    let scale: f64 = std::env::var("SCALE").unwrap().parse().expect("a number");
    println!("{scale}");
}
