//! Audit fixture: a deliberate two-lock ordering inversion
//! (`alpha -> beta` in one method, `beta -> alpha` in the other) that
//! must surface as a `lock-cycle` finding.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn alpha_then_beta(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        read_both(a, b)
    }

    pub fn beta_then_alpha(&self) -> u64 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        read_both(a, b)
    }
}
