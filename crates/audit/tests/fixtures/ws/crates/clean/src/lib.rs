//! Audit fixture: needle-shaped text the scanner must NOT flag — doc
//! comments, string literals, test-gated items, non-iterating hash use,
//! ordered-map iteration, and poison-safe lock helpers.
//!
//! Mentioning `unwrap()` or `Instant::now()` in a doc comment is fine.

use std::collections::{BTreeMap, HashSet};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Membership only — `contains`/`insert` never observe hash order.
pub fn dedup(seen: &mut HashSet<String>, id: &str) -> bool {
    seen.insert(id.to_string())
}

/// Ordered iteration is deterministic by construction.
pub fn totals(by_name: &BTreeMap<String, u64>) -> u64 {
    by_name.values().sum()
}

/// The needle text lives in a string literal, not code.
pub fn describe() -> &'static str {
    "call unwrap() or panic!() via thread_rng() after std::env::var"
}

/// Poison-safe locking: recovers the guard, no `unwrap()` needle.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `unreachable!` documents impossibility and is allowed.
pub fn parity(n: u64) -> &'static str {
    match n % 2 {
        0 => "even",
        _ => unreachable!("n % 2 is 0 or 1"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_gated_code_may_panic_freely() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
