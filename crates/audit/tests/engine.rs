//! Engine tests for `fecim-audit`: lexer exclusions, one
//! positive/negative/waived case per rule, lock-graph extraction (DAG,
//! inversion cycle, guard drops), and an end-to-end run over the fixture
//! workspace in `tests/fixtures/ws`.

use std::path::Path;

use fecim_audit::{
    audit_workspace, blank_test_items, collect_hash_names, scan_file, scrub, FileScope, FileSrc,
    Finding, LockGraph, Rule,
};

/// Run the full single-file pipeline the workspace auditor uses.
fn scan(src: &str, scope: FileScope) -> Vec<Finding> {
    let scrubbed = scrub(src);
    let code = blank_test_items(&scrubbed.code);
    let names = collect_hash_names(&code);
    scan_file("fixture.rs", src, &code, scope, &names)
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- lexer

#[test]
fn needles_in_strings_and_comments_do_not_fire() {
    let src = r#"
/// Call `unwrap()` or `panic!()` at your peril; `Instant::now()` too.
pub fn describe() -> &'static str {
    // a comment mentioning thread_rng() and std::env::var is fine
    "so is unwrap() or HashMap iteration inside a string literal"
}
"#;
    assert!(scan(src, FileScope::Library).is_empty());
}

#[test]
fn needles_in_raw_strings_and_chars_do_not_fire() {
    let src = "pub fn f() -> String {\n    let _c = 'x';\n    let _lt: &'static str = \"ok\";\n    r#\"panic!(\"raw\") and .unwrap()\"#.to_string()\n}\n";
    assert!(scan(src, FileScope::Library).is_empty());
}

#[test]
fn test_gated_items_are_exempt() {
    let src = r#"
pub fn safe() -> u64 { 0 }

#[cfg(test)]
mod tests {
    #[test]
    fn may_panic() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
        let _t = std::time::Instant::now();
    }
}
"#;
    assert!(scan(src, FileScope::Library).is_empty());
}

#[test]
fn cfg_not_test_is_not_exempt() {
    let src = r#"
#[cfg(not(test))]
pub fn ships_in_release(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
"#;
    assert_eq!(rules_of(&scan(src, FileScope::Library)), [Rule::PanicPath]);
}

#[test]
fn string_continuation_keeps_line_numbers_aligned() {
    // Regression: a backslash-newline escape inside a string literal must
    // count the newline, or every later waiver/finding line drifts by one.
    let src = "pub fn msg() -> &'static str {\n    \"split \\\n     across lines\"\n}\n\npub fn f(v: &[u8]) -> u8 {\n    // audit:allow(panic-path): fixture reason\n    *v.first().unwrap()\n}\n";
    let scrubbed = scrub(src);
    assert_eq!(scrubbed.waivers.len(), 1);
    assert_eq!(scrubbed.waivers[0].line, 7);
    let findings = scan(src, FileScope::Library);
    assert_eq!(rules_of(&findings), [Rule::PanicPath]);
    assert_eq!(findings[0].line, 8);
}

#[test]
fn waiver_marker_must_start_the_comment() {
    // Docs that merely *mention* the syntax must not register.
    let src =
        "// waivers use `audit:allow(panic-path): reason` like this\npub fn f() -> u64 { 0 }\n";
    assert!(scrub(src).waivers.is_empty());

    let src =
        "// audit:allow(panic-path): starts the comment, registers\npub fn f() -> u64 { 0 }\n";
    assert_eq!(scrub(src).waivers.len(), 1);
}

// ---------------------------------------------------------------- rules

#[test]
fn hash_iteration_fires_and_btreemap_does_not() {
    let src = r#"
use std::collections::HashMap;
pub fn total(scores: &HashMap<String, u64>) -> u64 {
    let mut t = 0;
    for v in scores.values() {
        t += v;
    }
    t
}
"#;
    assert_eq!(rules_of(&scan(src, FileScope::Library)), [Rule::HashIter]);

    let src = r#"
use std::collections::BTreeMap;
pub fn total(scores: &BTreeMap<String, u64>) -> u64 {
    scores.values().sum()
}
"#;
    assert!(scan(src, FileScope::Library).is_empty());
}

#[test]
fn hash_membership_without_iteration_is_fine() {
    let src = r#"
use std::collections::HashSet;
pub fn dedup(seen: &mut HashSet<String>, id: &str) -> bool {
    seen.insert(id.to_string())
}
"#;
    assert!(scan(src, FileScope::Library).is_empty());
}

#[test]
fn ambient_rng_fires() {
    let src = "pub fn seed() -> u64 {\n    let mut rng = rand::thread_rng();\n    0\n}\n";
    assert_eq!(rules_of(&scan(src, FileScope::Library)), [Rule::AmbientRng]);
}

#[test]
fn wall_clock_fires_and_waives() {
    let src = "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(rules_of(&scan(src, FileScope::Library)), [Rule::WallClock]);
}

#[test]
fn env_read_fires() {
    let src = "pub fn cfg() -> Option<String> {\n    std::env::var(\"X\").ok()\n}\n";
    assert_eq!(rules_of(&scan(src, FileScope::Library)), [Rule::EnvRead]);
}

#[test]
fn panic_needles_fire_but_unreachable_and_poison_recovery_do_not() {
    let src = "pub fn f(v: &[u8]) -> u8 {\n    *v.first().unwrap()\n}\n";
    assert_eq!(rules_of(&scan(src, FileScope::Library)), [Rule::PanicPath]);

    let src = r#"
use std::sync::{Mutex, MutexGuard, PoisonError};
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
pub fn parity(n: u64) -> &'static str {
    match n % 2 {
        0 => "even",
        _ => unreachable!("n % 2 is 0 or 1"),
    }
}
"#;
    assert!(scan(src, FileScope::Library).is_empty());
}

#[test]
fn binary_scope_is_exempt_from_r1_and_r2() {
    let src = "fn main() {\n    let a = std::env::args().nth(1).unwrap();\n    let _t = std::time::Instant::now();\n    println!(\"{a}\");\n}\n";
    assert!(scan(src, FileScope::Binary).is_empty());
}

// ----------------------------------------------------------- lock graph

fn graph_of(code: &str) -> LockGraph {
    let scrubbed = scrub(code);
    let files = [FileSrc {
        path: "lib.rs".into(),
        code: blank_test_items(&scrubbed.code),
    }];
    LockGraph::build("fixture", &files)
}

const INVERSION: &str = r#"
use std::sync::Mutex;
pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}
impl Pair {
    pub fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
    }
    pub fn ba(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
    }
}
"#;

#[test]
fn two_lock_inversion_is_a_cycle() {
    let graph = graph_of(INVERSION);
    assert!(graph.nodes.contains("alpha") && graph.nodes.contains("beta"));
    assert!(graph
        .edges
        .contains_key(&("alpha".to_string(), "beta".to_string())));
    assert!(graph
        .edges
        .contains_key(&("beta".to_string(), "alpha".to_string())));
    assert_eq!(graph.cycles().len(), 1);
}

#[test]
fn ordered_acquisition_is_a_dag() {
    let src = r#"
use std::sync::Mutex;
pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}
impl Pair {
    pub fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
    }
    pub fn ab_again(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
    }
}
"#;
    let graph = graph_of(src);
    assert_eq!(graph.edges.len(), 1);
    assert!(graph.cycles().is_empty());
}

#[test]
fn dropped_guard_does_not_create_an_edge() {
    let src = r#"
use std::sync::Mutex;
pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}
impl Pair {
    pub fn sequential(&self) {
        let a = self.alpha.lock();
        drop(a);
        let b = self.beta.lock();
    }
}
"#;
    let graph = graph_of(src);
    assert!(graph.edges.is_empty());
    assert!(graph.cycles().is_empty());
}

#[test]
fn transitive_acquisition_through_calls_is_an_edge() {
    let src = r#"
use std::sync::Mutex;
pub struct S {
    outer: Mutex<u64>,
    inner: Mutex<u64>,
}
impl S {
    pub fn outer_path(&self) {
        let g = self.outer.lock();
        self.touch_inner();
    }
    fn touch_inner(&self) {
        let g = self.inner.lock();
    }
}
"#;
    let graph = graph_of(src);
    assert!(graph
        .edges
        .contains_key(&("outer".to_string(), "inner".to_string())));
}

#[test]
fn dot_and_json_render_the_graph() {
    let graph = graph_of(INVERSION);
    let dot = graph.to_dot();
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("\"alpha\" -> \"beta\""));
    let json = graph.to_json();
    assert!(json.contains("\"crate\""));
    assert!(json.contains("\"alpha\""));
}

// ------------------------------------------------- workspace end-to-end

#[test]
fn fixture_workspace_audit_matches_expectations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let audit = audit_workspace(&root).expect("fixture workspace audits");

    assert_eq!(audit.crates, 3);
    assert_eq!(audit.files, 5);

    // The binary roots (main.rs, bin/tool.rs) contribute nothing.
    assert!(!audit
        .findings
        .iter()
        .any(|f| f.file.contains("main.rs") || f.file.contains("bin/tool.rs")));

    // Everything in `clean` stays clean.
    assert!(!audit.findings.iter().any(|f| f.file.contains("clean")));

    let count = |rule: Rule| audit.violations().filter(|f| f.rule == rule).count();
    assert_eq!(count(Rule::HashIter), 1);
    assert_eq!(count(Rule::AmbientRng), 1);
    assert_eq!(count(Rule::WallClock), 1);
    assert_eq!(count(Rule::EnvRead), 1);
    // Three unwaived unwraps: the plain one plus the two under bad waivers.
    assert_eq!(count(Rule::PanicPath), 3);
    // Unknown rule name + missing reason.
    assert_eq!(count(Rule::BadWaiver), 2);
    assert_eq!(count(Rule::StaleWaiver), 1);
    assert_eq!(count(Rule::LockCycle), 1);

    // The well-formed waiver suppressed its finding and kept the reason.
    let waived: Vec<&fecim_audit::Finding> = audit.waived().collect();
    assert_eq!(waived.len(), 1);
    assert_eq!(waived[0].rule, Rule::PanicPath);
    assert!(waived[0]
        .waived
        .as_deref()
        .expect("waived findings carry a reason")
        .contains("nonempty slices"));

    // The inversion crate produced a cyclic graph; the site names a file.
    let locks = audit
        .graphs
        .iter()
        .find(|g| g.crate_name == "locks")
        .expect("locks graph extracted");
    assert_eq!(locks.cycles().len(), 1);
    assert!(locks.edges.values().all(|site| site.file.contains("locks")));
}
