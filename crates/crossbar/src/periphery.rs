//! Digital periphery of the crossbar (paper Fig. 6d): the spin and
//! temperature encoders that turn `σ_r`/`σ_c`/`f(T)` into line voltages,
//! and the shift-and-add pipeline that recombines bit-slice ADC codes
//! into the signed `E_inc` value.
//!
//! The analog array in [`crate::Crossbar`] consumes these as pure
//! functions; they are factored out here so their behaviour (two's
//! complement handling, pos/neg pass splitting, bit weights) is unit
//! tested independently of the analog path.

use serde::{Deserialize, Serialize};

/// Split a signed spin-input vector into the two non-negative phase
/// vectors the crossbar drives sequentially (the paper's "components
/// associated with positive and negative inputs are separately
/// calculated").
///
/// Returns `(positive_phase, negative_phase)` as 0/1 drive levels.
pub fn split_input_phases(signed: &[i8]) -> (Vec<u8>, Vec<u8>) {
    let pos = signed.iter().map(|&v| u8::from(v > 0)).collect();
    let neg = signed.iter().map(|&v| u8::from(v < 0)).collect();
    (pos, neg)
}

/// The spin encoder: maps a drive-level vector to front-gate voltages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpinEncoder {
    /// Voltage of a logic `1` input.
    pub v_high: f64,
    /// Voltage of a logic `0` input.
    pub v_low: f64,
}

impl SpinEncoder {
    /// The paper's read levels: 1 V / 0 V.
    pub fn paper() -> SpinEncoder {
        SpinEncoder {
            v_high: 1.0,
            v_low: 0.0,
        }
    }

    /// Encode drive levels into line voltages.
    pub fn encode(&self, levels: &[u8]) -> Vec<f64> {
        levels
            .iter()
            .map(|&b| if b > 0 { self.v_high } else { self.v_low })
            .collect()
    }
}

/// The temperature encoder: maps a normalized annealing factor request
/// to a quantized back-gate voltage (the BG DAC of Fig. 6d).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperatureEncoder {
    /// Full-scale back-gate voltage (paper: 0.7 V).
    pub vbg_max: f64,
    /// DAC step (paper: 0.01 V).
    pub step: f64,
}

impl TemperatureEncoder {
    /// The paper's BG DAC.
    pub fn paper() -> TemperatureEncoder {
        TemperatureEncoder {
            vbg_max: 0.7,
            step: 0.01,
        }
    }

    /// Number of distinct output levels.
    pub fn level_count(&self) -> usize {
        (self.vbg_max / self.step).round() as usize + 1
    }

    /// Quantize a fraction of full scale to the DAC grid.
    pub fn encode_fraction(&self, fraction: f64) -> f64 {
        let v = (fraction.clamp(0.0, 1.0)) * self.vbg_max;
        (v / self.step).round() * self.step
    }
}

/// The shift-and-add pipeline: recombines per-bit-slice ADC codes into a
/// magnitude, then applies the polarity/phase signs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShiftAdd {
    /// Bits per weight (`k`).
    pub bits: u8,
}

impl ShiftAdd {
    /// Combine bit-slice values with binary weights: `Σ 2^b · code_b`.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != bits`.
    pub fn combine(&self, codes: &[f64]) -> f64 {
        assert_eq!(codes.len(), self.bits as usize, "one code per bit slice");
        codes
            .iter()
            .enumerate()
            .map(|(b, &c)| (1u64 << b) as f64 * c)
            .sum()
    }

    /// Apply the polarity-plane and input-phase signs to a combined
    /// magnitude: `value · pos/neg-plane sign · row-phase sign · column
    /// sign`.
    pub fn apply_signs(
        &self,
        magnitude: f64,
        plane_positive: bool,
        phase_positive: bool,
        column_sign: i8,
    ) -> f64 {
        let plane = if plane_positive { 1.0 } else { -1.0 };
        let phase = if phase_positive { 1.0 } else { -1.0 };
        magnitude * plane * phase * column_sign as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_split_partitions_support() {
        let v = [1i8, -1, 0, 1, -1, 0];
        let (pos, neg) = split_input_phases(&v);
        assert_eq!(pos, vec![1, 0, 0, 1, 0, 0]);
        assert_eq!(neg, vec![0, 1, 0, 0, 1, 0]);
        // Supports are disjoint and zeros drive neither phase.
        for i in 0..v.len() {
            assert!(pos[i] & neg[i] == 0);
            if v[i] == 0 {
                assert_eq!(pos[i] + neg[i], 0);
            }
        }
    }

    #[test]
    fn spin_encoder_levels() {
        let enc = SpinEncoder::paper();
        assert_eq!(enc.encode(&[1, 0, 1]), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn temperature_encoder_has_71_levels() {
        let enc = TemperatureEncoder::paper();
        assert_eq!(enc.level_count(), 71);
        assert!((enc.encode_fraction(0.5) - 0.35).abs() < 1e-12);
        assert_eq!(enc.encode_fraction(-1.0), 0.0);
        assert!((enc.encode_fraction(2.0) - 0.7).abs() < 1e-12);
        // Output always on the grid.
        for k in 0..=100 {
            let v = enc.encode_fraction(k as f64 / 100.0);
            let steps = v / enc.step;
            assert!((steps - steps.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn shift_add_binary_weights() {
        let sa = ShiftAdd { bits: 4 };
        // codes for bits 0..3: value = 1·1 + 2·0 + 4·3 + 8·2 = 29.
        assert_eq!(sa.combine(&[1.0, 0.0, 3.0, 2.0]), 29.0);
    }

    #[test]
    fn sign_application() {
        let sa = ShiftAdd { bits: 1 };
        assert_eq!(sa.apply_signs(5.0, true, true, 1), 5.0);
        assert_eq!(sa.apply_signs(5.0, false, true, 1), -5.0);
        assert_eq!(sa.apply_signs(5.0, true, false, 1), -5.0);
        assert_eq!(sa.apply_signs(5.0, false, false, -1), -5.0);
    }

    #[test]
    #[should_panic(expected = "one code per bit slice")]
    fn shift_add_checks_arity() {
        let sa = ShiftAdd { bits: 3 };
        let _ = sa.combine(&[1.0]);
    }
}
