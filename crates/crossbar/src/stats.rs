//! Hardware activity counters.
//!
//! The crossbar simulator records *what the hardware did* — ADC
//! conversions, sequential conversion slots, driven rows/columns, back-gate
//! updates — and the `fecim-hwcost` crate turns those counts into energy
//! and latency (the methodology behind paper Figs. 8–9).

use serde::{Deserialize, Serialize};

/// Cumulative activity of a crossbar (and its periphery) over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityStats {
    /// Array-level operations issued (one per energy-form evaluation).
    pub array_ops: u64,
    /// Row-input passes (positive/negative input phases count separately).
    pub row_passes: u64,
    /// Individual ADC conversions performed.
    pub adc_conversions: u64,
    /// Sequential ADC time slots: conversions that could not run in
    /// parallel because they share a multiplexed ADC.
    pub adc_slots: u64,
    /// Cells that actively conducted (row driven AND nonzero stored bit AND
    /// column selected).
    pub cells_activated: u64,
    /// Row-driver activations.
    pub rows_driven: u64,
    /// Column (DL) driver activations.
    pub columns_driven: u64,
    /// Back-gate DAC updates (the in-situ temperature encoder).
    pub bg_updates: u64,
    /// Digital shift-and-add operations.
    pub shift_add_ops: u64,
    /// Output-buffer writes.
    pub buffer_writes: u64,
    /// Physical tiles that participated in a read: tiles whose row range
    /// held a driven row AND whose column range held a selected group.
    /// The monolithic array counts as one tile; a [`crate::TiledCrossbar`]
    /// counts only the activated subset, which is what lets `fecim-hwcost`
    /// scale array energy with activated tiles instead of whole-array `n`.
    pub tiles_activated: u64,
    /// Exponential-function evaluations (baseline annealers only; recorded
    /// here so one report covers the whole iteration).
    pub exp_evaluations: u64,
}

impl ActivityStats {
    /// All-zero counters.
    pub fn new() -> ActivityStats {
        ActivityStats::default()
    }

    /// Add another stats block into this one.
    pub fn merge(&mut self, other: &ActivityStats) {
        self.array_ops += other.array_ops;
        self.row_passes += other.row_passes;
        self.adc_conversions += other.adc_conversions;
        self.adc_slots += other.adc_slots;
        self.cells_activated += other.cells_activated;
        self.rows_driven += other.rows_driven;
        self.columns_driven += other.columns_driven;
        self.bg_updates += other.bg_updates;
        self.shift_add_ops += other.shift_add_ops;
        self.buffer_writes += other.buffer_writes;
        self.tiles_activated += other.tiles_activated;
        self.exp_evaluations += other.exp_evaluations;
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = ActivityStats::default();
    }

    /// Average ADC conversions per array operation.
    pub fn conversions_per_op(&self) -> f64 {
        if self.array_ops == 0 {
            return 0.0;
        }
        self.adc_conversions as f64 / self.array_ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = ActivityStats::new();
        let b = ActivityStats {
            array_ops: 1,
            row_passes: 2,
            adc_conversions: 3,
            adc_slots: 4,
            cells_activated: 5,
            rows_driven: 6,
            columns_driven: 7,
            bg_updates: 8,
            shift_add_ops: 9,
            buffer_writes: 10,
            tiles_activated: 12,
            exp_evaluations: 11,
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.adc_conversions, 6);
        assert_eq!(a.exp_evaluations, 22);
        assert_eq!(a.buffer_writes, 20);
        assert_eq!(a.tiles_activated, 24);
    }

    #[test]
    fn conversions_per_op_handles_zero() {
        let s = ActivityStats::new();
        assert_eq!(s.conversions_per_op(), 0.0);
        let s2 = ActivityStats {
            array_ops: 4,
            adc_conversions: 8,
            ..Default::default()
        };
        assert_eq!(s2.conversions_per_op(), 2.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = ActivityStats {
            array_ops: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, ActivityStats::new());
    }
}
