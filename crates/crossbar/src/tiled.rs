//! Tiled crossbar composition for beyond-array-size instances.
//!
//! Real FeFET arrays are fixed-size: the experimental FeCiM annealer
//! demonstrates small arrays only, and scaled systems compose fixed
//! in-memory tiles (LIMO-style). [`TiledCrossbar`] maps an `n × n`
//! coupling matrix onto a grid of `R × R`-block physical tiles of
//! `tile_rows` rows × `tile_rows` column groups each (`tile_rows · k`
//! physical columns per polarity plane):
//!
//! * **Column stripes** partition the column groups. Each stripe owns its
//!   own bank of `mux_ratio`-to-1 SAR ADCs, so stripes convert in
//!   parallel and their de-quantized partial sums are aggregated
//!   digitally — exactly the digital per-column combination the
//!   monolithic array already performs.
//! * **Row bands** partition the rows. Tiles stacked in one stripe abut
//!   vertically and chain their bit lines: the partial currents of the
//!   activated row bands sum in analog on the shared line before the
//!   stripe ADC converts once. The ADC full scale therefore spans the
//!   full chained column (the monolithic full scale, partitioned
//!   consistently across the stripes' banks).
//!
//! That composition makes the tiled read **bit-identical** to the
//! monolithic [`Crossbar`](crate::Crossbar) in [`Fidelity::Ideal`] mode —
//! same global quantization, same per-column analog sums in the same
//! accumulation order, same single ADC quantization point — for *any*
//! tile size, including sizes that do not divide `n`. That exact
//! equivalence is the adversarial test surface of the whole subsystem
//! (see the `tiled_equivalence` proptests).
//!
//! In [`Fidelity::DeviceAccurate`] mode each tile owns its own device
//! story: a variation map drawn from a per-tile seed derived
//! deterministically from the config seed, and tile-local wire
//! parasitics (shorter lines than the monolithic array — the classic
//! tiling benefit of bounded IR drop).
//!
//! Activity accounting reflects the physical partition: only tiles whose
//! row range holds a driven row *and* whose stripe holds a selected
//! column group activate ([`ActivityStats::tiles_activated`]), row
//! segments toggle per activated tile, and ADC serialization is the
//! worst stripe rather than the whole-array bank.
//!
//! ## Parallel sensing
//!
//! Column stripes convert on physically independent SAR ADC banks, so the
//! simulator mirrors that independence in wall-clock: large reads fan the
//! per-stripe sensing work out across threads ([`SensingMode`]). The unit
//! of parallel work is a *(sign pass, stripe, column chunk)* — a chained
//! column sense spans every row-band tile of its stripe as one analog sum
//! with a single quantization point, so it cannot be split further without
//! changing the physics. Determinism is by construction, not by luck:
//! every chunk's per-column terms are computed independently and then
//! accumulated on the calling thread in exactly the sequential order
//! (sign pass, then stripe-ascending, then column-ascending), so results
//! are **bit-identical at any thread count** and still bit-identical to
//! the monolithic [`Crossbar`](crate::Crossbar) in [`Fidelity::Ideal`]
//! mode. Activity counters are likewise accumulated after the join on the
//! owner thread — no locks or atomics serialize the hot sensing loop.
//!
//! Read noise parallelizes too: the multiplicative noise of
//! [`Fidelity::DeviceAccurate`] reads comes from a counter-based
//! generator ([`fecim_device::ReadNoise`]), so every draw is a pure
//! function of `(noise key, read ordinal, row, column)` rather than of
//! the traversal order. The array bumps one monotonic `read_ordinal`
//! per read and any thread can evaluate any cell's draw independently —
//! noisy device-accurate sensing takes the same fan-out as Ideal mode
//! and stays bit-identical at every thread count.

use rayon::prelude::*;

use fecim_device::{DgFefet, ReadNoise, StoredBit, VariationSampler};
use fecim_ising::Coupling;

use crate::adc::{MuxAssignment, SarAdc};
use crate::array::{
    device_cell_current, ideal_cell_factor, read_noise_key, vbg_for_factor, CrossbarConfig,
    Fidelity, InSituArray,
};
use crate::parasitics::ArrayWires;
use crate::quant::QuantizedCoupling;
use crate::stats::ActivityStats;

/// Default physical tile height (rows), matching common FeFET macro
/// sizes.
pub const DEFAULT_TILE_ROWS: usize = 256;

/// Smallest sensed-column count for which [`SensingMode::Auto`] fans out:
/// below this the thread-dispatch overhead dwarfs the sensing work (the
/// in-situ incremental read touches only `t ≈ 2` columns and must stay on
/// the calling thread).
const AUTO_PARALLEL_MIN_COLUMNS: usize = 64;

/// Floor on columns per parallel work chunk: small enough to
/// load-balance stripes of uneven occupancy, large enough that a chunk
/// amortizes its dispatch. The actual chunk adapts upward so a read
/// produces only a few chunks per worker (see `read_columns`).
const PARALLEL_COLUMN_CHUNK: usize = 32;

/// How [`TiledCrossbar`] schedules per-stripe sensing across threads.
///
/// Whatever the mode, results are bit-identical: the parallel reduction
/// replays the sequential accumulation order. The mode only trades
/// wall-clock for thread dispatch overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SensingMode {
    /// Sense every stripe on the calling thread, in stripe order.
    Sequential,
    /// Fan out across threads when the read senses enough columns to
    /// amortize the dispatch cost (the default).
    #[default]
    Auto,
    /// Fan out for every parallelizable read regardless of size
    /// (benchmarking and adversarial determinism tests).
    Parallel,
}

/// One fixed-size physical tile: the block of couplings with rows in
/// `[row_start, row_start + row_count)` and column groups in its stripe.
#[derive(Debug, Clone)]
struct Tile {
    /// First global row held by this tile.
    row_start: usize,
    /// Rows held by this tile (`tile_rows`, or the remainder band).
    row_count: usize,
    /// Per *local* column group: sorted `(local_row, pos_code, neg_code)`
    /// entries — the tile's own quantized cells.
    columns: Vec<Vec<(u32, u8, u8)>>,
    /// Per-cell programmed threshold offsets, aligned with `columns`
    /// (device-accurate mode; drawn from this tile's own seed).
    vth_offsets: Vec<Vec<f32>>,
    /// Tile-local wire parasitics (lines span only the tile).
    wires: ArrayWires,
}

/// A coupling matrix mapped onto a grid of fixed-size DG FeFET tiles.
///
/// Construction, configuration and the two read operations mirror
/// [`Crossbar`](crate::Crossbar); see the module docs for the
/// composition rules and the equivalence guarantee.
#[derive(Debug, Clone)]
pub struct TiledCrossbar {
    config: CrossbarConfig,
    tile_rows: usize,
    /// Bands per axis: `ceil(n / tile_rows)`.
    bands: usize,
    /// Matrix dimension `n` (the cells themselves live in the tiles; the
    /// global [`QuantizedCoupling`] is only a programming-time artifact,
    /// so the array does not hold every code twice).
    n: usize,
    /// Global quantization step (J units per code LSB), shared by every
    /// tile.
    scale: f64,
    adc: SarAdc,
    /// Per column stripe: the stripe's own multiplexed ADC bank.
    stripe_mux: Vec<MuxAssignment>,
    /// Tiles in row-band-major order: `tiles[band_r * bands + band_c]`.
    tiles: Vec<Tile>,
    cell: DgFefet,
    full_scale_current: f64,
    /// Counter-based multiplicative read noise, keyed per array.
    noise: ReadNoise,
    /// Monotonic read counter: one bump per `read_columns`, addressing
    /// the noise draws of that read.
    read_ordinal: u64,
    sensing: SensingMode,
    stats: ActivityStats,
}

/// Read-level sensing context shared by every column sense of one read:
/// the annealing factor, the back-gate bias it implies, the fidelity
/// switch, and the read's noise-counter ordinal.
#[derive(Debug, Clone, Copy)]
struct SenseContext {
    factor: f64,
    vbg: f64,
    device_mode: bool,
    ordinal: u64,
}

/// The splitmix64 finalizer: the one bit-mixing primitive behind every
/// derived seed in this crate (per-tile variation maps here, per-batch
/// instance seeds in `batch`), so the avalanche behavior can only ever
/// change in one place.
pub(crate) fn splitmix64_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-tile seed: a splitmix64 finalizer over the config
/// seed and the tile's grid coordinates, so every tile draws an
/// independent — but fully reproducible — variation map.
fn tile_seed(base: u64, band_r: usize, band_c: usize) -> u64 {
    splitmix64_finalize(base ^ ((band_r as u64) << 32) ^ (band_c as u64) ^ 0x9E37_79B9_7F4A_7C15)
}

impl TiledCrossbar {
    /// Program a coupling matrix onto a grid of `tile_rows`-row tiles.
    ///
    /// Quantization is global (one `max|J|` full scale shared by every
    /// tile — the same codes the monolithic array would hold), then each
    /// tile receives its block of cells and samples its own variation
    /// map from a seed derived from `config.seed` and its grid position.
    ///
    /// # Panics
    ///
    /// Panics if the coupling is empty or `tile_rows == 0`.
    pub fn program<C: Coupling>(
        coupling: &C,
        config: CrossbarConfig,
        tile_rows: usize,
    ) -> TiledCrossbar {
        let n = coupling.dimension();
        assert!(n > 0, "empty coupling matrix");
        assert!(tile_rows > 0, "tile_rows must be positive");
        let quant = QuantizedCoupling::from_coupling(coupling, config.quant_bits);
        let bands = n.div_ceil(tile_rows);
        // The stripe ADC converts the full chained column: same full
        // scale as the monolithic array, which is what keeps Ideal-mode
        // reads bit-identical.
        let adc = SarAdc::new(config.adc_bits, n as f64);
        let k = config.quant_bits as usize;

        let mut stripe_mux = Vec::with_capacity(bands);
        let mut tiles = vec![
            Tile {
                row_start: 0,
                row_count: 0,
                columns: Vec::new(),
                vth_offsets: Vec::new(),
                wires: ArrayWires::new(1, 1, config.wires),
            };
            bands * bands
        ];
        for band_c in 0..bands {
            let col_start = band_c * tile_rows;
            let col_count = tile_rows.min(n - col_start);
            stripe_mux.push(if config.interleaved_mux {
                MuxAssignment::interleaved(col_count, config.mux_ratio)
            } else {
                MuxAssignment::blocked(col_count, config.mux_ratio)
            });
            for band_r in 0..bands {
                let row_start = band_r * tile_rows;
                let row_count = tile_rows.min(n - row_start);
                let tile = &mut tiles[band_r * bands + band_c];
                tile.row_start = row_start;
                tile.row_count = row_count;
                tile.columns = vec![Vec::new(); col_count];
                tile.wires =
                    ArrayWires::new(row_count.max(1), (col_count * k).max(1), config.wires);
            }
            // Distribute the stripe's cells across its row bands; entries
            // stay sorted by global row, so per-tile local order equals
            // the monolithic accumulation order.
            for local_j in 0..col_count {
                let j = col_start + local_j;
                for &(row, pos, neg) in quant.column(j) {
                    let band_r = row as usize / tile_rows;
                    let tile = &mut tiles[band_r * bands + band_c];
                    let local_row = row - (tile.row_start as u32);
                    tile.columns[local_j].push((local_row, pos, neg));
                }
            }
        }
        // Per-tile variation maps (write-verify pass per tile).
        for band_r in 0..bands {
            for band_c in 0..bands {
                let tile = &mut tiles[band_r * bands + band_c];
                let mut sampler =
                    VariationSampler::new(config.variation, tile_seed(config.seed, band_r, band_c));
                tile.vth_offsets = tile
                    .columns
                    .iter()
                    .map(|col| {
                        col.iter()
                            .map(|_| (sampler.d2d_vth_offset() + sampler.c2c_vth_offset()) as f32)
                            .collect()
                    })
                    .collect();
            }
        }

        let mut cell = DgFefet::new(config.device);
        cell.program(StoredBit::One);
        let full_scale_current = cell.full_scale_current();
        let noise = ReadNoise::new(read_noise_key(config.seed), config.variation.read_noise_rel);
        TiledCrossbar {
            config,
            tile_rows,
            bands,
            n,
            scale: quant.scale(),
            adc,
            stripe_mux,
            tiles,
            cell,
            full_scale_current,
            noise,
            read_ordinal: 0,
            sensing: SensingMode::default(),
            stats: ActivityStats::new(),
        }
    }

    /// Re-program the array's stochastic state from `seed` as a
    /// write-verify pass would for a new tenant: every tile redraws its
    /// variation map from the seed-derived per-tile streams, the read
    /// noise re-keys, and the read ordinal restarts. After `reseed(s)`
    /// the array reads bit-identically to a freshly
    /// [`program`](TiledCrossbar::program)med one whose config carries
    /// seed `s` — which is what makes batched trials placement- and
    /// admission-order-independent (the trial, not the slot, owns the
    /// silicon).
    ///
    /// The quantized couplings, tile layout, activity counters and
    /// sensing mode are untouched.
    pub fn reseed(&mut self, seed: u64) {
        self.config.seed = seed;
        for band_r in 0..self.bands {
            for band_c in 0..self.bands {
                let tile = &mut self.tiles[band_r * self.bands + band_c];
                let mut sampler =
                    VariationSampler::new(self.config.variation, tile_seed(seed, band_r, band_c));
                tile.vth_offsets = tile
                    .columns
                    .iter()
                    .map(|col| {
                        col.iter()
                            .map(|_| (sampler.d2d_vth_offset() + sampler.c2c_vth_offset()) as f32)
                            .collect()
                    })
                    .collect();
            }
        }
        self.noise = ReadNoise::new(read_noise_key(seed), self.config.variation.read_noise_rel);
        self.read_ordinal = 0;
    }

    /// Override how sensing work is scheduled across threads (results are
    /// bit-identical in every mode; see [`SensingMode`]).
    pub fn with_sensing_mode(mut self, mode: SensingMode) -> TiledCrossbar {
        self.sensing = mode;
        self
    }

    /// Set the sensing schedule in place (see [`SensingMode`]).
    pub fn set_sensing_mode(&mut self, mode: SensingMode) {
        self.sensing = mode;
    }

    /// The configured sensing schedule.
    pub fn sensing_mode(&self) -> SensingMode {
        self.sensing
    }

    /// Matrix dimension `n` (spins).
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// The configured tile height (rows per tile).
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Tile grid as `(row_bands, column_stripes)`.
    pub fn tile_grid(&self) -> (usize, usize) {
        (self.bands, self.bands)
    }

    /// Total number of physical tiles instantiated.
    pub fn tile_count(&self) -> usize {
        self.bands * self.bands
    }

    /// The global quantization step (J units per code LSB) shared by
    /// every tile — the same step the monolithic array would use.
    pub fn quant_scale(&self) -> f64 {
        self.scale
    }

    /// The configuration used to build this array.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Accumulated activity since construction or the last
    /// [`TiledCrossbar::reset_stats`].
    pub fn stats(&self) -> &ActivityStats {
        &self.stats
    }

    /// Clear the activity counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Normalized ideal-cell current at back-gate voltage `vbg` — the
    /// hardware annealing factor (shared back-gate DAC drives every
    /// activated tile's plane).
    pub fn cell_factor(&self, vbg: f64) -> f64 {
        ideal_cell_factor(&self.cell, self.full_scale_current, vbg)
    }

    /// The in-situ incremental-E read `σ_rᵀ J σ_c · factor`: only the
    /// stripes holding flipped-spin column groups and the row bands
    /// holding driven rows activate.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths differ from the array dimension.
    pub fn incremental_form(&mut self, sigma_r: &[i8], sigma_c: &[i8], factor: f64) -> f64 {
        let n = self.dimension();
        assert_eq!(sigma_r.len(), n, "sigma_r length mismatch");
        assert_eq!(sigma_c.len(), n, "sigma_c length mismatch");
        let active: Vec<usize> = (0..n).filter(|&j| sigma_c[j] != 0).collect();
        let stripes = self.stripe_partition(&active);
        self.stats.array_ops += 1;
        // Tiles that participate: stripes holding a selected column group
        // × row bands holding a driven row.
        let activated = stripes.len() as u64 * self.driven_band_count(sigma_r);
        self.stats.tiles_activated += activated;
        // The BG DAC refresh reaches each activated tile's back-gate
        // plane (one update for the monolithic/degenerate case).
        self.stats.bg_updates += activated.max(1);
        self.read_columns(sigma_r, Some(sigma_c), &active, &stripes, factor)
    }

    /// The conventional direct-E read `σᵀJσ`: every stripe activates and
    /// converts on its own ADC bank.
    ///
    /// # Panics
    ///
    /// Panics if `sigma.len()` differs from the array dimension.
    pub fn vmv(&mut self, sigma: &[i8]) -> f64 {
        let n = self.dimension();
        assert_eq!(sigma.len(), n, "sigma length mismatch");
        let active: Vec<usize> = (0..n).collect();
        let stripes = self.stripe_partition(&active);
        self.stats.array_ops += 1;
        self.stats.tiles_activated += stripes.len() as u64 * self.driven_band_count(sigma);
        self.read_columns(sigma, None, &active, &stripes, 1.0)
    }

    /// The full matrix-vector read: drive every row with `σ` and return
    /// the per-column digital outputs `(Jσ)_j` in coupling units — one
    /// array read regardless of `n`, the synchronous update primitive
    /// of the simulated-bifurcation engines.
    ///
    /// Every stripe activates and converts on its own ADC bank; each
    /// chained column quantizes once per (plane, bit slice) exactly as
    /// in [`TiledCrossbar::vmv`], so Ideal-mode outputs are
    /// **bit-identical per column** to the monolithic
    /// [`Crossbar::mvm`](crate::Crossbar::mvm) for any tile size and
    /// any [`SensingMode`]. Unlike `vmv` there is no cross-stripe
    /// digital aggregation — each output column lives in exactly one
    /// stripe — and the whole vector leaves the array digitally
    /// (`buffer_writes += n`).
    ///
    /// # Panics
    ///
    /// Panics if `sigma.len()` differs from the array dimension.
    pub fn mvm(&mut self, sigma: &[i8]) -> Vec<f64> {
        let n = self.dimension();
        assert_eq!(sigma.len(), n, "sigma length mismatch");
        let active: Vec<usize> = (0..n).collect();
        let stripes = self.stripe_partition(&active);
        self.stats.array_ops += 1;
        self.stats.tiles_activated += stripes.len() as u64 * self.driven_band_count(sigma);

        let k = self.config.quant_bits as usize;
        let device_mode = self.config.fidelity == Fidelity::DeviceAccurate;
        // One noise-counter ordinal per product: every driven cell is
        // sensed exactly once, so `(ordinal, row, col)` addresses every
        // draw no matter which thread evaluates it.
        let ordinal = self.read_ordinal;
        self.read_ordinal += 1;
        let ctx = SenseContext {
            factor: 1.0,
            vbg: if device_mode {
                vbg_for_factor(&self.cell, self.full_scale_current, 1.0)
            } else {
                0.0
            },
            device_mode,
            ordinal,
        };

        let signs = [1i8, -1i8];
        let driven_maps: Vec<Vec<bool>> = signs
            .iter()
            .map(|&sign| sigma.iter().map(|&r| r == sign).collect())
            .collect();

        let mut local_scratch: Vec<usize> = Vec::new();
        for driven in &driven_maps {
            self.stats.row_passes += 1;
            let driven_count = driven.iter().filter(|&&d| d).count() as u64;
            self.stats.rows_driven += driven_count * stripes.len() as u64;
            self.stats.columns_driven += n as u64;
            self.stats.adc_conversions += (n * 2 * k) as u64;
            let mut slots = 0usize;
            for (s, range) in &stripes {
                local_scratch.clear();
                local_scratch.extend(
                    active[range.clone()]
                        .iter()
                        .map(|&j| j - s * self.tile_rows),
                );
                slots = slots.max(self.stripe_mux[*s].slots_for(&local_scratch, k));
            }
            self.stats.adc_slots += slots as u64;
            self.stats.shift_add_ops += (n * 2 * k) as u64;
        }

        let fan_out = match self.sensing {
            SensingMode::Sequential => false,
            SensingMode::Auto => n >= AUTO_PARALLEL_MIN_COLUMNS,
            SensingMode::Parallel => n > 0,
        } && rayon::current_num_threads() > 1;

        let mut out = vec![0.0f64; n];
        let mut cells_activated = 0u64;
        if fan_out {
            let chunk_cols =
                PARALLEL_COLUMN_CHUNK.max(n.div_ceil(4 * rayon::current_num_threads()));
            let mut items: Vec<(usize, usize, std::ops::Range<usize>)> = Vec::new();
            for sign_idx in 0..signs.len() {
                for (stripe, range) in &stripes {
                    let mut start = range.start;
                    while start < range.end {
                        let end = (start + chunk_cols).min(range.end);
                        items.push((sign_idx, *stripe, start..end));
                        start = end;
                    }
                }
            }
            let this: &TiledCrossbar = self;
            let chunks: Vec<(usize, Vec<f64>, u64)> = items
                .into_par_iter()
                .map(|(sign_idx, stripe, cols)| {
                    let driven = &driven_maps[sign_idx];
                    let start = cols.start;
                    let mut terms = Vec::with_capacity(cols.len());
                    let mut activated = 0u64;
                    for &j in &active[cols] {
                        let (pos_val, neg_val, cells) =
                            this.sense_chained_column(stripe, j, driven, ctx);
                        activated += cells;
                        terms.push(f64::from(signs[sign_idx]) * (pos_val - neg_val));
                    }
                    (start, terms, activated)
                })
                .collect();
            // Per-column accumulation in item order replays the serial
            // sign-pass order exactly, so the sum of the two pass terms
            // is bit-identical at any thread count.
            for (start, terms, activated) in chunks {
                for (offset, term) in terms.into_iter().enumerate() {
                    out[active[start + offset]] += term;
                }
                cells_activated += activated;
            }
        } else {
            for (sign_idx, &sign) in signs.iter().enumerate() {
                let driven = &driven_maps[sign_idx];
                for (stripe, range) in &stripes {
                    for &j in &active[range.clone()] {
                        let (pos_val, neg_val, cells) =
                            self.sense_chained_column(*stripe, j, driven, ctx);
                        cells_activated += cells;
                        out[j] += f64::from(sign) * (pos_val - neg_val);
                    }
                }
            }
        }
        self.stats.cells_activated += cells_activated;
        // One buffer write per column output (the vector leaves the
        // array digitally, column by column).
        self.stats.buffer_writes += n as u64;
        for value in &mut out {
            *value *= self.scale;
        }
        out
    }

    /// Contiguous per-stripe ranges over the (sorted) active column list:
    /// `(stripe, start..end)` index ranges into `active`, ascending — the
    /// single partition both the activation count and the read reuse.
    fn stripe_partition(&self, active: &[usize]) -> Vec<(usize, std::ops::Range<usize>)> {
        let mut parts: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for (idx, &j) in active.iter().enumerate() {
            let s = j / self.tile_rows;
            match parts.last_mut() {
                Some((stripe, range)) if *stripe == s => range.end = idx + 1,
                _ => parts.push((s, idx..idx + 1)),
            }
        }
        parts
    }

    /// Row bands holding at least one nonzero row input.
    fn driven_band_count(&self, rows: &[i8]) -> u64 {
        rows.chunks(self.tile_rows)
            .filter(|band| band.iter().any(|&v| v != 0))
            .count() as u64
    }

    /// Shared signal chain, mirroring the monolithic
    /// [`Crossbar::read_columns`](crate::Crossbar) step for step so that
    /// Ideal-mode outputs are bit-identical; only the *accounting*
    /// differs (per-stripe ADC banks, per-tile row segments).
    ///
    /// Large reads fan the sensing out across threads per
    /// (sign pass, stripe, column chunk); see the module docs for the
    /// determinism argument. Counter accumulation happens on the calling
    /// thread after the join, so [`ActivityStats`] stays a plain struct
    /// and no lock sits inside the sensing loop.
    fn read_columns(
        &mut self,
        rows: &[i8],
        column_select: Option<&[i8]>,
        active: &[usize],
        stripes: &[(usize, std::ops::Range<usize>)],
        factor: f64,
    ) -> f64 {
        let k = self.config.quant_bits as usize;
        let device_mode = self.config.fidelity == Fidelity::DeviceAccurate;
        // Every read gets its own noise-counter ordinal; within one read
        // each driven cell is sensed exactly once (a row conducts in only
        // one sign pass), so `(ordinal, row, col)` addresses every noise
        // draw no matter which thread evaluates it.
        let ordinal = self.read_ordinal;
        self.read_ordinal += 1;
        let ctx = SenseContext {
            factor,
            vbg: if device_mode {
                vbg_for_factor(&self.cell, self.full_scale_current, factor)
            } else {
                0.0
            },
            device_mode,
            ordinal,
        };
        // One scratch buffer for per-stripe local indices, reused across
        // stripes and sign passes.
        let mut local_scratch: Vec<usize> = Vec::new();

        // Per-sign row-drive maps, computed up front so both the stats
        // prologue and the (possibly parallel) sensing share them.
        let signs = [1i8, -1i8];
        let driven_maps: Vec<Vec<bool>> = signs
            .iter()
            .map(|&sign| rows.iter().map(|&r| r == sign).collect())
            .collect();

        for driven in &driven_maps {
            self.stats.row_passes += 1;
            let driven_count = driven.iter().filter(|&&d| d).count() as u64;
            // Row segments toggle once per activated stripe.
            self.stats.rows_driven += driven_count * stripes.len() as u64;
            self.stats.columns_driven += active.len() as u64;
            self.stats.adc_conversions += (active.len() * 2 * k) as u64;
            // Stripe banks convert in parallel; the pass serializes on
            // the busiest stripe.
            let mut slots = 0usize;
            for (s, range) in stripes {
                local_scratch.clear();
                local_scratch.extend(
                    active[range.clone()]
                        .iter()
                        .map(|&j| j - s * self.tile_rows),
                );
                slots = slots.max(self.stripe_mux[*s].slots_for(&local_scratch, k));
            }
            self.stats.adc_slots += slots as u64;
            self.stats.shift_add_ops += (active.len() * 2 * k) as u64;
            // Cross-stripe digital aggregation of the partial sums.
            self.stats.shift_add_ops += stripes.len().saturating_sub(1) as u64;
        }

        // Noise draws are counter-addressed, so every fidelity — noisy
        // device-accurate included — may fan out; only the dispatch
        // economics decide.
        let fan_out = match self.sensing {
            SensingMode::Sequential => false,
            SensingMode::Auto => active.len() >= AUTO_PARALLEL_MIN_COLUMNS,
            SensingMode::Parallel => !active.is_empty(),
        } && rayon::current_num_threads() > 1;

        let mut total_codes = 0.0f64;
        let mut cells_activated = 0u64;
        if fan_out {
            // One work item per (sign pass, stripe, column chunk), in the
            // exact sequential visiting order. Chunks grow with the read
            // so each worker sees only a handful of dispatches (chunk
            // boundaries never affect results — the reduction below is
            // order-exact either way).
            let chunk_cols =
                PARALLEL_COLUMN_CHUNK.max(active.len().div_ceil(4 * rayon::current_num_threads()));
            let mut items: Vec<(usize, usize, std::ops::Range<usize>)> = Vec::new();
            for sign_idx in 0..signs.len() {
                for (stripe, range) in stripes {
                    let mut start = range.start;
                    while start < range.end {
                        let end = (start + chunk_cols).min(range.end);
                        items.push((sign_idx, *stripe, start..end));
                        start = end;
                    }
                }
            }
            let this: &TiledCrossbar = self;
            // Chunk outputs come back in item order (the shim preserves
            // input order); each is the chunk's sensed per-column terms
            // plus its activated-cell count.
            let chunks: Vec<(Vec<f64>, u64)> = items
                .into_par_iter()
                .map(|(sign_idx, stripe, cols)| {
                    let sign = signs[sign_idx];
                    let driven = &driven_maps[sign_idx];
                    let mut terms = Vec::with_capacity(cols.len());
                    let mut activated = 0u64;
                    for &j in &active[cols] {
                        let col_sign = match column_select {
                            Some(sel) => sel[j] as f64,
                            None => rows[j] as f64,
                        };
                        if col_sign == 0.0 {
                            continue;
                        }
                        let (pos_val, neg_val, cells) =
                            this.sense_chained_column(stripe, j, driven, ctx);
                        activated += cells;
                        terms.push(sign as f64 * col_sign * (pos_val - neg_val));
                    }
                    (terms, activated)
                })
                .collect();
            // Deterministic reduction: replay the sequential accumulation
            // order term by term (sign pass, stripe-ascending,
            // column-ascending) so the sum is bit-identical to the serial
            // path at any thread count.
            for (terms, activated) in chunks {
                for term in terms {
                    total_codes += term;
                }
                cells_activated += activated;
            }
        } else {
            // Serial path: same visiting order, same counter-addressed
            // noise draws — merely evaluated on the calling thread.
            for (sign_idx, &sign) in signs.iter().enumerate() {
                let driven = &driven_maps[sign_idx];
                for (stripe, range) in stripes {
                    for &j in &active[range.clone()] {
                        let col_sign = match column_select {
                            Some(sel) => sel[j] as f64,
                            None => rows[j] as f64,
                        };
                        if col_sign == 0.0 {
                            continue;
                        }
                        let (pos_val, neg_val, cells) =
                            self.sense_chained_column(*stripe, j, driven, ctx);
                        cells_activated += cells;
                        total_codes += sign as f64 * col_sign * (pos_val - neg_val);
                    }
                }
            }
        }
        self.stats.cells_activated += cells_activated;
        self.stats.buffer_writes += 1;
        self.scale * total_codes
    }

    /// Sense one column group through the stripe's chained bit lines:
    /// every row band contributes its cells' currents to the shared
    /// per-bit-slice analog sums, then the stripe ADC converts each sum
    /// once and the digital side shift-and-adds — one quantization point
    /// per (plane, bit slice), exactly like the monolithic array.
    ///
    /// Takes `&self` so stripe banks can sense concurrently: the noise
    /// draws are counter-addressed through `ctx.ordinal` (no mutable
    /// generator anywhere), and the caller accumulates the returned
    /// activated-cell count into the stats.
    ///
    /// The accumulation is branch-free over bit slices: stack-resident
    /// `[f64; 8]` lane buffers (`quant_bits ≤ 8`) with a mask-multiply
    /// per lane, so the hot loop auto-vectorizes instead of branching on
    /// every bit of every code and allocates nothing per column.
    fn sense_chained_column(
        &self,
        stripe: usize,
        j: usize,
        driven: &[bool],
        ctx: SenseContext,
    ) -> (f64, f64, u64) {
        let k = self.config.quant_bits as usize;
        let local_j = j - stripe * self.tile_rows;
        let mut pos_bit_sums = [0.0f64; 8];
        let mut neg_bit_sums = [0.0f64; 8];
        let mut activated = 0u64;
        for band_r in 0..self.bands {
            let tile = &self.tiles[band_r * self.bands + stripe];
            let offsets = &tile.vth_offsets[local_j];
            for (idx, &(local_row, pos, neg)) in tile.columns[local_j].iter().enumerate() {
                let global_row = tile.row_start + local_row as usize;
                if !driven[global_row] {
                    continue;
                }
                let (code, sums) = if pos > 0 {
                    (pos, &mut pos_bit_sums)
                } else {
                    (neg, &mut neg_bit_sums)
                };
                let cell_current = if ctx.device_mode {
                    device_cell_current(
                        &self.cell,
                        offsets[idx] as f64,
                        ctx.vbg,
                        self.full_scale_current,
                        tile.wires.ir_attenuation(local_row as usize),
                        self.noise.gain(ctx.ordinal, global_row, j),
                    )
                } else {
                    ctx.factor
                };
                for (b, sum) in sums.iter_mut().take(k).enumerate() {
                    *sum += cell_current * f64::from((code >> b) & 1);
                }
                activated += u64::from(code.count_ones());
            }
        }

        let mut pos_val = 0.0;
        let mut neg_val = 0.0;
        for b in 0..k {
            let weight = (1u64 << b) as f64;
            pos_val += weight * self.adc.quantize(pos_bit_sums[b]);
            neg_val += weight * self.adc.quantize(neg_bit_sums[b]);
        }
        (pos_val, neg_val, activated)
    }
}

impl InSituArray for TiledCrossbar {
    fn dimension(&self) -> usize {
        TiledCrossbar::dimension(self)
    }

    fn incremental_form(&mut self, sigma_r: &[i8], sigma_c: &[i8], factor: f64) -> f64 {
        TiledCrossbar::incremental_form(self, sigma_r, sigma_c, factor)
    }

    fn vmv(&mut self, sigma: &[i8]) -> f64 {
        TiledCrossbar::vmv(self, sigma)
    }

    fn mvm(&mut self, sigma: &[i8]) -> Vec<f64> {
        TiledCrossbar::mvm(self, sigma)
    }

    fn stats(&self) -> &ActivityStats {
        TiledCrossbar::stats(self)
    }

    fn reset_stats(&mut self) {
        TiledCrossbar::reset_stats(self);
    }

    fn cell_factor(&self, vbg: f64) -> f64 {
        TiledCrossbar::cell_factor(self, vbg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Crossbar;
    use fecim_device::VariationConfig;
    use fecim_ising::{DenseCoupling, FlipMask, SpinVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense(n: usize, seed: u64) -> DenseCoupling {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseCoupling::random(n, 0.4, 1.0, &mut rng)
    }

    fn config(bits: u8) -> CrossbarConfig {
        CrossbarConfig {
            quant_bits: bits,
            adc_bits: 13,
            ..CrossbarConfig::paper_defaults()
        }
    }

    #[test]
    fn ideal_vmv_is_bit_identical_for_dividing_and_non_dividing_tiles() {
        let n = 24;
        let m = dense(n, 3);
        let mut mono = Crossbar::program(&m, config(4));
        let mut rng = StdRng::seed_from_u64(4);
        for tile_rows in [3usize, 4, 5, 7, 8, 24, 100] {
            let mut tiled = TiledCrossbar::program(&m, config(4), tile_rows);
            for _ in 0..5 {
                let s = SpinVector::random(n, &mut rng);
                let a = mono.vmv(s.as_slice());
                let b = tiled.vmv(s.as_slice());
                assert_eq!(a, b, "tile_rows={tile_rows}");
            }
        }
    }

    #[test]
    fn ideal_incremental_is_bit_identical_including_scaled_factor() {
        let n = 20;
        let m = dense(n, 7);
        let mut mono = Crossbar::program(&m, config(6));
        let mut rng = StdRng::seed_from_u64(8);
        for tile_rows in [4usize, 6, 7, 20] {
            let mut tiled = TiledCrossbar::program(&m, config(6), tile_rows);
            for t in [1usize, 2, 4] {
                let s = SpinVector::random(n, &mut rng);
                let mask = FlipMask::random(t, n, &mut rng);
                let s_new = s.flipped_by(&mask);
                let r = s_new.rest_vector(&mask);
                let c = s_new.changed_vector(&mask);
                for factor in [1.0f64, 0.37] {
                    let a = mono.incremental_form(&r, &c, factor);
                    let b = tiled.incremental_form(&r, &c, factor);
                    assert_eq!(a, b, "tile_rows={tile_rows} t={t} factor={factor}");
                }
            }
        }
    }

    #[test]
    fn single_tile_degenerates_to_monolithic_stats() {
        let n = 16;
        let m = dense(n, 11);
        let mut mono = Crossbar::program(&m, config(4));
        let mut tiled = TiledCrossbar::program(&m, config(4), n);
        assert_eq!(tiled.tile_count(), 1);
        let mut rng = StdRng::seed_from_u64(12);
        let s = SpinVector::random(n, &mut rng);
        let mask = FlipMask::random(2, n, &mut rng);
        let s_new = s.flipped_by(&mask);
        let r = s_new.rest_vector(&mask);
        let c = s_new.changed_vector(&mask);
        let _ = mono.incremental_form(&r, &c, 1.0);
        let _ = mono.vmv(s.as_slice());
        let _ = tiled.incremental_form(&r, &c, 1.0);
        let _ = tiled.vmv(s.as_slice());
        assert_eq!(mono.stats(), tiled.stats());
    }

    #[test]
    fn activated_tile_count_tracks_flip_locality() {
        // 16 spins, 4-row tiles → a 4×4 grid. One flipped spin selects one
        // stripe; a dense σ_r drives all four row bands → 4 tiles.
        let n = 16;
        let m = dense(n, 13);
        let mut tiled = TiledCrossbar::program(&m, config(4), 4);
        assert_eq!(tiled.tile_grid(), (4, 4));
        let s = SpinVector::all_up(n);
        let mask = FlipMask::new(vec![5], n);
        let s_new = s.flipped_by(&mask);
        let _ =
            tiled.incremental_form(&s_new.rest_vector(&mask), &s_new.changed_vector(&mask), 1.0);
        assert_eq!(tiled.stats().tiles_activated, 4);
        tiled.reset_stats();
        // Two flips in distinct stripes → 8 tiles.
        let mask = FlipMask::new(vec![1, 9], n);
        let s_new = s.flipped_by(&mask);
        let _ =
            tiled.incremental_form(&s_new.rest_vector(&mask), &s_new.changed_vector(&mask), 1.0);
        assert_eq!(tiled.stats().tiles_activated, 8);
        tiled.reset_stats();
        // Direct read activates the whole grid.
        let _ = tiled.vmv(s.as_slice());
        assert_eq!(tiled.stats().tiles_activated, 16);
    }

    #[test]
    fn per_stripe_adc_banks_avoid_cross_stripe_collisions() {
        // Groups 0 and 16 share a monolithic interleaved ADC
        // (16 mod 8 == 0 mod 8), so the in-situ read serializes 2·k per
        // pass; in 16-group stripes they live on different stripes' banks
        // and convert fully in parallel (k per pass). Full reads stay
        // equal: the banks partition the same total ADC count.
        let n = 64;
        let m = dense(n, 15);
        let mut mono = Crossbar::program(&m, config(4));
        let mut tiled = TiledCrossbar::program(&m, config(4), 16);
        let s = SpinVector::all_up(n);
        let mask = FlipMask::new(vec![0, 16], n);
        let s_new = s.flipped_by(&mask);
        let r = s_new.rest_vector(&mask);
        let c = s_new.changed_vector(&mask);
        let _ = mono.incremental_form(&r, &c, 1.0);
        let _ = tiled.incremental_form(&r, &c, 1.0);
        assert_eq!(mono.stats().adc_slots, 2 * 2 * 4, "collision serializes");
        assert_eq!(
            tiled.stats().adc_slots,
            2 * 4,
            "stripes convert in parallel"
        );
        mono.reset_stats();
        tiled.reset_stats();
        let _ = mono.vmv(s.as_slice());
        let _ = tiled.vmv(s.as_slice());
        assert_eq!(mono.stats().adc_conversions, tiled.stats().adc_conversions);
        assert_eq!(mono.stats().adc_slots, tiled.stats().adc_slots);
    }

    #[test]
    fn device_accurate_tiling_is_deterministic_and_close_to_ideal() {
        let n = 24;
        let m = dense(n, 17);
        let mut cfg = config(8);
        cfg.adc_bits = 14;
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig::typical();
        let mut a = TiledCrossbar::program(&m, cfg.clone(), 7);
        let mut b = TiledCrossbar::program(&m, cfg.clone(), 7);
        let mut ideal = TiledCrossbar::program(&m, config(8), 7);
        let mut rng = StdRng::seed_from_u64(18);
        for _ in 0..5 {
            let s = SpinVector::random(n, &mut rng);
            let mask = FlipMask::random(2, n, &mut rng);
            let s_new = s.flipped_by(&mask);
            let r = s_new.rest_vector(&mask);
            let c = s_new.changed_vector(&mask);
            let va = a.incremental_form(&r, &c, 1.0);
            let vb = b.incremental_form(&r, &c, 1.0);
            assert_eq!(va, vb, "same seed, same tiles, same read");
            let vi = ideal.incremental_form(&r, &c, 1.0);
            if vi.abs() > 2.0 {
                assert_eq!(va.signum(), vi.signum(), "va={va} vi={vi}");
            }
        }
    }

    #[test]
    fn tiles_draw_distinct_variation_maps() {
        // Same coupling block programmed at different grid positions must
        // see different offsets (per-tile seeds differ).
        assert_ne!(tile_seed(1, 0, 0), tile_seed(1, 0, 1));
        assert_ne!(tile_seed(1, 0, 0), tile_seed(1, 1, 0));
        assert_ne!(tile_seed(1, 1, 0), tile_seed(2, 1, 0));
    }

    #[test]
    fn non_divisible_remainder_band_holds_the_tail_rows() {
        let n = 10;
        let m = dense(n, 19);
        let tiled = TiledCrossbar::program(&m, config(4), 4);
        assert_eq!(tiled.tile_grid(), (3, 3));
        assert_eq!(tiled.tiles[0].row_count, 4);
        assert_eq!(tiled.tiles[2 * 3 + 2].row_count, 2);
        assert_eq!(tiled.tiles[2 * 3 + 2].row_start, 8);
    }

    #[test]
    fn parallel_sensing_is_bit_identical_to_sequential_and_monolithic() {
        let n = 96;
        let m = dense(n, 23);
        let mut mono = Crossbar::program(&m, config(4));
        let mut seq =
            TiledCrossbar::program(&m, config(4), 16).with_sensing_mode(SensingMode::Sequential);
        let mut par =
            TiledCrossbar::program(&m, config(4), 16).with_sensing_mode(SensingMode::Parallel);
        let mut rng = StdRng::seed_from_u64(24);
        for _ in 0..4 {
            let s = SpinVector::random(n, &mut rng);
            let e_mono = mono.vmv(s.as_slice());
            assert_eq!(seq.vmv(s.as_slice()), e_mono);
            assert_eq!(par.vmv(s.as_slice()), e_mono);
            let mask = FlipMask::random(3, n, &mut rng);
            let s_new = s.flipped_by(&mask);
            let r = s_new.rest_vector(&mask);
            let c = s_new.changed_vector(&mask);
            let i_mono = mono.incremental_form(&r, &c, 0.37);
            assert_eq!(seq.incremental_form(&r, &c, 0.37), i_mono);
            assert_eq!(par.incremental_form(&r, &c, 0.37), i_mono);
        }
        // The accounting is schedule-independent too.
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn noisy_device_reads_parallelize_bit_identically() {
        // DeviceAccurate with read noise takes the same fan-out as Ideal
        // mode: noise draws are counter-addressed, so forced parallel and
        // sequential sensing read identically — the tentpole contract.
        let n = 48;
        let mut cfg = config(6);
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig::typical();
        assert!(
            cfg.variation.read_noise_rel > 0.0,
            "typical config is noisy"
        );
        let m = dense(n, 25);
        let mut seq =
            TiledCrossbar::program(&m, cfg.clone(), 8).with_sensing_mode(SensingMode::Sequential);
        let mut par = TiledCrossbar::program(&m, cfg, 8).with_sensing_mode(SensingMode::Parallel);
        let mut rng = StdRng::seed_from_u64(26);
        for _ in 0..3 {
            let s = SpinVector::random(n, &mut rng);
            assert_eq!(seq.vmv(s.as_slice()), par.vmv(s.as_slice()));
            let mask = FlipMask::random(3, n, &mut rng);
            let s_new = s.flipped_by(&mask);
            let r = s_new.rest_vector(&mask);
            let c = s_new.changed_vector(&mask);
            assert_eq!(
                seq.incremental_form(&r, &c, 0.63),
                par.incremental_form(&r, &c, 0.63)
            );
        }
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn read_ordinal_advances_the_noise_stream() {
        // Repeating the same noisy read must not repeat the same draws:
        // the per-read ordinal advances the counter stream, modeling a
        // fresh physical noise realization per sense.
        let n = 24;
        let mut cfg = config(6);
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig::typical();
        let m = dense(n, 29);
        let mut tiled = TiledCrossbar::program(&m, cfg, 8);
        let s = SpinVector::all_up(n);
        let first = tiled.vmv(s.as_slice());
        let second = tiled.vmv(s.as_slice());
        assert_ne!(first, second, "noise must vary across reads");
    }

    #[test]
    fn reseed_matches_a_freshly_programmed_array() {
        // reseed(s) re-draws the variation maps, re-keys the noise and
        // restarts the ordinal — the array must read bit-identically to
        // one freshly programmed with seed s, including the noise stream.
        let n = 20;
        let mut cfg = config(6);
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig::typical();
        let m = dense(n, 31);
        let mut cfg_b = cfg.clone();
        cfg_b.seed = 0xBEE5;
        let mut fresh = TiledCrossbar::program(&m, cfg_b, 6);
        let mut reseeded = TiledCrossbar::program(&m, cfg, 6);
        let mut rng = StdRng::seed_from_u64(32);
        // Consume some reads first so the ordinal is mid-stream.
        for _ in 0..3 {
            let s = SpinVector::random(n, &mut rng);
            let _ = reseeded.vmv(s.as_slice());
        }
        reseeded.reseed(0xBEE5);
        for _ in 0..4 {
            let s = SpinVector::random(n, &mut rng);
            assert_eq!(reseeded.vmv(s.as_slice()), fresh.vmv(s.as_slice()));
        }
        assert_eq!(reseeded.config().seed, 0xBEE5);
    }

    #[test]
    fn noiseless_device_accurate_reads_parallelize_bit_identically() {
        // Variation without read noise draws nothing at read time, so the
        // parallel fan-out is allowed and must not change results.
        let n = 64;
        let mut cfg = config(6);
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig::typical();
        cfg.variation.read_noise_rel = 0.0;
        let m = dense(n, 27);
        let mut seq =
            TiledCrossbar::program(&m, cfg.clone(), 16).with_sensing_mode(SensingMode::Sequential);
        let mut par = TiledCrossbar::program(&m, cfg, 16).with_sensing_mode(SensingMode::Parallel);
        let mut rng = StdRng::seed_from_u64(28);
        for _ in 0..3 {
            let s = SpinVector::random(n, &mut rng);
            assert_eq!(seq.vmv(s.as_slice()), par.vmv(s.as_slice()));
        }
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn ideal_mvm_is_bit_identical_to_monolithic_per_column() {
        let n = 24;
        let m = dense(n, 33);
        let mut mono = Crossbar::program(&m, config(4));
        let mut rng = StdRng::seed_from_u64(34);
        for tile_rows in [3usize, 5, 7, 24, 100] {
            let mut tiled = TiledCrossbar::program(&m, config(4), tile_rows);
            for _ in 0..3 {
                let s = SpinVector::random(n, &mut rng);
                let a = mono.mvm(s.as_slice());
                let b = tiled.mvm(s.as_slice());
                assert_eq!(a, b, "tile_rows={tile_rows}");
            }
        }
    }

    #[test]
    fn parallel_mvm_is_bit_identical_to_sequential_including_noisy() {
        let n = 96;
        let m = dense(n, 35);
        for noisy in [false, true] {
            let mut cfg = config(4);
            if noisy {
                cfg.fidelity = Fidelity::DeviceAccurate;
                cfg.variation = VariationConfig::typical();
            }
            let mut seq = TiledCrossbar::program(&m, cfg.clone(), 16)
                .with_sensing_mode(SensingMode::Sequential);
            let mut par =
                TiledCrossbar::program(&m, cfg, 16).with_sensing_mode(SensingMode::Parallel);
            let mut rng = StdRng::seed_from_u64(36);
            for _ in 0..3 {
                let s = SpinVector::random(n, &mut rng);
                assert_eq!(
                    seq.mvm(s.as_slice()),
                    par.mvm(s.as_slice()),
                    "noisy={noisy}"
                );
            }
            assert_eq!(seq.stats(), par.stats());
        }
    }

    #[test]
    fn mvm_handles_zero_entries_and_single_tile_matches_monolithic_stats() {
        // Bit-plane drives carry zeros for absent bits: a zero row must
        // conduct in neither sign pass, and a single-tile grid must
        // account exactly like the monolithic array.
        let n = 16;
        let m = dense(n, 37);
        let mut mono = Crossbar::program(&m, config(4));
        let mut tiled = TiledCrossbar::program(&m, config(4), n);
        let mut sigma = vec![0i8; n];
        for (i, v) in sigma.iter_mut().enumerate() {
            *v = match i % 3 {
                0 => 1,
                1 => -1,
                _ => 0,
            };
        }
        let a = mono.mvm(&sigma);
        let b = tiled.mvm(&sigma);
        assert_eq!(a, b);
        assert_eq!(mono.stats(), tiled.stats());
        // Zero rows contribute nothing: the exact product over the
        // nonzero rows bounds the quantized read.
        for (j, value) in a.iter().enumerate() {
            let exact: f64 = (0..n).map(|i| m.get(i, j) * f64::from(sigma[i])).sum();
            let tol = n as f64 * m.max_abs() / 255.0 + 0.5;
            assert!((value - exact).abs() <= tol, "col {j}: {value} vs {exact}");
        }
    }

    #[test]
    fn zero_flip_mask_returns_zero_and_activates_nothing() {
        let n = 10;
        let m = dense(n, 21);
        let mut tiled = TiledCrossbar::program(&m, config(4), 4);
        let zeros = vec![0i8; n];
        let s = SpinVector::all_up(n);
        assert_eq!(tiled.incremental_form(s.as_slice(), &zeros, 1.0), 0.0);
        assert_eq!(tiled.stats().tiles_activated, 0);
        assert_eq!(tiled.stats().adc_conversions, 0);
    }
}
