//! The CiM crossbar array simulator (paper Fig. 6d).
//!
//! One [`Crossbar`] instance models an `n × (n·k)` array per polarity
//! plane: each coupling `J_ij` occupies a 1×k bit-sliced subarray of DG
//! FeFET cells. Two read operations are provided:
//!
//! * [`Crossbar::incremental_form`] — the proposed in-situ computation
//!   `σ_rᵀ J σ_c · f(T)`: rows carrying `σ_r` on the front gates, columns
//!   selected by `σ_c` on the drain lines, and the annealing factor applied
//!   through the shared back gate. Only the `|F|` column groups of flipped
//!   spins are activated.
//! * [`Crossbar::vmv`] — the conventional direct-E read `σᵀJσ` used by the
//!   baseline annealers (whole array activated, ref [7] style).
//!
//! Both reads run the signal chain of the paper: positive/negative input
//! phases (the crossbar accepts non-negative inputs only), per-bit-slice
//! column currents, multiplexed SAR ADC conversion, digital
//! shift-and-add, and sign recombination — while recording
//! [`ActivityStats`] for the hardware cost model.

use serde::{Deserialize, Serialize};

use fecim_device::{
    DgFefet, DgFefetParams, ReadNoise, StoredBit, VariationConfig, VariationSampler,
};
use fecim_ising::Coupling;

use crate::adc::{MuxAssignment, SarAdc};
use crate::parasitics::{ArrayWires, WireParams};
use crate::quant::QuantizedCoupling;
use crate::stats::ActivityStats;

/// Common read interface of the physical array simulators: the monolithic
/// [`Crossbar`] and the [`TiledCrossbar`](crate::TiledCrossbar) expose the
/// same two measurements, so energy backends and solvers can hold either
/// behind one generic parameter.
pub trait InSituArray {
    /// Matrix dimension `n` (spins).
    fn dimension(&self) -> usize;

    /// The in-situ incremental-E read `σ_rᵀ J σ_c · factor` (see
    /// [`Crossbar::incremental_form`]).
    fn incremental_form(&mut self, sigma_r: &[i8], sigma_c: &[i8], factor: f64) -> f64;

    /// The conventional direct-E read `σᵀJσ` (see [`Crossbar::vmv`]).
    fn vmv(&mut self, sigma: &[i8]) -> f64;

    /// The full matrix-vector read: drive every row with `σ` and return
    /// the per-column digital outputs `(Jσ)_j` in coupling units (see
    /// [`Crossbar::mvm`]). One array read regardless of `n` — the
    /// synchronous update primitive of the simulated-bifurcation
    /// engines.
    fn mvm(&mut self, sigma: &[i8]) -> Vec<f64>;

    /// Accumulated hardware activity.
    fn stats(&self) -> &ActivityStats;

    /// Clear the activity counters.
    fn reset_stats(&mut self);

    /// Normalized per-cell current at back-gate voltage `vbg` (the
    /// hardware annealing factor, see [`Crossbar::cell_factor`]).
    fn cell_factor(&self, vbg: f64) -> f64;
}

/// Normalized current of an ideal stored-'1' cell at back-gate voltage
/// `vbg`: the hardware annealing factor `f` (paper Fig. 6c). Shared by the
/// monolithic and tiled arrays so both read identical cell physics.
pub(crate) fn ideal_cell_factor(cell: &DgFefet, full_scale_current: f64, vbg: f64) -> f64 {
    let i = cell.sl_current(true, true, cell.quantize_vbg(vbg));
    let leak = cell.params().front.i_leak;
    ((i - leak) / full_scale_current).max(0.0)
}

/// Invert the normalized-current curve: the `V_BG` whose ideal cell factor
/// equals `factor` (bisection over the DAC range).
pub(crate) fn vbg_for_factor(cell: &DgFefet, full_scale_current: f64, factor: f64) -> f64 {
    let vmax = cell.params().vbg_max;
    if factor >= ideal_cell_factor(cell, full_scale_current, vmax) {
        return vmax;
    }
    if factor <= 0.0 {
        return 0.0;
    }
    let mut lo = 0.0;
    let mut hi = vmax;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if ideal_cell_factor(cell, full_scale_current, mid) < factor {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The key of an array's counter-based read-noise stream, derived from
/// its programming seed. One place so the monolithic and tiled arrays
/// (and reseeded batched instances) share the identical derivation.
pub(crate) fn read_noise_key(seed: u64) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15
}

/// Device-accurate current of one conducting cell: programmed threshold
/// offset, back-gate bias, source-line IR attenuation and multiplicative
/// read noise. `noise_gain` is the counter-derived factor
/// `1 + rel·N(0,1)` from [`ReadNoise::gain`] (exactly `1.0` in the
/// noiseless case), applied branch-free so noisy and silent reads share
/// one code path.
pub(crate) fn device_cell_current(
    cell: &DgFefet,
    vth_offset: f64,
    vbg: f64,
    full_scale_current: f64,
    attenuation: f64,
    noise_gain: f64,
) -> f64 {
    let mut programmed = cell.clone();
    programmed.set_vth_offset(vth_offset);
    let i = programmed.sl_current(true, true, vbg);
    let leak = cell.params().front.i_leak;
    let base = ((i - leak) / full_scale_current).max(0.0);
    base * attenuation * noise_gain
}

/// Simulation fidelity of the analog path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Ideal cells: unit current per conducting cell, no variation, no
    /// wire loss. ADC quantization still applies.
    Ideal,
    /// Device-accurate cells: per-cell DG FeFET currents with programmed
    /// threshold variation, read noise, leakage and source-line IR drop.
    DeviceAccurate,
}

/// Configuration of a crossbar instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Quantization bits `k` per coupling magnitude (paper Fig. 6d).
    pub quant_bits: u8,
    /// ADC resolution in bits (paper ref \[36\]: 13-bit SAR).
    pub adc_bits: u8,
    /// Column groups per ADC (paper: 8-to-1 multiplexed ADCs).
    pub mux_ratio: usize,
    /// Interleaved (`true`) or blocked (`false`) group→ADC placement.
    pub interleaved_mux: bool,
    /// Analog-path fidelity.
    pub fidelity: Fidelity,
    /// Device non-idealities (used in [`Fidelity::DeviceAccurate`]).
    pub variation: VariationConfig,
    /// Wire technology parameters.
    pub wires: WireParams,
    /// DG FeFET cell parameters.
    pub device: DgFefetParams,
    /// Seed for variation sampling and read noise.
    pub seed: u64,
}

impl CrossbarConfig {
    /// The paper's operating point: 4-bit weight slicing, 13-bit 8:1-muxed
    /// ADCs, interleaved mapping, ideal analog path.
    pub fn paper_defaults() -> CrossbarConfig {
        CrossbarConfig {
            quant_bits: 4,
            adc_bits: 13,
            mux_ratio: 8,
            interleaved_mux: true,
            fidelity: Fidelity::Ideal,
            variation: VariationConfig::ideal(),
            wires: WireParams::node_22nm(),
            device: DgFefetParams::paper_reference(),
            seed: 0xF3C1,
        }
    }
}

impl Default for CrossbarConfig {
    fn default() -> CrossbarConfig {
        CrossbarConfig::paper_defaults()
    }
}

/// A programmed DG FeFET crossbar holding one coupling matrix.
#[derive(Debug, Clone)]
pub struct Crossbar {
    config: CrossbarConfig,
    quant: QuantizedCoupling,
    adc: SarAdc,
    mux: MuxAssignment,
    wires: ArrayWires,
    /// Per-column, per-entry threshold offsets (device-accurate mode).
    vth_offsets: Vec<Vec<f32>>,
    /// Reference cell for current evaluation.
    cell: DgFefet,
    full_scale_current: f64,
    /// Counter-based multiplicative read noise, keyed per array.
    noise: ReadNoise,
    /// Monotonic read counter: one bump per `read_columns`, addressing
    /// the noise draws of that read.
    read_ordinal: u64,
    stats: ActivityStats,
}

impl Crossbar {
    /// Program a coupling matrix into a new crossbar.
    ///
    /// Programming samples the per-cell threshold variation once (the
    /// device-to-device map plus one cycle-to-cycle draw), mirroring a real
    /// write-verify pass.
    pub fn program<C: Coupling>(coupling: &C, config: CrossbarConfig) -> Crossbar {
        let n = coupling.dimension();
        assert!(n > 0, "empty coupling matrix");
        let quant = QuantizedCoupling::from_coupling(coupling, config.quant_bits);
        let adc = SarAdc::new(config.adc_bits, n as f64);
        let mux = if config.interleaved_mux {
            MuxAssignment::interleaved(n, config.mux_ratio)
        } else {
            MuxAssignment::blocked(n, config.mux_ratio)
        };
        let wires = ArrayWires::new(n, quant.physical_columns(), config.wires);
        let mut sampler = VariationSampler::new(config.variation, config.seed);
        let vth_offsets: Vec<Vec<f32>> = (0..n)
            .map(|j| {
                quant
                    .column(j)
                    .iter()
                    .map(|_| (sampler.d2d_vth_offset() + sampler.c2c_vth_offset()) as f32)
                    .collect()
            })
            .collect();
        let mut cell = DgFefet::new(config.device);
        cell.program(StoredBit::One);
        let full_scale_current = cell.full_scale_current();
        let noise = ReadNoise::new(read_noise_key(config.seed), config.variation.read_noise_rel);
        Crossbar {
            config,
            quant,
            adc,
            mux,
            wires,
            vth_offsets,
            cell,
            full_scale_current,
            noise,
            read_ordinal: 0,
            stats: ActivityStats::new(),
        }
    }

    /// Matrix dimension `n` (spins).
    pub fn dimension(&self) -> usize {
        self.quant.dimension()
    }

    /// The quantized coupling view.
    pub fn quantized(&self) -> &QuantizedCoupling {
        &self.quant
    }

    /// The configuration used to build this crossbar.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Wire parasitics of the physical array.
    pub fn wires(&self) -> &ArrayWires {
        &self.wires
    }

    /// Accumulated activity since construction or the last
    /// [`Crossbar::reset_stats`].
    pub fn stats(&self) -> &ActivityStats {
        &self.stats
    }

    /// Clear the activity counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Upper bound on `|σ_rᵀJσ_c|` (or `|σᵀJσ|`) representable by the
    /// array: `n · max|J|`. Useful for normalizing `E_inc` against
    /// `rand(0,1)` in the annealing flow.
    pub fn value_scale(&self) -> f64 {
        self.dimension() as f64 * self.quant.scale() * ((1u32 << self.config.quant_bits) - 1) as f64
    }

    /// Normalized per-cell current at back-gate voltage `vbg` for an ideal
    /// stored-'1' cell — the hardware annealing factor `f` (paper Fig. 6c).
    pub fn cell_factor(&self, vbg: f64) -> f64 {
        ideal_cell_factor(&self.cell, self.full_scale_current, vbg)
    }

    /// The in-situ incremental-E read: returns the de-quantized estimate of
    /// `σ_rᵀ J σ_c · factor` in coupling units, where `factor` is the
    /// normalized back-gate current scale (pass `1.0` for a plain bilinear
    /// form, or [`Crossbar::cell_factor`] of the temperature's `V_BG` for
    /// the paper's flow).
    ///
    /// `sigma_r` and `sigma_c` are the rest/changed vectors of Sec. 3.2:
    /// entries in `{-1, 0, +1}` with disjoint supports.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths differ from the array dimension.
    pub fn incremental_form(&mut self, sigma_r: &[i8], sigma_c: &[i8], factor: f64) -> f64 {
        let n = self.dimension();
        assert_eq!(sigma_r.len(), n, "sigma_r length mismatch");
        assert_eq!(sigma_c.len(), n, "sigma_c length mismatch");
        let active: Vec<usize> = (0..n).filter(|&j| sigma_c[j] != 0).collect();
        self.stats.array_ops += 1;
        self.stats.bg_updates += 1;
        // The whole array is one tile; it participates only when a column
        // group is selected AND a row is driven (matching the tiled
        // accounting of `TiledCrossbar`).
        self.stats.tiles_activated +=
            u64::from(!active.is_empty() && sigma_r.iter().any(|&r| r != 0));
        self.read_columns(sigma_r, Some(sigma_c), &active, factor)
    }

    /// The conventional direct-E read `σᵀJσ` (baseline annealers): the
    /// whole array is activated and every column group is converted; the
    /// per-column results are combined with `σ` digitally.
    ///
    /// # Panics
    ///
    /// Panics if `sigma.len()` differs from the array dimension.
    pub fn vmv(&mut self, sigma: &[i8]) -> f64 {
        let n = self.dimension();
        assert_eq!(sigma.len(), n, "sigma length mismatch");
        let active: Vec<usize> = (0..n).collect();
        self.stats.array_ops += 1;
        self.stats.tiles_activated += 1;
        self.read_columns(sigma, None, &active, 1.0)
    }

    /// The full matrix-vector read `Jσ`: every row carries its `σ` entry
    /// through the positive/negative input phases, every column group is
    /// converted, and — unlike [`Crossbar::vmv`], which folds the column
    /// outputs into one scalar — the per-column digital values are
    /// returned individually in coupling units. Because the programmed
    /// matrix is symmetric, column `j`'s output is `(Jσ)_j`.
    ///
    /// One read ordinal covers the whole product (each driven cell
    /// conducts in exactly one sign pass), so device-accurate noise
    /// draws are addressed by `(ordinal, row, column)` exactly as in the
    /// scalar reads.
    ///
    /// # Panics
    ///
    /// Panics if `sigma.len()` differs from the array dimension.
    pub fn mvm(&mut self, sigma: &[i8]) -> Vec<f64> {
        let n = self.dimension();
        assert_eq!(sigma.len(), n, "sigma length mismatch");
        let k = self.config.quant_bits as usize;
        let active: Vec<usize> = (0..n).collect();
        self.stats.array_ops += 1;
        self.stats.tiles_activated += 1;
        let vbg = if self.config.fidelity == Fidelity::DeviceAccurate {
            self.vbg_for_factor(1.0)
        } else {
            0.0
        };
        let ordinal = self.read_ordinal;
        self.read_ordinal += 1;
        let mut out = vec![0.0f64; n];
        for &sign in &[1i8, -1i8] {
            self.stats.row_passes += 1;
            let driven: Vec<bool> = sigma.iter().map(|&r| r == sign).collect();
            let driven_count = driven.iter().filter(|&&d| d).count() as u64;
            self.stats.rows_driven += driven_count;
            self.stats.columns_driven += active.len() as u64;
            self.stats.adc_conversions += (active.len() * 2 * k) as u64;
            self.stats.adc_slots += self.mux.slots_for(&active, k) as u64;
            self.stats.shift_add_ops += (active.len() * 2 * k) as u64;
            for &j in &active {
                let (pos_val, neg_val) = self.sense_column(j, &driven, 1.0, vbg, ordinal);
                out[j] += f64::from(sign) * (pos_val - neg_val);
            }
        }
        // One buffer write per column output (the vector leaves the
        // array digitally, column by column).
        self.stats.buffer_writes += n as u64;
        let scale = self.quant.scale();
        for value in &mut out {
            *value *= scale;
        }
        out
    }

    /// Shared signal chain. When `column_select` is `Some(σ_c)`, column `j`
    /// contributes with sign `σ_c[j]` (incremental mode); when `None`, the
    /// row vector itself provides the digital column weights (direct mode).
    fn read_columns(
        &mut self,
        rows: &[i8],
        column_select: Option<&[i8]>,
        active: &[usize],
        factor: f64,
    ) -> f64 {
        let k = self.config.quant_bits as usize;
        // The back-gate bias implied by `factor` depends only on the read,
        // not the column: invert the current curve once (the tiled path
        // does the same).
        let vbg = if self.config.fidelity == Fidelity::DeviceAccurate {
            self.vbg_for_factor(factor)
        } else {
            0.0
        };
        // Every read gets its own noise-counter ordinal; within one read
        // each driven cell is sensed exactly once (a row conducts in only
        // one sign pass), so `(ordinal, row, col)` addresses every draw.
        let ordinal = self.read_ordinal;
        self.read_ordinal += 1;
        let mut total_codes = 0.0f64;
        for &sign in &[1i8, -1i8] {
            self.stats.row_passes += 1;
            let driven: Vec<bool> = rows.iter().map(|&r| r == sign).collect();
            let driven_count = driven.iter().filter(|&&d| d).count() as u64;
            self.stats.rows_driven += driven_count;
            self.stats.columns_driven += active.len() as u64;
            // Conversions: every active group, both polarity planes, k bit
            // slices. Polarity planes have independent ADCs, so time slots
            // count one plane.
            self.stats.adc_conversions += (active.len() * 2 * k) as u64;
            self.stats.adc_slots += self.mux.slots_for(active, k) as u64;
            self.stats.shift_add_ops += (active.len() * 2 * k) as u64;

            for &j in active {
                let col_sign = match column_select {
                    Some(sel) => sel[j] as f64,
                    None => rows[j] as f64,
                };
                if col_sign == 0.0 {
                    continue;
                }
                let (pos_val, neg_val) = self.sense_column(j, &driven, factor, vbg, ordinal);
                total_codes += sign as f64 * col_sign * (pos_val - neg_val);
            }
        }
        self.stats.buffer_writes += 1;
        self.quant.scale() * total_codes
    }

    /// Sense one column group: per-bit-slice analog sums, ADC conversion,
    /// shift-and-add. Returns de-quantized (code-unit) values for the
    /// positive and negative polarity planes. `vbg` is the back-gate bias
    /// implied by `factor` (per-cell deviations enter through the
    /// threshold offsets), precomputed once per read; `ordinal` addresses
    /// this read's counter-based noise draws.
    ///
    /// The accumulation is branch-free over bit slices: stack-resident
    /// `[f64; 8]` lane buffers (`quant_bits ≤ 8`) with a mask-multiply
    /// per lane, so the hot loop auto-vectorizes instead of branching on
    /// every bit of every code.
    fn sense_column(
        &mut self,
        j: usize,
        driven: &[bool],
        factor: f64,
        vbg: f64,
        ordinal: u64,
    ) -> (f64, f64) {
        let k = self.config.quant_bits as usize;
        let entries = self.quant.column(j);
        let offsets = &self.vth_offsets[j];
        let mut pos_bit_sums = [0.0f64; 8];
        let mut neg_bit_sums = [0.0f64; 8];
        let device_mode = self.config.fidelity == Fidelity::DeviceAccurate;

        let mut activated = 0u64;
        for (idx, &(row, pos, neg)) in entries.iter().enumerate() {
            let row = row as usize;
            if !driven[row] {
                continue;
            }
            let (code, sums) = if pos > 0 {
                (pos, &mut pos_bit_sums)
            } else {
                (neg, &mut neg_bit_sums)
            };
            let cell_current = if device_mode {
                device_cell_current(
                    &self.cell,
                    offsets[idx] as f64,
                    vbg,
                    self.full_scale_current,
                    self.wires.ir_attenuation(row),
                    self.noise.gain(ordinal, row, j),
                )
            } else {
                factor
            };
            for (b, sum) in sums.iter_mut().take(k).enumerate() {
                *sum += cell_current * f64::from((code >> b) & 1);
            }
            activated += u64::from(code.count_ones());
        }
        self.stats.cells_activated += activated;

        let mut pos_val = 0.0;
        let mut neg_val = 0.0;
        for b in 0..k {
            let weight = (1u64 << b) as f64;
            pos_val += weight * self.adc.quantize(pos_bit_sums[b]);
            neg_val += weight * self.adc.quantize(neg_bit_sums[b]);
        }
        (pos_val, neg_val)
    }

    /// Invert the normalized-current curve to find the `V_BG` whose ideal
    /// cell factor equals `factor` (bisection over the DAC range).
    fn vbg_for_factor(&self, factor: f64) -> f64 {
        vbg_for_factor(&self.cell, self.full_scale_current, factor)
    }
}

impl InSituArray for Crossbar {
    fn dimension(&self) -> usize {
        Crossbar::dimension(self)
    }

    fn incremental_form(&mut self, sigma_r: &[i8], sigma_c: &[i8], factor: f64) -> f64 {
        Crossbar::incremental_form(self, sigma_r, sigma_c, factor)
    }

    fn vmv(&mut self, sigma: &[i8]) -> f64 {
        Crossbar::vmv(self, sigma)
    }

    fn mvm(&mut self, sigma: &[i8]) -> Vec<f64> {
        Crossbar::mvm(self, sigma)
    }

    fn stats(&self) -> &ActivityStats {
        Crossbar::stats(self)
    }

    fn reset_stats(&mut self) {
        Crossbar::reset_stats(self);
    }

    fn cell_factor(&self, vbg: f64) -> f64 {
        Crossbar::cell_factor(self, vbg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_ising::{Coupling, DenseCoupling, FlipMask, SpinVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense(n: usize, seed: u64) -> DenseCoupling {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseCoupling::random(n, 0.4, 1.0, &mut rng)
    }

    fn unit_config(bits: u8) -> CrossbarConfig {
        CrossbarConfig {
            quant_bits: bits,
            adc_bits: 14,
            ..CrossbarConfig::paper_defaults()
        }
    }

    #[test]
    fn vmv_matches_exact_energy_with_high_precision() {
        let m = dense(20, 5);
        let mut xb = Crossbar::program(&m, unit_config(8));
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let s = SpinVector::random(20, &mut rng);
            let exact = m.energy(&s);
            let measured = xb.vmv(s.as_slice());
            // Error budget: quantization of J (k bits) + ADC LSBs.
            let tol = 20.0 * 20.0 * m.max_abs() / 255.0 + 1.0;
            assert!(
                (measured - exact).abs() < tol,
                "measured={measured} exact={exact}"
            );
        }
    }

    #[test]
    fn incremental_matches_exact_bilinear_form() {
        let m = dense(24, 7);
        let mut xb = Crossbar::program(&m, unit_config(8));
        let mut rng = StdRng::seed_from_u64(8);
        for t in [1usize, 2, 4] {
            let s = SpinVector::random(24, &mut rng);
            let mask = FlipMask::random(t, 24, &mut rng);
            let s_new = s.flipped_by(&mask);
            let r = s_new.rest_vector(&mask);
            let c = s_new.changed_vector(&mask);
            let exact = m.incremental_form(&s_new, &mask);
            let measured = xb.incremental_form(&r, &c, 1.0);
            let tol = 24.0 * m.max_abs() / 255.0 * t as f64 + 0.5;
            assert!(
                (measured - exact).abs() < tol,
                "t={t}: measured={measured} exact={exact}"
            );
        }
    }

    #[test]
    fn factor_scales_incremental_output() {
        let m = dense(16, 9);
        let mut xb = Crossbar::program(&m, unit_config(8));
        let mut rng = StdRng::seed_from_u64(10);
        let s = SpinVector::random(16, &mut rng);
        let mask = FlipMask::random(2, 16, &mut rng);
        let s_new = s.flipped_by(&mask);
        let r = s_new.rest_vector(&mask);
        let c = s_new.changed_vector(&mask);
        let full = xb.incremental_form(&r, &c, 1.0);
        let half = xb.incremental_form(&r, &c, 0.5);
        if full.abs() > 1.0 {
            let ratio = half / full;
            assert!((ratio - 0.5).abs() < 0.2, "ratio={ratio}");
        }
    }

    #[test]
    fn incremental_activates_only_flipped_columns() {
        let m = dense(64, 11);
        let mut xb = Crossbar::program(&m, unit_config(4));
        let mut rng = StdRng::seed_from_u64(12);
        let s = SpinVector::random(64, &mut rng);
        let mask = FlipMask::random(2, 64, &mut rng);
        let s_new = s.flipped_by(&mask);
        let _ = xb.incremental_form(&s_new.rest_vector(&mask), &s_new.changed_vector(&mask), 1.0);
        let inc = *xb.stats();
        xb.reset_stats();
        let _ = xb.vmv(s.as_slice());
        let full = *xb.stats();
        // Conversions: 2 passes × groups × 2 planes × k.
        assert_eq!(inc.adc_conversions, 2 * 2 * 2 * 4);
        assert_eq!(full.adc_conversions, 2 * 64 * 2 * 4);
        let ratio = full.adc_conversions as f64 / inc.adc_conversions as f64;
        assert_eq!(ratio, 32.0, "n/|F| = 64/2");
        // Time slots: baseline serializes mux_ratio groups per ADC.
        assert!(full.adc_slots > inc.adc_slots);
    }

    #[test]
    fn slots_ratio_approaches_mux_ratio() {
        // The Fig. 9 mechanism: with interleaved mapping and |F| active
        // groups < ADC count, the in-situ read converts in k slots per pass
        // while the full read needs mux_ratio × k.
        let m = dense(128, 13);
        let mut xb = Crossbar::program(&m, unit_config(4));
        let s = SpinVector::all_up(128);
        let mask = FlipMask::new(vec![3, 77], 128);
        let s_new = s.flipped_by(&mask);
        let _ = xb.incremental_form(&s_new.rest_vector(&mask), &s_new.changed_vector(&mask), 1.0);
        let inc_slots = xb.stats().adc_slots;
        xb.reset_stats();
        let _ = xb.vmv(s.as_slice());
        let full_slots = xb.stats().adc_slots;
        assert_eq!(full_slots / inc_slots, 8, "mux ratio 8");
    }

    #[test]
    fn device_accurate_mode_stays_close_to_ideal() {
        let m = dense(16, 14);
        let ideal_cfg = unit_config(8);
        let mut device_cfg = ideal_cfg.clone();
        device_cfg.fidelity = Fidelity::DeviceAccurate;
        let mut ideal = Crossbar::program(&m, ideal_cfg);
        let mut device = Crossbar::program(&m, device_cfg);
        let mut rng = StdRng::seed_from_u64(15);
        let s = SpinVector::random(16, &mut rng);
        let mask = FlipMask::random(2, 16, &mut rng);
        let s_new = s.flipped_by(&mask);
        let r = s_new.rest_vector(&mask);
        let c = s_new.changed_vector(&mask);
        let a = ideal.incremental_form(&r, &c, 1.0);
        let b = device.incremental_form(&r, &c, 1.0);
        // No variation configured: only IR drop separates them.
        assert!(
            (a - b).abs() < 0.15 * a.abs().max(1.0),
            "ideal={a} device={b}"
        );
    }

    #[test]
    fn variation_perturbs_but_preserves_sign_of_large_values() {
        let m = dense(16, 16);
        let mut cfg = unit_config(8);
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig::typical();
        let mut noisy = Crossbar::program(&m, cfg);
        let mut ideal = Crossbar::program(&m, unit_config(8));
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let s = SpinVector::random(16, &mut rng);
            let mask = FlipMask::random(3, 16, &mut rng);
            let s_new = s.flipped_by(&mask);
            let r = s_new.rest_vector(&mask);
            let c = s_new.changed_vector(&mask);
            let a = ideal.incremental_form(&r, &c, 1.0);
            let b = noisy.incremental_form(&r, &c, 1.0);
            if a.abs() > 2.0 {
                assert_eq!(a.signum(), b.signum(), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn value_scale_bounds_outputs() {
        let m = dense(20, 18);
        let mut xb = Crossbar::program(&m, unit_config(6));
        let mut rng = StdRng::seed_from_u64(19);
        let bound = xb.value_scale();
        for _ in 0..5 {
            let s = SpinVector::random(20, &mut rng);
            let v = xb.vmv(s.as_slice());
            assert!(v.abs() <= bound * 20.0, "v={v} bound={bound}");
        }
    }

    #[test]
    fn mvm_matches_exact_coupling_product_and_vmv_contraction() {
        let m = dense(24, 21);
        let mut xb = Crossbar::program(&m, unit_config(8));
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..5 {
            let s = SpinVector::random(24, &mut rng);
            let out = xb.mvm(s.as_slice());
            assert_eq!(out.len(), 24);
            // Each column output approximates the exact (Jσ)_j.
            let tol = 24.0 * m.max_abs() / 255.0 + 0.5;
            for (j, measured) in out.iter().enumerate() {
                let exact: f64 = (0..24)
                    .map(|i| m.get(i, j) * f64::from(s.as_slice()[i]))
                    .sum();
                assert!(
                    (measured - exact).abs() < tol,
                    "col {j}: measured={measured} exact={exact}"
                );
            }
            // σ·(Jσ) contracts to the scalar direct-E read.
            let contracted: f64 = out
                .iter()
                .zip(s.as_slice())
                .map(|(&v, &sig)| v * f64::from(sig))
                .sum();
            let scalar = xb.vmv(s.as_slice());
            assert!(
                (contracted - scalar).abs() < 1e-9 * scalar.abs().max(1.0),
                "contracted={contracted} scalar={scalar}"
            );
        }
    }

    #[test]
    fn mvm_accounts_one_array_read() {
        let m = dense(32, 23);
        let mut xb = Crossbar::program(&m, unit_config(4));
        let s = SpinVector::all_up(32);
        let _ = xb.mvm(s.as_slice());
        let stats = *xb.stats();
        assert_eq!(stats.array_ops, 1);
        assert_eq!(stats.row_passes, 2);
        assert_eq!(stats.buffer_writes, 32);
        xb.reset_stats();
        let _ = xb.vmv(s.as_slice());
        // Same analog work as one direct-E read: the MVM differs only in
        // keeping the per-column outputs digital.
        assert_eq!(stats.adc_conversions, xb.stats().adc_conversions);
        assert_eq!(stats.adc_slots, xb.stats().adc_slots);
    }

    #[test]
    fn zero_flip_mask_returns_zero() {
        let m = dense(10, 20);
        let mut xb = Crossbar::program(&m, unit_config(4));
        let zeros = vec![0i8; 10];
        let s = SpinVector::all_up(10);
        assert_eq!(xb.incremental_form(s.as_slice(), &zeros, 1.0), 0.0);
        assert_eq!(xb.stats().tiles_activated, 0, "no column selected");
    }
}
