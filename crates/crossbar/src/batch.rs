//! Multi-problem batching: several instances' coupling blocks packed onto
//! one physical tile grid.
//!
//! An in-situ incremental read activates only the `t` stripes holding the
//! flipped column groups (× the driven row bands) — on a grid sized for
//! one instance, everything else idles. [`BatchedTiledCrossbar`] exploits
//! that slack the way scaled in-memory annealers do: instance `i`'s tiles
//! occupy their own stripe span of a shared grid, so while instance A
//! converts on its stripes' ADC banks, instances B and C convert on
//! theirs *in the same grid cycle*. The placement is block-diagonal along
//! the stripe axis: no two instances share a stripe, hence no two share
//! an ADC bank, row segment, or back-gate plane — reads of distinct
//! instances are physically concurrent and numerically independent.
//!
//! Consequences the tests pin down:
//!
//! * **Exact equivalence** — each instance's block behaves exactly like a
//!   standalone [`TiledCrossbar`] over the same coupling; in
//!   [`Fidelity::Ideal`](crate::Fidelity::Ideal) mode a batched read is
//!   bit-identical to the per-instance monolithic
//!   [`Crossbar`](crate::Crossbar) read.
//! * **Determinism** — [`BatchedTiledCrossbar::read_batch`] fans
//!   instances out across threads, but instances are independent
//!   sub-arrays with their own seeds and noise streams, so results do not
//!   depend on scheduling. In device-accurate mode each instance draws
//!   its variation maps from a seed derived from the config seed and its
//!   batch index (distinct replicas see distinct silicon).
//! * **Attribution** — activity is recorded per instance (each block
//!   keeps its own [`ActivityStats`]), so hardware energy is attributable
//!   to the instance that caused it, while [`BatchStats`] tracks
//!   grid-level sharing (reads per batch, activated tiles vs. tiles
//!   available).
//!
//! For driving a shared grid from concurrently running solvers (one
//! replica per thread, as `fecim_anneal::Ensemble` does), clone per-
//! instance [`BatchInstance`] handles from the shared grid: each handle
//! implements [`InSituArray`] and serializes *simulator* access through a
//! mutex while the modeled hardware timing remains concurrent (disjoint
//! banks).
//!
//! ## Live grids: per-instance lifecycle
//!
//! Lockstep cohorts ([`BatchedTiledCrossbar::replicate`] + run them all)
//! are only half the story: a production queue wants to admit *new*
//! problems onto the grid as earlier replicas finish. Two methods turn
//! the batched grid into a live one:
//!
//! * [`BatchedTiledCrossbar::try_admit_instance`] places a coupling into
//!   the first freed stripe span that fits (first-fit, splitting wider
//!   spans), extending the grid's tail only while a stripe capacity
//!   allows it;
//! * [`BatchedTiledCrossbar::retire_instance`] frees an instance's
//!   stripe span back to the pool (coalescing adjacent free spans, and
//!   returning trailing stripes to the tail), so queued work can take
//!   its place.
//!
//! Retired slot *indices* are recycled too; because per-instance
//! variation seeds derive from the slot index, a new tenant admitted
//! into a recycled slot sees the same simulated silicon its predecessor
//! did — which is exactly what re-programming the same physical tiles
//! would do. In [`Fidelity::Ideal`](crate::Fidelity::Ideal) mode reads
//! are placement-independent, so live-grid scheduling cannot change
//! results. For device-accurate live grids,
//! [`BatchedTiledCrossbar::reseed_instance_for_trial`] re-programs an
//! admitted instance's stochastic state from the *trial's* seed (the
//! write-verify pass a new tenant would get), making results
//! placement- and admission-order-independent in every fidelity.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rayon::prelude::*;

use fecim_ising::Coupling;

use crate::array::{CrossbarConfig, InSituArray};
use crate::stats::ActivityStats;
use crate::tiled::{SensingMode, TiledCrossbar};

/// Deterministic per-instance seed: splitmix64 finalizer over the config
/// seed and the batch slot, so replicas of the same coupling still draw
/// independent variation maps (distinct physical tiles host them).
fn instance_seed(base: u64, index: usize) -> u64 {
    crate::tiled::splitmix64_finalize(base ^ ((index as u64) << 17) ^ 0xD1B5_4A32_D192_ED03)
}

/// Deterministic per-trial silicon seed: splitmix64 finalizer over the
/// grid's base config seed and the trial's own seed, so a reseeded
/// instance's variation maps and noise stream depend on *which trial*
/// runs, never on which slot or stripe span hosts it (see
/// [`BatchedTiledCrossbar::reseed_instance_for_trial`]).
fn trial_silicon_seed(base: u64, trial_seed: u64) -> u64 {
    crate::tiled::splitmix64_finalize(base ^ trial_seed.rotate_left(21) ^ 0x7C15_9E37_D192_4A32)
}

/// One instance's block on the shared grid.
#[derive(Debug, Clone)]
struct InstanceSlot {
    array: TiledCrossbar,
    /// First grid stripe owned by this instance (placement record; the
    /// block-diagonal layout guarantees spans never overlap).
    stripe_offset: usize,
    /// Stripes the instance occupies (freed back to the pool on retire).
    stripes: usize,
}

/// Grid-level sharing counters of a [`BatchedTiledCrossbar`].
///
/// Per-instance activity lives in each instance's own [`ActivityStats`]
/// ([`BatchedTiledCrossbar::instance_stats`]); this struct only measures
/// how well concurrent instances fill the shared grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Grid cycles issued: one per [`BatchedTiledCrossbar::read_batch`]
    /// call, one per single-instance read.
    pub grid_cycles: u64,
    /// Individual reads executed across all cycles.
    pub reads: u64,
    /// Tiles activated across all cycles (sum over instances).
    pub tiles_activated: u64,
    /// Tile slots offered: physical tiles × grid cycles.
    pub tile_slots_offered: u64,
    /// Largest number of distinct instances served by one grid cycle.
    pub peak_concurrent_instances: usize,
}

impl BatchStats {
    /// Fraction of offered tile slots that actually activated — the
    /// throughput headroom argument: a lone instance leaves this low,
    /// batching raises it toward 1.
    pub fn grid_utilization(&self) -> f64 {
        if self.tile_slots_offered == 0 {
            return 0.0;
        }
        self.tiles_activated as f64 / self.tile_slots_offered as f64
    }

    fn reset(&mut self) {
        *self = BatchStats::default();
    }
}

/// One read request inside a [`BatchedTiledCrossbar::read_batch`] cycle.
#[derive(Debug, Clone, Copy)]
pub struct BatchRead<'a> {
    /// Which instance's block to read.
    pub instance: usize,
    /// Row drive vector (`σ_r` for incremental reads, `σ` for VMV).
    pub sigma_r: &'a [i8],
    /// Column select `σ_c` for an incremental read; `None` runs the
    /// direct VMV read instead.
    pub sigma_c: Option<&'a [i8]>,
    /// Back-gate annealing factor (ignored by VMV reads).
    pub factor: f64,
}

/// Several problem instances sharing one physical tile grid.
///
/// See the module docs for the placement and concurrency model. Build
/// with [`BatchedTiledCrossbar::new`] + [`push_instance`]
/// (heterogeneous problems) or [`replicate`] (an ensemble of one
/// problem), then read per instance or per batch.
///
/// [`push_instance`]: BatchedTiledCrossbar::push_instance
/// [`replicate`]: BatchedTiledCrossbar::replicate
#[derive(Debug, Clone)]
pub struct BatchedTiledCrossbar {
    config: CrossbarConfig,
    tile_rows: usize,
    /// Instance slots; `None` marks a retired slot whose index (and
    /// stripe span) is free for the next admission.
    slots: Vec<Option<InstanceSlot>>,
    /// Stripes of the shared grid (sum of instance stripe spans and
    /// interior free spans).
    total_stripes: usize,
    /// Row bands of the shared grid (worst instance, high-water).
    max_bands: usize,
    /// Freed interior stripe spans `(offset, width)`, sorted by offset
    /// and coalesced.
    free_spans: Vec<(usize, usize)>,
    /// Retired slot indices available for reuse.
    free_slots: Vec<usize>,
    /// Lifetime admissions (push + admit).
    admitted: u64,
    /// Lifetime retirements.
    retired: u64,
    batch: BatchStats,
}

impl BatchedTiledCrossbar {
    /// An empty grid that will place every pushed instance on
    /// `tile_rows`-row tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tile_rows == 0`.
    pub fn new(config: CrossbarConfig, tile_rows: usize) -> BatchedTiledCrossbar {
        assert!(tile_rows > 0, "tile_rows must be positive");
        BatchedTiledCrossbar {
            config,
            tile_rows,
            slots: Vec::new(),
            total_stripes: 0,
            max_bands: 0,
            free_spans: Vec::new(),
            free_slots: Vec::new(),
            admitted: 0,
            retired: 0,
            batch: BatchStats::default(),
        }
    }

    /// Program `coupling` onto the next free stripe span and return the
    /// new instance's index. The instance draws its variation maps from a
    /// seed derived from the config seed and this index.
    ///
    /// # Panics
    ///
    /// Panics if the coupling is empty (forwarded from
    /// [`TiledCrossbar::program`]).
    pub fn push_instance<C: Coupling>(&mut self, coupling: &C) -> usize {
        self.try_admit_instance(coupling, usize::MAX)
            // audit:allow(panic-path): with a usize::MAX stripe limit admission only fails on an empty coupling — the documented `# Panics` contract above
            .expect("an unbounded grid always admits")
    }

    /// Admit `coupling` onto the grid if it fits within `stripe_limit`
    /// total stripes: freed spans are reused first-fit (wider spans are
    /// split), and the grid's tail extends only while the capacity
    /// allows. Returns the new instance's index, or `None` when the
    /// instance does not fit *right now* (retiring instances frees
    /// capacity; an instance needing more than `stripe_limit` stripes
    /// will never fit — see [`BatchedTiledCrossbar::stripes_needed`]).
    ///
    /// Retired slot indices are recycled; the admitted instance draws
    /// its variation maps from the recycled slot's seed (same simulated
    /// silicon as its predecessor — the physical-tile view of slot
    /// reuse).
    ///
    /// # Panics
    ///
    /// Panics if the coupling is empty (forwarded from
    /// [`TiledCrossbar::program`]).
    pub fn try_admit_instance<C: Coupling>(
        &mut self,
        coupling: &C,
        stripe_limit: usize,
    ) -> Option<usize> {
        let needed = self.stripes_needed(coupling.dimension());
        let offset = if let Some(pos) = self.free_spans.iter().position(|&(_, w)| w >= needed) {
            let (off, width) = self.free_spans[pos];
            if width == needed {
                self.free_spans.remove(pos);
            } else {
                self.free_spans[pos] = (off + needed, width - needed);
            }
            off
        } else if needed <= stripe_limit.saturating_sub(self.total_stripes) {
            let off = self.total_stripes;
            self.total_stripes += needed;
            off
        } else {
            return None;
        };
        let index = self.free_slots.pop().unwrap_or(self.slots.len());
        let mut config = self.config.clone();
        config.seed = instance_seed(self.config.seed, index);
        let array = TiledCrossbar::program(coupling, config, self.tile_rows);
        let (bands, stripes) = array.tile_grid();
        debug_assert_eq!(stripes, needed, "admission sizing must match programming");
        self.max_bands = self.max_bands.max(bands);
        let slot = InstanceSlot {
            array,
            stripe_offset: offset,
            stripes,
        };
        if index == self.slots.len() {
            self.slots.push(Some(slot));
        } else {
            self.slots[index] = Some(slot);
        }
        self.admitted += 1;
        Some(index)
    }

    /// Retire an instance: its stripe span returns to the free pool
    /// (coalescing with adjacent free spans; trailing spans shrink the
    /// grid's tail) and its slot index becomes reusable by the next
    /// admission.
    ///
    /// Outstanding [`BatchInstance`] handles onto the retired instance
    /// must not read anymore — reads panic, like any other access to a
    /// retired instance.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range or already retired.
    pub fn retire_instance(&mut self, instance: usize) {
        let slot = match self.slots.get_mut(instance) {
            // audit:allow(panic-path): the guard pattern just matched Some, so take() cannot observe None
            Some(slot @ Some(_)) => slot.take().expect("matched Some"),
            // audit:allow(panic-path): documented `# Panics` contract — retiring an out-of-range or already-retired instance is caller misuse that must abort
            _ => panic!(
                "instance {instance} is retired or out of range for {} slots",
                self.slots.len()
            ),
        };
        self.free_slots.push(instance);
        self.retired += 1;
        let span = (slot.stripe_offset, slot.stripes);
        let pos = self.free_spans.partition_point(|&(off, _)| off < span.0);
        self.free_spans.insert(pos, span);
        // Coalesce with the right neighbor, then the left.
        if pos + 1 < self.free_spans.len()
            && self.free_spans[pos].0 + self.free_spans[pos].1 == self.free_spans[pos + 1].0
        {
            self.free_spans[pos].1 += self.free_spans[pos + 1].1;
            self.free_spans.remove(pos + 1);
        }
        if pos > 0
            && self.free_spans[pos - 1].0 + self.free_spans[pos - 1].1 == self.free_spans[pos].0
        {
            self.free_spans[pos - 1].1 += self.free_spans[pos].1;
            self.free_spans.remove(pos);
        }
        // A free span ending at the tail hands its stripes back.
        if let Some(&(off, width)) = self.free_spans.last() {
            if off + width == self.total_stripes {
                self.total_stripes = off;
                self.free_spans.pop();
            }
        }
    }

    /// Stripes an instance of `dimension` spins would occupy on this
    /// grid (its tiled mapping is square: `ceil(n / tile_rows)` stripes).
    pub fn stripes_needed(&self, dimension: usize) -> usize {
        dimension.div_ceil(self.tile_rows)
    }

    /// Whether `instance` currently occupies the grid (admitted and not
    /// retired). Out-of-range indices are simply not live.
    pub fn is_live(&self, instance: usize) -> bool {
        matches!(self.slots.get(instance), Some(Some(_)))
    }

    /// Instances currently occupying the grid.
    pub fn live_instances(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Stripes currently occupied by live instances.
    pub fn stripes_in_use(&self) -> usize {
        self.total_stripes - self.free_spans.iter().map(|&(_, w)| w).sum::<usize>()
    }

    /// Lifetime admissions ([`push_instance`](Self::push_instance) +
    /// [`try_admit_instance`](Self::try_admit_instance)).
    pub fn admissions(&self) -> u64 {
        self.admitted
    }

    /// Lifetime retirements.
    pub fn retirements(&self) -> u64 {
        self.retired
    }

    /// A grid holding `count` replicas of one coupling — the ensemble
    /// sharing layout.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `tile_rows == 0`, or the coupling is empty.
    pub fn replicate<C: Coupling>(
        coupling: &C,
        count: usize,
        config: CrossbarConfig,
        tile_rows: usize,
    ) -> BatchedTiledCrossbar {
        assert!(count > 0, "need at least one instance");
        let mut grid = BatchedTiledCrossbar::new(config, tile_rows);
        for _ in 0..count {
            grid.push_instance(coupling);
        }
        grid
    }

    /// Number of instance slots ever allocated (live **and** retired —
    /// retired slot indices stay addressable until an admission recycles
    /// them). Equals the live count on lockstep grids that never retire;
    /// see [`BatchedTiledCrossbar::live_instances`] for the occupancy
    /// count.
    pub fn instance_count(&self) -> usize {
        self.slots.len()
    }

    /// The physical tile height shared by every instance.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Shared-grid dimensions as `(row_bands, column_stripes)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.max_bands, self.total_stripes)
    }

    /// Physical tiles the shared grid instantiates (its bounding
    /// rectangle; short instances leave their tall columns partly empty).
    pub fn physical_tiles(&self) -> usize {
        self.max_bands * self.total_stripes
    }

    /// First grid stripe owned by `instance`.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range.
    pub fn stripe_offset(&self, instance: usize) -> usize {
        self.slot(instance).stripe_offset
    }

    /// The instance's underlying tiled array (configuration, tile grid).
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range.
    pub fn instance(&self, instance: usize) -> &TiledCrossbar {
        &self.slot(instance).array
    }

    /// Activity attributed to one instance.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range.
    pub fn instance_stats(&self, instance: usize) -> &ActivityStats {
        self.slot(instance).array.stats()
    }

    /// Activity summed over every live instance (retired instances take
    /// their attribution with them — snapshot before retiring).
    pub fn aggregate_stats(&self) -> ActivityStats {
        let mut total = ActivityStats::new();
        for slot in self.slots.iter().flatten() {
            total.merge(slot.array.stats());
        }
        total
    }

    /// Grid-level sharing counters.
    pub fn batch_stats(&self) -> &BatchStats {
        &self.batch
    }

    /// Clear per-instance and grid-level counters (admission/retirement
    /// lifetime counters keep running).
    pub fn reset_stats(&mut self) {
        for slot in self.slots.iter_mut().flatten() {
            slot.array.reset_stats();
        }
        self.batch.reset();
    }

    /// Clear one instance's counters (grid-level counters keep running).
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range.
    pub fn reset_instance_stats(&mut self, instance: usize) {
        self.slot_mut(instance).array.reset_stats();
    }

    /// Re-program `instance`'s stochastic state (variation maps, noise
    /// key, read ordinal) from `trial_seed` — the write-verify pass a
    /// new tenant's trial gets. The derived silicon seed mixes the
    /// grid's *base* config seed with the trial seed and nothing else,
    /// so device-accurate results depend on which trial runs, never on
    /// which slot, stripe span, or admission order hosted it.
    ///
    /// With all-zero variation this is a no-op: ideal silicon is
    /// seed-independent, and skipping the redraw keeps Ideal-fidelity
    /// trials free of per-trial programming cost.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range or retired.
    pub fn reseed_instance_for_trial(&mut self, instance: usize, trial_seed: u64) {
        if self.config.variation.is_ideal() {
            return;
        }
        let seed = trial_silicon_seed(self.config.seed, trial_seed);
        self.slot_mut(instance).array.reseed(seed);
    }

    /// Set the per-stripe sensing schedule of every live instance (see
    /// [`SensingMode`]).
    pub fn set_sensing_mode(&mut self, mode: SensingMode) {
        for slot in self.slots.iter_mut().flatten() {
            slot.array.set_sensing_mode(mode);
        }
    }

    /// In-situ incremental read of one instance's block (see
    /// [`TiledCrossbar::incremental_form`]); the rest of the grid idles
    /// for the cycle.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range or the vector lengths differ
    /// from that instance's dimension.
    pub fn incremental_form(
        &mut self,
        instance: usize,
        sigma_r: &[i8],
        sigma_c: &[i8],
        factor: f64,
    ) -> f64 {
        let before = self.slot(instance).array.stats().tiles_activated;
        let value = self
            .slot_mut(instance)
            .array
            .incremental_form(sigma_r, sigma_c, factor);
        let after = self.slot(instance).array.stats().tiles_activated;
        self.account_cycle(1, 1, after - before);
        value
    }

    /// Direct VMV read of one instance's block (see
    /// [`TiledCrossbar::vmv`]); the rest of the grid idles for the cycle.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range or `sigma` has the wrong
    /// length.
    pub fn vmv(&mut self, instance: usize, sigma: &[i8]) -> f64 {
        let before = self.slot(instance).array.stats().tiles_activated;
        let value = self.slot_mut(instance).array.vmv(sigma);
        let after = self.slot(instance).array.stats().tiles_activated;
        self.account_cycle(1, 1, after - before);
        value
    }

    /// Full matrix-vector read of one instance's block (see
    /// [`TiledCrossbar::mvm`]); the rest of the grid idles for the
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if `instance` is out of range or `sigma` has the wrong
    /// length.
    pub fn mvm(&mut self, instance: usize, sigma: &[i8]) -> Vec<f64> {
        let before = self.slot(instance).array.stats().tiles_activated;
        let value = self.slot_mut(instance).array.mvm(sigma);
        let after = self.slot(instance).array.stats().tiles_activated;
        self.account_cycle(1, 1, after - before);
        value
    }

    /// Execute one shared grid cycle: every request runs against its
    /// instance's block, distinct instances in parallel across threads
    /// (they occupy disjoint stripes, so the hardware converts them
    /// concurrently). Results come back in request order and are
    /// bit-identical to issuing the same reads one instance at a time.
    ///
    /// Multiple requests against the *same* instance are legal and run
    /// sequentially in request order (they share stripes, so the hardware
    /// would serialize them too).
    ///
    /// # Panics
    ///
    /// Panics if a request names an out-of-range instance or carries
    /// wrong-length vectors.
    pub fn read_batch(&mut self, reads: &[BatchRead<'_>]) -> Vec<f64> {
        for read in reads {
            assert!(
                self.is_live(read.instance),
                "batch read instance {} is retired or out of range for {} instances",
                read.instance,
                self.slots.len()
            );
        }
        let mut per_instance: Vec<Vec<usize>> = vec![Vec::new(); self.slots.len()];
        for (read_idx, read) in reads.iter().enumerate() {
            per_instance[read.instance].push(read_idx);
        }
        let concurrent = per_instance.iter().filter(|ops| !ops.is_empty()).count();
        let tiles_before: u64 = self
            .slots
            .iter()
            .flatten()
            .map(|s| s.array.stats().tiles_activated)
            .sum();

        // Fan out one task per instance touched; tasks own disjoint
        // `&mut` blocks, so no lock sits anywhere near the sensing loops.
        let jobs: Vec<(&mut TiledCrossbar, Vec<usize>)> = self
            .slots
            .iter_mut()
            .zip(per_instance)
            .filter(|(_, ops)| !ops.is_empty())
            .map(|(slot, ops)| {
                // audit:allow(panic-path): the filter above keeps only slots with pending ops, and ops are only assigned to live (Some) slots
                let slot = slot.as_mut().expect("liveness checked above");
                (&mut slot.array, ops)
            })
            .collect();
        let outcomes: Vec<Vec<(usize, f64)>> = jobs
            .into_par_iter()
            .map(|(array, ops)| {
                ops.into_iter()
                    .map(|read_idx| {
                        let read = &reads[read_idx];
                        let value = match read.sigma_c {
                            Some(sigma_c) => {
                                array.incremental_form(read.sigma_r, sigma_c, read.factor)
                            }
                            None => array.vmv(read.sigma_r),
                        };
                        (read_idx, value)
                    })
                    .collect()
            })
            .collect();

        let mut results = vec![0.0f64; reads.len()];
        for (read_idx, value) in outcomes.into_iter().flatten() {
            results[read_idx] = value;
        }
        let tiles_after: u64 = self
            .slots
            .iter()
            .flatten()
            .map(|s| s.array.stats().tiles_activated)
            .sum();
        self.account_cycle(reads.len() as u64, concurrent, tiles_after - tiles_before);
        results
    }

    /// Move the grid behind a shared handle for concurrently running
    /// drivers; pair with [`BatchedTiledCrossbar::handles`].
    pub fn into_shared(self) -> Arc<Mutex<BatchedTiledCrossbar>> {
        Arc::new(Mutex::new(self))
    }

    /// One [`BatchInstance`] handle per instance of a shared grid, in
    /// instance order.
    pub fn handles(shared: &Arc<Mutex<BatchedTiledCrossbar>>) -> Vec<BatchInstance> {
        let count = lock_shared(shared).instance_count();
        (0..count)
            .map(|index| BatchInstance::new(Arc::clone(shared), index))
            .collect()
    }

    fn slot(&self, instance: usize) -> &InstanceSlot {
        match self.slots.get(instance) {
            Some(Some(slot)) => slot,
            // audit:allow(panic-path): reads on a retired instance are a documented-panic API misuse (see `retire_instance`); aborting beats returning stale state
            Some(None) => panic!("instance {instance} is retired"),
            // audit:allow(panic-path): same documented out-of-range misuse contract as the arm above
            None => panic!(
                "instance {instance} out of range for {} instances",
                self.slots.len()
            ),
        }
    }

    fn slot_mut(&mut self, instance: usize) -> &mut InstanceSlot {
        let count = self.slots.len();
        match self.slots.get_mut(instance) {
            Some(Some(slot)) => slot,
            // audit:allow(panic-path): reads on a retired instance are a documented-panic API misuse (see `retire_instance`); aborting beats returning stale state
            Some(None) => panic!("instance {instance} is retired"),
            // audit:allow(panic-path): same documented out-of-range misuse contract as the arm above
            None => panic!("instance {instance} out of range for {count} instances"),
        }
    }

    fn account_cycle(&mut self, reads: u64, concurrent: usize, tiles_activated: u64) {
        self.batch.grid_cycles += 1;
        self.batch.reads += reads;
        self.batch.tiles_activated += tiles_activated;
        self.batch.tile_slots_offered += self.physical_tiles() as u64;
        self.batch.peak_concurrent_instances = self.batch.peak_concurrent_instances.max(concurrent);
    }
}

/// Recover the guard even from a poisoned mutex: the grid is plain data,
/// so a panicking peer cannot leave it logically torn mid-read (every
/// read completes or unwinds before the guard drops), and propagating the
/// poison would turn one failed replica into a panic in every other.
fn lock_shared(shared: &Arc<Mutex<BatchedTiledCrossbar>>) -> MutexGuard<'_, BatchedTiledCrossbar> {
    shared.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A per-instance handle onto a shared [`BatchedTiledCrossbar`]: looks
/// like an exclusive [`InSituArray`], so a device-in-the-loop solver can
/// drive its replica while sibling replicas share the same grid from
/// other threads.
///
/// Simulator access is serialized through the grid's mutex per read; the
/// modeled hardware cost is not (instances convert on disjoint ADC
/// banks). Each handle caches its instance's [`ActivityStats`] after
/// every read so `stats()` can hand out a reference without holding the
/// lock.
#[derive(Debug, Clone)]
pub struct BatchInstance {
    shared: Arc<Mutex<BatchedTiledCrossbar>>,
    index: usize,
    dimension: usize,
    stats: ActivityStats,
}

impl BatchInstance {
    /// Handle onto instance `index` of `shared`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the grid.
    pub fn new(shared: Arc<Mutex<BatchedTiledCrossbar>>, index: usize) -> BatchInstance {
        let (dimension, stats) = {
            let grid = lock_shared(&shared);
            let array = grid.instance(index);
            (array.dimension(), *array.stats())
        };
        BatchInstance {
            shared,
            index,
            dimension,
            stats,
        }
    }

    /// Which instance of the shared grid this handle drives.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Re-program this handle's instance for a trial (see
    /// [`BatchedTiledCrossbar::reseed_instance_for_trial`]): call before
    /// the trial's first read so device-accurate results are invariant
    /// to slot placement, admission order, and worker count.
    pub fn reseed_for_trial(&mut self, trial_seed: u64) {
        lock_shared(&self.shared).reseed_instance_for_trial(self.index, trial_seed);
    }

    /// The shared grid behind this handle.
    pub fn shared(&self) -> &Arc<Mutex<BatchedTiledCrossbar>> {
        &self.shared
    }
}

impl InSituArray for BatchInstance {
    fn dimension(&self) -> usize {
        self.dimension
    }

    fn incremental_form(&mut self, sigma_r: &[i8], sigma_c: &[i8], factor: f64) -> f64 {
        let mut grid = lock_shared(&self.shared);
        let value = grid.incremental_form(self.index, sigma_r, sigma_c, factor);
        self.stats = *grid.instance_stats(self.index);
        value
    }

    fn vmv(&mut self, sigma: &[i8]) -> f64 {
        let mut grid = lock_shared(&self.shared);
        let value = grid.vmv(self.index, sigma);
        self.stats = *grid.instance_stats(self.index);
        value
    }

    fn mvm(&mut self, sigma: &[i8]) -> Vec<f64> {
        let mut grid = lock_shared(&self.shared);
        let value = grid.mvm(self.index, sigma);
        self.stats = *grid.instance_stats(self.index);
        value
    }

    fn stats(&self) -> &ActivityStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        lock_shared(&self.shared).reset_instance_stats(self.index);
        self.stats.reset();
    }

    fn cell_factor(&self, vbg: f64) -> f64 {
        lock_shared(&self.shared)
            .instance(self.index)
            .cell_factor(vbg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{Crossbar, Fidelity};
    use fecim_device::VariationConfig;
    use fecim_ising::{DenseCoupling, FlipMask, SpinVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense(n: usize, seed: u64) -> DenseCoupling {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseCoupling::random(n, 0.4, 1.0, &mut rng)
    }

    fn config() -> CrossbarConfig {
        CrossbarConfig::paper_defaults()
    }

    #[test]
    fn batched_reads_match_per_instance_monolithic_reads() {
        let n = 20;
        let problems = [dense(n, 1), dense(n, 2), dense(n, 3)];
        let mut grid = BatchedTiledCrossbar::new(config(), 7);
        for p in &problems {
            grid.push_instance(p);
        }
        let mut rng = StdRng::seed_from_u64(4);
        let spins: Vec<SpinVector> = (0..3).map(|_| SpinVector::random(n, &mut rng)).collect();
        let masks: Vec<FlipMask> = (0..3).map(|_| FlipMask::random(2, n, &mut rng)).collect();
        let flipped: Vec<SpinVector> = spins
            .iter()
            .zip(&masks)
            .map(|(s, m)| s.flipped_by(m))
            .collect();
        let rests: Vec<Vec<i8>> = flipped
            .iter()
            .zip(&masks)
            .map(|(s, m)| s.rest_vector(m))
            .collect();
        let changed: Vec<Vec<i8>> = flipped
            .iter()
            .zip(&masks)
            .map(|(s, m)| s.changed_vector(m))
            .collect();
        let reads: Vec<BatchRead> = (0..3)
            .map(|i| BatchRead {
                instance: i,
                sigma_r: &rests[i],
                sigma_c: Some(&changed[i]),
                factor: 0.7,
            })
            .collect();
        let batched = grid.read_batch(&reads);
        for i in 0..3 {
            let mut mono = Crossbar::program(&problems[i], config());
            let expected = mono.incremental_form(&rests[i], &changed[i], 0.7);
            assert_eq!(batched[i], expected, "instance {i}");
        }
        assert_eq!(grid.batch_stats().grid_cycles, 1);
        assert_eq!(grid.batch_stats().reads, 3);
        assert_eq!(grid.batch_stats().peak_concurrent_instances, 3);
    }

    #[test]
    fn batching_raises_grid_utilization() {
        let n = 16;
        let p = dense(n, 5);
        let mut solo = BatchedTiledCrossbar::replicate(&p, 4, config(), 4);
        let mut shared = solo.clone();
        let s = SpinVector::all_up(n);
        let mask = FlipMask::new(vec![3], n);
        let s_new = s.flipped_by(&mask);
        let r = s_new.rest_vector(&mask);
        let c = s_new.changed_vector(&mask);
        // Four cycles each serving one instance…
        for i in 0..4 {
            let _ = solo.incremental_form(i, &r, &c, 1.0);
        }
        // …vs one cycle serving all four.
        let reads: Vec<BatchRead> = (0..4)
            .map(|i| BatchRead {
                instance: i,
                sigma_r: &r,
                sigma_c: Some(&c),
                factor: 1.0,
            })
            .collect();
        let _ = shared.read_batch(&reads);
        assert_eq!(
            solo.batch_stats().tiles_activated,
            shared.batch_stats().tiles_activated
        );
        let solo_util = solo.batch_stats().grid_utilization();
        let shared_util = shared.batch_stats().grid_utilization();
        assert!(
            (shared_util / solo_util - 4.0).abs() < 1e-9,
            "batch of 4 quadruples utilization: {solo_util} vs {shared_util}"
        );
    }

    #[test]
    fn placement_is_block_diagonal_along_stripes() {
        let p20 = dense(20, 6);
        let p9 = dense(9, 7);
        let mut grid = BatchedTiledCrossbar::new(config(), 5);
        grid.push_instance(&p20); // 4 stripes × 4 bands
        grid.push_instance(&p9); // 2 stripes × 2 bands
        assert_eq!(grid.instance_count(), 2);
        assert_eq!(grid.stripe_offset(0), 0);
        assert_eq!(grid.stripe_offset(1), 4);
        assert_eq!(grid.grid(), (4, 6));
        assert_eq!(grid.physical_tiles(), 24);
    }

    #[test]
    fn replicas_draw_distinct_variation_maps() {
        let n = 12;
        let p = dense(n, 8);
        let mut cfg = config();
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig::typical();
        cfg.variation.read_noise_rel = 0.0; // isolate the programmed maps
        let mut grid = BatchedTiledCrossbar::replicate(&p, 2, cfg, 6);
        let s = SpinVector::all_up(n);
        let a = grid.vmv(0, s.as_slice());
        let b = grid.vmv(1, s.as_slice());
        assert_ne!(a, b, "replicas must not share silicon");
        // …but every replica is individually reproducible: rebuilding
        // from the same base config derives the same per-instance seeds.
        let cfg2 = grid.instance(0).config().clone();
        let mut again = BatchedTiledCrossbar::new(
            CrossbarConfig {
                seed: config().seed,
                ..cfg2
            },
            6,
        );
        again.push_instance(&p);
        again.push_instance(&p);
        assert_eq!(a, again.vmv(0, s.as_slice()));
        assert_eq!(b, again.vmv(1, s.as_slice()));
    }

    #[test]
    fn handles_drive_their_instances_independently() {
        let n = 14;
        let p = dense(n, 9);
        let shared = BatchedTiledCrossbar::replicate(&p, 3, config(), 7).into_shared();
        let mut handles = BatchedTiledCrossbar::handles(&shared);
        assert_eq!(handles.len(), 3);
        let s = SpinVector::all_up(n);
        let mut mono = Crossbar::program(&p, config());
        let expected = mono.vmv(s.as_slice());
        for h in &mut handles {
            assert_eq!(h.dimension(), n);
            assert_eq!(h.vmv(s.as_slice()), expected);
            assert_eq!(h.stats().array_ops, 1);
        }
        // Per-instance attribution: each block saw exactly one read.
        let grid = lock_shared(&shared);
        for i in 0..3 {
            assert_eq!(grid.instance_stats(i).array_ops, 1);
        }
        assert_eq!(grid.aggregate_stats().array_ops, 3);
        assert_eq!(grid.batch_stats().grid_cycles, 3);
    }

    #[test]
    fn batched_mvm_matches_per_instance_monolithic_mvm() {
        // The SB placement contract: an instance's full-vector read on
        // the shared grid is bit-identical to the standalone monolithic
        // array's, both through the grid API and a BatchInstance handle.
        let n = 18;
        let problems = [dense(n, 41), dense(n, 42)];
        let mut grid = BatchedTiledCrossbar::new(config(), 7);
        for p in &problems {
            grid.push_instance(p);
        }
        let mut rng = StdRng::seed_from_u64(43);
        let s = SpinVector::random(n, &mut rng);
        for (i, p) in problems.iter().enumerate() {
            let mut mono = Crossbar::program(p, config());
            assert_eq!(grid.mvm(i, s.as_slice()), mono.mvm(s.as_slice()));
        }
        let shared = grid.into_shared();
        let mut handles = BatchedTiledCrossbar::handles(&shared);
        for (i, p) in problems.iter().enumerate() {
            let mut mono = Crossbar::program(p, config());
            assert_eq!(handles[i].mvm(s.as_slice()), mono.mvm(s.as_slice()));
            assert_eq!(handles[i].stats().array_ops, 2);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_instance_is_rejected() {
        let p = dense(8, 10);
        let mut grid = BatchedTiledCrossbar::replicate(&p, 1, config(), 4);
        let s = SpinVector::all_up(8);
        let _ = grid.vmv(1, s.as_slice());
    }

    #[test]
    fn admission_respects_stripe_capacity_and_reuses_freed_spans() {
        // tile_rows 4: an n-spin instance needs ceil(n/4) stripes.
        let p8 = dense(8, 20); // 2 stripes
        let p16 = dense(16, 21); // 4 stripes
        let p12 = dense(12, 22); // 3 stripes
        let mut grid = BatchedTiledCrossbar::new(config(), 4);
        assert_eq!(grid.stripes_needed(16), 4);

        let a = grid.try_admit_instance(&p16, 6).expect("4 of 6 fits");
        let b = grid.try_admit_instance(&p8, 6).expect("4+2 of 6 fits");
        assert_eq!((grid.stripe_offset(a), grid.stripe_offset(b)), (0, 4));
        assert_eq!(grid.stripes_in_use(), 6);
        assert_eq!(grid.live_instances(), 2);
        // Full: a 2-stripe instance does not fit right now.
        assert_eq!(grid.try_admit_instance(&p8, 6), None);

        // Retiring the 4-stripe head frees a span the next admissions
        // fill first-fit, splitting it.
        grid.retire_instance(a);
        assert!(!grid.is_live(a));
        assert_eq!(grid.live_instances(), 1);
        assert_eq!(grid.stripes_in_use(), 2);
        let c = grid.try_admit_instance(&p12, 6).expect("3 of 4 freed");
        assert_eq!(grid.stripe_offset(c), 0);
        let d = grid.try_admit_instance(&p8, 6);
        assert_eq!(d, None, "only 1 free stripe remains");
        assert_eq!(grid.admissions(), 3);
        assert_eq!(grid.retirements(), 1);
    }

    #[test]
    fn retirement_coalesces_spans_and_shrinks_the_tail() {
        let p8 = dense(8, 23); // 2 stripes each at tile_rows 4
        let mut grid = BatchedTiledCrossbar::new(config(), 4);
        let a = grid.try_admit_instance(&p8, 6).unwrap();
        let b = grid.try_admit_instance(&p8, 6).unwrap();
        let c = grid.try_admit_instance(&p8, 6).unwrap();
        // Freeing a and b coalesces [0,2)+[2,4) into one 4-stripe span…
        grid.retire_instance(a);
        grid.retire_instance(b);
        let p16 = dense(16, 24); // needs 4 contiguous stripes
        let d = grid.try_admit_instance(&p16, 6).expect("coalesced span");
        assert_eq!(grid.stripe_offset(d), 0);
        // …and freeing the tail returns stripes to the pool outright.
        grid.retire_instance(c);
        grid.retire_instance(d);
        assert_eq!(grid.stripes_in_use(), 0);
        let e = grid
            .try_admit_instance(&dense(24, 25), 6)
            .expect("empty grid admits a full-width instance");
        assert_eq!(grid.stripe_offset(e), 0);
        assert_eq!(grid.stripes_in_use(), 6);
    }

    #[test]
    fn recycled_slots_see_the_same_silicon() {
        let n = 12;
        let p = dense(n, 26);
        let mut cfg = config();
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig::typical();
        cfg.variation.read_noise_rel = 0.0; // isolate the programmed maps
        let mut grid = BatchedTiledCrossbar::new(cfg, 6);
        let s = SpinVector::all_up(n);
        let first = grid.try_admit_instance(&p, 4).unwrap();
        let before = grid.vmv(first, s.as_slice());
        grid.retire_instance(first);
        // The successor lands in the recycled slot — same per-slot seed,
        // hence the same simulated silicon.
        let second = grid.try_admit_instance(&p, 4).unwrap();
        assert_eq!(second, first);
        assert_eq!(grid.vmv(second, s.as_slice()), before);
    }

    #[test]
    fn trial_reseed_makes_results_slot_and_order_independent() {
        // Two grids admit the same two problems in opposite order, so
        // each problem lands in a different slot (different slot seed).
        // After reseeding each instance for its trial, device-accurate
        // noisy reads must be bit-identical across the grids: the trial,
        // not the placement, owns the silicon.
        let n = 12;
        let pa = dense(n, 33);
        let pb = dense(n, 34);
        let mut cfg = config();
        cfg.fidelity = Fidelity::DeviceAccurate;
        cfg.variation = VariationConfig::typical();
        assert!(cfg.variation.read_noise_rel > 0.0, "noisy case on purpose");
        let s = SpinVector::all_up(n);
        let mut g1 = BatchedTiledCrossbar::new(cfg.clone(), 6);
        let a1 = g1.try_admit_instance(&pa, 8).unwrap();
        let b1 = g1.try_admit_instance(&pb, 8).unwrap();
        let mut g2 = BatchedTiledCrossbar::new(cfg, 6);
        let b2 = g2.try_admit_instance(&pb, 8).unwrap();
        let a2 = g2.try_admit_instance(&pa, 8).unwrap();
        assert_ne!((a1, b1), (a2, b2), "placements really differ");
        g1.reseed_instance_for_trial(a1, 1001);
        g1.reseed_instance_for_trial(b1, 2002);
        g2.reseed_instance_for_trial(a2, 1001);
        g2.reseed_instance_for_trial(b2, 2002);
        assert_eq!(g1.vmv(a1, s.as_slice()), g2.vmv(a2, s.as_slice()));
        assert_eq!(g1.vmv(b1, s.as_slice()), g2.vmv(b2, s.as_slice()));
        // Distinct trials on identical couplings still see distinct
        // silicon: trial seeds, not slots, differentiate replicas.
        g1.reseed_instance_for_trial(a1, 1001);
        g2.reseed_instance_for_trial(a2, 7777);
        assert_ne!(g1.vmv(a1, s.as_slice()), g2.vmv(a2, s.as_slice()));
    }

    #[test]
    fn ideal_trial_reseed_is_free_and_harmless() {
        // All-zero variation means seed-independent silicon: the reseed
        // fast-path must skip the redraw entirely (slot seed retained)
        // and reads must be unaffected.
        let n = 10;
        let p = dense(n, 35);
        let mut grid = BatchedTiledCrossbar::replicate(&p, 2, config(), 5);
        let s = SpinVector::all_up(n);
        let before_seed = grid.instance(0).config().seed;
        let before = grid.vmv(0, s.as_slice());
        grid.reseed_instance_for_trial(0, 4242);
        assert_eq!(grid.instance(0).config().seed, before_seed);
        assert_eq!(grid.vmv(0, s.as_slice()), before);
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn reads_on_retired_instances_panic() {
        let p = dense(8, 27);
        let mut grid = BatchedTiledCrossbar::new(config(), 4);
        let a = grid.try_admit_instance(&p, 4).unwrap();
        grid.retire_instance(a);
        let s = SpinVector::all_up(8);
        let _ = grid.vmv(a, s.as_slice());
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn double_retire_panics() {
        let p = dense(8, 28);
        let mut grid = BatchedTiledCrossbar::new(config(), 4);
        let a = grid.try_admit_instance(&p, 4).unwrap();
        grid.retire_instance(a);
        grid.retire_instance(a);
    }

    #[test]
    fn same_instance_reads_in_one_batch_stay_ordered() {
        // Two reads against one instance serialize in request order —
        // results equal issuing them back to back.
        let n = 10;
        let p = dense(n, 11);
        let mut grid = BatchedTiledCrossbar::replicate(&p, 2, config(), 5);
        let mut reference = BatchedTiledCrossbar::replicate(&p, 2, config(), 5);
        let s = SpinVector::all_up(n);
        let mask = FlipMask::new(vec![2], n);
        let s_new = s.flipped_by(&mask);
        let r = s_new.rest_vector(&mask);
        let c = s_new.changed_vector(&mask);
        let reads = [
            BatchRead {
                instance: 0,
                sigma_r: &r,
                sigma_c: Some(&c),
                factor: 1.0,
            },
            BatchRead {
                instance: 0,
                sigma_r: s.as_slice(),
                sigma_c: None,
                factor: 1.0,
            },
        ];
        let out = grid.read_batch(&reads);
        let a = reference.incremental_form(0, &r, &c, 1.0);
        let b = reference.vmv(0, s.as_slice());
        assert_eq!(out, vec![a, b]);
        assert_eq!(grid.batch_stats().peak_concurrent_instances, 1);
    }
}
