//! Wire parasitics of the crossbar array, in the style of the DESTINY
//! modeling tool the paper extracts its wiring numbers from (ref [37]):
//! per-µm RC from the technology node, line lengths from the array
//! geometry, Elmore delay and CV² switching energy, plus a first-order
//! IR-drop attenuation along the source lines.

use serde::{Deserialize, Serialize};

/// Technology-level wire parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireParams {
    /// Wire resistance per micrometre, ohms.
    pub res_per_um: f64,
    /// Wire capacitance per micrometre, farads.
    pub cap_per_um: f64,
    /// Cell pitch along both axes, micrometres.
    pub cell_pitch_um: f64,
    /// Line swing voltage, volts.
    pub swing_v: f64,
    /// Effective on-resistance of one conducting cell, ohms (sets the
    /// IR-drop scale).
    pub cell_on_res: f64,
}

impl WireParams {
    /// 22 nm intermediate-layer wire values (DESTINY-class defaults):
    /// ≈ 3.3 Ω/µm, 0.2 fF/µm, 0.15 µm cell pitch, 1 V swing, 50 kΩ cell.
    pub fn node_22nm() -> WireParams {
        WireParams {
            res_per_um: 3.3,
            cap_per_um: 0.2e-15,
            cell_pitch_um: 0.15,
            swing_v: 1.0,
            cell_on_res: 5.0e4,
        }
    }
}

impl Default for WireParams {
    fn default() -> WireParams {
        WireParams::node_22nm()
    }
}

/// Derived parasitics of a concrete `rows × cols` array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayWires {
    rows: usize,
    cols: usize,
    params: WireParams,
}

impl ArrayWires {
    /// Build for an array of physical dimensions `rows × cols` cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, params: WireParams) -> ArrayWires {
        assert!(rows > 0 && cols > 0, "array must be non-empty");
        ArrayWires { rows, cols, params }
    }

    /// Word-line (row) length in µm.
    pub fn row_length_um(&self) -> f64 {
        self.cols as f64 * self.params.cell_pitch_um
    }

    /// Bit-line (column) length in µm.
    pub fn col_length_um(&self) -> f64 {
        self.rows as f64 * self.params.cell_pitch_um
    }

    /// Total capacitance of one row line, farads.
    pub fn row_capacitance(&self) -> f64 {
        self.row_length_um() * self.params.cap_per_um
    }

    /// Total capacitance of one column line, farads.
    pub fn col_capacitance(&self) -> f64 {
        self.col_length_um() * self.params.cap_per_um
    }

    /// Total resistance of one column line, ohms.
    pub fn col_resistance(&self) -> f64 {
        self.col_length_um() * self.params.res_per_um
    }

    /// CV² energy of toggling one row line once, joules.
    pub fn row_drive_energy(&self) -> f64 {
        self.row_capacitance() * self.params.swing_v * self.params.swing_v
    }

    /// CV² energy of toggling one column line once, joules.
    pub fn col_drive_energy(&self) -> f64 {
        self.col_capacitance() * self.params.swing_v * self.params.swing_v
    }

    /// Elmore delay of a row line (distributed RC ≈ RC/2), seconds.
    pub fn row_delay(&self) -> f64 {
        let r = self.row_length_um() * self.params.res_per_um;
        let c = self.row_capacitance();
        0.5 * r * c
    }

    /// First-order IR-drop attenuation seen by the cell at `row` when its
    /// current returns along the shared source line: cells far from the
    /// sense amp lose a fraction of their signal.
    ///
    /// Returns a factor in `(0, 1]`; 1 means no attenuation.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn ir_attenuation(&self, row: usize) -> f64 {
        assert!(row < self.rows, "row out of range");
        let r_line_to_cell = (row + 1) as f64 * self.params.cell_pitch_um * self.params.res_per_um;
        // Voltage divider between the line segment and the cell resistance.
        self.params.cell_on_res / (self.params.cell_on_res + r_line_to_cell)
    }

    /// Worst-case (farthest-row) attenuation.
    pub fn worst_ir_attenuation(&self) -> f64 {
        self.ir_attenuation(self.rows - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wires(rows: usize, cols: usize) -> ArrayWires {
        ArrayWires::new(rows, cols, WireParams::node_22nm())
    }

    #[test]
    fn lengths_scale_with_geometry() {
        let w = wires(100, 800);
        assert!((w.row_length_um() - 120.0).abs() < 1e-9);
        assert!((w.col_length_um() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn energies_are_physical_femtojoules() {
        let w = wires(1000, 8000);
        // A 1.2 mm row at 0.2 fF/µm = 240 fF → 240 fJ at 1 V.
        let e = w.row_drive_energy();
        assert!(e > 1e-14 && e < 1e-12, "row energy {e}");
    }

    #[test]
    fn bigger_arrays_have_bigger_delay() {
        assert!(wires(2000, 2000).row_delay() > wires(100, 100).row_delay());
    }

    #[test]
    fn ir_attenuation_monotone_and_bounded() {
        let w = wires(3000, 3000);
        let near = w.ir_attenuation(0);
        let far = w.worst_ir_attenuation();
        assert!(near > far, "farther cells see more drop");
        assert!(far > 0.9, "22nm 3000-row line keeps >90% signal, got {far}");
        assert!(near <= 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dimension_rejected() {
        let _ = wires(0, 10);
    }
}
