//! SAR ADC and column-multiplexing models.
//!
//! The paper employs 8-to-1 multiplexed 13-bit SAR ADCs (ref [36], scaled
//! to 22 nm). [`SarAdc`] models the value-domain behaviour (range clamping
//! and code quantization); [`MuxAssignment`] models which column groups
//! share an ADC, which determines how many conversions serialize — the
//! mechanism behind the ~8× time advantage of the in-situ annealer
//! (Fig. 9).

use serde::{Deserialize, Serialize};

/// A successive-approximation ADC with a fixed full-scale input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SarAdc {
    bits: u8,
    full_scale: f64,
}

impl SarAdc {
    /// Build an ADC with `bits` resolution over `[0, full_scale]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16` or `full_scale <= 0`.
    pub fn new(bits: u8, full_scale: f64) -> SarAdc {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(full_scale > 0.0, "full scale must be positive");
        SarAdc { bits, full_scale }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale input.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Input value of one least-significant code.
    pub fn lsb(&self) -> f64 {
        self.full_scale / ((1u64 << self.bits) as f64)
    }

    /// Digital output code for an analog input (clamped to range).
    pub fn code(&self, input: f64) -> u32 {
        let max_code = (1u64 << self.bits) - 1;
        let clamped = input.clamp(0.0, self.full_scale);
        ((clamped / self.lsb()).round() as u64).min(max_code) as u32
    }

    /// Quantized analog estimate: `code × lsb` (what the digital side
    /// reconstructs).
    pub fn quantize(&self, input: f64) -> f64 {
        self.code(input) as f64 * self.lsb()
    }
}

/// Static assignment of column groups to shared (multiplexed) ADCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxAssignment {
    groups: usize,
    mux_ratio: usize,
    interleaved: bool,
}

impl MuxAssignment {
    /// `groups` column groups shared `mux_ratio`-to-1 onto ADCs, with
    /// interleaved placement (`group % adc_count`) — consecutive groups on
    /// distinct ADCs, the placement that lets the in-situ annealer's few
    /// active columns convert in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `mux_ratio == 0`.
    pub fn interleaved(groups: usize, mux_ratio: usize) -> MuxAssignment {
        assert!(groups > 0 && mux_ratio > 0, "empty assignment");
        MuxAssignment {
            groups,
            mux_ratio,
            interleaved: true,
        }
    }

    /// Blocked placement (`group / mux_ratio`): consecutive groups share an
    /// ADC (used by the mapping ablation).
    pub fn blocked(groups: usize, mux_ratio: usize) -> MuxAssignment {
        assert!(groups > 0 && mux_ratio > 0, "empty assignment");
        MuxAssignment {
            groups,
            mux_ratio,
            interleaved: false,
        }
    }

    /// Number of ADCs instantiated.
    pub fn adc_count(&self) -> usize {
        self.groups.div_ceil(self.mux_ratio)
    }

    /// The mux ratio (groups per ADC).
    pub fn mux_ratio(&self) -> usize {
        self.mux_ratio
    }

    /// ADC serving column group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn adc_of(&self, g: usize) -> usize {
        assert!(g < self.groups, "group out of range");
        if self.interleaved {
            g % self.adc_count()
        } else {
            g / self.mux_ratio
        }
    }

    /// Number of sequential conversion slots needed to convert
    /// `conversions_per_group` values from each group in `active_groups`:
    /// groups on distinct ADCs convert in parallel; groups sharing an ADC
    /// serialize.
    pub fn slots_for(&self, active_groups: &[usize], conversions_per_group: usize) -> usize {
        if active_groups.is_empty() || conversions_per_group == 0 {
            return 0;
        }
        let mut load = vec![0usize; self.adc_count()];
        for &g in active_groups {
            load[self.adc_of(g)] += conversions_per_group;
        }
        load.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_and_quantize_roundtrip() {
        let adc = SarAdc::new(8, 256.0);
        assert_eq!(adc.lsb(), 1.0);
        assert_eq!(adc.code(5.4), 5);
        assert_eq!(adc.quantize(5.4), 5.0);
        assert_eq!(adc.code(5.6), 6);
    }

    #[test]
    fn saturation_at_full_scale() {
        let adc = SarAdc::new(4, 16.0);
        assert_eq!(adc.code(100.0), 15);
        assert_eq!(adc.code(-3.0), 0);
        assert!(adc.quantize(100.0) <= 16.0);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb_in_range() {
        let adc = SarAdc::new(10, 1.0);
        for k in 0..100 {
            let x = 0.99 * k as f64 / 99.0;
            assert!((adc.quantize(x) - x).abs() <= adc.lsb() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn higher_resolution_reduces_lsb() {
        assert!(SarAdc::new(13, 1.0).lsb() < SarAdc::new(8, 1.0).lsb());
    }

    #[test]
    fn interleaved_assignment_spreads_consecutive_groups() {
        let m = MuxAssignment::interleaved(64, 8);
        assert_eq!(m.adc_count(), 8);
        let adcs: Vec<usize> = (0..8).map(|g| m.adc_of(g)).collect();
        let mut unique = adcs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 8, "first 8 groups use 8 distinct ADCs");
    }

    #[test]
    fn blocked_assignment_packs_consecutive_groups() {
        let m = MuxAssignment::blocked(64, 8);
        assert_eq!(m.adc_of(0), 0);
        assert_eq!(m.adc_of(7), 0);
        assert_eq!(m.adc_of(8), 1);
    }

    #[test]
    fn slots_model_full_vs_sparse_activation() {
        // 64 groups, 8:1 mux: full activation serializes 8 groups per ADC;
        // two sparse active groups (interleaved) run fully in parallel.
        let m = MuxAssignment::interleaved(64, 8);
        let all: Vec<usize> = (0..64).collect();
        assert_eq!(m.slots_for(&all, 4), 8 * 4);
        assert_eq!(m.slots_for(&[3, 12], 4), 4);
        // Blocked mapping can collide.
        let b = MuxAssignment::blocked(64, 8);
        assert_eq!(b.slots_for(&[0, 1], 4), 8);
    }

    #[test]
    fn slots_empty_cases() {
        let m = MuxAssignment::interleaved(8, 8);
        assert_eq!(m.slots_for(&[], 4), 0);
        assert_eq!(m.slots_for(&[0], 0), 0);
    }
}
