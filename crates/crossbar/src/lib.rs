//! # fecim-crossbar
//!
//! DG FeFET compute-in-memory crossbar simulator (Sec. 3.3 / Fig. 6d of
//! Qian et al., DAC 2025): `k`-bit signed quantization of the coupling
//! matrix, bit-sliced column sensing through multiplexed SAR ADCs, wire
//! parasitics, device variation, and hardware activity accounting.
//!
//! Two read modes mirror the paper's comparison: the proposed *in-situ
//! incremental-E* read (only flipped-spin columns activate) and the
//! conventional *direct VMV* read (whole array) used by the baseline
//! annealers.
//!
//! ```
//! use fecim_crossbar::{Crossbar, CrossbarConfig};
//! use fecim_ising::{CsrCoupling, SpinVector};
//!
//! let j = CsrCoupling::from_triplets(4, &[(0, 1, 0.25), (2, 3, -0.25)])?;
//! let mut xb = Crossbar::program(&j, CrossbarConfig::paper_defaults());
//! let sigma = SpinVector::all_up(4);
//! let e = xb.vmv(sigma.as_slice());
//! assert!((e - 0.0).abs() < 0.5); // 2·(0.25) + 2·(−0.25) = 0
//! assert!(xb.stats().adc_conversions > 0);
//! # Ok::<(), fecim_ising::IsingError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adc;
mod array;
mod batch;
mod parasitics;
mod periphery;
mod quant;
mod stats;
mod tiled;

pub use adc::{MuxAssignment, SarAdc};
pub use array::{Crossbar, CrossbarConfig, Fidelity, InSituArray};
pub use batch::{BatchInstance, BatchRead, BatchStats, BatchedTiledCrossbar};
pub use parasitics::{ArrayWires, WireParams};
pub use periphery::{split_input_phases, ShiftAdd, SpinEncoder, TemperatureEncoder};
pub use quant::QuantizedCoupling;
pub use stats::ActivityStats;
pub use tiled::{SensingMode, TiledCrossbar, DEFAULT_TILE_ROWS};
