//! `k`-bit signed quantization of the coupling matrix `J` for crossbar
//! mapping (paper Sec. 3.3: "Each element in the matrix J is mapped onto a
//! 1×k subarray, with each cell storing 1 bit under k-bit quantization";
//! positive and negative values live in separate polarity planes since the
//! array handles non-negative quantities only).

use serde::{Deserialize, Serialize};

use fecim_ising::Coupling;

/// A coupling matrix quantized to `k`-bit magnitude codes with separate
/// positive/negative polarity planes, stored column-sparse (zero couplings
/// occupy cells but never conduct).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedCoupling {
    n: usize,
    bits: u8,
    scale: f64,
    /// Per column: sorted `(row, pos_code, neg_code)` entries with at least
    /// one nonzero code.
    columns: Vec<Vec<(u32, u8, u8)>>,
    nonzero_cells: usize,
}

impl QuantizedCoupling {
    /// Quantize `coupling` to `bits`-bit magnitudes.
    ///
    /// The quantization step is `scale = max|J| / (2^bits − 1)`; each entry
    /// is rounded to the nearest code in its polarity plane.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8.
    pub fn from_coupling<C: Coupling>(coupling: &C, bits: u8) -> QuantizedCoupling {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        let n = coupling.dimension();
        let mut max_abs = 0.0f64;
        for i in 0..n {
            coupling.for_each_in_row(i, &mut |_, v| {
                max_abs = max_abs.max(v.abs());
            });
        }
        let levels = (1u32 << bits) - 1;
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / levels as f64
        };
        let mut columns: Vec<Vec<(u32, u8, u8)>> = vec![Vec::new(); n];
        let mut nonzero_cells = 0usize;
        for i in 0..n {
            coupling.for_each_in_row(i, &mut |j, v| {
                // Row i of J contributes the cell (row=i) of column group j.
                let code = ((v.abs() / scale).round() as u32).min(levels) as u8;
                if code > 0 {
                    let (pos, neg) = if v > 0.0 { (code, 0) } else { (0, code) };
                    columns[j].push((i as u32, pos, neg));
                    nonzero_cells += 1;
                }
            });
        }
        for col in &mut columns {
            col.sort_unstable_by_key(|e| e.0);
        }
        QuantizedCoupling {
            n,
            bits,
            scale,
            columns,
            nonzero_cells,
        }
    }

    /// Matrix dimension `n`.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Bits per magnitude code (`k`).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Quantization step (J units per code LSB).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Number of cells holding a nonzero code.
    pub fn nonzero_cell_count(&self) -> usize {
        self.nonzero_cells
    }

    /// Sparse entries `(row, pos_code, neg_code)` of column group `j`.
    pub fn column(&self, j: usize) -> &[(u32, u8, u8)] {
        &self.columns[j]
    }

    /// Reconstructed (de-quantized) value of `J_ij`.
    pub fn reconstruct(&self, i: usize, j: usize) -> f64 {
        match self.columns[j].binary_search_by_key(&(i as u32), |e| e.0) {
            Ok(pos) => {
                let (_, p, m) = self.columns[j][pos];
                self.scale * (p as f64 - m as f64)
            }
            Err(_) => 0.0,
        }
    }

    /// Worst-case absolute reconstruction error (`scale / 2`).
    pub fn max_quantization_error(&self) -> f64 {
        self.scale / 2.0
    }

    /// Physical crossbar geometry implied by the mapping: `n` rows by
    /// `n · bits` columns per polarity plane (paper: an `n×n` matrix maps
    /// onto an `n×m` crossbar with `m = n·k`).
    pub fn physical_columns(&self) -> usize {
        self.n * self.bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_ising::DenseCoupling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_dense(n: usize, seed: u64) -> DenseCoupling {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseCoupling::random(n, 0.5, 2.0, &mut rng)
    }

    #[test]
    fn reconstruction_error_is_bounded_by_half_lsb() {
        let dense = random_dense(24, 1);
        for bits in [2u8, 4, 8] {
            let q = QuantizedCoupling::from_coupling(&dense, bits);
            let bound = q.max_quantization_error() + 1e-12;
            for i in 0..24 {
                for j in 0..24 {
                    let err = (q.reconstruct(i, j) - dense.get(i, j)).abs();
                    assert!(err <= bound, "bits={bits} ({i},{j}): err={err}");
                }
            }
        }
    }

    #[test]
    fn higher_precision_reduces_error() {
        let dense = random_dense(16, 2);
        let q2 = QuantizedCoupling::from_coupling(&dense, 2);
        let q8 = QuantizedCoupling::from_coupling(&dense, 8);
        let err = |q: &QuantizedCoupling| -> f64 {
            let mut e = 0.0;
            for i in 0..16 {
                for j in 0..16 {
                    e += (q.reconstruct(i, j) - dense.get(i, j)).abs();
                }
            }
            e
        };
        assert!(err(&q8) < err(&q2));
    }

    #[test]
    fn unit_weights_quantize_exactly() {
        // Gset ±1 weights (J = ±0.25) are exactly representable at any k.
        let mut dense = DenseCoupling::zeros(4);
        dense.set(0, 1, 0.25);
        dense.set(1, 2, -0.25);
        let q = QuantizedCoupling::from_coupling(&dense, 4);
        assert_eq!(q.reconstruct(0, 1), 0.25);
        assert_eq!(q.reconstruct(1, 2), -0.25);
        assert_eq!(q.reconstruct(2, 1), -0.25, "symmetry preserved");
        assert_eq!(q.reconstruct(0, 2), 0.0);
    }

    #[test]
    fn polarity_planes_are_disjoint() {
        let dense = random_dense(12, 3);
        let q = QuantizedCoupling::from_coupling(&dense, 6);
        for j in 0..12 {
            for &(_, p, m) in q.column(j) {
                assert!(p == 0 || m == 0, "a cell pair holds one polarity");
                assert!(p > 0 || m > 0, "stored entries are nonzero");
            }
        }
    }

    #[test]
    fn geometry_matches_paper_mapping() {
        let dense = random_dense(10, 4);
        let q = QuantizedCoupling::from_coupling(&dense, 8);
        assert_eq!(q.physical_columns(), 80);
        assert_eq!(q.dimension(), 10);
    }

    #[test]
    fn zero_matrix_is_handled() {
        let dense = DenseCoupling::zeros(5);
        let q = QuantizedCoupling::from_coupling(&dense, 4);
        assert_eq!(q.nonzero_cell_count(), 0);
        assert_eq!(q.reconstruct(0, 1), 0.0);
    }
}
