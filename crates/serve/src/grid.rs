//! Live shared grids: where batched trials of *different* jobs coexist.
//!
//! The pool keeps one [`BatchedTiledCrossbar`] per tile height in use.
//! Each batched trial is admitted as its own instance (block-diagonal
//! stripe span) just before it runs and retired as soon as it finishes,
//! so the grid's freed stripes admit queued work immediately — the
//! paper's array-parallelism argument applied across heterogeneous
//! requests instead of one lockstep cohort. Jobs whose admission does
//! not fit *right now* park in the grid's waiter list and are re-queued
//! by the next retirement.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use fecim::PreparedJob;
use fecim_crossbar::{BatchInstance, BatchedTiledCrossbar, CrossbarConfig};
use fecim_ising::Coupling;

use crate::job::Job;

/// Outcome of an admission attempt.
pub(crate) enum Admission {
    /// A stripe span was reserved; run the trial against this handle.
    Granted(BatchInstance),
    /// No span fits right now; the job is parked until a retirement.
    Parked,
    /// The instance needs more stripes than the grid will ever have.
    Impossible {
        /// Stripes the instance needs.
        needed: usize,
    },
}

struct LiveGrid {
    shared: Arc<Mutex<BatchedTiledCrossbar>>,
    /// Jobs whose admission failed; re-queued on the next retirement.
    waiters: Vec<Arc<Job>>,
}

/// Point-in-time statistics of one live grid (see
/// [`Scheduler::grid_stats`](crate::Scheduler::grid_stats)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveGridStats {
    /// Physical tile height of the grid.
    pub tile_rows: usize,
    /// Stripe capacity admissions respect.
    pub stripe_limit: usize,
    /// Stripes currently occupied by live instances.
    pub stripes_in_use: usize,
    /// Instances currently on the grid.
    pub live_instances: usize,
    /// Lifetime admissions.
    pub admissions: u64,
    /// Lifetime retirements.
    pub retirements: u64,
    /// Grid cycles issued so far.
    pub grid_cycles: u64,
    /// Reads executed so far.
    pub reads: u64,
    /// Fraction of offered tile slots that activated.
    pub grid_utilization: f64,
    /// Largest number of distinct instances served by one cycle.
    pub peak_concurrent_instances: usize,
    /// Jobs currently parked waiting for stripes.
    pub waiting_jobs: usize,
}

/// One live grid per tile height, plus the admission bookkeeping.
pub(crate) struct GridPool {
    config: CrossbarConfig,
    stripe_limit: usize,
    grids: BTreeMap<usize, LiveGrid>,
}

impl GridPool {
    pub(crate) fn new(config: CrossbarConfig, stripe_limit: usize) -> GridPool {
        GridPool {
            config,
            stripe_limit,
            grids: BTreeMap::new(),
        }
    }

    /// The stripe capacity admissions respect.
    pub(crate) fn stripe_limit(&self) -> usize {
        self.stripe_limit
    }

    /// Try to place one replica of `prepared` onto the live grid for its
    /// tile height, parking `job` on failure.
    ///
    /// # Panics
    ///
    /// Panics if `prepared` is not a batched job (the scheduler routes
    /// solver jobs elsewhere).
    pub(crate) fn admit(&mut self, job: &Arc<Job>, prepared: &PreparedJob) -> Admission {
        // audit:allow(panic-path): documented `# Panics` contract above — the scheduler only routes batched jobs here, and batched jobs carry tiles and a coupling
        let tile_rows = prepared.tile_rows().expect("admitting a batched job");
        // audit:allow(panic-path): same documented contract as the line above
        let coupling = prepared.batch_coupling().expect("batched jobs carry one");
        // Reject never-fitting instances before instantiating a grid
        // for their tile height (same sizing rule as
        // `BatchedTiledCrossbar::stripes_needed`).
        let needed = coupling.dimension().div_ceil(tile_rows);
        if needed > self.stripe_limit {
            return Admission::Impossible { needed };
        }
        let config = self.config.clone();
        let limit = self.stripe_limit;
        let entry = self.grids.entry(tile_rows).or_insert_with(|| LiveGrid {
            shared: BatchedTiledCrossbar::new(config, tile_rows).into_shared(),
            waiters: Vec::new(),
        });
        let mut grid = lock_grid(&entry.shared);
        match grid.try_admit_instance(coupling, limit) {
            Some(index) => {
                drop(grid);
                Admission::Granted(BatchInstance::new(Arc::clone(&entry.shared), index))
            }
            None => {
                entry.waiters.push(Arc::clone(job));
                Admission::Parked
            }
        }
    }

    /// Retire a finished replica and hand back every parked job (the
    /// scheduler re-queues them; jobs that still don't fit simply park
    /// again).
    pub(crate) fn retire(&mut self, tile_rows: usize, instance: usize) -> Vec<Arc<Job>> {
        let entry = self
            .grids
            .get_mut(&tile_rows)
            // audit:allow(panic-path): every retire pairs with a prior admit that created this tile-height entry, and entries are never removed
            .expect("retiring from a grid that admitted");
        lock_grid(&entry.shared).retire_instance(instance);
        std::mem::take(&mut entry.waiters)
    }

    /// Snapshot per-grid statistics, smallest tile height first.
    pub(crate) fn stats(&self) -> Vec<LiveGridStats> {
        self.grids
            .iter()
            .map(|(&tile_rows, entry)| {
                let grid = lock_grid(&entry.shared);
                let batch = grid.batch_stats();
                LiveGridStats {
                    tile_rows,
                    stripe_limit: self.stripe_limit,
                    stripes_in_use: grid.stripes_in_use(),
                    live_instances: grid.live_instances(),
                    admissions: grid.admissions(),
                    retirements: grid.retirements(),
                    grid_cycles: batch.grid_cycles,
                    reads: batch.reads,
                    grid_utilization: batch.grid_utilization(),
                    peak_concurrent_instances: batch.peak_concurrent_instances,
                    waiting_jobs: entry.waiters.len(),
                }
            })
            .collect()
    }
}

fn lock_grid(
    shared: &Arc<Mutex<BatchedTiledCrossbar>>,
) -> std::sync::MutexGuard<'_, BatchedTiledCrossbar> {
    shared.lock().unwrap_or_else(PoisonError::into_inner)
}
