//! # fecim-serve
//!
//! The next-generation execution API of the fecim workspace: a
//! [`Scheduler`] that queues many [`SolveRequest`](fecim::SolveRequest)s,
//! runs them on a worker pool at trial granularity, and keeps shared
//! [`BatchedTiledCrossbar`](fecim_crossbar::BatchedTiledCrossbar) grids
//! saturated by admitting queued jobs into freed stripe slots as
//! replicas finish — the software half of the paper's array-parallelism
//! co-design, applied to heterogeneous traffic.
//!
//! Where [`Session::run`](fecim::Session::run) is a blocking one-shot
//! call, [`Scheduler::submit`] returns a [`JobHandle`] immediately:
//!
//! * [`JobHandle::status`] / [`JobHandle::progress`] — lifecycle and
//!   trials-completed / best-energy-so-far observation;
//! * [`JobHandle::cancel`] — stop between trials, keeping what finished;
//! * [`JobHandle::wait`] — block for the final
//!   [`SolveResponse`](fecim::SolveResponse).
//!
//! ## Determinism
//!
//! Trials derive all randomness from `base_seed + trial`, so with any
//! fixed worker count, scheduled Ideal-fidelity results are
//! **bit-identical** to `Session::run` of the same requests — queueing,
//! priorities and live-grid placement change *when and where* a trial
//! runs, never *what it computes*. (The one scheduler-visible
//! difference: responses report live-grid placement through
//! [`Scheduler::grid_stats`] instead of per-chunk
//! [`BatchGridSummary`](fecim::BatchGridSummary)s, whose chunk shapes
//! are a `Session`-only concept.) In
//! [`Fidelity::DeviceAccurate`](fecim_crossbar::Fidelity) mode,
//! variation seeds follow grid slots, so placement *does* matter — as
//! it would on real silicon.
//!
//! ## Campaigns
//!
//! [`run_campaign`] layers multi-round orchestration on top of the
//! queue: warm-started whole-problem refinement, or qbsolv-style
//! windowed decomposition ([`CampaignSpec::with_decompose`]) that
//! solves beyond-grid-capacity QUBOs as concurrent clamped sub-problems
//! stitched between rounds — deterministic at any worker count.
//!
//! ## Transports
//!
//! The `fecim-serve` binary speaks the [`jsonl`] protocol over two
//! byte streams with identical semantics:
//!
//! * **Batch** — `fecim-serve serve --stdin-jsonl`: the whole stream is
//!   staged on a paused scheduler, responses come back in submission
//!   order ([`run_jsonl`]).
//! * **Streaming TCP** — `fecim-serve serve --listen ADDR`: a
//!   thread-per-connection [`TcpServer`] executes jobs as they arrive
//!   and emits responses as jobs finish (tagged by id, not submission
//!   order), answers `Status`/`Progress` queries live, and pushes back
//!   with `Rejected` lines once `open_jobs` reaches a configurable hard
//!   limit.
//!
//! ## Durability
//!
//! [`SchedulerConfig::with_journal`] appends every job transition to a
//! JSONL journal; [`Scheduler::recover`] replays a crashed run's
//! unfinished jobs bit-identically (see [`journal`]). Deadlines are
//! *enforced* at trial granularity: a job whose `deadline_ms` elapses
//! finalizes as [`JobStatus::DeadlineExceeded`] with partial results.

// `missing_docs` (and `deny(unsafe_code)`) come from `[workspace.lints]`.
#![warn(missing_debug_implementations)]

pub mod campaign;
mod grid;
mod job;
pub mod journal;
pub mod jsonl;
mod scheduler;
pub mod tcp;

pub use campaign::{
    run_campaign, CampaignError, CampaignOutcome, CampaignSpec, DecomposePlan, RoundReport,
    ScheduleVariant,
};
pub use grid::LiveGridStats;
pub use job::{JobHandle, JobProgress, JobStatus, SchedulerError, SubmitOptions};
pub use journal::{compact_records, read_journal, JournalError, JournalRecord, RecoveredJob};
pub use jsonl::{
    check_responses, check_responses_against, run_jsonl, terminal_line, JsonlError, JsonlSummary,
    RequestLine, ResponseLine,
};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use tcp::{drive, TcpServer, TcpServerConfig};
