//! The `fecim-serve` binary: the JSONL transport over stdin/stdout.
//!
//! ```text
//! fecim-serve serve --stdin-jsonl [--workers N] [--grid-stripes N]
//! fecim-serve check-responses [FILE]
//! ```
//!
//! `serve --stdin-jsonl` reads one request per line (see
//! [`fecim_serve::jsonl`]), executes the whole stream on a scheduler,
//! and writes one response line per submission in submission order.
//! `check-responses` re-parses emitted response lines (from FILE or
//! stdin) and exits nonzero if any line is invalid — the CI smoke's
//! assertion.

use std::io::{BufRead, BufReader, Write as _};

use fecim_serve::{check_responses, run_jsonl, SchedulerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fecim-serve serve --stdin-jsonl [--workers N] [--grid-stripes N]\n       \
         fecim-serve check-responses [FILE]"
    );
    std::process::exit(2);
}

fn parse_usize(args: &[String], flag: &str) -> Option<usize> {
    for (i, a) in args.iter().enumerate() {
        let value = if a == flag {
            match args.get(i + 1) {
                Some(next) => Some(next.clone()),
                None => {
                    eprintln!("error: {flag} needs a positive integer value");
                    std::process::exit(2);
                }
            }
        } else {
            a.strip_prefix(&format!("{flag}=")).map(str::to_string)
        };
        if let Some(value) = value {
            match value.parse::<usize>() {
                Ok(v) if v > 0 => return Some(v),
                _ => {
                    eprintln!("error: {flag} needs a positive integer (got {value:?})");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            if !args.iter().any(|a| a == "--stdin-jsonl") {
                eprintln!("error: `serve` currently supports only --stdin-jsonl");
                usage();
            }
            let mut config = SchedulerConfig::default();
            if let Some(workers) = parse_usize(&args, "--workers") {
                config.workers = workers;
            }
            if let Some(stripes) = parse_usize(&args, "--grid-stripes") {
                config.grid_stripes = stripes;
            }
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            match run_jsonl(stdin.lock(), stdout.lock(), config) {
                Ok(summary) => {
                    eprintln!(
                        "served {} jobs: {} completed, {} cancelled, {} failed",
                        summary.submitted, summary.completed, summary.cancelled, summary.failed
                    );
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("check-responses") => {
            let input: Box<dyn BufRead> = match args.get(1) {
                Some(path) => match std::fs::File::open(path) {
                    Ok(file) => Box::new(BufReader::new(file)),
                    Err(e) => {
                        eprintln!("error: cannot open {path}: {e}");
                        std::process::exit(1);
                    }
                },
                None => Box::new(BufReader::new(std::io::stdin())),
            };
            match check_responses(input) {
                Ok(lines) => {
                    let mut out = std::io::stdout();
                    let _ = writeln!(out, "{} response lines parsed", lines.len());
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
