//! The `fecim-serve` binary: the JSONL protocol over stdin/stdout or a
//! TCP socket, plus journal recovery and response validation.
//!
//! ```text
//! fecim-serve serve --stdin-jsonl [--journal PATH] [--workers N] [--grid-stripes N]
//! fecim-serve serve --listen ADDR [--journal PATH] [--workers N] [--grid-stripes N]
//!                   [--max-open-jobs N]
//! fecim-serve drive --connect ADDR [FILE]
//! fecim-serve recover --journal PATH [--workers N] [--grid-stripes N]
//! fecim-serve journal compact IN OUT
//! fecim-serve check-responses [FILE] [--requests FILE]
//! ```
//!
//! `serve --stdin-jsonl` stages the whole stream and answers in
//! submission order; `serve --listen` streams responses as jobs finish
//! (see [`fecim_serve::jsonl`] and [`fecim_serve::tcp`]). Both accept
//! `--journal PATH`; a listening server additionally *replays* an
//! existing journal's unfinished jobs before accepting connections.
//! `drive` is the matching client: it sends FILE (or stdin) to a
//! server and prints every response line until the server closes the
//! connection. `recover` replays a journal standalone and prints the
//! recovered jobs' terminal response lines in original submission
//! order. `journal compact` rewrites a journal without the records of
//! settled jobs — recovery from the compacted file is bit-identical to
//! recovery from the original, the file is just smaller. `check-responses`
//! re-parses emitted response lines and exits
//! nonzero on syntax errors or double-answered ids; with `--requests`
//! it also flags ids that got no (or a spurious) response.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::time::{Duration, Instant};

use fecim_serve::{
    check_responses, check_responses_against, compact_records, read_journal, run_jsonl,
    terminal_line, JsonlSummary, Scheduler, SchedulerConfig, TcpServer, TcpServerConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: fecim-serve serve --stdin-jsonl [--journal PATH] [--workers N] [--grid-stripes N]\n       \
         fecim-serve serve --listen ADDR [--journal PATH] [--workers N] [--grid-stripes N] [--max-open-jobs N]\n       \
         fecim-serve drive --connect ADDR [FILE]\n       \
         fecim-serve recover --journal PATH [--workers N] [--grid-stripes N]\n       \
         fecim-serve journal compact IN OUT\n       \
         fecim-serve check-responses [FILE] [--requests FILE]"
    );
    std::process::exit(2);
}

fn parse_usize(args: &[String], flag: &str) -> Option<usize> {
    parse_value(args, flag).map(|value| match value.parse::<usize>() {
        Ok(v) if v > 0 => v,
        _ => {
            eprintln!("error: {flag} needs a positive integer (got {value:?})");
            std::process::exit(2);
        }
    })
}

fn parse_value(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            match args.get(i + 1) {
                Some(next) => return Some(next.clone()),
                None => {
                    eprintln!("error: {flag} needs a value");
                    std::process::exit(2);
                }
            }
        }
        if let Some(value) = a.strip_prefix(&format!("{flag}=")) {
            return Some(value.to_string());
        }
    }
    None
}

fn scheduler_config(args: &[String]) -> SchedulerConfig {
    let mut config = SchedulerConfig::default();
    if let Some(workers) = parse_usize(args, "--workers") {
        config.workers = workers;
    }
    if let Some(stripes) = parse_usize(args, "--grid-stripes") {
        config.grid_stripes = stripes;
    }
    if let Some(journal) = parse_value(args, "--journal") {
        config = config.with_journal(journal);
    }
    config
}

/// Flags that take a value, so positional-argument scanning can skip
/// the value token.
const VALUE_FLAGS: &[&str] = &[
    "--workers",
    "--grid-stripes",
    "--journal",
    "--max-open-jobs",
    "--listen",
    "--connect",
    "--requests",
];

/// The positional arguments after the subcommand: not flags, not a
/// flag's value.
fn positionals(args: &[String]) -> Vec<&String> {
    let mut found = Vec::new();
    let mut skip_value = false;
    for a in args.iter().skip(1) {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a.starts_with("--") {
            skip_value = VALUE_FLAGS.contains(&a.as_str()) && !a.contains('=');
            continue;
        }
        found.push(a);
    }
    found
}

/// The first positional argument after the subcommand.
fn positional(args: &[String]) -> Option<&String> {
    positionals(args).into_iter().next()
}

fn open_input(path: Option<&String>) -> Box<dyn BufRead> {
    match path {
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(BufReader::new(file)),
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                std::process::exit(1);
            }
        },
        None => Box::new(BufReader::new(std::io::stdin())),
    }
}

fn serve_stdin(args: &[String]) {
    let config = scheduler_config(args);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match run_jsonl(stdin.lock(), stdout.lock(), config) {
        Ok(summary) => {
            eprintln!(
                "served {} jobs: {} completed, {} cancelled, {} deadline-exceeded, {} failed",
                summary.submitted,
                summary.completed,
                summary.cancelled,
                summary.deadline_exceeded,
                summary.failed
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn serve_listen(args: &[String], addr: &str) {
    let config = TcpServerConfig {
        scheduler: scheduler_config(args),
        max_open_jobs: parse_usize(args, "--max-open-jobs"),
    };
    let server = match TcpServer::bind(addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    if server.recovered_jobs() > 0 {
        eprintln!(
            "fecim-serve: recovered {} unfinished jobs from the journal",
            server.recovered_jobs()
        );
    }
    eprintln!("fecim-serve: listening on {}", server.local_addr());
    // The accept loop owns the process from here; Ctrl-C tears it down.
    loop {
        std::thread::park();
    }
}

fn drive(args: &[String], addr: &str) {
    let mut requests = String::new();
    if let Err(e) = open_input(positional(args)).read_to_string(&mut requests) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    // Retry the connect so CI can launch the server in the background
    // without a readiness handshake.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stdout = std::io::stdout();
    loop {
        match fecim_serve::drive(
            addr,
            std::io::Cursor::new(requests.as_bytes()),
            stdout.lock(),
        ) {
            Ok(received) => {
                eprintln!("received {received} response lines");
                return;
            }
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                if Instant::now() >= deadline {
                    eprintln!("error: cannot connect to {addr}: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn recover(args: &[String]) {
    let Some(journal) = parse_value(args, "--journal") else {
        eprintln!("error: `recover` needs --journal PATH");
        usage();
    };
    let mut config = scheduler_config(args);
    config.paused = true;
    // Recovery appends to the same journal (Superseded + replayed
    // lifecycles), keeping the file authoritative for the next replay.
    config = config.with_journal(&journal);
    let scheduler = match Scheduler::try_with_config(config) {
        Ok(scheduler) => scheduler,
        Err(e) => {
            eprintln!("error: cannot open journal {journal}: {e}");
            std::process::exit(1);
        }
    };
    let recovered = match scheduler.recover(&journal) {
        Ok(recovered) => recovered,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    scheduler.resume();
    let mut summary = JsonlSummary::default();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for job in recovered {
        let id = job
            .name
            .unwrap_or_else(|| format!("job-{}", job.crashed_id));
        let line = terminal_line(id, job.handle.wait(), &mut summary);
        let json = serde_json::to_string(&line).expect("response lines serialize");
        if writeln!(out, "{json}").is_err() {
            std::process::exit(1);
        }
    }
    scheduler.join();
    eprintln!(
        "recovered {} jobs: {} completed, {} cancelled, {} deadline-exceeded, {} failed",
        summary.completed + summary.cancelled + summary.deadline_exceeded + summary.failed,
        summary.completed,
        summary.cancelled,
        summary.deadline_exceeded,
        summary.failed
    );
}

fn journal_compact(args: &[String]) {
    let arguments = positionals(args);
    let (input, output) = match arguments.as_slice() {
        [verb, input, output] if verb.as_str() == "compact" => (input, output),
        _ => {
            eprintln!("error: `journal` needs `compact IN OUT`");
            usage();
        }
    };
    let records = match read_journal(input) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let total = records.len();
    let compacted = compact_records(records);
    let kept = compacted.len();
    let mut file = match std::fs::File::create(output) {
        Ok(file) => file,
        Err(e) => {
            eprintln!("error: cannot create {output}: {e}");
            std::process::exit(1);
        }
    };
    let write = |file: &mut std::fs::File| -> std::io::Result<()> {
        for record in &compacted {
            let json = serde_json::to_string(record).expect("journal records serialize");
            writeln!(file, "{json}")?;
        }
        file.sync_all()
    };
    if let Err(e) = write(&mut file) {
        eprintln!("error: cannot write {output}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "compacted {total} records to {kept} ({} settled-job records dropped)",
        total - kept
    );
}

fn check(args: &[String]) {
    let responses = open_input(positional(args));
    let result = match parse_value(args, "--requests") {
        Some(requests_path) => {
            let requests = open_input(Some(&requests_path));
            check_responses_against(requests, responses)
        }
        None => check_responses(responses),
    };
    match result {
        Ok(lines) => {
            let mut out = std::io::stdout();
            let _ = writeln!(out, "{} response lines parsed", lines.len());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            if let Some(addr) = parse_value(&args, "--listen") {
                serve_listen(&args, &addr);
            } else if args.iter().any(|a| a == "--stdin-jsonl") {
                serve_stdin(&args);
            } else {
                eprintln!("error: `serve` needs --stdin-jsonl or --listen ADDR");
                usage();
            }
        }
        Some("drive") => {
            let Some(addr) = parse_value(&args, "--connect") else {
                eprintln!("error: `drive` needs --connect ADDR");
                usage();
            };
            drive(&args, &addr);
        }
        Some("recover") => recover(&args),
        Some("journal") => journal_compact(&args),
        Some("check-responses") => check(&args),
        _ => usage(),
    }
}
