//! Multi-round solve campaigns over the [`Scheduler`]: warm-started
//! iterative refinement plus qbsolv-style decomposition, so problem size
//! is no longer bounded by what one crossbar grid admits.
//!
//! A campaign runs `rounds` rounds. Each round solves either
//!
//! * the **whole problem** (no [`DecomposePlan`]): one scheduler job,
//!   warm-started from the best assignment any earlier round produced; or
//! * a **windowed decomposition** ([`DecomposePlan`] set, QUBO problems
//!   only): the round ranks variables by single-flip impact under the
//!   current assignment ([`impact_windows`]), clamps everything outside
//!   each window ([`SubQubo::extract`]), submits every sub-problem as a
//!   concurrent scheduler job warm-started from the window's current
//!   spins, writes the sub-solutions back in window order, and settles
//!   the seams with one greedy descent pass over the full coupling.
//!
//! Rounds cycle through the `portfolio` of solver variants
//! (round `r` uses `portfolio[r % portfolio.len()]`), so a campaign can
//! alternate e.g. a cheap in-situ sweep with an occasional deeper
//! baseline polish.
//!
//! # Determinism
//!
//! The trajectory is bit-identical at any scheduler worker count:
//!
//! * window selection depends only on the round's entry assignment;
//! * every sub-job carries an explicit ensemble seed from a flat,
//!   submission-ordered cursor over `base_seed`;
//! * results are reduced in submission order ([`JobHandle::wait`]
//!   blocks), never in completion order;
//! * write-back and stitching run in window order;
//! * the best trial of an ensemble is the *earliest* trial achieving the
//!   minimum energy.
//!
//! # Monotonicity
//!
//! `RoundReport::best_energy` never increases. Whole-problem rounds warm
//! start from the best-so-far spins and the engines capture the start as
//! the initial best; decomposed rounds may transiently regress (windows
//! overlap and are solved concurrently against the round's entry
//! assignment), so a round that stitches to something worse is discarded
//! and the next round restarts from the best-so-far assignment.
//!
//! [`JobHandle::wait`]: crate::JobHandle::wait

use std::fmt;

use serde::{Deserialize, Serialize};

use fecim::anneal::local_search;
use fecim::{
    BackendPlan, ProblemSpec, RunPlan, SolveReport, SolveRequest, SolveResponse, SolverSpec,
};
use fecim_ising::{impact_windows, IsingError, IsingModel, Qubo, SpinVector, SubQubo};

use crate::job::{SchedulerError, SubmitOptions};
use crate::scheduler::Scheduler;

/// Windowed-decomposition settings of a campaign (qbsolv-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecomposePlan {
    /// Variables per sub-problem window. With a device-backed
    /// [`BackendPlan`], the window (plus one ancilla spin when the
    /// clamped sub-problem has linear terms — it almost always does)
    /// must fit what the grid admits.
    pub window: usize,
    /// Variables shared between consecutive windows (`overlap <
    /// window`); overlap lets improvements propagate across window
    /// boundaries between rounds.
    pub overlap: usize,
}

impl DecomposePlan {
    /// A plan with the given window size and no overlap.
    pub fn window(window: usize) -> DecomposePlan {
        DecomposePlan { window, overlap: 0 }
    }

    /// Set the inter-window overlap.
    pub fn with_overlap(mut self, overlap: usize) -> DecomposePlan {
        self.overlap = overlap;
        self
    }
}

/// One solver variant of a campaign's portfolio: an architecture plus
/// the ensemble width each of its rounds runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleVariant {
    /// The annealer architecture and configuration.
    pub solver: SolverSpec,
    /// Trials per job this variant submits (ensemble width).
    pub trials: usize,
}

impl ScheduleVariant {
    /// A single-trial variant.
    pub fn new(solver: SolverSpec) -> ScheduleVariant {
        ScheduleVariant { solver, trials: 1 }
    }

    /// Set the ensemble width.
    pub fn with_trials(mut self, trials: usize) -> ScheduleVariant {
        self.trials = trials;
        self
    }
}

/// A multi-round campaign: what to solve, for how many rounds, with
/// which solver portfolio, and whether to decompose.
///
/// Fully serde-serializable — the JSONL/TCP front-ends accept a
/// `Campaign` request line carrying one of these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// The problem every round refines. Decomposed campaigns require
    /// [`ProblemSpec::Qubo`]; whole-problem campaigns accept any spec.
    pub problem: ProblemSpec,
    /// Number of rounds (≥ 1).
    pub rounds: usize,
    /// Solver variants; round `r` uses `portfolio[r % portfolio.len()]`.
    pub portfolio: Vec<ScheduleVariant>,
    /// `Some` = windowed decomposition; `None` = whole-problem rounds.
    pub decompose: Option<DecomposePlan>,
    /// Backend every sub-job runs on (default [`BackendPlan::Analytic`]).
    pub backend: BackendPlan,
    /// Seed of the campaign's flat, submission-ordered seed cursor
    /// (sub-job `k` of the campaign gets ensemble base seed
    /// `base_seed + Σ trials of sub-jobs before k`).
    pub base_seed: u64,
}

impl CampaignSpec {
    /// A campaign with the analytic backend, base seed 0 and no
    /// decomposition.
    pub fn new(
        problem: ProblemSpec,
        rounds: usize,
        portfolio: Vec<ScheduleVariant>,
    ) -> CampaignSpec {
        CampaignSpec {
            problem,
            rounds,
            portfolio,
            decompose: None,
            backend: BackendPlan::Analytic,
            base_seed: 0,
        }
    }

    /// Decompose each round into clamped sub-problem windows.
    pub fn with_decompose(mut self, plan: DecomposePlan) -> CampaignSpec {
        self.decompose = Some(plan);
        self
    }

    /// Set the backend of every sub-job.
    pub fn with_backend(mut self, backend: BackendPlan) -> CampaignSpec {
        self.backend = backend;
        self
    }

    /// Set the campaign's base seed.
    pub fn with_base_seed(mut self, base_seed: u64) -> CampaignSpec {
        self.base_seed = base_seed;
        self
    }
}

/// One round of a campaign's trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index, 0-based.
    pub round: usize,
    /// Index into [`CampaignSpec::portfolio`] of the variant this round
    /// ran.
    pub variant: usize,
    /// Scheduler jobs this round submitted (window count when
    /// decomposed, 1 otherwise).
    pub jobs: usize,
    /// Exact full-problem Ising energy of this round's stitched
    /// assignment (may transiently exceed `best_energy` on decomposed
    /// campaigns; see the module docs).
    pub round_energy: f64,
    /// Best energy over rounds `0..=round` — monotone non-increasing.
    pub best_energy: f64,
    /// Simulated hardware energy this round spent, joules.
    pub hw_energy: f64,
    /// Summed per-trial hardware latency this round spent, seconds.
    pub hw_time: f64,
}

/// Outcome of [`run_campaign`]: the per-round trajectory plus the best
/// solution found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Per-round trajectory, in round order.
    pub rounds: Vec<RoundReport>,
    /// Best exact full-problem Ising energy reached.
    pub best_energy: f64,
    /// The assignment achieving `best_energy`, in the problem's original
    /// `±1` spin space.
    pub best_spins: Vec<i8>,
    /// Total simulated hardware energy across all rounds, joules.
    pub total_hw_energy: f64,
    /// Total summed hardware latency across all rounds, seconds.
    pub total_hw_time: f64,
}

/// Why a campaign could not run (or stopped mid-way).
#[derive(Debug)]
pub enum CampaignError {
    /// The spec is structurally invalid (zero rounds, empty portfolio,
    /// zero-trial variant, bad window geometry, decomposition of a
    /// non-QUBO problem).
    InvalidSpec(String),
    /// Building the problem or its windows failed.
    Problem(IsingError),
    /// A sub-job failed (rejected, cancelled, deadline, shutdown).
    Job(SchedulerError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidSpec(why) => write!(f, "invalid campaign spec: {why}"),
            CampaignError::Problem(e) => write!(f, "campaign problem error: {e}"),
            CampaignError::Job(e) => write!(f, "campaign job failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::InvalidSpec(_) => None,
            CampaignError::Problem(e) => Some(e),
            CampaignError::Job(e) => Some(e),
        }
    }
}

impl From<IsingError> for CampaignError {
    fn from(e: IsingError) -> CampaignError {
        CampaignError::Problem(e)
    }
}

/// Run a campaign to completion on a (running, not paused) scheduler.
///
/// Every sub-job is submitted with `options` (priority, deadline, tags),
/// named `campaign-r<round>[-w<window>]`, and counts against the
/// scheduler's queue like any other job — campaigns compose with
/// ordinary submissions and with each other.
///
/// # Errors
///
/// [`CampaignError::InvalidSpec`] before anything runs,
/// [`CampaignError::Problem`] when the problem or a window fails to
/// build, and [`CampaignError::Job`] when a sub-job settles in a
/// non-success state (the scheduler keeps running; already-submitted
/// sibling jobs of the failed round finish on their own).
pub fn run_campaign(
    scheduler: &Scheduler,
    spec: &CampaignSpec,
    options: &SubmitOptions,
) -> Result<CampaignOutcome, CampaignError> {
    validate(spec)?;
    match &spec.decompose {
        Some(plan) => run_decomposed(scheduler, spec, *plan, options),
        None => run_whole(scheduler, spec, options),
    }
}

fn validate(spec: &CampaignSpec) -> Result<(), CampaignError> {
    let invalid = |why: String| Err(CampaignError::InvalidSpec(why));
    if spec.rounds == 0 {
        return invalid("rounds must be at least 1".to_string());
    }
    if spec.portfolio.is_empty() {
        return invalid("portfolio must name at least one solver variant".to_string());
    }
    if let Some(i) = spec.portfolio.iter().position(|v| v.trials == 0) {
        return invalid(format!("portfolio variant {i} has zero trials"));
    }
    if let Some(plan) = &spec.decompose {
        if plan.window == 0 {
            return invalid("decompose window must be at least 1".to_string());
        }
        if plan.overlap >= plan.window {
            return invalid(format!(
                "decompose overlap {} must be smaller than the window {}",
                plan.overlap, plan.window
            ));
        }
        if !matches!(spec.problem, ProblemSpec::Qubo { .. }) {
            return invalid("decomposed campaigns require a Qubo problem spec".to_string());
        }
    }
    Ok(())
}

/// Earliest trial achieving the minimum best energy — a deterministic
/// tie-break, unlike `Iterator::min_by` (which keeps the last minimum).
fn best_trial(response: &SolveResponse) -> &SolveReport {
    let mut best = &response.reports[0];
    for report in &response.reports[1..] {
        if report.best_energy < best.best_energy {
            best = report;
        }
    }
    best
}

/// Embed a full-problem assignment for the quadratic-only coupling, run
/// one greedy descent to a single-flip local optimum, and project back.
/// Descent never worsens the energy, so stitching is safe to apply
/// unconditionally.
fn stitch(model: &IsingModel, quadratic: &IsingModel, assignment: &[i8]) -> Vec<i8> {
    let start = if model.is_quadratic_only() {
        SpinVector::from_signs(assignment)
    } else {
        // Ancilla gauge spin pinned to +1 round-trips the assignment
        // exactly through the projection below.
        let mut signs = Vec::with_capacity(assignment.len() + 1);
        signs.push(1);
        signs.extend_from_slice(assignment);
        SpinVector::from_signs(&signs)
    };
    let (polished, _) = local_search(quadratic.couplings(), start);
    let projected = if model.is_quadratic_only() {
        polished
    } else {
        model.project_from_quadratic(&polished)
    };
    projected.as_slice().to_vec()
}

fn run_decomposed(
    scheduler: &Scheduler,
    spec: &CampaignSpec,
    plan: DecomposePlan,
    options: &SubmitOptions,
) -> Result<CampaignOutcome, CampaignError> {
    let ProblemSpec::Qubo { q } = &spec.problem else {
        unreachable!("validate() requires a Qubo spec for decomposed campaigns");
    };
    let qubo = Qubo::from_matrix(q)?;
    let model = qubo.to_ising()?;
    let quadratic = model.to_quadratic_only();
    let n = qubo.dimension();

    // Deterministic neutral start: all spins +1, i.e. every binary
    // variable 0. Round 0 then ranks windows by raw flip gain from the
    // origin, which is exactly the linear + clamped structure of Q.
    let mut assignment = vec![1i8; n];
    let mut best_energy = model.energy(&SpinVector::from_signs(&assignment));
    let mut best_assignment = assignment.clone();

    let mut seed_cursor: u64 = 0;
    let mut rounds = Vec::with_capacity(spec.rounds);
    let mut total_hw_energy = 0.0;
    let mut total_hw_time = 0.0;

    for round in 0..spec.rounds {
        let variant_index = round % spec.portfolio.len();
        let variant = &spec.portfolio[variant_index];
        let windows = impact_windows(&qubo, &assignment, plan.window, plan.overlap)?;
        let job_count = windows.len();

        // Submit every window up front; the scheduler runs them
        // concurrently in priority order.
        let mut jobs = Vec::with_capacity(job_count);
        for (slot, window) in windows.iter().enumerate() {
            let sub = SubQubo::extract(&qubo, window, &assignment)?;
            let warm: Vec<i8> = window.iter().map(|&v| assignment[v]).collect();
            let seed = spec.base_seed.wrapping_add(seed_cursor);
            seed_cursor += variant.trials as u64;
            let request = SolveRequest::new(
                ProblemSpec::Qubo { q: sub.to_matrix() },
                variant.solver.clone(),
            )
            .with_backend(spec.backend)
            .with_run(RunPlan::Ensemble {
                trials: variant.trials,
                base_seed: seed,
                threads: None,
            })
            .with_initial_spins(warm);
            let name = format!("campaign-r{round}-w{slot}");
            let handle = scheduler.submit_named(Some(&name), request, options.clone());
            jobs.push((sub, handle));
        }

        // Reduce in submission (= window) order, never completion order.
        let mut hw_energy = 0.0;
        let mut hw_time = 0.0;
        for (sub, handle) in jobs {
            let response = handle.wait().map_err(CampaignError::Job)?;
            hw_energy += response.summary.total_energy;
            hw_time += response.summary.total_time;
            sub.write_back(&mut assignment, best_trial(&response).best_spins.as_slice());
        }

        // Overlapping windows were solved against the round's *entry*
        // assignment, so seams can disagree; settle them.
        assignment = stitch(&model, &quadratic, &assignment);
        let round_energy = model.energy(&SpinVector::from_signs(&assignment));
        if round_energy < best_energy {
            best_energy = round_energy;
            best_assignment = assignment.clone();
        } else {
            // Never let concurrent window interactions regress the
            // campaign: discard the round, restart from the best.
            assignment = best_assignment.clone();
        }

        total_hw_energy += hw_energy;
        total_hw_time += hw_time;
        rounds.push(RoundReport {
            round,
            variant: variant_index,
            jobs: job_count,
            round_energy,
            best_energy,
            hw_energy,
            hw_time,
        });
    }

    Ok(CampaignOutcome {
        rounds,
        best_energy,
        best_spins: best_assignment,
        total_hw_energy,
        total_hw_time,
    })
}

fn run_whole(
    scheduler: &Scheduler,
    spec: &CampaignSpec,
    options: &SubmitOptions,
) -> Result<CampaignOutcome, CampaignError> {
    let problem = spec.problem.build()?;
    let model = problem.to_ising()?;

    let mut best: Option<(f64, Vec<i8>)> = None;
    let mut seed_cursor: u64 = 0;
    let mut rounds = Vec::with_capacity(spec.rounds);
    let mut total_hw_energy = 0.0;
    let mut total_hw_time = 0.0;

    for round in 0..spec.rounds {
        let variant_index = round % spec.portfolio.len();
        let variant = &spec.portfolio[variant_index];
        let seed = spec.base_seed.wrapping_add(seed_cursor);
        seed_cursor += variant.trials as u64;

        let mut request = SolveRequest::new(spec.problem.clone(), variant.solver.clone())
            .with_backend(spec.backend)
            .with_run(RunPlan::Ensemble {
                trials: variant.trials,
                base_seed: seed,
                threads: None,
            });
        if let Some((_, spins)) = &best {
            // Warm start from the best-so-far: the engines capture the
            // start as the initial best, so the round cannot regress.
            request = request.with_initial_spins(spins.clone());
        }
        let name = format!("campaign-r{round}");
        let response = scheduler
            .submit_named(Some(&name), request, options.clone())
            .wait()
            .map_err(CampaignError::Job)?;

        let report = best_trial(&response);
        let round_energy = model.energy(&report.best_spins);
        let improved = match &best {
            None => true,
            Some((energy, _)) => round_energy < *energy,
        };
        if improved {
            best = Some((round_energy, report.best_spins.as_slice().to_vec()));
        }
        // audit:allow(panic-path): `improved` is true on round 0 (best is None), so best is always Some by this line
        let best_energy = best.as_ref().expect("set on round 0").0;

        total_hw_energy += response.summary.total_energy;
        total_hw_time += response.summary.total_time;
        rounds.push(RoundReport {
            round,
            variant: variant_index,
            jobs: 1,
            round_energy,
            best_energy,
            hw_energy: response.summary.total_energy,
            hw_time: response.summary.total_time,
        });
    }

    // audit:allow(panic-path): CampaignSpec::validate rejects rounds == 0, so the loop body ran at least once and set `best`
    let (best_energy, best_spins) = best.expect("rounds >= 1 validated");
    Ok(CampaignOutcome {
        rounds,
        best_energy,
        best_spins,
        total_hw_energy,
        total_hw_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use fecim::CimAnnealer;

    /// Max-Cut on an even ring as a QUBO: minimize `−cut`, optimum `−n`.
    fn ring_qubo(n: usize) -> Vec<Vec<f64>> {
        let mut q = vec![vec![0.0; n]; n];
        for u in 0..n {
            let v = (u + 1) % n;
            q[u][v] += 2.0;
            q[u][u] -= 1.0;
            q[v][v] -= 1.0;
        }
        q
    }

    fn cim_variant(iterations: usize, trials: usize) -> ScheduleVariant {
        ScheduleVariant::new(SolverSpec::Cim(CimAnnealer::new(iterations).with_flips(1)))
            .with_trials(trials)
    }

    #[test]
    fn rejects_structurally_invalid_specs() {
        let scheduler = Scheduler::new();
        let options = SubmitOptions::default();
        let q = ring_qubo(8);
        let problem = ProblemSpec::Qubo { q };
        let portfolio = vec![cim_variant(50, 1)];

        let cases: Vec<CampaignSpec> = vec![
            CampaignSpec::new(problem.clone(), 0, portfolio.clone()),
            CampaignSpec::new(problem.clone(), 1, vec![]),
            CampaignSpec::new(problem.clone(), 1, vec![cim_variant(50, 0)]),
            CampaignSpec::new(problem.clone(), 1, portfolio.clone())
                .with_decompose(DecomposePlan::window(4).with_overlap(4)),
            CampaignSpec::new(problem.clone(), 1, portfolio.clone())
                .with_decompose(DecomposePlan::window(0)),
            CampaignSpec::new(
                ProblemSpec::MaxCut {
                    vertices: 4,
                    edges: vec![(0, 1, 1.0)],
                },
                1,
                portfolio.clone(),
            )
            .with_decompose(DecomposePlan::window(2)),
        ];
        for spec in cases {
            let err = run_campaign(&scheduler, &spec, &options).unwrap_err();
            assert!(matches!(err, CampaignError::InvalidSpec(_)), "{err}");
        }
    }

    #[test]
    fn whole_problem_campaign_is_monotone_and_finds_the_ring_optimum() {
        let scheduler = Scheduler::with_config(SchedulerConfig::workers(2));
        let spec = CampaignSpec::new(
            ProblemSpec::Qubo { q: ring_qubo(12) },
            4,
            vec![cim_variant(400, 2)],
        )
        .with_base_seed(7);
        let outcome = run_campaign(&scheduler, &spec, &SubmitOptions::default()).unwrap();
        assert_eq!(outcome.rounds.len(), 4);
        for pair in outcome.rounds.windows(2) {
            assert!(pair[1].best_energy <= pair[0].best_energy);
        }
        // Ring Max-Cut optimum: all 12 edges cut. The QUBO objective is
        // −cut and the Ising energy equals it exactly (offset included).
        assert_eq!(outcome.best_energy, -12.0);
        assert_eq!(
            outcome.rounds.last().unwrap().best_energy,
            outcome.best_energy
        );
        assert!(outcome.total_hw_time > 0.0);
    }

    #[test]
    fn decomposed_campaign_is_monotone_and_solves_the_ring() {
        let scheduler = Scheduler::with_config(SchedulerConfig::workers(2));
        let spec = CampaignSpec::new(
            ProblemSpec::Qubo { q: ring_qubo(16) },
            5,
            vec![cim_variant(300, 2)],
        )
        .with_decompose(DecomposePlan::window(6).with_overlap(2))
        .with_base_seed(11);
        let outcome = run_campaign(&scheduler, &spec, &SubmitOptions::default()).unwrap();
        assert_eq!(outcome.rounds.len(), 5);
        assert!(outcome.rounds[0].jobs > 1, "16 vars / window 6 must split");
        for pair in outcome.rounds.windows(2) {
            assert!(pair[1].best_energy <= pair[0].best_energy);
        }
        // Each round's best matches the exact energy of the best spins.
        let qubo = Qubo::from_matrix(&ring_qubo(16)).unwrap();
        let model = qubo.to_ising().unwrap();
        let energy = model.energy(&SpinVector::from_signs(&outcome.best_spins));
        assert_eq!(energy, outcome.best_energy);
        assert!(outcome.best_energy <= -12.0, "got {}", outcome.best_energy);
    }

    #[test]
    fn portfolio_variants_rotate_across_rounds() {
        let scheduler = Scheduler::new();
        let spec = CampaignSpec::new(
            ProblemSpec::Qubo { q: ring_qubo(8) },
            3,
            vec![cim_variant(100, 1), cim_variant(200, 1)],
        );
        let outcome = run_campaign(&scheduler, &spec, &SubmitOptions::default()).unwrap();
        let variants: Vec<usize> = outcome.rounds.iter().map(|r| r.variant).collect();
        assert_eq!(variants, vec![0, 1, 0]);
    }

    #[test]
    fn worker_count_does_not_change_the_trajectory() {
        let spec = CampaignSpec::new(
            ProblemSpec::Qubo { q: ring_qubo(14) },
            3,
            vec![cim_variant(200, 2)],
        )
        .with_decompose(DecomposePlan::window(5).with_overlap(1))
        .with_base_seed(3);
        let options = SubmitOptions::default();
        let solo = run_campaign(
            &Scheduler::with_config(SchedulerConfig::workers(1)),
            &spec,
            &options,
        )
        .unwrap();
        let wide = run_campaign(
            &Scheduler::with_config(SchedulerConfig::workers(8)),
            &spec,
            &options,
        )
        .unwrap();
        assert_eq!(solo, wide);
    }

    #[test]
    fn campaign_spec_round_trips_through_serde() {
        let spec = CampaignSpec::new(
            ProblemSpec::Qubo { q: ring_qubo(4) },
            2,
            vec![cim_variant(10, 3)],
        )
        .with_decompose(DecomposePlan::window(3).with_overlap(1))
        .with_base_seed(42);
        let wire = serde_json::to_string(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&wire).unwrap();
        assert_eq!(back, spec);
    }
}
