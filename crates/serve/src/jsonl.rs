//! The JSON-lines transport: the wire protocol of `fecim-serve serve
//! --stdin-jsonl`, factored as library functions so tests and future
//! transports (HTTP, a message queue) reuse the exact same semantics —
//! swapping the byte stream is the only change.
//!
//! ## Protocol
//!
//! Input: one [`RequestLine`] per line (externally tagged JSON, blank
//! lines ignored). All submissions and cancellations are staged into a
//! *paused* scheduler first; execution starts at end of input, and one
//! [`ResponseLine`] per submission is emitted in submission order. That
//! makes a fixture file fully deterministic: a `Cancel` anywhere in the
//! stream reliably beats the worker pool to the job.
//!
//! ```text
//! {"Submit":{"id":"ring","request":{...SolveRequest...},"options":{"priority":5,"deadline_ms":null,"tags":[]}}}
//! {"Cancel":{"id":"ring"}}
//! ```
//!
//! Output lines mirror [`JobHandle::wait`]:
//!
//! ```text
//! {"Completed":{"id":"ring","response":{...SolveResponse...}}}
//! {"Cancelled":{"id":"ring","completed_trials":0,"partial":null}}
//! {"Failed":{"id":"ring","error":"invalid request: ..."}}
//! ```
//!
//! [`JobHandle::wait`]: crate::JobHandle::wait

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

use fecim::{SolveRequest, SolveResponse};

use crate::job::{SchedulerError, SubmitOptions};
use crate::scheduler::{Scheduler, SchedulerConfig};

/// One input line of the JSONL protocol.
// The variants ARE the wire format; boxing `Submit`'s request would
// change nothing on the wire and only add indirection in memory.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestLine {
    /// Queue a request under a client-chosen id.
    Submit {
        /// Client-chosen job id (must be unique within the stream).
        id: String,
        /// The job to run.
        request: SolveRequest,
        /// Priority/deadline/tags.
        options: SubmitOptions,
    },
    /// Cancel a previously submitted id.
    Cancel {
        /// The id to cancel.
        id: String,
    },
}

/// One output line of the JSONL protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ResponseLine {
    /// The job ran every trial.
    Completed {
        /// The client's id.
        id: String,
        /// The full response.
        response: SolveResponse,
    },
    /// The job was cancelled; completed trials are summarized.
    Cancelled {
        /// The client's id.
        id: String,
        /// Trials that finished before cancellation.
        completed_trials: usize,
        /// Response over the completed trials, if any.
        partial: Option<SolveResponse>,
    },
    /// The job (or the line itself) failed.
    Failed {
        /// The client's id (or a synthesized one for unparsable lines).
        id: String,
        /// Human-readable error.
        error: String,
    },
}

impl ResponseLine {
    /// The id this line answers.
    pub fn id(&self) -> &str {
        match self {
            ResponseLine::Completed { id, .. }
            | ResponseLine::Cancelled { id, .. }
            | ResponseLine::Failed { id, .. } => id,
        }
    }
}

/// Error of a [`run_jsonl`] / [`check_responses`] call.
#[derive(Debug)]
pub enum JsonlError {
    /// Reading input or writing output failed.
    Io(std::io::Error),
    /// An input line was not valid protocol JSON.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonlError::Io(e) => write!(f, "i/o error: {e}"),
            JsonlError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for JsonlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonlError::Io(e) => Some(e),
            JsonlError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for JsonlError {
    fn from(e: std::io::Error) -> JsonlError {
        JsonlError::Io(e)
    }
}

/// Aggregate outcome of a [`run_jsonl`] stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Submissions read.
    pub submitted: usize,
    /// Jobs that completed every trial.
    pub completed: usize,
    /// Jobs that ended cancelled.
    pub cancelled: usize,
    /// Jobs (or lines) that failed.
    pub failed: usize,
}

/// Serve one JSONL stream: stage every line into a paused scheduler,
/// execute, and emit one response line per submission in submission
/// order.
///
/// # Errors
///
/// [`JsonlError::Io`] on read/write failures and [`JsonlError::Parse`]
/// when an input line is not valid protocol JSON (malformed *requests*
/// inside a valid line are per-job failures, reported on the job's
/// response line instead).
pub fn run_jsonl(
    input: impl BufRead,
    mut output: impl Write,
    config: SchedulerConfig,
) -> Result<JsonlSummary, JsonlError> {
    let scheduler = Scheduler::with_config(SchedulerConfig {
        paused: true,
        ..config
    });
    // (id, handle) in submission order; duplicate ids become failures.
    let mut jobs: Vec<(String, Option<crate::JobHandle>)> = Vec::new();
    let mut cancels: Vec<String> = Vec::new();
    for (line_no, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed: RequestLine = serde_json::from_str(line).map_err(|e| JsonlError::Parse {
            line: line_no + 1,
            message: e.to_string(),
        })?;
        match parsed {
            RequestLine::Submit {
                id,
                request,
                options,
            } => {
                if jobs.iter().any(|(existing, _)| existing == &id) {
                    // Answered by a `Failed` line in submission order.
                    jobs.push((id, None));
                    continue;
                }
                let handle = scheduler.submit(request, options);
                jobs.push((id, Some(handle)));
            }
            RequestLine::Cancel { id } => cancels.push(id),
        }
    }
    // The whole stream is staged before execution starts, so a cancel
    // applies wherever it appears relative to its submission; only ids
    // the stream never submits are errors.
    let mut errors: Vec<(String, String)> = Vec::new();
    for id in cancels {
        match jobs.iter().find(|(existing, _)| existing == &id) {
            Some((_, Some(handle))) => {
                handle.cancel();
            }
            _ => errors.push((id.clone(), format!("cancel for unknown id `{id}`"))),
        }
    }

    scheduler.resume();
    let mut summary = JsonlSummary {
        submitted: jobs.iter().filter(|(_, h)| h.is_some()).count(),
        ..JsonlSummary::default()
    };
    for (id, handle) in jobs {
        let response = match handle {
            None => {
                summary.failed += 1;
                ResponseLine::Failed {
                    error: format!("duplicate submission id `{id}`"),
                    id,
                }
            }
            Some(handle) => match handle.wait() {
                Ok(response) => {
                    summary.completed += 1;
                    ResponseLine::Completed { id, response }
                }
                Err(SchedulerError::Cancelled { completed, partial }) => {
                    summary.cancelled += 1;
                    ResponseLine::Cancelled {
                        id,
                        completed_trials: completed,
                        partial: partial.map(|b| *b),
                    }
                }
                Err(e) => {
                    summary.failed += 1;
                    ResponseLine::Failed {
                        id,
                        error: e.to_string(),
                    }
                }
            },
        };
        let json = serde_json::to_string(&response).expect("response lines serialize");
        writeln!(output, "{json}")?;
    }
    for (id, error) in errors {
        summary.failed += 1;
        let json = serde_json::to_string(&ResponseLine::Failed { id, error })
            .expect("response lines serialize");
        writeln!(output, "{json}")?;
    }
    scheduler.join();
    Ok(summary)
}

/// Validate that every line of `input` parses as a [`ResponseLine`] —
/// the CI smoke's "emitted responses parse" assertion. Returns the
/// parsed lines.
///
/// # Errors
///
/// [`JsonlError::Io`] on read failures, [`JsonlError::Parse`] on the
/// first unparsable line.
pub fn check_responses(input: impl BufRead) -> Result<Vec<ResponseLine>, JsonlError> {
    let mut lines = Vec::new();
    for (line_no, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let parsed: ResponseLine =
            serde_json::from_str(trimmed).map_err(|e| JsonlError::Parse {
                line: line_no + 1,
                message: e.to_string(),
            })?;
        lines.push(parsed);
    }
    Ok(lines)
}
