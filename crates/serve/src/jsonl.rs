//! The JSON-lines transport: the wire protocol of `fecim-serve serve
//! --stdin-jsonl`, factored as library functions so tests and future
//! transports (HTTP, a message queue) reuse the exact same semantics —
//! swapping the byte stream is the only change.
//!
//! ## Protocol
//!
//! Input: one [`RequestLine`] per line (externally tagged JSON, blank
//! lines ignored). In the batch transport ([`run_jsonl`], the
//! `--stdin-jsonl` binary mode) all submissions and cancellations are
//! staged into a *paused* scheduler first; execution starts at end of
//! input, and one [`ResponseLine`] per submission is emitted in
//! submission order. That makes a fixture file fully deterministic: a
//! `Cancel` anywhere in the stream reliably beats the worker pool to
//! the job. The streaming TCP transport ([`crate::tcp`]) uses the same
//! line types but executes live and emits responses as jobs finish.
//!
//! ```text
//! {"Submit":{"id":"ring","request":{...SolveRequest...},"options":{"priority":5,"deadline_ms":null,"tags":[]}}}
//! {"Campaign":{"id":"big","spec":{...CampaignSpec...},"options":{"priority":0,"deadline_ms":null,"tags":[]}}}
//! {"Cancel":{"id":"ring"}}
//! {"Status":{"id":"ring"}}
//! {"Progress":{"id":"ring"}}
//! ```
//!
//! `Campaign` lines run a whole multi-round
//! [`CampaignSpec`] (warm-started rounds, optional
//! windowed decomposition) whose sub-jobs go through the same scheduler
//! queue; the answer is a single `Campaign` response line carrying the
//! [`CampaignOutcome`]. In the batch transport
//! campaigns execute *after* every staged `Submit` settles (their rounds
//! are inherently sequential), in stream order; over TCP they run live,
//! concurrently with everything else. Campaign ids share the submission
//! id namespace and cannot be cancelled or queried.
//!
//! Terminal output lines mirror [`JobHandle::wait`]; `Status` and
//! `Progress` answers are point-in-time observations:
//!
//! ```text
//! {"Completed":{"id":"ring","response":{...SolveResponse...}}}
//! {"Campaign":{"id":"big","outcome":{...CampaignOutcome...}}}
//! {"Cancelled":{"id":"ring","completed_trials":0,"partial":null}}
//! {"DeadlineExceeded":{"id":"ring","completed_trials":2,"partial":{...}}}
//! {"Failed":{"id":"ring","error":"invalid request: ..."}}
//! {"Rejected":{"id":"ring","open_jobs":128,"limit":128}}
//! {"Status":{"id":"ring","status":"Running"}}
//! {"Progress":{"id":"ring","progress":{...JobProgress...}}}
//! ```
//!
//! The contract both transports honor: **every actionable input line
//! gets exactly one response** — a duplicate `Submit` id and a `Cancel`
//! / `Status` / `Progress` for an id the stream has not submitted each
//! yield a deterministic `Failed` line instead of silence.
//!
//! [`JobHandle::wait`]: crate::JobHandle::wait

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

use fecim::{SolveRequest, SolveResponse};

use crate::campaign::{run_campaign, CampaignOutcome, CampaignSpec};
use crate::job::{JobProgress, JobStatus, SchedulerError, SubmitOptions};
use crate::scheduler::{Scheduler, SchedulerConfig};

/// One input line of the JSONL protocol.
// The variants ARE the wire format; boxing `Submit`'s request would
// change nothing on the wire and only add indirection in memory.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestLine {
    /// Queue a request under a client-chosen id.
    Submit {
        /// Client-chosen job id (must be unique within the stream).
        id: String,
        /// The job to run.
        request: SolveRequest,
        /// Priority/deadline/tags.
        options: SubmitOptions,
    },
    /// Run a multi-round campaign under a client-chosen id (same
    /// namespace as `Submit` ids). Every sub-job the campaign submits
    /// carries `options`. Campaigns cannot be cancelled or queried.
    Campaign {
        /// Client-chosen campaign id (must be unique within the stream).
        id: String,
        /// The campaign to run.
        spec: CampaignSpec,
        /// Priority/deadline/tags of every sub-job.
        options: SubmitOptions,
    },
    /// Cancel a previously submitted id.
    Cancel {
        /// The id to cancel.
        id: String,
    },
    /// Query the lifecycle state of a previously submitted id.
    Status {
        /// The id to query.
        id: String,
    },
    /// Query trial progress of a previously submitted id.
    Progress {
        /// The id to query.
        id: String,
    },
}

/// One output line of the JSONL protocol.
// Same wire-format rationale as `RequestLine` for the inline payloads.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ResponseLine {
    /// The job ran every trial.
    Completed {
        /// The client's id.
        id: String,
        /// The full response.
        response: SolveResponse,
    },
    /// A campaign ran every round.
    Campaign {
        /// The client's id.
        id: String,
        /// Per-round trajectory and the best solution found.
        outcome: CampaignOutcome,
    },
    /// The job was cancelled; completed trials are summarized.
    Cancelled {
        /// The client's id.
        id: String,
        /// Trials that finished before cancellation.
        completed_trials: usize,
        /// Response over the completed trials, if any.
        partial: Option<SolveResponse>,
    },
    /// The job's deadline elapsed mid-run; completed trials are
    /// summarized.
    DeadlineExceeded {
        /// The client's id.
        id: String,
        /// Trials that finished before the deadline elapsed.
        completed_trials: usize,
        /// Response over the completed trials, if any.
        partial: Option<SolveResponse>,
    },
    /// The job (or the line itself) failed.
    Failed {
        /// The client's id (or a synthesized one for unparsable lines).
        id: String,
        /// Human-readable error.
        error: String,
    },
    /// Admission control refused the submission: the scheduler's open
    /// job count is at the transport's limit. The job never entered the
    /// queue — resubmit later.
    Rejected {
        /// The client's id.
        id: String,
        /// Open jobs at the moment of rejection.
        open_jobs: usize,
        /// The admission limit that was hit.
        limit: usize,
    },
    /// Point-in-time answer to a `Status` query.
    Status {
        /// The client's id.
        id: String,
        /// Lifecycle state at the moment of the query.
        status: JobStatus,
    },
    /// Point-in-time answer to a `Progress` query.
    Progress {
        /// The client's id.
        id: String,
        /// Trial progress at the moment of the query.
        progress: JobProgress,
    },
}

impl ResponseLine {
    /// The id this line answers.
    pub fn id(&self) -> &str {
        match self {
            ResponseLine::Completed { id, .. }
            | ResponseLine::Campaign { id, .. }
            | ResponseLine::Cancelled { id, .. }
            | ResponseLine::DeadlineExceeded { id, .. }
            | ResponseLine::Failed { id, .. }
            | ResponseLine::Rejected { id, .. }
            | ResponseLine::Status { id, .. }
            | ResponseLine::Progress { id, .. } => id,
        }
    }

    /// Whether this line settles its id (one terminal line per
    /// actionable input line), as opposed to a `Status`/`Progress`
    /// observation that may repeat.
    pub fn is_terminal(&self) -> bool {
        !matches!(
            self,
            ResponseLine::Status { .. } | ResponseLine::Progress { .. }
        )
    }
}

/// Error of a [`run_jsonl`] / [`check_responses`] call.
#[derive(Debug)]
pub enum JsonlError {
    /// Reading input or writing output failed.
    Io(std::io::Error),
    /// An input line was not valid protocol JSON.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The response stream violates the protocol contract: an id got
    /// two terminal lines, or (when checked against the request stream)
    /// an expected response never arrived.
    Contract {
        /// Human-readable description of the violation.
        message: String,
    },
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonlError::Io(e) => write!(f, "i/o error: {e}"),
            JsonlError::Parse { line, message } => write!(f, "line {line}: {message}"),
            JsonlError::Contract { message } => write!(f, "protocol contract: {message}"),
        }
    }
}

impl std::error::Error for JsonlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonlError::Io(e) => Some(e),
            JsonlError::Parse { .. } | JsonlError::Contract { .. } => None,
        }
    }
}

impl From<std::io::Error> for JsonlError {
    fn from(e: std::io::Error) -> JsonlError {
        JsonlError::Io(e)
    }
}

/// Aggregate outcome of a [`run_jsonl`] stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Submissions read.
    pub submitted: usize,
    /// Jobs that completed every trial.
    pub completed: usize,
    /// Campaigns that ran every round.
    pub campaigns: usize,
    /// Jobs that ended cancelled.
    pub cancelled: usize,
    /// Jobs stopped by their submit-time deadline.
    pub deadline_exceeded: usize,
    /// Jobs (or lines) that failed.
    pub failed: usize,
    /// `Status`/`Progress` queries answered.
    pub observations: usize,
}

/// Serve one JSONL stream: stage every line into a paused scheduler,
/// execute, and emit one response line per submission in submission
/// order.
///
/// # Errors
///
/// [`JsonlError::Io`] on read/write failures and [`JsonlError::Parse`]
/// when an input line is not valid protocol JSON (malformed *requests*
/// inside a valid line are per-job failures, reported on the job's
/// response line instead).
pub fn run_jsonl(
    input: impl BufRead,
    mut output: impl Write,
    config: SchedulerConfig,
) -> Result<JsonlSummary, JsonlError> {
    let scheduler = Scheduler::with_config(SchedulerConfig {
        paused: true,
        ..config
    });
    let mut summary = JsonlSummary::default();
    // (id, handle) in submission order; duplicate ids become failures.
    let mut jobs: Vec<(String, Option<crate::JobHandle>)> = Vec::new();
    // Campaigns are staged too, but execute only after every staged job
    // settles: their rounds are sequential submit→wait cycles, which
    // would deadlock a paused scheduler and interleave
    // non-deterministically with a running one.
    let mut campaigns: Vec<(String, Option<(CampaignSpec, SubmitOptions)>)> = Vec::new();
    let mut cancels: Vec<String> = Vec::new();
    for (line_no, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed: RequestLine = serde_json::from_str(line).map_err(|e| JsonlError::Parse {
            line: line_no + 1,
            message: e.to_string(),
        })?;
        match parsed {
            RequestLine::Submit {
                id,
                request,
                options,
            } => {
                if jobs.iter().any(|(existing, _)| existing == &id)
                    || campaigns.iter().any(|(existing, _)| existing == &id)
                {
                    // Answered by a `Failed` line in submission order.
                    jobs.push((id, None));
                    continue;
                }
                let handle = scheduler.submit_named(Some(&id), request, options);
                jobs.push((id, Some(handle)));
            }
            RequestLine::Campaign { id, spec, options } => {
                if jobs.iter().any(|(existing, _)| existing == &id)
                    || campaigns.iter().any(|(existing, _)| existing == &id)
                {
                    campaigns.push((id, None));
                    continue;
                }
                campaigns.push((id, Some((spec, options))));
            }
            RequestLine::Cancel { id } => cancels.push(id),
            // Point-in-time queries are answered where they stand in
            // the stream. Staging precedes execution, so in this batch
            // transport the answer is deterministic: `Queued` for ids
            // submitted earlier in the stream, `Failed` otherwise. The
            // streaming TCP transport answers the same lines live.
            RequestLine::Status { id } => {
                let response = match jobs.iter().find(|(existing, _)| existing == &id) {
                    Some((_, Some(handle))) => {
                        summary.observations += 1;
                        ResponseLine::Status {
                            id,
                            status: handle.status(),
                        }
                    }
                    _ => {
                        summary.failed += 1;
                        ResponseLine::Failed {
                            error: format!("status for unknown id `{id}`"),
                            id,
                        }
                    }
                };
                write_line(&mut output, &response)?;
            }
            RequestLine::Progress { id } => {
                let response = match jobs.iter().find(|(existing, _)| existing == &id) {
                    Some((_, Some(handle))) => {
                        summary.observations += 1;
                        ResponseLine::Progress {
                            id,
                            progress: handle.progress(),
                        }
                    }
                    _ => {
                        summary.failed += 1;
                        ResponseLine::Failed {
                            error: format!("progress for unknown id `{id}`"),
                            id,
                        }
                    }
                };
                write_line(&mut output, &response)?;
            }
        }
    }
    // The whole stream is staged before execution starts, so a cancel
    // applies wherever it appears relative to its submission; only ids
    // the stream never submits are errors.
    let mut errors: Vec<(String, String)> = Vec::new();
    for id in cancels {
        match jobs.iter().find(|(existing, _)| existing == &id) {
            Some((_, Some(handle))) => {
                handle.cancel();
            }
            _ => errors.push((id.clone(), format!("cancel for unknown id `{id}`"))),
        }
    }

    scheduler.resume();
    summary.submitted = jobs.iter().filter(|(_, h)| h.is_some()).count();
    for (id, handle) in jobs {
        let response = match handle {
            None => {
                summary.failed += 1;
                ResponseLine::Failed {
                    error: format!("duplicate submission id `{id}`"),
                    id,
                }
            }
            Some(handle) => terminal_line(id, handle.wait(), &mut summary),
        };
        write_line(&mut output, &response)?;
    }
    // Every staged job has settled; now the scheduler is free for the
    // campaigns' own submit→wait rounds, one campaign at a time in
    // stream order (fully deterministic at any worker count).
    for (id, staged) in campaigns {
        let response = match staged {
            None => {
                summary.failed += 1;
                ResponseLine::Failed {
                    error: format!("duplicate submission id `{id}`"),
                    id,
                }
            }
            Some((spec, options)) => match run_campaign(&scheduler, &spec, &options) {
                Ok(outcome) => {
                    summary.campaigns += 1;
                    ResponseLine::Campaign { id, outcome }
                }
                Err(e) => {
                    summary.failed += 1;
                    ResponseLine::Failed {
                        id,
                        error: e.to_string(),
                    }
                }
            },
        };
        write_line(&mut output, &response)?;
    }
    for (id, error) in errors {
        summary.failed += 1;
        write_line(&mut output, &ResponseLine::Failed { id, error })?;
    }
    scheduler.join();
    Ok(summary)
}

fn write_line(output: &mut impl Write, response: &ResponseLine) -> Result<(), JsonlError> {
    // audit:allow(panic-path): ResponseLine is plain structs/enums with string keys throughout, so serialization is infallible by construction
    let json = serde_json::to_string(response).expect("response lines serialize");
    writeln!(output, "{json}")?;
    Ok(())
}

/// Map a [`JobHandle::wait`](crate::JobHandle::wait) outcome to its
/// terminal response line, tallying the summary. Shared by the batch
/// and streaming transports (and the `recover` subcommand) so one job
/// outcome always serializes the same way.
pub fn terminal_line(
    id: String,
    outcome: Result<SolveResponse, SchedulerError>,
    summary: &mut JsonlSummary,
) -> ResponseLine {
    match outcome {
        Ok(response) => {
            summary.completed += 1;
            ResponseLine::Completed { id, response }
        }
        Err(SchedulerError::Cancelled { completed, partial }) => {
            summary.cancelled += 1;
            ResponseLine::Cancelled {
                id,
                completed_trials: completed,
                partial: partial.map(|b| *b),
            }
        }
        Err(SchedulerError::DeadlineExceeded { completed, partial }) => {
            summary.deadline_exceeded += 1;
            ResponseLine::DeadlineExceeded {
                id,
                completed_trials: completed,
                partial: partial.map(|b| *b),
            }
        }
        Err(e) => {
            summary.failed += 1;
            ResponseLine::Failed {
                id,
                error: e.to_string(),
            }
        }
    }
}

/// Validate a response stream: every line must parse as a
/// [`ResponseLine`], and no id may *settle* twice — at most one
/// `Completed`/`Campaign`/`Cancelled`/`DeadlineExceeded` line per id —
/// so the CI
/// smoke catches double-answered jobs, not just syntax errors. Returns
/// the parsed lines.
///
/// `Failed` and `Rejected` lines may legitimately repeat an id without
/// the request stream being wrong (a duplicate `Submit` fails next to
/// the original's response; a backpressure-rejected id may be
/// resubmitted), and `Status`/`Progress` observations always may. To
/// also catch *dropped* responses and spurious failures, validate
/// against the request stream with [`check_responses_against`].
///
/// # Errors
///
/// [`JsonlError::Io`] on read failures, [`JsonlError::Parse`] on the
/// first unparsable line, [`JsonlError::Contract`] on a
/// double-settled id.
pub fn check_responses(input: impl BufRead) -> Result<Vec<ResponseLine>, JsonlError> {
    let lines = parse_responses(input)?;
    // Ordered map: the double-settle error below reports the first
    // offending id deterministically, not in hash order.
    let mut settled: BTreeMap<&str, usize> = BTreeMap::new();
    for line in &lines {
        if matches!(
            line,
            ResponseLine::Completed { .. }
                | ResponseLine::Campaign { .. }
                | ResponseLine::Cancelled { .. }
                | ResponseLine::DeadlineExceeded { .. }
        ) {
            *settled.entry(line.id()).or_default() += 1;
        }
    }
    if let Some((id, count)) = settled.iter().find(|(_, &count)| count > 1) {
        return Err(JsonlError::Contract {
            message: format!("id `{id}` settled by {count} response lines"),
        });
    }
    Ok(lines)
}

/// Validate a response stream *against the request stream that produced
/// it*: beyond [`check_responses`]' parse check, every actionable
/// request line must be answered by exactly one terminal response —
/// each `Submit` (duplicates included: the duplicate's `Failed` line is
/// expected), plus one `Failed` for every `Cancel` whose id the stream
/// never submits and every `Status`/`Progress` whose id no *earlier*
/// line submits (the staged transport resolves cancels against the
/// whole stream, so a forward cancel is answered by its job's terminal
/// line, not a failure). This is what lets the CI smoke catch
/// *dropped* jobs, and it is transport-agnostic: streaming responses
/// arrive in completion order, so only counts per id are checked,
/// never ordering.
///
/// # Errors
///
/// [`JsonlError::Io`] / [`JsonlError::Parse`] as in
/// [`check_responses`], [`JsonlError::Contract`] listing the first
/// missing or over-answered id.
pub fn check_responses_against(
    requests: impl BufRead,
    responses: impl BufRead,
) -> Result<Vec<ResponseLine>, JsonlError> {
    let mut parsed_requests = Vec::new();
    for (line_no, line) in requests.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request: RequestLine =
            serde_json::from_str(trimmed).map_err(|e| JsonlError::Parse {
                line: line_no + 1,
                message: format!("request stream: {e}"),
            })?;
        parsed_requests.push(request);
    }
    let ever_submitted: Vec<&str> = parsed_requests
        .iter()
        .filter_map(|r| match r {
            RequestLine::Submit { id, .. } => Some(id.as_str()),
            _ => None,
        })
        .collect();
    // Expected terminal responses per id, from the request stream.
    let mut expected: BTreeMap<String, usize> = BTreeMap::new();
    let mut submitted_so_far: Vec<&str> = Vec::new();
    for request in &parsed_requests {
        match request {
            RequestLine::Submit { id, .. } => {
                *expected.entry(id.clone()).or_default() += 1;
                submitted_so_far.push(id);
            }
            // A campaign is answered by exactly one terminal line
            // (`Campaign` or `Failed`), but its id is not cancellable or
            // queryable, so it joins neither submitted list.
            RequestLine::Campaign { id, .. } => {
                *expected.entry(id.clone()).or_default() += 1;
            }
            // A cancel for a submitted id (anywhere in the stream — the
            // staged transport applies forward cancels) is answered by
            // that job's terminal line; a cancel for an id the stream
            // never submits gets its own `Failed` line.
            RequestLine::Cancel { id } => {
                if !ever_submitted.contains(&id.as_str()) {
                    *expected.entry(id.clone()).or_default() += 1;
                }
            }
            // Queries on earlier-submitted ids are observations; on
            // unknown ids they fail, in both transports.
            RequestLine::Status { id } | RequestLine::Progress { id } => {
                if !submitted_so_far.contains(&id.as_str()) {
                    *expected.entry(id.clone()).or_default() += 1;
                }
            }
        }
    }
    let lines = parse_responses(responses)?;
    let mut got: BTreeMap<&str, usize> = BTreeMap::new();
    for line in &lines {
        if line.is_terminal() {
            *got.entry(line.id()).or_default() += 1;
        }
    }
    for (id, want) in &expected {
        let have = got.get(id.as_str()).copied().unwrap_or(0);
        if have != *want {
            return Err(JsonlError::Contract {
                message: format!("id `{id}` expected {want} terminal response line(s), got {have}"),
            });
        }
    }
    if let Some((id, count)) = got.iter().find(|(id, _)| !expected.contains_key(**id)) {
        return Err(JsonlError::Contract {
            message: format!("unexpected terminal response id `{id}` ({count} line(s))"),
        });
    }
    Ok(lines)
}

fn parse_responses(input: impl BufRead) -> Result<Vec<ResponseLine>, JsonlError> {
    let mut lines = Vec::new();
    for (line_no, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let parsed: ResponseLine =
            serde_json::from_str(trimmed).map_err(|e| JsonlError::Parse {
                line: line_no + 1,
                message: e.to_string(),
            })?;
        lines.push(parsed);
    }
    Ok(lines)
}
