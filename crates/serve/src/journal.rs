//! The durable job journal: an append-only JSONL file recording every
//! scheduler lifecycle transition, so a crashed server replays its
//! pending and in-flight jobs on restart.
//!
//! ## Format
//!
//! One [`JournalRecord`] per line, externally tagged JSON, appended (and
//! flushed) as the transition happens:
//!
//! ```text
//! {"Submitted":{"job":1,"name":"ring","request":{...},"options":{...}}}
//! {"Started":{"job":1}}
//! {"TrialDone":{"job":1,"trial":0}}
//! {"Finalized":{"job":1,"status":"Completed"}}
//! ```
//!
//! ## Replay semantics
//!
//! [`Scheduler::recover`] reads the journal and resubmits every job
//! whose `Submitted` record has no matching `Finalized` (or
//! `Superseded`) record. Because every trial derives all of its
//! randomness from `base_seed + trial`, the recovered responses are
//! **bit-identical** to the ones an uncrashed run would have produced —
//! `Started`/`TrialDone` records are progress observations, not
//! checkpoints; replay simply re-runs the job from trial zero and
//! recomputes the same bits. A `CancelRequested` record without a
//! `Finalized` replays as an immediate cancellation, and a torn final
//! line (the crash interrupting a write) is tolerated and ignored.
//!
//! Two deliberate non-goals: a [`SchedulerError::Shutdown`] finalization
//! is *not* journaled (an aborted scheduler leaves its open jobs
//! replayable — that is the crash the journal exists for), and
//! deadlines restart from the moment of re-submission (wall-clock
//! deadlines cannot meaningfully survive a crash of unknown duration).
//!
//! [`Scheduler::recover`]: crate::Scheduler::recover
//! [`SchedulerError::Shutdown`]: crate::SchedulerError::Shutdown

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use fecim::SolveRequest;

use crate::job::{JobStatus, SubmitOptions};
use crate::scheduler::lock;

/// One append-only record of the job journal.
// The variants ARE the on-disk format; boxing `Submitted`'s request
// would change nothing on disk and only add indirection in memory.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A job entered the queue.
    Submitted {
        /// Scheduler-assigned job id.
        job: u64,
        /// Client-chosen name (the JSONL front-ends' line id), if any.
        name: Option<String>,
        /// The submitted request.
        request: SolveRequest,
        /// The submit-time options.
        options: SubmitOptions,
    },
    /// The job's first trial was claimed.
    Started {
        /// Scheduler-assigned job id.
        job: u64,
    },
    /// One trial finished.
    TrialDone {
        /// Scheduler-assigned job id.
        job: u64,
        /// Trial index within the ensemble.
        trial: usize,
    },
    /// A client requested cancellation.
    CancelRequested {
        /// Scheduler-assigned job id.
        job: u64,
    },
    /// The job reached a terminal state (never written for
    /// scheduler-shutdown aborts, so those jobs stay replayable).
    Finalized {
        /// Scheduler-assigned job id.
        job: u64,
        /// The terminal status.
        status: JobStatus,
    },
    /// Recovery resubmitted this job under a new id; the old id is
    /// terminal for every later replay.
    Superseded {
        /// The crashed run's job id.
        job: u64,
        /// The replaying run's job id.
        by: u64,
    },
}

impl JournalRecord {
    /// The job id this record concerns.
    pub fn job(&self) -> u64 {
        match self {
            JournalRecord::Submitted { job, .. }
            | JournalRecord::Started { job }
            | JournalRecord::TrialDone { job, .. }
            | JournalRecord::CancelRequested { job }
            | JournalRecord::Finalized { job, .. }
            | JournalRecord::Superseded { job, .. } => *job,
        }
    }
}

/// Error of a journal read or replay.
#[derive(Debug)]
pub enum JournalError {
    /// Opening, reading, or appending the journal file failed.
    Io(std::io::Error),
    /// A non-final line was not a valid [`JournalRecord`] (a torn
    /// *final* line is tolerated as the crash's interrupted write).
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// The append side: a mutex-guarded file every lifecycle transition is
/// written (and flushed) to. The mutex is a leaf lock — appends happen
/// under job/queue locks, never the reverse.
pub(crate) struct Journal {
    file: Mutex<File>,
}

impl Journal {
    /// Open (or create) the journal at `path` for appending.
    pub(crate) fn open(path: &Path) -> std::io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            file: Mutex::new(file),
        })
    }

    /// Append one record and flush it to the OS — a crash after
    /// `append` returns never loses the record.
    pub(crate) fn append(&self, record: &JournalRecord) {
        // audit:allow(panic-path): JournalRecord is plain structs/enums of serializable fields — no maps with non-string keys, no NaN-able floats in keys — so serialization is infallible by construction
        let json = serde_json::to_string(record).expect("journal records serialize");
        let mut file = lock(&self.file);
        // Journal writes are best-effort durability: an un-writable
        // journal must not take down in-flight solves, so failures are
        // reported on stderr instead of panicking a worker.
        if let Err(e) = writeln!(file, "{json}").and_then(|()| file.flush()) {
            eprintln!("fecim-serve: journal append failed: {e}");
        }
    }
}

/// Read every record of the journal at `path`.
///
/// A torn final line — the crash interrupting an append — is ignored;
/// corruption anywhere else is an error.
///
/// # Errors
///
/// [`JournalError::Io`] when the file cannot be opened or read, and
/// [`JournalError::Corrupt`] when a non-final line does not parse.
pub fn read_journal(path: impl AsRef<Path>) -> Result<Vec<JournalRecord>, JournalError> {
    let reader = BufReader::new(File::open(path.as_ref())?);
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    let mut records = Vec::new();
    for (line_no, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalRecord>(trimmed) {
            Ok(record) => records.push(record),
            Err(_) if line_no + 1 == lines.len() => break, // torn tail
            Err(e) => {
                return Err(JournalError::Corrupt {
                    line: line_no + 1,
                    message: e.to_string(),
                })
            }
        }
    }
    Ok(records)
}

/// Compact a journal's records: drop every record of *settled*
/// lifecycles — a [`JournalRecord::Submitted`] closed by a matching
/// [`JournalRecord::Finalized`] or [`JournalRecord::Superseded`] —
/// keeping everything else in its original order.
///
/// Settlement is tracked per *lifecycle*, not per bare job id: a
/// journal appended to by successive server runs reuses ids (each run
/// counts from 1 unless it recovered first), so a `Finalized` must
/// only erase the records back to its matching `Submitted`, never a
/// later submission that happens to share the id. Terminal records
/// with no open lifecycle, like a `CancelRequested` with no pending
/// submission, are replay no-ops and compact away too.
///
/// Replay ([`Scheduler::recover`](crate::Scheduler::recover)) acts only
/// on submissions without a terminal record, and a settled lifecycle's
/// records can never influence another job's replay, so recovery from
/// the compacted journal is **bit-identical** to recovery from the
/// original. Compaction exists purely to bound the append-only file's
/// growth; the `fecim-serve journal compact <in> <out>` subcommand
/// wraps this.
pub fn compact_records(records: Vec<JournalRecord>) -> Vec<JournalRecord> {
    use std::collections::{HashMap, HashSet};
    // `open` maps a job id to its currently-open lifecycle ordinal;
    // every record is tagged with the lifecycle it belongs to, then the
    // settled lifecycles are filtered out in one pass.
    let mut open: HashMap<u64, usize> = HashMap::new();
    let mut ordinals: HashMap<u64, usize> = HashMap::new();
    let mut settled: HashSet<(u64, usize)> = HashSet::new();
    let mut tagged: Vec<(Option<(u64, usize)>, JournalRecord)> = Vec::new();
    for record in records {
        let job = record.job();
        match &record {
            JournalRecord::Submitted { .. } => {
                let ordinal = ordinals.entry(job).or_insert(0);
                *ordinal += 1;
                open.insert(job, *ordinal);
                tagged.push((Some((job, *ordinal)), record));
            }
            JournalRecord::Finalized { .. } | JournalRecord::Superseded { .. } => {
                // Settles the open lifecycle (and is dropped with it);
                // with no open lifecycle it is a replay no-op.
                if let Some(ordinal) = open.remove(&job) {
                    settled.insert((job, ordinal));
                }
            }
            _ => tagged.push((open.get(&job).map(|ordinal| (job, *ordinal)), record)),
        }
    }
    tagged
        .into_iter()
        .filter(|(tag, _)| !tag.is_some_and(|key| settled.contains(&key)))
        .map(|(_, record)| record)
        .collect()
}

/// A job a crashed run left unfinished, as replayed by
/// [`Scheduler::recover`](crate::Scheduler::recover).
#[derive(Debug)]
pub struct RecoveredJob {
    /// The crashed run's job id.
    pub crashed_id: u64,
    /// The client-chosen name recorded at the original submission.
    pub name: Option<String>,
    /// Whether the crashed run had a cancellation on record (the
    /// replayed job is cancelled again before it runs).
    pub cancel_requested: bool,
    /// The replaying run's handle onto the resubmitted job.
    pub handle: crate::JobHandle,
}

/// The replay-relevant distillation of a journal: every submission
/// without a terminal record, in original submission order.
pub(crate) fn pending_jobs(
    records: Vec<JournalRecord>,
) -> Vec<(u64, Option<String>, SolveRequest, SubmitOptions, bool)> {
    let mut pending: Vec<(u64, Option<String>, SolveRequest, SubmitOptions, bool)> = Vec::new();
    for record in records {
        match record {
            JournalRecord::Submitted {
                job,
                name,
                request,
                options,
            } => pending.push((job, name, request, options, false)),
            JournalRecord::CancelRequested { job } => {
                if let Some(entry) = pending.iter_mut().find(|(id, ..)| *id == job) {
                    entry.4 = true;
                }
            }
            JournalRecord::Finalized { job, .. } | JournalRecord::Superseded { job, .. } => {
                pending.retain(|(id, ..)| *id != job);
            }
            JournalRecord::Started { .. } | JournalRecord::TrialDone { .. } => {}
        }
    }
    pending
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim::{CimAnnealer, ProblemSpec, SolveRequest, SolverSpec};

    fn submitted(job: u64) -> JournalRecord {
        JournalRecord::Submitted {
            job,
            name: Some(format!("job-{job}")),
            request: SolveRequest::new(
                ProblemSpec::MaxCut {
                    vertices: 4,
                    edges: vec![(0, 1, 1.0), (1, 2, 1.0)],
                },
                SolverSpec::Cim(CimAnnealer::new(10)),
            ),
            options: SubmitOptions::default(),
        }
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            submitted(1),
            submitted(2),
            JournalRecord::Started { job: 1 },
            JournalRecord::TrialDone { job: 1, trial: 0 },
            JournalRecord::Finalized {
                job: 1,
                status: JobStatus::Completed,
            },
            submitted(3),
            JournalRecord::CancelRequested { job: 3 },
            JournalRecord::Started { job: 2 },
            JournalRecord::Superseded { job: 2, by: 4 },
            submitted(4),
        ]
    }

    #[test]
    fn compaction_drops_exactly_the_settled_jobs() {
        let compacted = compact_records(sample_records());
        assert!(compacted.iter().all(|r| r.job() != 1 && r.job() != 2));
        let jobs: Vec<u64> = compacted.iter().map(JournalRecord::job).collect();
        // Unsettled jobs keep every record, in original order.
        assert_eq!(jobs, vec![3, 3, 4]);
        assert!(matches!(
            compacted[1],
            JournalRecord::CancelRequested { .. }
        ));
    }

    #[test]
    fn compaction_preserves_the_replay_distillation() {
        let original = pending_jobs(sample_records());
        let compacted = pending_jobs(compact_records(sample_records()));
        assert_eq!(compacted.len(), original.len());
        for (a, b) in original.iter().zip(&compacted) {
            assert_eq!(a.0, b.0, "job id");
            assert_eq!(a.1, b.1, "name");
            assert_eq!(a.2, b.2, "request");
            assert_eq!(a.4, b.4, "cancel flag");
        }
    }

    #[test]
    fn compaction_survives_job_id_reuse_across_server_runs() {
        // A second server run appending to the same journal without
        // recovering first counts ids from 1 again: the first run's
        // Finalized{1} must not erase the second run's Submitted{1}.
        let records = vec![
            submitted(1),
            JournalRecord::Finalized {
                job: 1,
                status: JobStatus::Completed,
            },
            submitted(1),
            JournalRecord::Started { job: 1 },
        ];
        let compacted = compact_records(records.clone());
        assert_eq!(compacted.len(), 2, "the open second lifecycle survives");
        assert_eq!(compacted[0], records[2]);
        assert_eq!(compacted[1], records[3]);
        assert_eq!(pending_jobs(compacted).len(), 1);
    }

    #[test]
    fn compaction_of_a_fully_settled_journal_is_empty() {
        let records = vec![
            submitted(7),
            JournalRecord::Finalized {
                job: 7,
                status: JobStatus::Cancelled,
            },
        ];
        assert!(compact_records(records).is_empty());
    }
}
