//! Jobs and their client-facing handles.
//!
//! A submitted request becomes a [`Job`]: the request, its submit
//! options, and a mutex-guarded [`JobState`] tracking which trials have
//! been claimed, finished, or abandoned. Clients hold [`JobHandle`]s —
//! cheap clones that expose [`status`](JobHandle::status),
//! [`progress`](JobHandle::progress), [`cancel`](JobHandle::cancel) and
//! the blocking [`wait`](JobHandle::wait).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use fecim::{PreparedJob, SessionError, SolveReport, SolveRequest, SolveResponse};

use crate::scheduler::{lock, Core};

/// Submit-time options of a job.
///
/// Priority is the primary scheduling key (higher runs first); the
/// optional deadline is *enforced* at trial granularity — among equal
/// priorities, earlier deadlines run first (EDF), and a job whose
/// deadline elapses mid-ensemble stops after its in-flight trials and
/// finalizes as [`JobStatus::DeadlineExceeded`] with the completed
/// prefix as a partial response (mirroring the cancel path; no trial is
/// ever aborted mid-anneal); tags are free-form labels echoed back
/// through [`JobHandle::tags`] for the client's own bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubmitOptions {
    /// Scheduling priority: higher runs first (default 0).
    pub priority: i64,
    /// Optional enforced deadline, milliseconds from submission; among
    /// equal priorities, earlier deadlines run first, and elapsing
    /// mid-ensemble stops the job after the current trial.
    pub deadline_ms: Option<u64>,
    /// Free-form labels echoed back to the client.
    pub tags: Vec<String>,
}

impl SubmitOptions {
    /// Options with the given priority (deadline unset, no tags).
    pub fn priority(priority: i64) -> SubmitOptions {
        SubmitOptions {
            priority,
            ..SubmitOptions::default()
        }
    }

    /// Set the deadline hint, milliseconds from submission.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> SubmitOptions {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Append a tag.
    pub fn with_tag(mut self, tag: impl Into<String>) -> SubmitOptions {
        self.tags.push(tag.into());
        self
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Submitted, no trial has started yet.
    Queued,
    /// At least one trial has started.
    Running,
    /// All trials finished; [`JobHandle::wait`] returns the response.
    Completed,
    /// Cancelled before every trial finished; completed trials are
    /// reported as a partial response.
    Cancelled,
    /// The submit-time deadline elapsed before every trial finished;
    /// completed trials are reported as a partial response.
    DeadlineExceeded,
    /// The request was rejected or a trial failed;
    /// [`JobHandle::wait`] returns the error.
    Failed,
}

impl JobStatus {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Completed
                | JobStatus::Cancelled
                | JobStatus::DeadlineExceeded
                | JobStatus::Failed
        )
    }
}

/// Point-in-time progress of a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobProgress {
    /// Trials that have finished.
    pub trials_completed: usize,
    /// Trials the run plan schedules.
    pub trials_total: usize,
    /// Trials currently executing on workers.
    pub in_flight: usize,
    /// Best exact Ising energy over finished trials (`None` before the
    /// first trial lands).
    pub best_energy: Option<f64>,
}

/// Why [`JobHandle::wait`] did not return a complete response.
#[derive(Debug, Clone)]
pub enum SchedulerError {
    /// The job was cancelled; completed trials (possibly zero) are
    /// summarized in `partial`.
    Cancelled {
        /// Trials that finished before the cancellation took effect.
        completed: usize,
        /// Response over the completed trials (`None` when none
        /// completed or post-processing failed).
        partial: Option<Box<SolveResponse>>,
    },
    /// The job's deadline elapsed before every trial finished;
    /// completed trials (possibly zero) are summarized in `partial`.
    DeadlineExceeded {
        /// Trials that finished before the deadline elapsed.
        completed: usize,
        /// Response over the completed trials (`None` when none
        /// completed or post-processing failed).
        partial: Option<Box<SolveResponse>>,
    },
    /// The request failed validation, preparation, or execution.
    Rejected(SessionError),
    /// The scheduler shut down before the job finished.
    Shutdown,
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::Cancelled { completed, .. } => {
                write!(f, "job cancelled after {completed} completed trials")
            }
            SchedulerError::DeadlineExceeded { completed, .. } => {
                write!(f, "deadline exceeded after {completed} completed trials")
            }
            SchedulerError::Rejected(e) => write!(f, "{e}"),
            SchedulerError::Shutdown => write!(f, "scheduler shut down before the job finished"),
        }
    }
}

impl std::error::Error for SchedulerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedulerError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

/// One submitted request and its execution state.
pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) priority: i64,
    /// Absolute deadline instant (submit time + `deadline_ms`).
    pub(crate) deadline: Option<Instant>,
    pub(crate) tags: Vec<String>,
    pub(crate) request: SolveRequest,
    pub(crate) state: Mutex<JobState>,
    pub(crate) done_cv: Condvar,
    /// Set by [`JobHandle::cancel`]; workers check it before claiming
    /// each trial, so a cancelled ensemble stops between trials.
    pub(crate) cancel_flag: AtomicBool,
}

pub(crate) struct JobState {
    pub(crate) status: JobStatus,
    pub(crate) prepared: Option<Arc<PreparedJob>>,
    /// Next unclaimed trial index.
    pub(crate) next_trial: usize,
    /// Trials currently executing.
    pub(crate) in_flight: usize,
    /// Finished reports, trial-indexed (`None` = not finished).
    pub(crate) reports: Vec<Option<SolveReport>>,
    pub(crate) done: usize,
    pub(crate) total: usize,
    pub(crate) best_energy: Option<f64>,
    /// Event ordinal of the first trial claim.
    pub(crate) started_event: Option<u64>,
    /// Event ordinal of finalization.
    pub(crate) finished_event: Option<u64>,
    /// Terminal outcome; present exactly when `status.is_terminal()`.
    pub(crate) outcome: Option<Result<SolveResponse, SchedulerError>>,
}

impl Job {
    pub(crate) fn new(id: u64, request: SolveRequest, options: SubmitOptions) -> Job {
        let total = request.run.trials();
        Job {
            id,
            priority: options.priority,
            deadline: options
                .deadline_ms
                // audit:allow(wall-clock): deadline arithmetic is inherently wall-clock; a deadline decides *whether* trials run, never what any trial computes
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            tags: options.tags,
            request,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                prepared: None,
                next_trial: 0,
                in_flight: 0,
                reports: Vec::new(),
                done: 0,
                total,
                best_energy: None,
                started_event: None,
                finished_event: None,
                outcome: None,
            }),
            done_cv: Condvar::new(),
            cancel_flag: AtomicBool::new(false),
        }
    }

    pub(crate) fn is_cancel_requested(&self) -> bool {
        self.cancel_flag.load(Ordering::Relaxed)
    }

    /// Whether the enforced deadline (if any) has already passed.
    /// Checked by workers before claiming each trial, so an elapsed
    /// deadline stops the ensemble at the next trial boundary.
    pub(crate) fn is_deadline_elapsed(&self) -> bool {
        // audit:allow(wall-clock): deadline *enforcement* point; affects which trials run (like a cancel), never the bits any completed trial produces
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Client handle onto a submitted job. Cheap to clone; all methods are
/// safe to call from any thread at any point in the job's lifecycle.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) job: Arc<Job>,
    pub(crate) core: Arc<Core>,
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.job.id)
            .field("priority", &self.job.priority)
            .field("status", &self.status())
            .finish()
    }
}

impl JobHandle {
    /// Scheduler-assigned job id (submission order).
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// The job's scheduling priority.
    pub fn priority(&self) -> i64 {
        self.job.priority
    }

    /// The job's submit-time tags.
    pub fn tags(&self) -> &[String] {
        &self.job.tags
    }

    /// The request this job executes.
    pub fn request(&self) -> &SolveRequest {
        &self.job.request
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        lock(&self.job.state).status
    }

    /// Trials completed / total, plus the best energy seen so far.
    pub fn progress(&self) -> JobProgress {
        let st = lock(&self.job.state);
        JobProgress {
            trials_completed: st.done,
            trials_total: st.total,
            in_flight: st.in_flight,
            best_energy: st.best_energy,
        }
    }

    /// Request cancellation. Unstarted trials will not run; in-flight
    /// trials finish and are kept in the partial response. Returns
    /// `false` when the job had already reached a terminal state.
    pub fn cancel(&self) -> bool {
        self.core.cancel(&self.job)
    }

    /// Block until the job reaches a terminal state and return its
    /// outcome (cloned — `wait` can be called repeatedly and from
    /// several threads).
    ///
    /// # Errors
    ///
    /// [`SchedulerError::Cancelled`] (with the partial response),
    /// [`SchedulerError::DeadlineExceeded`] when the submit-time
    /// deadline elapsed mid-run (also with the partial response),
    /// [`SchedulerError::Rejected`] for invalid or failing requests, and
    /// [`SchedulerError::Shutdown`] when the scheduler was dropped
    /// first.
    pub fn wait(&self) -> Result<SolveResponse, SchedulerError> {
        let mut st = lock(&self.job.state);
        loop {
            if let Some(outcome) = &st.outcome {
                return outcome.clone();
            }
            st = self
                .job
                .done_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The job's terminal outcome if it has one, without blocking.
    pub fn outcome(&self) -> Option<Result<SolveResponse, SchedulerError>> {
        lock(&self.job.state).outcome.clone()
    }

    /// Event ordinal at which the job's first trial was claimed
    /// (`None` while queued). Event ordinals are a scheduler-global
    /// monotone counter — comparable across jobs, which is what the
    /// admission tests and the `queue_sweep` trace rely on.
    pub fn started_event(&self) -> Option<u64> {
        lock(&self.job.state).started_event
    }

    /// Event ordinal at which the job reached its terminal state
    /// (`None` while open).
    pub fn finished_event(&self) -> Option<u64> {
        lock(&self.job.state).finished_event
    }
}
