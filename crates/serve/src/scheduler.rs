//! The [`Scheduler`]: a worker pool draining a priority queue of
//! [`SolveRequest`]s, one *trial* at a time.
//!
//! ## Execution model
//!
//! The unit of work is a single seeded trial, not a whole request. A
//! worker repeatedly pops the highest-priority job with unclaimed
//! trials, claims the next trial, and — because every trial derives all
//! of its randomness from `base_seed + trial` — produces exactly the
//! report [`Session::run`] would, regardless of which worker runs it,
//! when, or what else is running. That is the determinism contract:
//! with any fixed worker count, scheduled results are bit-identical to
//! `Session::run` of the same requests (pinned by the `scheduler_api`
//! tests at 1 and 8 workers). It holds in *every* fidelity: batched
//! device-accurate trials reseed their grid instance from the trial
//! seed before annealing, so live-grid placement and admission order
//! never leak into results.
//!
//! Trial granularity is also what makes priorities responsive: a
//! higher-priority submission preempts a long ensemble at its next
//! trial boundary (no trial is ever aborted mid-anneal), and
//! cancellation and deadline enforcement take effect the same way — a
//! job whose `deadline_ms` elapses mid-ensemble stops claiming trials
//! and finalizes as
//! [`JobStatus::DeadlineExceeded`](crate::JobStatus::DeadlineExceeded)
//! with the completed prefix as a partial response.
//!
//! ## Durability
//!
//! With [`SchedulerConfig::with_journal`], every lifecycle transition
//! is appended to a JSONL journal and [`Scheduler::recover`] replays a
//! crashed run's unfinished jobs — bit-identically, thanks to the
//! per-trial seed discipline (see [`crate::journal`]).
//!
//! ## Live-grid admission
//!
//! Trials of [`BackendPlan::Batched`](fecim::BackendPlan::Batched)
//! jobs run as replicas on shared [`BatchedTiledCrossbar`] grids (one
//! per tile height). Each trial admits its instance right before
//! annealing and retires it right after, so heterogeneous jobs pack
//! block-diagonally onto one grid and queued jobs slide into freed
//! stripe spans as replicas finish — the grid stays saturated instead
//! of waiting for cohort barriers.
//!
//! [`BatchedTiledCrossbar`]: fecim_crossbar::BatchedTiledCrossbar

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeMap, BinaryHeap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use fecim::{PreparedJob, Session, SessionError, SolveReport, SolveRequest};
use fecim_crossbar::CrossbarConfig;

use crate::grid::{Admission, GridPool, LiveGridStats};
use crate::job::{Job, JobHandle, JobState, JobStatus, SchedulerError, SubmitOptions};
use crate::journal::{self, Journal, JournalError, JournalRecord, RecoveredJob};

/// Lock a mutex, surviving peers that panicked while holding it (jobs
/// and queues are plain data — a poisoned guard is still consistent).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of a [`Scheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads draining the queue (≥ 1).
    pub workers: usize,
    /// Stripe capacity of each live grid: how many column stripes a
    /// shared grid may span before admissions start waiting. Bounds the
    /// simulated silicon the scheduler may occupy per tile height.
    pub grid_stripes: usize,
    /// Crossbar override for device-backed requests (the
    /// [`Session::with_crossbar`] setting); `None` = paper defaults.
    pub crossbar: Option<CrossbarConfig>,
    /// Start with workers idle; submissions queue up until
    /// [`Scheduler::resume`]. Lets a client stage a whole batch (and
    /// cancellations) before execution starts — the JSONL front-end and
    /// the deterministic tests rely on it.
    pub paused: bool,
    /// Append-only job journal path; every submit / start /
    /// trial-complete / cancel / finalize transition is recorded so
    /// [`Scheduler::recover`] can replay unfinished jobs after a crash.
    /// `None` = no durability.
    pub journal: Option<PathBuf>,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            workers: 2,
            grid_stripes: 64,
            crossbar: None,
            paused: false,
            journal: None,
        }
    }
}

impl SchedulerConfig {
    /// Config with the given worker count.
    pub fn workers(workers: usize) -> SchedulerConfig {
        SchedulerConfig {
            workers,
            ..SchedulerConfig::default()
        }
    }

    /// Set the per-grid stripe capacity.
    pub fn with_grid_stripes(mut self, grid_stripes: usize) -> SchedulerConfig {
        self.grid_stripes = grid_stripes;
        self
    }

    /// Override the crossbar configuration of device-backed requests.
    pub fn with_crossbar(mut self, config: CrossbarConfig) -> SchedulerConfig {
        self.crossbar = Some(config);
        self
    }

    /// Start paused (see [`SchedulerConfig::paused`]).
    pub fn start_paused(mut self) -> SchedulerConfig {
        self.paused = true;
        self
    }

    /// Journal every job transition to the append-only file at `path`
    /// (see [`SchedulerConfig::journal`]).
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> SchedulerConfig {
        self.journal = Some(path.into());
        self
    }
}

/// Queue entry ordering: priority desc, then deadline asc (absent
/// deadlines last), then submission order. `BinaryHeap` pops the
/// maximum, so "greater" means "runs first".
struct QueueEntry {
    job: Arc<Job>,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &QueueEntry) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &QueueEntry) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &QueueEntry) -> CmpOrdering {
        self.job
            .priority
            .cmp(&other.job.priority)
            .then_with(|| match (self.job.deadline, other.job.deadline) {
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => CmpOrdering::Greater,
                (None, Some(_)) => CmpOrdering::Less,
                (None, None) => CmpOrdering::Equal,
            })
            .then_with(|| other.job.id.cmp(&self.job.id))
    }
}

enum Mode {
    /// Accepting and executing work.
    Running,
    /// `join()` called: finish everything queued, then exit.
    Draining,
    /// Dropped: exit after the current trial.
    Abort,
}

struct QueueState {
    heap: BinaryHeap<QueueEntry>,
    /// Jobs submitted but not yet finalized (includes parked and
    /// in-flight jobs that have no heap entry right now).
    open_jobs: usize,
    paused: bool,
    mode: Mode,
}

/// Shared scheduler state (workers + handles hold an `Arc` each).
pub(crate) struct Core {
    session: Session,
    queue: Mutex<QueueState>,
    work_cv: Condvar,
    grids: Mutex<GridPool>,
    next_id: AtomicU64,
    /// Global monotone event counter (job starts/finishes) — the
    /// ordinals behind [`JobHandle::started_event`].
    events: AtomicU64,
    /// Jobs submitted and not yet finalized, for shutdown finalization.
    /// Finalize removes entries, so a long-lived scheduler does not
    /// accumulate terminal jobs (clients keep theirs via `JobHandle`).
    /// Ordered map so shutdown finalizes in submission-id order — the
    /// `finished_event` ordinals of aborted jobs are deterministic.
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    /// Durable job journal (leaf lock: appended to under job/queue
    /// locks, never the reverse).
    journal: Option<Journal>,
}

impl Core {
    fn next_event(&self) -> u64 {
        self.events.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Finalize under the job's state lock: record the outcome, stamp
    /// the event ordinal, wake waiters, and release the job's slot in
    /// the open-job count. (Lock order: `job.state` may be held while
    /// taking `queue`, never the reverse.)
    fn finalize(
        &self,
        job: &Job,
        st: &mut JobState,
        status: JobStatus,
        outcome: Result<fecim::SolveResponse, SchedulerError>,
    ) {
        debug_assert!(st.outcome.is_none(), "finalize must run once");
        // A shutdown abort is deliberately NOT journaled as terminal:
        // the whole point of the journal is that those jobs replay.
        if !matches!(&outcome, Err(SchedulerError::Shutdown)) {
            self.journal(&JournalRecord::Finalized {
                job: job.id,
                status,
            });
        }
        st.status = status;
        st.finished_event = Some(self.next_event());
        st.outcome = Some(outcome);
        job.done_cv.notify_all();
        let mut q = lock(&self.queue);
        q.open_jobs -= 1;
        drop(q);
        lock(&self.jobs).remove(&job.id);
        self.work_cv.notify_all();
    }

    fn journal(&self, record: &JournalRecord) {
        if let Some(journal) = &self.journal {
            journal.append(record);
        }
    }

    /// Response over the trials that completed before a cancellation or
    /// deadline stopped the job (`None` when none did).
    fn partial_response(st: &JobState) -> Option<Box<fecim::SolveResponse>> {
        let prepared = st.prepared.as_ref()?;
        if st.done == 0 {
            return None;
        }
        let reports: Vec<SolveReport> = st.reports.iter().flatten().cloned().collect();
        prepared.finish(reports, Vec::new()).ok().map(Box::new)
    }

    fn finalize_cancelled(&self, job: &Job, st: &mut JobState) {
        let completed = st.done;
        let partial = Self::partial_response(st);
        self.finalize(
            job,
            st,
            JobStatus::Cancelled,
            Err(SchedulerError::Cancelled { completed, partial }),
        );
    }

    /// The deadline twin of [`Core::finalize_cancelled`]: same partial
    /// semantics, distinct terminal status so clients (and the journal)
    /// can tell an explicit cancel from an elapsed deadline.
    fn finalize_deadline(&self, job: &Job, st: &mut JobState) {
        let completed = st.done;
        let partial = Self::partial_response(st);
        self.finalize(
            job,
            st,
            JobStatus::DeadlineExceeded,
            Err(SchedulerError::DeadlineExceeded { completed, partial }),
        );
    }

    /// Settle a job that should stop claiming trials (cancelled or past
    /// its deadline) once nothing is in flight. Explicit cancellation
    /// wins when both apply.
    fn settle_stopped(&self, job: &Job, st: &mut JobState) {
        if st.outcome.is_some() || st.in_flight != 0 {
            return;
        }
        if job.is_cancel_requested() {
            self.finalize_cancelled(job, st);
        } else if job.is_deadline_elapsed() {
            self.finalize_deadline(job, st);
        }
    }

    /// [`JobHandle::cancel`]: flag the job; if nothing is in flight,
    /// finalize immediately (otherwise the last in-flight trial's
    /// completion handler does).
    pub(crate) fn cancel(&self, job: &Arc<Job>) -> bool {
        job.cancel_flag.store(true, Ordering::Relaxed);
        let mut st = lock(&job.state);
        if st.outcome.is_some() {
            return false;
        }
        self.journal(&JournalRecord::CancelRequested { job: job.id });
        if st.in_flight == 0 {
            self.finalize_cancelled(job, &mut st);
        }
        true
    }

    fn requeue(&self, job: Arc<Job>) {
        let mut q = lock(&self.queue);
        q.heap.push(QueueEntry { job });
        drop(q);
        self.work_cv.notify_one();
    }

    /// One scheduling step: claim and run at most one trial of `job`.
    fn process(self: &Arc<Core>, job: Arc<Job>) {
        // Prepare once, under the job lock (peers querying status block
        // briefly; the queue stays untouched).
        let prepared = {
            let mut st = lock(&job.state);
            if st.outcome.is_some() {
                return; // stale heap entry for a finalized job
            }
            if job.is_cancel_requested() || job.is_deadline_elapsed() {
                // Checked before `prepare`, so a job submitted with an
                // already-elapsed deadline never touches a backend.
                self.settle_stopped(&job, &mut st);
                return;
            }
            match &st.prepared {
                Some(prepared) => Arc::clone(prepared),
                None => match self.session.prepare(&job.request) {
                    Ok(prepared) => {
                        st.reports = (0..prepared.trials()).map(|_| None).collect();
                        let prepared = Arc::new(prepared);
                        st.prepared = Some(Arc::clone(&prepared));
                        prepared
                    }
                    Err(e) => {
                        self.finalize(
                            &job,
                            &mut st,
                            JobStatus::Failed,
                            Err(SchedulerError::Rejected(e)),
                        );
                        return;
                    }
                },
            }
        };

        // Batched trials reserve their grid slot before claiming, so a
        // full grid parks the job instead of burning its trial.
        let admission = if prepared.is_batched() {
            // Bind the attempt first: a `match` on the locked pool would
            // keep the guard alive across the arms, and the Impossible
            // arm locks the pool again.
            let attempt = { lock(&self.grids).admit(&job, &prepared) };
            match attempt {
                Admission::Granted(handle) => Some(handle),
                Admission::Parked => return,
                Admission::Impossible { needed } => {
                    let mut st = lock(&job.state);
                    if st.outcome.is_none() {
                        let limit = lock(&self.grids).stripe_limit();
                        self.finalize(
                            &job,
                            &mut st,
                            JobStatus::Failed,
                            Err(SchedulerError::Rejected(SessionError::InvalidRequest(
                                format!(
                                    "instance needs {needed} stripes but the grid capacity \
                                     is {limit}"
                                ),
                            ))),
                        );
                    }
                    return;
                }
            }
        } else {
            None
        };

        // Claim the next trial. An elapsed deadline blocks the claim —
        // that is the enforcement point: the ensemble stops at the next
        // trial boundary, exactly like a cancellation.
        let claimed = {
            let mut st = lock(&job.state);
            if st.outcome.is_some()
                || job.is_cancel_requested()
                || job.is_deadline_elapsed()
                || st.next_trial >= st.total
            {
                None
            } else {
                let trial = st.next_trial;
                st.next_trial += 1;
                st.in_flight += 1;
                if st.status == JobStatus::Queued {
                    st.status = JobStatus::Running;
                    st.started_event = Some(self.next_event());
                    self.journal(&JournalRecord::Started { job: job.id });
                }
                if st.next_trial < st.total {
                    // More trials to claim: stay in the queue so other
                    // workers pick them up (priority order preserved).
                    self.requeue(Arc::clone(&job));
                }
                Some(trial)
            }
        };
        let Some(trial) = claimed else {
            // Nothing to run: release the unused grid slot and, if a
            // cancellation or deadline raced in, settle it.
            if let Some(handle) = admission {
                self.retire(&prepared, &handle);
            }
            let mut st = lock(&job.state);
            self.settle_stopped(&job, &mut st);
            return;
        };

        // Run the trial with no scheduler locks held.
        let result = match &admission {
            Some(handle) => prepared.run_batched_trial(trial, handle.clone()),
            None => prepared.run_trial(trial),
        };
        if let Some(handle) = admission {
            self.retire(&prepared, &handle);
        }

        // Record the outcome and finalize when the job is settled.
        let mut st = lock(&job.state);
        st.in_flight -= 1;
        match result {
            Ok(report) => {
                st.best_energy = Some(
                    st.best_energy
                        .map_or(report.best_energy, |b| b.min(report.best_energy)),
                );
                st.reports[trial] = Some(report);
                st.done += 1;
                self.journal(&JournalRecord::TrialDone { job: job.id, trial });
            }
            Err(e) => {
                if st.outcome.is_none() {
                    self.finalize(
                        &job,
                        &mut st,
                        JobStatus::Failed,
                        Err(SchedulerError::Rejected(e)),
                    );
                }
                return;
            }
        }
        if st.outcome.is_some() {
            return;
        }
        if st.done == st.total {
            let reports: Vec<SolveReport> = st
                .reports
                .iter_mut()
                // audit:allow(panic-path): st.done == st.total implies every slot is Some; a None here is a trial-accounting bug that must abort loudly, not ship a partial response
                .map(|slot| slot.take().expect("all trials done"))
                .collect();
            match prepared.finish(reports, Vec::new()) {
                Ok(response) => {
                    self.finalize(&job, &mut st, JobStatus::Completed, Ok(response));
                }
                Err(e) => self.finalize(
                    &job,
                    &mut st,
                    JobStatus::Failed,
                    Err(SchedulerError::Rejected(e)),
                ),
            }
        } else {
            self.settle_stopped(&job, &mut st);
        }
    }

    /// Retire a trial's grid instance and wake every parked job.
    fn retire(&self, prepared: &PreparedJob, handle: &fecim_crossbar::BatchInstance) {
        // audit:allow(panic-path): retire is only reached with an admission handle, which exists only for batched jobs, and batched jobs always carry tile rows
        let tile_rows = prepared.tile_rows().expect("batched trials have tiles");
        let waiters = lock(&self.grids).retire(tile_rows, handle.index());
        for job in waiters {
            self.requeue(job);
        }
    }
}

fn worker_loop(core: Arc<Core>) {
    loop {
        let job = {
            let mut q = lock(&core.queue);
            loop {
                if matches!(q.mode, Mode::Abort) {
                    return;
                }
                if !q.paused {
                    if let Some(entry) = q.heap.pop() {
                        break entry.job;
                    }
                    if matches!(q.mode, Mode::Draining) && q.open_jobs == 0 {
                        return;
                    }
                }
                q = core.work_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        core.process(job);
    }
}

/// The queued execution service: submit [`SolveRequest`]s, get
/// [`JobHandle`]s back, let the worker pool keep the grids saturated.
///
/// ```
/// use fecim::{CimAnnealer, ProblemSpec, RunPlan, SolveRequest, SolverSpec};
/// use fecim_serve::{Scheduler, SchedulerConfig, SubmitOptions};
///
/// let scheduler = Scheduler::with_config(SchedulerConfig::workers(2));
/// let request = SolveRequest::new(
///     ProblemSpec::MaxCut {
///         vertices: 8,
///         edges: (0..8).map(|i| (i, (i + 1) % 8, 1.0)).collect(),
///     },
///     SolverSpec::Cim(CimAnnealer::new(800).with_flips(1)),
/// )
/// .with_run(RunPlan::Ensemble { trials: 4, base_seed: 1, threads: None });
/// let job = scheduler.submit(request, SubmitOptions::priority(5));
/// let response = job.wait()?;
/// assert_eq!(response.reports.len(), 4);
/// # Ok::<(), fecim_serve::SchedulerError>(())
/// ```
pub struct Scheduler {
    core: Arc<Core>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Default for Scheduler {
    fn default() -> Scheduler {
        Scheduler::new()
    }
}

impl Scheduler {
    /// A scheduler with [`SchedulerConfig::default`] (2 workers,
    /// 64-stripe grids, paper-default crossbar, running).
    pub fn new() -> Scheduler {
        Scheduler::with_config(SchedulerConfig::default())
    }

    /// A scheduler with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0`, `config.grid_stripes == 0`, or
    /// the configured journal file cannot be opened (use
    /// [`Scheduler::try_with_config`] to handle that as an error).
    pub fn with_config(config: SchedulerConfig) -> Scheduler {
        // audit:allow(panic-path): panicking on journal-open failure is this constructor's documented contract; try_with_config is the fallible path
        Scheduler::try_with_config(config).expect("open the configured journal")
    }

    /// A scheduler with explicit configuration, surfacing journal-open
    /// failures as errors.
    ///
    /// # Errors
    ///
    /// The [`std::io::Error`] of opening `config.journal` for append, or
    /// of spawning a worker thread.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0` or `config.grid_stripes == 0`.
    pub fn try_with_config(config: SchedulerConfig) -> std::io::Result<Scheduler> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.grid_stripes > 0, "need at least one grid stripe");
        let journal = config.journal.as_deref().map(Journal::open).transpose()?;
        let session = match &config.crossbar {
            Some(crossbar) => Session::new().with_crossbar(crossbar.clone()),
            None => Session::new(),
        };
        let grid_config = config
            .crossbar
            .clone()
            .unwrap_or_else(CrossbarConfig::paper_defaults);
        let core = Arc::new(Core {
            session,
            queue: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                open_jobs: 0,
                paused: config.paused,
                mode: Mode::Running,
            }),
            work_cv: Condvar::new(),
            grids: Mutex::new(GridPool::new(grid_config, config.grid_stripes)),
            next_id: AtomicU64::new(0),
            events: AtomicU64::new(0),
            jobs: Mutex::new(BTreeMap::new()),
            journal,
        });
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let core = Arc::clone(&core);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fecim-serve-worker-{i}"))
                    .spawn(move || worker_loop(core))?,
            );
        }
        Ok(Scheduler { core, workers })
    }

    /// Queue a request. Returns immediately; validation happens on a
    /// worker, and any error surfaces through [`JobHandle::wait`].
    pub fn submit(&self, request: SolveRequest, options: SubmitOptions) -> JobHandle {
        self.submit_named(None, request, options)
    }

    /// Queue a request under a client-chosen name. The name has no
    /// scheduling meaning — it is recorded in the journal's `Submitted`
    /// record so crash recovery can re-associate replayed jobs with the
    /// ids a wire protocol handed out.
    pub fn submit_named(
        &self,
        name: Option<&str>,
        request: SolveRequest,
        options: SubmitOptions,
    ) -> JobHandle {
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        // Journal before the job becomes runnable: a crash right after
        // the client learns its id must still replay the job.
        if let Some(journal) = &self.core.journal {
            journal.append(&JournalRecord::Submitted {
                job: id,
                name: name.map(str::to_string),
                request: request.clone(),
                options: options.clone(),
            });
        }
        let job = Arc::new(Job::new(id, request, options));
        lock(&self.core.jobs).insert(id, Arc::clone(&job));
        let mut q = lock(&self.core.queue);
        q.open_jobs += 1;
        q.heap.push(QueueEntry {
            job: Arc::clone(&job),
        });
        drop(q);
        self.core.work_cv.notify_one();
        JobHandle {
            job,
            core: Arc::clone(&self.core),
        }
    }

    /// Replay a crashed run's journal: every job whose `Submitted`
    /// record has no terminal record is resubmitted (original
    /// submission order, original options), and jobs with a
    /// `CancelRequested` on record are cancelled again. Deterministic
    /// seeds make the recovered responses **bit-identical** to the ones
    /// the uncrashed run would have produced.
    ///
    /// Call this on a paused scheduler ([`SchedulerConfig::paused`])
    /// before [`Scheduler::resume`] so replayed cancellations settle
    /// before any trial runs, exactly like the staged JSONL front-end.
    /// If this scheduler journals (typically to the same file), each
    /// resubmission appends a `Superseded` record, so recovering twice
    /// — or crashing again mid-recovery — never duplicates finished
    /// work. Replayed jobs are assigned ids strictly greater than any
    /// id in the journal being recovered, so a `Superseded` record can
    /// never name a replayed job: a crash between a resubmission and
    /// its `Superseded` record degrades to duplicate work on the next
    /// recovery, never to a lost job.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the journal cannot be read and
    /// [`JournalError::Corrupt`] when a non-final line does not parse
    /// (a torn final line is tolerated as the crash's interrupted
    /// write).
    pub fn recover(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Vec<RecoveredJob>, JournalError> {
        let records = journal::read_journal(path)?;
        // Replayed jobs must never reuse a crashed run's id: this
        // scheduler's ids also start at 1, so without reseeding, the
        // replay of crashed job 1 would itself be job 1 and its
        // `Superseded { job: 1, by: 1 }` record would erase BOTH
        // `Submitted` entries from a later replay — a crash before the
        // replayed job finalizes would silently lose it. Seeding past
        // the journal's maximum id makes collisions impossible.
        let max_id = records
            .iter()
            .map(|record| match record {
                JournalRecord::Superseded { job, by } => (*job).max(*by),
                other => other.job(),
            })
            .max()
            .unwrap_or(0);
        self.core.next_id.fetch_max(max_id, Ordering::Relaxed);
        let mut recovered = Vec::new();
        for (crashed_id, name, request, options, cancel_requested) in journal::pending_jobs(records)
        {
            let handle = self.submit_named(name.as_deref(), request, options);
            if let Some(journal) = &self.core.journal {
                journal.append(&JournalRecord::Superseded {
                    job: crashed_id,
                    by: handle.id(),
                });
            }
            if cancel_requested {
                handle.cancel();
            }
            recovered.push(RecoveredJob {
                crashed_id,
                name,
                cancel_requested,
                handle,
            });
        }
        Ok(recovered)
    }

    /// Start executing (no-op unless the scheduler was built paused).
    pub fn resume(&self) {
        lock(&self.core.queue).paused = false;
        self.core.work_cv.notify_all();
    }

    /// Whether workers are currently held idle.
    pub fn is_paused(&self) -> bool {
        lock(&self.core.queue).paused
    }

    /// Jobs submitted and not yet finalized.
    pub fn open_jobs(&self) -> usize {
        lock(&self.core.queue).open_jobs
    }

    /// Statistics of every live grid, smallest tile height first.
    pub fn grid_stats(&self) -> Vec<LiveGridStats> {
        lock(&self.core.grids).stats()
    }

    /// Drain gracefully: resume if paused, run every submitted job to a
    /// terminal state, then stop the workers.
    pub fn join(mut self) {
        {
            let mut q = lock(&self.core.queue);
            q.paused = false;
            q.mode = Mode::Draining;
        }
        self.core.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    /// Abort: workers stop after their current trial; unfinished jobs
    /// finalize as [`SchedulerError::Shutdown`] so `wait()` never
    /// hangs. Call [`Scheduler::join`] instead for a graceful drain.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // `join()` already drained
        }
        lock(&self.core.queue).mode = Mode::Abort;
        self.core.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Snapshot first: finalize takes the registry lock itself, and a
        // client thread may be cancelling concurrently (lock order is
        // always job.state → registry). The registry is a BTreeMap, so
        // aborted jobs finalize in submission-id order and their
        // `finished_event` ordinals are deterministic.
        let open: Vec<Arc<Job>> = lock(&self.core.jobs).values().cloned().collect();
        for job in open {
            let mut st = lock(&job.state);
            if st.outcome.is_none() {
                self.core.finalize(
                    &job,
                    &mut st,
                    JobStatus::Failed,
                    Err(SchedulerError::Shutdown),
                );
            }
        }
    }
}
