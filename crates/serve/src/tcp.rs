//! The streaming TCP transport: the [`jsonl`] protocol
//! over a real wire (`fecim-serve serve --listen ADDR`).
//!
//! One OS thread per connection reads [`RequestLine`]s as they arrive
//! and executes them against a scheduler shared by every connection.
//! Unlike the staged stdin transport, execution is *live*:
//!
//! * terminal [`ResponseLine`]s are emitted **as jobs finish**, tagged
//!   by id, not in submission order;
//! * `Status`/`Progress` queries are answered immediately with the
//!   job's current state;
//! * a `Cancel` races the worker pool — trials that finished before it
//!   lands are kept in the `Cancelled` line's partial response;
//! * admission control pushes back: once the scheduler's open-job count
//!   reaches the configured limit, further submissions get a `Rejected`
//!   line and never enter the queue (the check is serialized across
//!   connections, so the limit is hard);
//! * submission ids are unique server-wide — a `Submit` reusing an id
//!   from ANY connection (ids key the journal) fails deterministically;
//! * a `Campaign` line runs its multi-round spec on a dedicated thread,
//!   concurrently with everything else on the shared scheduler, and
//!   answers with one `Campaign` (or `Failed`) line when the last round
//!   settles. Admission control applies to the campaign line itself at
//!   arrival; its per-round sub-jobs then enter the queue directly
//!   (each round keeps at most one window-set in flight).
//!
//! A connection's jobs keep running after the client stops sending;
//! the server half-closes only after every job submitted on that
//! connection has been answered. Combined with a journal
//! ([`SchedulerConfig::with_journal`]), a crashed server replays
//! unfinished jobs on restart — deterministic seeds make the replayed
//! responses bit-identical, they just can no longer be delivered to the
//! original (dead) connection.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::campaign;
use crate::jsonl::{self, JsonlSummary, RequestLine, ResponseLine};
use crate::scheduler::{lock, Scheduler, SchedulerConfig};
use crate::JobHandle;

/// Configuration of a [`TcpServer`].
#[derive(Debug, Clone, Default)]
pub struct TcpServerConfig {
    /// The scheduler every connection shares (journal included).
    pub scheduler: SchedulerConfig,
    /// Admission-control limit: submissions arriving while
    /// `Scheduler::open_jobs()` is at or above this are answered with a
    /// `Rejected` line instead of entering the queue. The check and the
    /// submit are serialized across connections, so this is a hard
    /// limit, not a high-water mark. `None` = accept everything.
    pub max_open_jobs: Option<usize>,
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    scheduler: Scheduler,
    max_open_jobs: Option<usize>,
    /// Connection threads, joined at shutdown.
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// One clone per live connection socket, keyed by connection id;
    /// shutdown half-closes their read sides so a reader blocked on an
    /// idle client unblocks. Each handler removes its own entry on exit
    /// — a lingering clone would hold the fd open (the peer would never
    /// see EOF) and leak one fd per connection. Ordered map so shutdown
    /// half-closes in connection-id order, not hash order.
    socks: Mutex<BTreeMap<u64, TcpStream>>,
    /// Every id ever submitted on ANY connection. Ids key the journal
    /// (and the `recover` subcommand's output lines), so uniqueness is
    /// server-wide, not per-connection; the same lock also serializes
    /// the admission check against the submit, making `max_open_jobs` a
    /// hard limit rather than a per-connection high-water mark.
    submitted: Mutex<HashSet<String>>,
}

/// A running TCP front-end: an accept loop plus one thread per
/// connection, all sharing one [`Scheduler`].
///
/// ```no_run
/// use fecim_serve::{TcpServer, TcpServerConfig};
///
/// let server = TcpServer::bind("127.0.0.1:0", TcpServerConfig::default())?;
/// println!("listening on {}", server.local_addr());
/// // ... connect clients, speak the JSONL protocol ...
/// server.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
    recovered: usize,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.addr)
            .field("recovered", &self.recovered)
            .finish()
    }
}

impl TcpServer {
    /// Bind `addr` and start accepting connections.
    ///
    /// If the scheduler config names a journal that already exists, the
    /// crashed run's unfinished jobs are recovered *before* the first
    /// connection is accepted (staged on a paused scheduler so replayed
    /// cancellations settle deterministically); their responses are
    /// recomputed bit-identically and journaled, but — the original
    /// connections being gone — not delivered anywhere.
    ///
    /// # Errors
    ///
    /// Binding/listening errors, journal-open errors, and a corrupt
    /// journal (as [`std::io::ErrorKind::InvalidData`]).
    pub fn bind(addr: impl ToSocketAddrs, config: TcpServerConfig) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let recover_from = config
            .scheduler
            .journal
            .clone()
            .filter(|path| path.exists());
        let mut scheduler_config = config.scheduler;
        let resume_after_recover = !scheduler_config.paused && recover_from.is_some();
        if recover_from.is_some() {
            scheduler_config.paused = true;
        }
        let scheduler = Scheduler::try_with_config(scheduler_config)?;
        let recovered = match recover_from {
            Some(path) => scheduler
                .recover(&path)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
                .len(),
            None => 0,
        };
        if resume_after_recover {
            scheduler.resume();
        }
        let shared = Arc::new(Shared {
            scheduler,
            max_open_jobs: config.max_open_jobs,
            conns: Mutex::new(Vec::new()),
            socks: Mutex::new(BTreeMap::new()),
            submitted: Mutex::new(HashSet::new()),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("fecim-serve-accept".into())
                .spawn(move || accept_loop(listener, shared, stop))?
        };
        Ok(TcpServer {
            addr: local,
            stop,
            accept: Some(accept),
            shared,
            recovered,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs replayed from the journal at startup.
    pub fn recovered_jobs(&self) -> usize {
        self.recovered
    }

    /// Open jobs on the shared scheduler right now.
    pub fn open_jobs(&self) -> usize {
        self.shared.scheduler.open_jobs()
    }

    /// Stop accepting, half-close every connection's read side, wait
    /// for the jobs already submitted to finish and their responses to
    /// be delivered, then drain the scheduler. Request lines still in
    /// flight on the wire when shutdown begins may go unanswered — but
    /// an idle client that keeps its connection open can never stall
    /// shutdown.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop has exited, so the socket list is final.
        // Half-close each read side: readers blocked on clients that
        // never half-closed see EOF and fall through to the waiter
        // joins, which still deliver every in-flight job's response
        // over the (untouched) write sides.
        for sock in lock(&self.shared.socks).values() {
            let _ = sock.shutdown(Shutdown::Read);
        }
        loop {
            // Connection threads may still be registering; drain until
            // the list stays empty.
            let conns: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.shared.conns));
            if conns.is_empty() {
                break;
            }
            for conn in conns {
                let _ = conn.join();
            }
        }
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.scheduler.join(),
            Err(_) => unreachable!("all server threads joined before teardown"),
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, stop: Arc<AtomicBool>) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        next_conn += 1;
        let conn_id = next_conn;
        // Registered before the handler spawns, so shutdown (which runs
        // only after this loop exits) always sees every live socket.
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.socks).insert(conn_id, clone);
        }
        let shared_for_conn = Arc::clone(&shared);
        let conn = std::thread::Builder::new()
            .name("fecim-serve-conn".into())
            .spawn(move || handle_connection(stream, &shared_for_conn, conn_id))
            // audit:allow(panic-path): thread spawn fails only on OS resource exhaustion; the accept loop has no error channel to the peer, and limping on with a silently dropped connection is worse than aborting
            .expect("spawn connection thread");
        lock(&shared.conns).push(conn);
    }
}

/// Serialize and send one line; a failed write means the peer is gone,
/// which is not the server's problem — jobs keep running (and, with a
/// journal, stay replayable).
fn send(writer: &Arc<Mutex<TcpStream>>, line: &ResponseLine) {
    // audit:allow(panic-path): ResponseLine is plain structs/enums with string keys throughout, so serialization is infallible by construction
    let json = serde_json::to_string(line).expect("response lines serialize");
    let mut stream = lock(writer);
    let _ = writeln!(stream, "{json}").and_then(|()| stream.flush());
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, conn_id: u64) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    // Handles for ids this connection submitted, kept for the
    // connection's lifetime so queries keep working after a job
    // finishes. Duplicate detection is server-wide (`Shared::submitted`);
    // `Cancel`/`Status`/`Progress` remain scoped to the submitting
    // connection, which is the only place the handle lives.
    let mut registry: HashMap<String, JobHandle> = HashMap::new();
    // One waiter thread per submission delivers its terminal line the
    // moment the job settles — completion order, not submission order.
    let mut waiters: Vec<JoinHandle<()>> = Vec::new();
    for (line_no, line) in BufReader::new(read_half).lines().enumerate() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let parsed: RequestLine = match serde_json::from_str(trimmed) {
            Ok(parsed) => parsed,
            Err(e) => {
                // Streaming cannot abort the whole stream on one bad
                // line (peers' jobs are already running): synthesize an
                // id and keep serving.
                send(
                    &writer,
                    &ResponseLine::Failed {
                        id: format!("line-{}", line_no + 1),
                        error: format!("unparsable request line: {e}"),
                    },
                );
                continue;
            }
        };
        match parsed {
            RequestLine::Submit {
                id,
                request,
                options,
            } => {
                // Duplicate detection and admission both run under the
                // server-wide `submitted` lock: a duplicate id on a
                // DIFFERENT connection is as much a duplicate as one on
                // this connection (ids key the journal), and holding
                // the lock across the check and the submit makes
                // `max_open_jobs` a hard limit — N racing connections
                // cannot each pass the check and overshoot.
                let mut submitted = lock(&shared.submitted);
                if submitted.contains(&id) {
                    drop(submitted);
                    send(
                        &writer,
                        &ResponseLine::Failed {
                            error: format!("duplicate submission id `{id}`"),
                            id,
                        },
                    );
                    continue;
                }
                if let Some(limit) = shared.max_open_jobs {
                    let open_jobs = shared.scheduler.open_jobs();
                    if open_jobs >= limit {
                        drop(submitted);
                        // Backpressure: the id never enters the queue
                        // (or the registries — the client may retry it).
                        send(
                            &writer,
                            &ResponseLine::Rejected {
                                id,
                                open_jobs,
                                limit,
                            },
                        );
                        continue;
                    }
                }
                let handle = shared.scheduler.submit_named(Some(&id), request, options);
                submitted.insert(id.clone());
                drop(submitted);
                registry.insert(id.clone(), handle.clone());
                let writer = Arc::clone(&writer);
                waiters.push(
                    std::thread::Builder::new()
                        .name("fecim-serve-waiter".into())
                        .spawn(move || {
                            let outcome = handle.wait();
                            let mut tally = JsonlSummary::default();
                            send(&writer, &jsonl::terminal_line(id, outcome, &mut tally));
                        })
                        // audit:allow(panic-path): thread spawn fails only on OS resource exhaustion; the job is already submitted and journaled, so limping on without a waiter would silently swallow its terminal line
                        .expect("spawn waiter thread"),
                );
            }
            RequestLine::Campaign { id, spec, options } => {
                // Same server-wide duplicate + admission discipline as
                // `Submit`; the id is burned even though campaigns have
                // no handle (they cannot be cancelled or queried).
                let mut submitted = lock(&shared.submitted);
                if submitted.contains(&id) {
                    drop(submitted);
                    send(
                        &writer,
                        &ResponseLine::Failed {
                            error: format!("duplicate submission id `{id}`"),
                            id,
                        },
                    );
                    continue;
                }
                if let Some(limit) = shared.max_open_jobs {
                    let open_jobs = shared.scheduler.open_jobs();
                    if open_jobs >= limit {
                        drop(submitted);
                        send(
                            &writer,
                            &ResponseLine::Rejected {
                                id,
                                open_jobs,
                                limit,
                            },
                        );
                        continue;
                    }
                }
                submitted.insert(id.clone());
                drop(submitted);
                let writer = Arc::clone(&writer);
                let shared = Arc::clone(shared);
                waiters.push(
                    std::thread::Builder::new()
                        .name("fecim-serve-campaign".into())
                        .spawn(move || {
                            let response =
                                match campaign::run_campaign(&shared.scheduler, &spec, &options) {
                                    Ok(outcome) => ResponseLine::Campaign { id, outcome },
                                    Err(e) => ResponseLine::Failed {
                                        id,
                                        error: e.to_string(),
                                    },
                                };
                            send(&writer, &response);
                        })
                        // audit:allow(panic-path): thread spawn fails only on OS resource exhaustion; the id is already burned in `submitted`, so limping on would silently swallow the campaign's response
                        .expect("spawn campaign thread"),
                );
            }
            RequestLine::Cancel { id } => match registry.get(&id) {
                // The job's terminal line (Cancelled, or Completed if
                // the cancel lost the race) is the response.
                Some(handle) => {
                    handle.cancel();
                }
                None => send(
                    &writer,
                    &ResponseLine::Failed {
                        error: format!("cancel for unknown id `{id}`"),
                        id,
                    },
                ),
            },
            RequestLine::Status { id } => {
                let response = match registry.get(&id) {
                    Some(handle) => ResponseLine::Status {
                        id,
                        status: handle.status(),
                    },
                    None => ResponseLine::Failed {
                        error: format!("status for unknown id `{id}`"),
                        id,
                    },
                };
                send(&writer, &response);
            }
            RequestLine::Progress { id } => {
                let response = match registry.get(&id) {
                    Some(handle) => ResponseLine::Progress {
                        id,
                        progress: handle.progress(),
                    },
                    None => ResponseLine::Failed {
                        error: format!("progress for unknown id `{id}`"),
                        id,
                    },
                };
                send(&writer, &response);
            }
        }
    }
    // Client closed its write side (or the connection died): deliver
    // what is still in flight, then let the socket close.
    for waiter in waiters {
        let _ = waiter.join();
    }
    // Drop the shutdown registry's clone along with the locals below,
    // so the last fd closes here and the peer sees EOF now, not at
    // server shutdown.
    lock(&shared.socks).remove(&conn_id);
}

/// Drive a server as a client: send every request line of `input`,
/// half-close the write side, and copy response lines to `output` until
/// the server closes the connection (which it does once every job
/// submitted on it has been answered). Returns the number of response
/// lines received.
///
/// # Errors
///
/// Connection and i/o errors; response *content* is not validated
/// (pipe the output through [`check_responses_against`] for that).
///
/// [`check_responses_against`]: crate::check_responses_against
pub fn drive(
    addr: impl ToSocketAddrs,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<usize> {
    let requests: Vec<String> = input.lines().collect::<Result<_, _>>()?;
    let stream = TcpStream::connect(addr)?;
    let mut write_half = stream.try_clone()?;
    // Writer thread + reader loop, so a server streaming large
    // responses early can never deadlock against an unread send buffer.
    let sender = std::thread::spawn(move || -> std::io::Result<()> {
        for request in requests {
            writeln!(write_half, "{request}")?;
        }
        write_half.flush()?;
        write_half.shutdown(std::net::Shutdown::Write)
    });
    let mut received = 0usize;
    for line in BufReader::new(stream).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(output, "{line}")?;
        received += 1;
    }
    sender
        .join()
        .map_err(|_| std::io::Error::other("request sender thread panicked"))??;
    Ok(received)
}
