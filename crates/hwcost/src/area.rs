//! Silicon area model at 22 nm, DESTINY-style (paper ref [37]): cell area
//! from the technology F², periphery from per-instance component
//! footprints scaled from their published nodes (e.g. the 0.005 mm² ADC of
//! ref [36] at its native node).
//!
//! Area does not enter the paper's headline figures but determines how
//! many ADCs an annealer can afford — the origin of the 8-to-1 muxing that
//! sets the Fig. 9 time ratio — so the model makes that trade explicit.

use serde::{Deserialize, Serialize};

/// Feature size in nanometres used for F² cell area.
pub const FEATURE_NM: f64 = 22.0;

/// Per-component silicon footprints in µm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One DG FeFET cell, µm² (6F² class for a 1T cell with BG contact
    /// sharing).
    pub cell: f64,
    /// One SAR ADC instance, µm² (ref \[36\]: 0.005 mm² at 28 nm, scaled).
    pub adc: f64,
    /// One column mux (8:1) per ADC, µm².
    pub mux: f64,
    /// One shift-and-add unit, µm².
    pub shift_add: f64,
    /// Row/column driver per line, µm².
    pub driver_per_line: f64,
    /// The back-gate DAC (one per array), µm².
    pub bg_dac: f64,
    /// The `eˣ` ASIC block of ref \[18\], µm² (FPGA variant is off-chip).
    pub exp_asic: f64,
    /// Annealing control logic, µm².
    pub control: f64,
}

impl AreaModel {
    /// 22 nm defaults.
    pub fn node_22nm() -> AreaModel {
        let f_um = FEATURE_NM * 1e-3;
        AreaModel {
            cell: 6.0 * f_um * f_um,
            adc: 3100.0, // 0.005 mm² at 28 nm → ≈0.0031 mm² at 22 nm
            mux: 25.0,
            shift_add: 60.0,
            driver_per_line: 1.2,
            bg_dac: 400.0,
            exp_asic: 5200.0,
            control: 2000.0,
        }
    }
}

impl Default for AreaModel {
    fn default() -> AreaModel {
        AreaModel::node_22nm()
    }
}

/// Area breakdown of one annealer macro, µm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Crossbar cell array (both polarity planes).
    pub array: f64,
    /// ADCs + muxes.
    pub converters: f64,
    /// Drivers and decoders.
    pub drivers: f64,
    /// Digital periphery (shift-add, control, buffers).
    pub digital: f64,
    /// Exponential unit (zero for the in-situ annealer).
    pub exp_unit: f64,
    /// Back-gate DAC (zero for the baselines).
    pub bg_dac: f64,
}

impl AreaReport {
    /// Total area in µm².
    pub fn total(&self) -> f64 {
        self.array + self.converters + self.drivers + self.digital + self.exp_unit + self.bg_dac
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total() * 1e-6
    }
}

/// Compute the macro area of an annealer.
///
/// * `spins` — problem size `n` (array is `n × n·k` per polarity plane);
/// * `quant_bits` — weight bits `k`;
/// * `mux_ratio` — column groups per ADC;
/// * `has_exp_unit` — baselines instantiate the ASIC `eˣ` block;
/// * `has_bg_dac` — the in-situ annealer adds the temperature DAC.
pub fn annealer_area(
    model: &AreaModel,
    spins: usize,
    quant_bits: u8,
    mux_ratio: usize,
    has_exp_unit: bool,
    has_bg_dac: bool,
) -> AreaReport {
    let n = spins as f64;
    let k = quant_bits as f64;
    let physical_cols = n * k * 2.0; // two polarity planes
    let cells = n * physical_cols;
    let adc_count = (n / mux_ratio as f64).ceil() * 2.0; // per plane
    AreaReport {
        array: cells * model.cell,
        converters: adc_count * (model.adc + model.mux),
        drivers: (n + physical_cols) * model.driver_per_line,
        digital: adc_count * model.shift_add + model.control,
        exp_unit: if has_exp_unit { model.exp_asic } else { 0.0 },
        bg_dac: if has_bg_dac { model.bg_dac } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_positive_and_array_dominated_at_scale() {
        let m = AreaModel::node_22nm();
        let a = annealer_area(&m, 3000, 4, 8, false, true);
        assert!(a.total() > 0.0);
        // 72M cells at ~2.9e-3 µm² ≈ 0.21 mm²; ADCs 750 ≈ 2.3 mm².
        // At this node the converters dominate — exactly why the paper
        // muxes them 8:1.
        assert!(a.converters > a.array, "{a:?}");
        assert!(
            a.total_mm2() < 20.0,
            "macro should be mm^2-class: {}",
            a.total_mm2()
        );
    }

    #[test]
    fn mux_ratio_trades_adc_area() {
        let m = AreaModel::node_22nm();
        let muxed = annealer_area(&m, 1000, 4, 8, false, true);
        let unmuxed = annealer_area(&m, 1000, 4, 1, false, true);
        assert!(unmuxed.converters > muxed.converters * 6.0);
    }

    #[test]
    fn in_situ_swaps_exp_unit_for_bg_dac() {
        let m = AreaModel::node_22nm();
        let ours = annealer_area(&m, 800, 4, 8, false, true);
        let base = annealer_area(&m, 800, 4, 8, true, false);
        assert_eq!(ours.exp_unit, 0.0);
        assert!(ours.bg_dac > 0.0);
        assert_eq!(base.bg_dac, 0.0);
        assert!(base.exp_unit > 0.0);
        // The swap is area-favourable (BG DAC is far smaller than e^x).
        assert!(ours.total() < base.total());
    }

    #[test]
    fn area_scales_quadratically_with_n_in_the_array_term() {
        let m = AreaModel::node_22nm();
        let small = annealer_area(&m, 500, 4, 8, false, true);
        let large = annealer_area(&m, 1000, 4, 8, false, true);
        let ratio = large.array / small.array;
        assert!((ratio - 4.0).abs() < 1e-9);
    }
}
