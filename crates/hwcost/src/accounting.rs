//! Turning activity counts into energy/time reports — the accounting layer
//! behind the paper's Figs. 8–9.

use std::fmt;

use serde::{Deserialize, Serialize};

use fecim_crossbar::ActivityStats;

use crate::components::{CostModel, ExpUnit};

/// Per-component energy breakdown of a run, joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// ADC conversions.
    pub adc: f64,
    /// Exponential-unit evaluations.
    pub exp: f64,
    /// Row/column wire switching.
    pub wires: f64,
    /// Back-gate DAC updates.
    pub bg: f64,
    /// Digital periphery (shift-add, buffers, annealing logic).
    pub digital: f64,
}

impl EnergyReport {
    /// Total energy, joules.
    pub fn total(&self) -> f64 {
        self.adc + self.exp + self.wires + self.bg + self.digital
    }

    /// Scale every component (e.g. per-iteration → per-run).
    pub fn scaled(&self, factor: f64) -> EnergyReport {
        EnergyReport {
            adc: self.adc * factor,
            exp: self.exp * factor,
            wires: self.wires * factor,
            bg: self.bg * factor,
            digital: self.digital * factor,
        }
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport {
            adc: self.adc + other.adc,
            exp: self.exp + other.exp,
            wires: self.wires + other.wires,
            bg: self.bg + other.bg,
            digital: self.digital + other.digital,
        }
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.3e} J (adc {:.3e}, exp {:.3e}, wires {:.3e}, bg {:.3e}, digital {:.3e})",
            self.total(),
            self.adc,
            self.exp,
            self.wires,
            self.bg,
            self.digital
        )
    }
}

/// Per-component latency breakdown of a run, seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeReport {
    /// Serialized ADC conversion slots.
    pub adc: f64,
    /// Exponential-unit evaluations (on the iteration critical path).
    pub exp: f64,
    /// Row settling (overlapped conversions excluded).
    pub array: f64,
    /// Digital annealing logic.
    pub digital: f64,
}

impl TimeReport {
    /// Total latency, seconds.
    pub fn total(&self) -> f64 {
        self.adc + self.exp + self.array + self.digital
    }

    /// Scale every component.
    pub fn scaled(&self, factor: f64) -> TimeReport {
        TimeReport {
            adc: self.adc * factor,
            exp: self.exp * factor,
            array: self.array * factor,
            digital: self.digital * factor,
        }
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &TimeReport) -> TimeReport {
        TimeReport {
            adc: self.adc + other.adc,
            exp: self.exp + other.exp,
            array: self.array + other.array,
            digital: self.digital + other.digital,
        }
    }
}

impl fmt::Display for TimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.3e} s (adc {:.3e}, exp {:.3e}, array {:.3e}, digital {:.3e})",
            self.total(),
            self.adc,
            self.exp,
            self.array,
            self.digital
        )
    }
}

/// Convert activity counts into an energy report.
///
/// `exp_unit` selects which `eˣ` implementation prices the
/// `exp_evaluations` (irrelevant when the count is zero, as for the
/// in-situ annealer).
pub fn energy_of(stats: &ActivityStats, model: &CostModel, exp_unit: ExpUnit) -> EnergyReport {
    let exp_cost = model.exp_unit(exp_unit);
    EnergyReport {
        adc: stats.adc_conversions as f64 * model.adc_conversion.energy,
        exp: stats.exp_evaluations as f64 * exp_cost.energy,
        wires: stats.rows_driven as f64 * model.row_toggle.energy
            + stats.columns_driven as f64 * model.column_precharge.energy,
        bg: stats.bg_updates as f64 * model.bg_update.energy,
        digital: stats.shift_add_ops as f64 * model.shift_add.energy
            + stats.buffer_writes as f64 * model.buffer_write.energy
            + stats.array_ops as f64 * model.anneal_logic.energy,
    }
}

/// Convert activity counts into a latency report.
///
/// ADC time uses the *serialized slot* count (parallel ADCs overlap);
/// wire/array settling is charged once per row pass.
pub fn time_of(stats: &ActivityStats, model: &CostModel, exp_unit: ExpUnit) -> TimeReport {
    let exp_cost = model.exp_unit(exp_unit);
    TimeReport {
        adc: stats.adc_slots as f64 * model.adc_conversion.latency,
        exp: stats.exp_evaluations as f64 * exp_cost.latency,
        array: stats.row_passes as f64 * model.row_toggle.latency,
        digital: stats.array_ops as f64 * model.anneal_logic.latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ActivityStats {
        ActivityStats {
            array_ops: 10,
            row_passes: 20,
            adc_conversions: 100,
            adc_slots: 50,
            cells_activated: 500,
            rows_driven: 200,
            columns_driven: 40,
            bg_updates: 10,
            shift_add_ops: 100,
            buffer_writes: 10,
            tiles_activated: 10,
            exp_evaluations: 5,
        }
    }

    #[test]
    fn adc_dominates_paper_energy_profile() {
        // Paper Sec. 4.1: "the major energy consumption are from the ADC
        // and the exponential function implementation".
        let model = CostModel::paper_22nm(1000, 4);
        let e = energy_of(&stats(), &model, ExpUnit::Asic);
        assert!(e.adc + e.exp > 0.5 * e.total(), "{e}");
    }

    #[test]
    fn fpga_exp_costs_more_than_asic() {
        let model = CostModel::paper_22nm(1000, 4);
        let fpga = energy_of(&stats(), &model, ExpUnit::Fpga);
        let asic = energy_of(&stats(), &model, ExpUnit::Asic);
        assert!(fpga.exp > asic.exp * 100.0);
        assert_eq!(fpga.adc, asic.adc);
    }

    #[test]
    fn time_uses_slots_not_conversions() {
        let model = CostModel::paper_22nm(1000, 4);
        let t = time_of(&stats(), &model, ExpUnit::Asic);
        assert!((t.adc - 50.0 * 25e-9).abs() < 1e-15);
    }

    #[test]
    fn scaling_and_merging() {
        let model = CostModel::paper_22nm(100, 4);
        let e = energy_of(&stats(), &model, ExpUnit::Asic);
        let doubled = e.merged(&e);
        let scaled = e.scaled(2.0);
        assert!((doubled.total() - scaled.total()).abs() < 1e-20);
    }

    #[test]
    fn zero_stats_zero_cost() {
        let model = CostModel::paper_22nm(100, 4);
        let e = energy_of(&ActivityStats::new(), &model, ExpUnit::Fpga);
        assert_eq!(e.total(), 0.0);
        let t = time_of(&ActivityStats::new(), &model, ExpUnit::Fpga);
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    fn display_contains_total() {
        let model = CostModel::paper_22nm(100, 4);
        let e = energy_of(&stats(), &model, ExpUnit::Asic);
        assert!(e.to_string().contains("total"));
        let t = time_of(&stats(), &model, ExpUnit::Asic);
        assert!(t.to_string().contains("total"));
    }
}
