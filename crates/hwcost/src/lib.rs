//! # fecim-hwcost
//!
//! Hardware cost model of the three annealer architectures compared in the
//! paper (Qian et al., DAC 2025, Sec. 4): a 22 nm component cost database
//! (ADC of ref \[36\], `eˣ` units of ref \[18\], DESTINY-style wires of
//! ref \[37\]), energy/time accounting over crossbar activity counts, and
//! analytic per-iteration activity models for paper-scale runs.
//!
//! ```
//! use fecim_hwcost::{AnnealerKind, CostModel, IterationProfile};
//!
//! let model = CostModel::paper_22nm(3000, 4);
//! let profile = IterationProfile::paper(3000);
//! let ours = profile.iteration_energy(AnnealerKind::InSitu, &model).total();
//! let base = profile.iteration_energy(AnnealerKind::CimAsic, &model).total();
//! assert!(base / ours > 1000.0); // the Fig. 8 headline
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accounting;
mod annealers;
mod area;
mod components;

pub use accounting::{energy_of, time_of, EnergyReport, TimeReport};
pub use annealers::{AnnealerKind, IterationProfile};
pub use area::{annealer_area, AreaModel, AreaReport, FEATURE_NM};
pub use components::{CostModel, EventCost, ExpUnit};
