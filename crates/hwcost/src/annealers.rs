//! Per-annealer hardware models: the analytic per-iteration activity of
//! the three architectures the paper compares (Sec. 4), used to cost
//! paper-scale runs without simulating every cell.
//!
//! The same [`ActivityStats`] shape is produced by the cycle-level
//! crossbar simulator; an integration test pins the analytic counts to the
//! simulated ones.

use serde::{Deserialize, Serialize};

use fecim_crossbar::ActivityStats;

use crate::accounting::{energy_of, time_of, EnergyReport, TimeReport};
use crate::components::{CostModel, ExpUnit};

/// The three annealer architectures of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnnealerKind {
    /// The proposed DG FeFET CiM in-situ annealer (incremental-E,
    /// fractional factor, no `eˣ` unit).
    InSitu,
    /// Baseline: FeFET CiM direct-E annealer with an FPGA `eˣ` unit
    /// (refs \[7\] + \[18\]).
    CimFpga,
    /// Baseline: FeFET CiM direct-E annealer with an ASIC `eˣ` unit.
    CimAsic,
}

impl AnnealerKind {
    /// All architectures in the paper's plotting order.
    pub fn all() -> [AnnealerKind; 3] {
        [
            AnnealerKind::CimFpga,
            AnnealerKind::CimAsic,
            AnnealerKind::InSitu,
        ]
    }

    /// Display label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            AnnealerKind::InSitu => "This Work",
            AnnealerKind::CimFpga => "CiM/FPGA",
            AnnealerKind::CimAsic => "CiM/ASIC",
        }
    }

    /// Which `eˣ` unit the architecture instantiates (`None` for the
    /// in-situ annealer, which eliminates the exponential).
    pub fn exp_unit(self) -> Option<ExpUnit> {
        match self {
            AnnealerKind::InSitu => None,
            AnnealerKind::CimFpga => Some(ExpUnit::Fpga),
            AnnealerKind::CimAsic => Some(ExpUnit::Asic),
        }
    }

    /// Computational complexity class of one iteration (paper Table 1).
    pub fn complexity(self) -> &'static str {
        match self {
            AnnealerKind::InSitu => "O(n)",
            _ => "O(n^2)",
        }
    }
}

/// Geometry/algorithm parameters that fix the per-iteration activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationProfile {
    /// Number of spins `n`.
    pub spins: usize,
    /// Quantization bits `k`.
    pub quant_bits: u8,
    /// Flip-set size `|F| = t` of the incremental transformation.
    pub flips: usize,
    /// ADC mux ratio `M`.
    pub mux_ratio: usize,
    /// Physical tile height when the matrix is mapped onto fixed-size
    /// tiles (`None` = one monolithic array). Row segments, back-gate
    /// planes and tile activations then scale with the activated-tile
    /// subset instead of whole-array `n`.
    pub tile_rows: Option<usize>,
    /// Problem instances sharing the physical grid (multi-problem
    /// batching): the grid is sized for all of them side by side along
    /// the stripe axis, and one *batched* iteration steps every instance
    /// concurrently on its own stripes' ADC banks. `1` = the classic
    /// single-instance mapping.
    pub batch_instances: usize,
}

impl IterationProfile {
    /// The paper's operating point for a given problem size: `k = 4`,
    /// `t = 2`, 8:1 muxed ADCs, one monolithic array.
    pub fn paper(spins: usize) -> IterationProfile {
        IterationProfile {
            spins,
            quant_bits: 4,
            flips: 2,
            mux_ratio: 8,
            tile_rows: None,
            batch_instances: 1,
        }
    }

    /// The paper's operating point mapped onto `tile_rows`-row tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tile_rows == 0`.
    pub fn paper_tiled(spins: usize, tile_rows: usize) -> IterationProfile {
        assert!(tile_rows > 0, "tile_rows must be positive");
        IterationProfile {
            tile_rows: Some(tile_rows),
            ..IterationProfile::paper(spins)
        }
    }

    /// This profile with `instances` problems batched onto one shared
    /// grid (block-diagonal along the stripe axis).
    ///
    /// # Panics
    ///
    /// Panics if `instances == 0`.
    pub fn batched(mut self, instances: usize) -> IterationProfile {
        assert!(instances > 0, "need at least one instance");
        self.batch_instances = instances;
        self
    }

    /// Tile grid implied by the mapping: `(row_bands, column_stripes)`,
    /// `(1, 1)` for the monolithic array.
    pub fn tile_grid(&self) -> (usize, usize) {
        match self.tile_rows {
            None => (1, 1),
            Some(tr) => {
                let bands = self.spins.div_ceil(tr.max(1));
                (bands, bands)
            }
        }
    }

    /// Tiles activated by one iteration of `kind` *per instance*: the
    /// in-situ read touches only the stripes holding the `t` flipped
    /// column groups (all row bands, since `σ_r` is dense); the direct-E
    /// baselines activate the instance's whole block.
    pub fn activated_tiles(&self, kind: AnnealerKind) -> u64 {
        let (row_bands, col_stripes) = self.tile_grid();
        match kind {
            AnnealerKind::InSitu => (self.flips.min(col_stripes) * row_bands) as u64,
            AnnealerKind::CimFpga | AnnealerKind::CimAsic => (row_bands * col_stripes) as u64,
        }
    }

    /// Physical tiles of the shared grid under this mapping: one
    /// instance's tile block × the batch size (instances sit side by
    /// side along the stripe axis).
    pub fn grid_tiles(&self) -> u64 {
        let (row_bands, col_stripes) = self.tile_grid();
        (row_bands * col_stripes) as u64 * self.batch_instances as u64
    }

    /// Fraction of the shared grid's tiles a fully batched iteration
    /// activates (every instance stepping concurrently on its own
    /// stripes). With `batch_instances == 1` this is the classic
    /// activated/total ratio; serving the same grid one instance per
    /// cycle instead would divide it by the batch size — the
    /// multi-problem throughput argument.
    pub fn batch_utilization(&self, kind: AnnealerKind) -> f64 {
        let grid = self.grid_tiles();
        if grid == 0 {
            return 0.0;
        }
        (self.activated_tiles(kind) * self.batch_instances as u64) as f64 / grid as f64
    }

    /// Analytic activity of ONE annealing iteration of `kind`.
    ///
    /// Counting model (two input-sign passes, two polarity planes,
    /// `k` bit slices — see `fecim-crossbar`):
    ///
    /// * direct-E baselines convert every column group:
    ///   `2·n·2·k` conversions, serializing `M·k` per pass on the shared
    ///   ADCs, plus one `eˣ` evaluation;
    /// * the in-situ annealer converts only the `t` flipped groups:
    ///   `2·t·2·k` conversions in `k` slots per pass (interleaved mapping),
    ///   no `eˣ`.
    pub fn activity(&self, kind: AnnealerKind) -> ActivityStats {
        let n = self.spins as u64;
        let k = self.quant_bits as u64;
        let t = self.flips as u64;
        let m = self.mux_ratio as u64;
        let (_row_bands, col_stripes) = self.tile_grid();
        let tiles = self.activated_tiles(kind);
        match kind {
            AnnealerKind::InSitu => {
                let stripes = t.min(col_stripes as u64); // flipped groups' stripes
                ActivityStats {
                    array_ops: 1,
                    row_passes: 2,
                    adc_conversions: 2 * t * 2 * k,
                    adc_slots: 2 * k.min(t * k), // t groups on distinct ADC banks
                    cells_activated: 2 * t * k,  // active couplings of flipped spins
                    // Only changed FG inputs toggle, once per activated
                    // stripe's row segment.
                    rows_driven: 2 * t * stripes,
                    columns_driven: 2 * t * 2 * k,
                    // The BG DAC refresh reaches each activated tile's plane.
                    bg_updates: tiles.max(1),
                    shift_add_ops: 2 * t * 2 * k,
                    buffer_writes: 1,
                    tiles_activated: tiles,
                    exp_evaluations: 0,
                }
            }
            AnnealerKind::CimFpga | AnnealerKind::CimAsic => ActivityStats {
                array_ops: 1,
                row_passes: 2,
                adc_conversions: 2 * n * 2 * k,
                adc_slots: 2 * m * k,
                cells_activated: 2 * n * k,
                // Each toggled row spans every column stripe's segment.
                rows_driven: 2 * t * col_stripes as u64,
                columns_driven: 2 * n * 2 * k,
                bg_updates: 0,
                shift_add_ops: 2 * n * 2 * k,
                buffer_writes: 1,
                tiles_activated: tiles,
                exp_evaluations: 1,
            },
        }
    }

    /// Energy of one iteration of `kind` under `model`.
    pub fn iteration_energy(&self, kind: AnnealerKind, model: &CostModel) -> EnergyReport {
        let unit = kind.exp_unit().unwrap_or(ExpUnit::Asic);
        energy_of(&self.activity(kind), model, unit)
    }

    /// Latency of one iteration of `kind` under `model`.
    pub fn iteration_time(&self, kind: AnnealerKind, model: &CostModel) -> TimeReport {
        let unit = kind.exp_unit().unwrap_or(ExpUnit::Asic);
        time_of(&self.activity(kind), model, unit)
    }

    /// Energy of a whole run of `iterations` iterations.
    pub fn run_energy(
        &self,
        kind: AnnealerKind,
        model: &CostModel,
        iterations: usize,
    ) -> EnergyReport {
        self.iteration_energy(kind, model).scaled(iterations as f64)
    }

    /// Latency of a whole run of `iterations` iterations.
    pub fn run_time(&self, kind: AnnealerKind, model: &CostModel, iterations: usize) -> TimeReport {
        self.iteration_time(kind, model).scaled(iterations as f64)
    }

    /// Analytic activity of ONE simulated-bifurcation step.
    ///
    /// An SB step is `input_passes` full-array MVM reads (one sign-plane
    /// read for dSB, `in_bits` bit-serial planes for bSB), each the same
    /// dense read as a direct-E baseline pass — every column group
    /// converts on every read — plus a digital position/momentum update
    /// with no exponential evaluation and no background-gate refresh.
    pub fn sb_step_activity(&self, input_passes: u64) -> ActivityStats {
        let p = input_passes.max(1);
        let n = self.spins as u64;
        let k = self.quant_bits as u64;
        let m = self.mux_ratio as u64;
        let (row_bands, col_stripes) = self.tile_grid();
        ActivityStats {
            array_ops: p,
            row_passes: 2 * p,
            adc_conversions: p * 2 * n * 2 * k,
            adc_slots: p * 2 * m * k,
            cells_activated: p * 2 * n * k,
            rows_driven: p * 2 * n * col_stripes as u64,
            columns_driven: p * 2 * n * 2 * k,
            bg_updates: 0,
            shift_add_ops: p * 2 * n * 2 * k,
            // The symplectic update writes the full (x, y) state back.
            buffer_writes: p * n,
            tiles_activated: p * (row_bands * col_stripes) as u64,
            exp_evaluations: 0,
        }
    }

    /// Energy of a whole SB run: `steps` steps of `input_passes` MVM
    /// reads each.
    pub fn sb_run_energy(
        &self,
        model: &CostModel,
        steps: usize,
        input_passes: u64,
    ) -> EnergyReport {
        energy_of(&self.sb_step_activity(input_passes), model, ExpUnit::Asic).scaled(steps as f64)
    }

    /// Latency of a whole SB run: `steps` steps of `input_passes` MVM
    /// reads each.
    pub fn sb_run_time(&self, model: &CostModel, steps: usize, input_passes: u64) -> TimeReport {
        time_of(&self.sb_step_activity(input_passes), model, ExpUnit::Asic).scaled(steps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_ratio_tracks_n_over_t() {
        // The Fig. 8 scaling law: ASIC-baseline/in-situ energy ≈ n/t.
        let model3000 = CostModel::paper_22nm(3000, 4);
        let p = IterationProfile::paper(3000);
        let base = p
            .iteration_energy(AnnealerKind::CimAsic, &model3000)
            .total();
        let ours = p.iteration_energy(AnnealerKind::InSitu, &model3000).total();
        let ratio = base / ours;
        assert!(
            (ratio - 1500.0).abs() / 1500.0 < 0.10,
            "ratio={ratio}, expected ≈ n/t = 1500"
        );
    }

    #[test]
    fn fpga_ratio_exceeds_asic_ratio() {
        // Fig. 8(a): the FPGA baseline pays extra for eˣ.
        for n in [800usize, 1000, 2000, 3000] {
            let model = CostModel::paper_22nm(n, 4);
            let p = IterationProfile::paper(n);
            let ours = p.iteration_energy(AnnealerKind::InSitu, &model).total();
            let fpga = p.iteration_energy(AnnealerKind::CimFpga, &model).total() / ours;
            let asic = p.iteration_energy(AnnealerKind::CimAsic, &model).total() / ours;
            assert!(fpga > asic, "n={n}: fpga={fpga} asic={asic}");
            assert!(asic > 0.9 * (n as f64 / 2.0), "n={n}: asic={asic}");
        }
    }

    #[test]
    fn time_ratio_close_to_mux_ratio() {
        // Fig. 9: both baselines are ≈8× slower (mux ratio), FPGA slightly
        // worse than ASIC.
        let model = CostModel::paper_22nm(1000, 4);
        let p = IterationProfile::paper(1000);
        let ours = p.iteration_time(AnnealerKind::InSitu, &model).total();
        let fpga = p.iteration_time(AnnealerKind::CimFpga, &model).total() / ours;
        let asic = p.iteration_time(AnnealerKind::CimAsic, &model).total() / ours;
        assert!(fpga > 7.0 && fpga < 9.5, "fpga={fpga}");
        assert!(asic > 7.0 && asic < 9.5, "asic={asic}");
        assert!(fpga > asic);
    }

    #[test]
    fn in_situ_has_no_exp_and_uses_bg() {
        let p = IterationProfile::paper(500);
        let a = p.activity(AnnealerKind::InSitu);
        assert_eq!(a.exp_evaluations, 0);
        assert_eq!(a.bg_updates, 1);
        let b = p.activity(AnnealerKind::CimFpga);
        assert_eq!(b.exp_evaluations, 1);
        assert_eq!(b.bg_updates, 0);
    }

    #[test]
    fn run_cost_scales_linearly_with_iterations() {
        let model = CostModel::paper_22nm(800, 4);
        let p = IterationProfile::paper(800);
        let one = p.run_energy(AnnealerKind::InSitu, &model, 1).total();
        let many = p.run_energy(AnnealerKind::InSitu, &model, 700).total();
        assert!((many / one - 700.0).abs() < 1e-6);
    }

    #[test]
    fn tiled_profile_counts_activated_tiles() {
        // 800 spins on 256-row tiles → a 4×4 grid. The in-situ iteration
        // touches its 2 flipped stripes across all 4 row bands; the
        // baselines light the whole grid.
        let p = IterationProfile::paper_tiled(800, 256);
        assert_eq!(p.tile_grid(), (4, 4));
        assert_eq!(p.activated_tiles(AnnealerKind::InSitu), 8);
        assert_eq!(p.activated_tiles(AnnealerKind::CimAsic), 16);
        let a = p.activity(AnnealerKind::InSitu);
        assert_eq!(a.tiles_activated, 8);
        assert_eq!(a.bg_updates, 8);
        // Monolithic mapping counts as a single tile.
        let mono = IterationProfile::paper(800);
        assert_eq!(mono.tile_grid(), (1, 1));
        assert_eq!(mono.activity(AnnealerKind::InSitu).tiles_activated, 1);
        assert_eq!(mono.activity(AnnealerKind::InSitu).bg_updates, 1);
    }

    #[test]
    fn sb_step_cost_scales_with_input_passes() {
        // A bSB step with a 4-bit input DAC issues 4 full-array reads,
        // a dSB step one — so its energy/latency are exactly 4× dSB's,
        // and neither pays for exponentials or BG refreshes.
        let model = CostModel::paper_22nm(800, 4);
        let p = IterationProfile::paper(800);
        let dsb = p.sb_step_activity(1);
        let bsb = p.sb_step_activity(4);
        assert_eq!(dsb.exp_evaluations, 0);
        assert_eq!(dsb.bg_updates, 0);
        assert_eq!(bsb.array_ops, 4 * dsb.array_ops);
        assert_eq!(bsb.adc_conversions, 4 * dsb.adc_conversions);
        let e_dsb = p.sb_run_energy(&model, 100, 1).total();
        let e_bsb = p.sb_run_energy(&model, 100, 4).total();
        assert!((e_bsb / e_dsb - 4.0).abs() < 1e-9, "energy ratio");
        let t_dsb = p.sb_run_time(&model, 100, 1).total();
        let t_bsb = p.sb_run_time(&model, 100, 4).total();
        assert!((t_bsb / t_dsb - 4.0).abs() < 1e-9, "time ratio");
        // An SB step reads the whole array, like a direct-E baseline
        // pass — dearer than the t-column in-situ sense.
        let in_situ = p.iteration_energy(AnnealerKind::InSitu, &model).total();
        assert!(e_dsb / 100.0 > in_situ, "full read > per-flip sense");
    }

    #[test]
    fn tiled_cost_model_cuts_baseline_wire_energy() {
        // Tile-scale lines are shorter, so the direct-E baseline (which
        // drives every stripe) still pays per-stripe row segments but at
        // tile-length CV² — net cheaper wires than one monolithic array.
        let n = 2000;
        let mono_model = CostModel::paper_22nm(n, 4);
        let tiled_model = CostModel::paper_22nm_tiled(n, 4, 256);
        assert!(tiled_model.row_toggle.energy < mono_model.row_toggle.energy);
        let mono = IterationProfile::paper(n);
        let tiled = IterationProfile::paper_tiled(n, 256);
        let e_mono = mono.iteration_energy(AnnealerKind::CimAsic, &mono_model);
        let e_tiled = tiled.iteration_energy(AnnealerKind::CimAsic, &tiled_model);
        assert!(
            e_tiled.wires < e_mono.wires,
            "tiled {} vs mono {}",
            e_tiled.wires,
            e_mono.wires
        );
        // ADC energy (activity-count based) is unchanged by the mapping.
        assert_eq!(e_tiled.adc, e_mono.adc);
    }

    #[test]
    fn batched_profile_scales_grid_not_per_instance_activity() {
        let solo = IterationProfile::paper_tiled(800, 256);
        let batched = solo.batched(4);
        // Per-instance activity is mapping-invariant…
        assert_eq!(
            solo.activity(AnnealerKind::InSitu),
            batched.activity(AnnealerKind::InSitu)
        );
        // …while the shared grid grows with the batch.
        assert_eq!(solo.grid_tiles(), 16);
        assert_eq!(batched.grid_tiles(), 64);
        // A fully batched cycle keeps the activated fraction (8/16); the
        // same grid serving one instance per cycle would sit at 8/64.
        let util = batched.batch_utilization(AnnealerKind::InSitu);
        assert!((util - 0.5).abs() < 1e-12, "util={util}");
        assert_eq!(
            solo.batch_utilization(AnnealerKind::InSitu),
            util,
            "full batching restores the solo activated fraction"
        );
    }

    #[test]
    fn labels_and_complexity() {
        assert_eq!(AnnealerKind::InSitu.label(), "This Work");
        assert_eq!(AnnealerKind::InSitu.complexity(), "O(n)");
        assert_eq!(AnnealerKind::CimFpga.complexity(), "O(n^2)");
        assert_eq!(AnnealerKind::all().len(), 3);
    }
}
