//! Component-level energy/latency database at the 22 nm node.
//!
//! Sources mirrored from the paper's evaluation setup (Sec. 4):
//!
//! * **ADC** — 13-bit 40 MS/s SAR ADC of ref [36], scaled to 22 nm:
//!   ≈2.5 pJ/conversion, 25 ns/conversion (8-to-1 multiplexed).
//! * **Exponential unit** — the `eˣ` hardware of ref [18]: an FPGA
//!   implementation (tens of nJ per evaluation) and an ASIC implementation
//!   (tens of pJ per evaluation).
//! * **Wires** — CV² line energies derived from the DESTINY-style
//!   geometry model in `fecim-crossbar` (ref [37]).
//! * **Digital periphery** — shift-and-add, comparators, RNG, buffers:
//!   sub-pJ events at 22 nm.
//!
//! Absolute joules are model-calibrated (no silicon here); the reproduction
//! targets of Figs. 8–9 are the *ratios* between annealers, which are
//! driven by activity counts times these shared constants.

use serde::{Deserialize, Serialize};

use fecim_crossbar::{ArrayWires, WireParams};

/// Energy and latency of one event of a component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventCost {
    /// Energy per event, joules.
    pub energy: f64,
    /// Latency per event, seconds (0 when fully pipelined/hidden).
    pub latency: f64,
}

impl EventCost {
    /// A zero-cost event.
    pub fn free() -> EventCost {
        EventCost {
            energy: 0.0,
            latency: 0.0,
        }
    }
}

/// Which exponential-function hardware the baseline annealer uses
/// (paper ref \[18\] provides both variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExpUnit {
    /// FPGA soft implementation — energy-hungry.
    Fpga,
    /// Dedicated ASIC block.
    Asic,
}

/// The full per-event cost model shared by all annealers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One SAR ADC conversion.
    pub adc_conversion: EventCost,
    /// One `eˣ` evaluation on the FPGA implementation of ref \[18\].
    pub exp_fpga: EventCost,
    /// One `eˣ` evaluation on the ASIC implementation of ref \[18\].
    pub exp_asic: EventCost,
    /// Toggling one row (FG) line.
    pub row_toggle: EventCost,
    /// Precharging one physical column (DL/SL pair) for a read.
    pub column_precharge: EventCost,
    /// One back-gate DAC update (the in-situ temperature encoder).
    pub bg_update: EventCost,
    /// One digital shift-and-add step.
    pub shift_add: EventCost,
    /// One output-buffer write.
    pub buffer_write: EventCost,
    /// Per-iteration digital annealing logic (compare, RNG, spin update).
    pub anneal_logic: EventCost,
    /// Static/leakage power of the array and periphery, watts.
    pub static_power: f64,
}

impl CostModel {
    /// Cost model for an `n`-spin, `k`-bit crossbar at 22 nm, with wire
    /// energies derived from the physical array geometry.
    pub fn paper_22nm(n: usize, quant_bits: u8) -> CostModel {
        CostModel::at_22nm_geometry(n, quant_bits)
    }

    /// Cost model for the same matrix mapped onto `tile_rows`-row tiles:
    /// row/column events are priced at *tile* line lengths (tiles abut
    /// with low-resistance straps), which is how tiling makes array
    /// energy scale with activated tiles instead of whole-array `n`.
    ///
    /// # Panics
    ///
    /// Panics if `tile_rows == 0`.
    pub fn paper_22nm_tiled(n: usize, quant_bits: u8, tile_rows: usize) -> CostModel {
        assert!(tile_rows > 0, "tile_rows must be positive");
        CostModel::at_22nm_geometry(tile_rows.min(n), quant_bits)
    }

    /// Shared 22 nm database with wire events priced for a
    /// `rows × (rows·k·2)` physical array segment.
    fn at_22nm_geometry(rows: usize, quant_bits: u8) -> CostModel {
        let physical_cols = rows * quant_bits as usize * 2; // two polarity planes
        let wires = ArrayWires::new(rows.max(1), physical_cols.max(1), WireParams::node_22nm());
        CostModel {
            adc_conversion: EventCost {
                energy: 2.5e-12,
                latency: 25e-9,
            },
            exp_fpga: EventCost {
                energy: 26e-9,
                latency: 30e-9,
            },
            exp_asic: EventCost {
                energy: 80e-12,
                latency: 16e-9,
            },
            row_toggle: EventCost {
                energy: wires.row_drive_energy(),
                latency: wires.row_delay(),
            },
            column_precharge: EventCost {
                energy: wires.col_drive_energy(),
                latency: 0.0, // overlapped with row settling
            },
            bg_update: EventCost {
                energy: 1.0e-12,
                latency: 0.0, // applied while spins update
            },
            shift_add: EventCost {
                energy: 0.1e-12,
                latency: 0.0, // pipelined behind conversions
            },
            buffer_write: EventCost {
                energy: 0.05e-12,
                latency: 0.0,
            },
            anneal_logic: EventCost {
                energy: 0.5e-12,
                latency: 2e-9,
            },
            static_power: 0.0,
        }
    }

    /// Cost of one `eˣ` evaluation on the selected implementation.
    pub fn exp_unit(&self, unit: ExpUnit) -> EventCost {
        match unit {
            ExpUnit::Fpga => self.exp_fpga,
            ExpUnit::Asic => self.exp_asic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_orders_of_magnitude() {
        let m = CostModel::paper_22nm(1000, 4);
        assert!(m.adc_conversion.energy > 1e-12 && m.adc_conversion.energy < 1e-11);
        assert!(m.exp_fpga.energy > m.exp_asic.energy * 100.0);
        // Wire events are well below an ADC conversion.
        assert!(m.column_precharge.energy < m.adc_conversion.energy);
    }

    #[test]
    fn wire_costs_grow_with_array_size() {
        let small = CostModel::paper_22nm(100, 4);
        let large = CostModel::paper_22nm(3000, 4);
        assert!(large.row_toggle.energy > small.row_toggle.energy);
        assert!(large.column_precharge.energy > small.column_precharge.energy);
    }

    #[test]
    fn exp_unit_selector() {
        let m = CostModel::paper_22nm(100, 4);
        assert_eq!(m.exp_unit(ExpUnit::Fpga), m.exp_fpga);
        assert_eq!(m.exp_unit(ExpUnit::Asic), m.exp_asic);
    }

    #[test]
    fn free_event_is_zero() {
        let f = EventCost::free();
        assert_eq!(f.energy, 0.0);
        assert_eq!(f.latency, 0.0);
    }
}
