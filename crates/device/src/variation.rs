//! Device non-idealities: device-to-device threshold variation and read
//! noise. The paper's robustness argument for CiM annealers (Sec. 1, 2.1)
//! rests on tolerance to exactly these effects; the ablation benches sweep
//! them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Magnitudes of the modeled non-idealities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationConfig {
    /// Device-to-device threshold-voltage sigma, volts (one sample per
    /// cell at array programming time).
    pub sigma_vth_d2d: f64,
    /// Cycle-to-cycle threshold sigma, volts (resampled per program
    /// operation).
    pub sigma_vth_c2c: f64,
    /// Relative standard deviation of multiplicative read noise on sensed
    /// currents.
    pub read_noise_rel: f64,
}

impl VariationConfig {
    /// No non-idealities (ideal device).
    pub fn ideal() -> VariationConfig {
        VariationConfig {
            sigma_vth_d2d: 0.0,
            sigma_vth_c2c: 0.0,
            read_noise_rel: 0.0,
        }
    }

    /// Typical magnitudes for scaled FeFET arrays: 54 mV d2d sigma,
    /// 20 mV c2c sigma, 2 % read noise.
    pub fn typical() -> VariationConfig {
        VariationConfig {
            sigma_vth_d2d: 0.054,
            sigma_vth_c2c: 0.020,
            read_noise_rel: 0.02,
        }
    }

    /// `true` when every term is zero.
    pub fn is_ideal(&self) -> bool {
        self.sigma_vth_d2d == 0.0 && self.sigma_vth_c2c == 0.0 && self.read_noise_rel == 0.0
    }
}

impl Default for VariationConfig {
    fn default() -> VariationConfig {
        VariationConfig::ideal()
    }
}

/// Seeded sampler of the variation terms.
#[derive(Debug, Clone)]
pub struct VariationSampler {
    config: VariationConfig,
    rng: StdRng,
}

impl VariationSampler {
    /// New sampler with a fixed seed (same seed → same variation map).
    pub fn new(config: VariationConfig, seed: u64) -> VariationSampler {
        VariationSampler {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured magnitudes.
    pub fn config(&self) -> &VariationConfig {
        &self.config
    }

    /// Draw a standard normal via Box–Muller.
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Device-to-device threshold offset for a freshly placed cell, volts.
    pub fn d2d_vth_offset(&mut self) -> f64 {
        if self.config.sigma_vth_d2d == 0.0 {
            return 0.0;
        }
        self.standard_normal() * self.config.sigma_vth_d2d
    }

    /// Cycle-to-cycle threshold offset for one program operation, volts.
    pub fn c2c_vth_offset(&mut self) -> f64 {
        if self.config.sigma_vth_c2c == 0.0 {
            return 0.0;
        }
        self.standard_normal() * self.config.sigma_vth_c2c
    }

    /// Apply multiplicative read noise to a sensed current.
    pub fn noisy_read(&mut self, current: f64) -> f64 {
        if self.config.read_noise_rel == 0.0 {
            return current;
        }
        current * (1.0 + self.standard_normal() * self.config.read_noise_rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sampler_is_exactly_zero() {
        let mut s = VariationSampler::new(VariationConfig::ideal(), 1);
        for _ in 0..10 {
            assert_eq!(s.d2d_vth_offset(), 0.0);
            assert_eq!(s.c2c_vth_offset(), 0.0);
            assert_eq!(s.noisy_read(1.0), 1.0);
        }
    }

    #[test]
    fn offsets_have_requested_scale() {
        let mut s = VariationSampler::new(VariationConfig::typical(), 2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.d2d_vth_offset()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let sigma = var.sqrt();
        assert!(mean.abs() < 0.002, "mean={mean}");
        assert!((sigma - 0.054).abs() < 0.004, "sigma={sigma}");
    }

    #[test]
    fn same_seed_reproduces_sequence() {
        let mut a = VariationSampler::new(VariationConfig::typical(), 3);
        let mut b = VariationSampler::new(VariationConfig::typical(), 3);
        for _ in 0..100 {
            assert_eq!(a.d2d_vth_offset(), b.d2d_vth_offset());
        }
    }

    #[test]
    fn read_noise_is_multiplicative() {
        let mut s = VariationSampler::new(
            VariationConfig {
                sigma_vth_d2d: 0.0,
                sigma_vth_c2c: 0.0,
                read_noise_rel: 0.05,
            },
            4,
        );
        assert_eq!(s.noisy_read(0.0), 0.0);
        let n = 10_000;
        let mean = (0..n).map(|_| s.noisy_read(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.01, "mean={mean}");
    }
}
