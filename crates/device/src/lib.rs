//! # fecim-device
//!
//! Behavioural ferroelectric device models for the CiM in-situ annealer
//! (Qian et al., DAC 2025): a conventional FeFET, the scalar Preisach
//! polarization model behind its threshold programming, the double-gate
//! (DG) FeFET whose back gate realizes the tunable annealing factor, plus
//! device variation models and the `f(T) = a/(bT+c)+d` curve fitter.
//!
//! These replace the paper's SPECTRE + BSIM-IMG + Preisach compact-model
//! stack with pure-Rust models that reproduce the same transfer-curve
//! contracts (Fig. 2b/2d, Fig. 6b/6c) — see DESIGN.md for the substitution
//! rationale.
//!
//! ```
//! use fecim_device::{AnnealFactor, DeviceFactor, FractionalFactor};
//!
//! // The physical factor (normalized DG FeFET current under V_BG(T))...
//! let device = DeviceFactor::paper();
//! // ...and the paper's analytic approximation of it.
//! let analytic = FractionalFactor::paper();
//! let t = 350.0;
//! let err = (device.factor(t) - analytic.factor(t) / 1.05).abs();
//! assert!(device.factor(t) >= 0.0 && err < 0.25);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod anneal_factor;
mod counter_rng;
mod dg_fefet;
mod fefet;
mod fit;
mod preisach;
mod reliability;
mod variation;

pub use anneal_factor::{AnnealFactor, CurveError, DeviceFactor, FractionalFactor, TableFactor};
pub use counter_rng::{PhiloxCounterRng, ReadNoise};
pub use dg_fefet::{DgFefet, DgFefetParams};
pub use fefet::{Fefet, FefetParams, StoredBit, THERMAL_VOLTAGE};
pub use fit::{fit_fractional, FitError, FractionalFit};
pub use preisach::{PreisachFefet, PreisachParams};
pub use reliability::{cycles_per_problem, EnduranceModel, RetentionModel};
pub use variation::{VariationConfig, VariationSampler};
