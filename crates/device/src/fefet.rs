//! Behavioural FeFET transistor model (paper Fig. 2a/2b).
//!
//! The channel current uses the EKV interpolation
//! `I_D = I_spec · ln²(1 + exp((V_G − V_TH)/(2 n V_t))) · sat(V_DS)`,
//! which reproduces the exponential subthreshold slope
//! (`SS = n·V_t·ln 10`) and the square-law strong-inversion region the
//! measured `I_D–V_G` curves of the paper's reference device show. The
//! ferroelectric state enters through the programmable threshold voltage
//! `V_TH`; the polarization dynamics behind it live in
//! [`crate::preisach`].
//!
//! This replaces the SPECTRE + Preisach compact-model setup of the paper
//! (refs [34], [35]) with a self-contained Rust model exposing the same
//! curve-level contract (see DESIGN.md substitution table).

use serde::{Deserialize, Serialize};

/// Thermal voltage at 300 K in volts.
pub const THERMAL_VOLTAGE: f64 = 0.02585;

/// Stored ferroelectric state of a FeFET cell, i.e. the programmed
/// threshold voltage level. `One` (low `V_TH`) conducts, `Zero` (high
/// `V_TH`) blocks — the `G = '1'/'0'` convention of paper Fig. 6a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StoredBit {
    /// Low-`V_TH` state (erased, polarization up) — conducting.
    One,
    /// High-`V_TH` state (programmed, polarization down) — blocking.
    Zero,
}

impl StoredBit {
    /// Build from a numeric bit.
    pub fn from_bit(bit: u8) -> StoredBit {
        if bit == 0 {
            StoredBit::Zero
        } else {
            StoredBit::One
        }
    }

    /// Numeric value of the bit.
    pub fn as_bit(self) -> u8 {
        match self {
            StoredBit::One => 1,
            StoredBit::Zero => 0,
        }
    }
}

/// Electrical parameters of the behavioural FeFET model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FefetParams {
    /// Threshold voltage of the low-`V_TH` (erased, `'1'`) state, volts.
    pub vth_low: f64,
    /// Threshold voltage of the high-`V_TH` (programmed, `'0'`) state, volts.
    pub vth_high: f64,
    /// Subthreshold ideality factor `n` (SS = n·V_t·ln10).
    pub ideality: f64,
    /// Specific current `I_spec` in amperes (sets the on-current scale).
    pub i_spec: f64,
    /// Gate-independent leakage floor in amperes.
    pub i_leak: f64,
}

impl FefetParams {
    /// Parameters calibrated to the experimentally measured 28 nm HKMG
    /// FeFET curves reproduced in paper Fig. 2b: memory window ≈ 1 V,
    /// `SS ≈ 90 mV/dec`, on-current ≈ 10⁻⁴ A at `V_G = 1.5 V`,
    /// off floor ≈ 10⁻⁹ A.
    pub fn paper_reference() -> FefetParams {
        FefetParams {
            vth_low: 0.0,
            vth_high: 1.0,
            ideality: 1.5,
            i_spec: 2.7e-7,
            i_leak: 1.0e-9,
        }
    }

    /// Memory window `V_TH,high − V_TH,low` in volts.
    pub fn memory_window(&self) -> f64 {
        self.vth_high - self.vth_low
    }

    /// Subthreshold swing in mV/decade.
    pub fn subthreshold_swing_mv(&self) -> f64 {
        self.ideality * THERMAL_VOLTAGE * std::f64::consts::LN_10 * 1e3
    }
}

impl Default for FefetParams {
    fn default() -> FefetParams {
        FefetParams::paper_reference()
    }
}

/// A single (front-gate-only) FeFET device with a programmable `V_TH`.
///
/// # Examples
///
/// ```
/// use fecim_device::{Fefet, StoredBit};
/// let mut fefet = Fefet::new(Default::default());
/// // Read inside the memory window so the two states separate.
/// fefet.program(StoredBit::One);
/// let on = fefet.drain_current(0.5, 0.5);
/// fefet.program(StoredBit::Zero);
/// let off = fefet.drain_current(0.5, 0.5);
/// assert!(on / off > 1e3, "ON/OFF ratio must be large");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fefet {
    params: FefetParams,
    state: StoredBit,
    /// Additional threshold shift from device variation (see
    /// [`crate::variation`]).
    vth_offset: f64,
}

impl Fefet {
    /// New device in the erased (`'1'`, low-`V_TH`) state.
    pub fn new(params: FefetParams) -> Fefet {
        Fefet {
            params,
            state: StoredBit::One,
            vth_offset: 0.0,
        }
    }

    /// Model parameters.
    pub fn params(&self) -> &FefetParams {
        &self.params
    }

    /// Currently stored bit.
    pub fn stored(&self) -> StoredBit {
        self.state
    }

    /// Program the ferroelectric state (ideal full-switching pulse; for
    /// partial switching dynamics use [`crate::preisach::PreisachFefet`]).
    pub fn program(&mut self, bit: StoredBit) {
        self.state = bit;
    }

    /// Apply a static threshold-voltage offset (device-to-device variation).
    pub fn set_vth_offset(&mut self, offset: f64) {
        self.vth_offset = offset;
    }

    /// Effective threshold voltage of the current state.
    pub fn effective_vth(&self) -> f64 {
        let base = match self.state {
            StoredBit::One => self.params.vth_low,
            StoredBit::Zero => self.params.vth_high,
        };
        base + self.vth_offset
    }

    /// Drain current at gate voltage `v_g` and drain-source voltage `v_ds`
    /// (both volts), in amperes.
    pub fn drain_current(&self, v_g: f64, v_ds: f64) -> f64 {
        channel_current(
            v_g,
            v_ds,
            self.effective_vth(),
            self.params.ideality,
            self.params.i_spec,
            self.params.i_leak,
        )
    }

    /// Sample the `I_D–V_G` transfer curve (paper Fig. 2b) over
    /// `[v_lo, v_hi]` with `points` samples at fixed `v_ds`.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` or `v_hi <= v_lo`.
    pub fn transfer_curve(
        &self,
        v_lo: f64,
        v_hi: f64,
        points: usize,
        v_ds: f64,
    ) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two samples");
        assert!(v_hi > v_lo, "empty sweep range");
        (0..points)
            .map(|k| {
                let v = v_lo + (v_hi - v_lo) * k as f64 / (points - 1) as f64;
                (v, self.drain_current(v, v_ds))
            })
            .collect()
    }
}

/// EKV-interpolated channel current shared by the FeFET and DG FeFET
/// models.
pub(crate) fn channel_current(
    v_g: f64,
    v_ds: f64,
    vth: f64,
    ideality: f64,
    i_spec: f64,
    i_leak: f64,
) -> f64 {
    if v_ds <= 0.0 {
        return i_leak;
    }
    let phi = 2.0 * ideality * THERMAL_VOLTAGE;
    let x = (v_g - vth) / phi;
    // ln(1+e^x) computed stably for large |x|.
    let soft = if x > 30.0 { x } else { x.exp().ln_1p() };
    let saturation = 1.0 - (-v_ds / THERMAL_VOLTAGE).exp();
    i_spec * soft * soft * saturation + i_leak
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_off_ratio_exceeds_three_decades_at_read_voltage() {
        // Read at the middle of the memory window (V_G = 0.5 V), where the
        // measured curves of paper Fig. 2b separate by >4 decades.
        let mut d = Fefet::new(FefetParams::paper_reference());
        d.program(StoredBit::One);
        let on = d.drain_current(0.5, 1.0);
        d.program(StoredBit::Zero);
        let off = d.drain_current(0.5, 1.0);
        assert!(on > 1e-6, "on-current {on} too small");
        assert!(on / off > 1e3, "on/off {}", on / off);
    }

    #[test]
    fn transfer_curve_is_monotone_in_gate_voltage() {
        let d = Fefet::new(FefetParams::paper_reference());
        let curve = d.transfer_curve(-0.5, 1.5, 41, 0.5);
        assert_eq!(curve.len(), 41);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "current must not decrease with V_G");
        }
    }

    #[test]
    fn subthreshold_slope_near_90mv_per_decade() {
        let d = Fefet::new(FefetParams::paper_reference());
        // Deep subthreshold for the low-VTH state: sample at −0.4 and −0.3 V.
        let i1 = d.drain_current(-0.40, 1.0) - d.params().i_leak;
        let i2 = d.drain_current(-0.30, 1.0) - d.params().i_leak;
        let decades = (i2 / i1).log10();
        let ss = 100.0 / decades; // mV per decade
        let expected = d.params().subthreshold_swing_mv();
        assert!(
            (ss - expected).abs() / expected < 0.15,
            "ss={ss} expected≈{expected}"
        );
    }

    #[test]
    fn memory_window_shifts_curve_by_one_volt() {
        let p = FefetParams::paper_reference();
        assert!((p.memory_window() - 1.0).abs() < 1e-12);
        let mut d = Fefet::new(p);
        d.program(StoredBit::One);
        let i_low = d.drain_current(0.5, 1.0);
        d.program(StoredBit::Zero);
        // Same overdrive, shifted gate voltage: currents must match closely.
        let i_high = d.drain_current(1.5, 1.0);
        assert!((i_low - i_high).abs() / i_low < 1e-9);
    }

    #[test]
    fn zero_drain_bias_gives_leakage_only() {
        let d = Fefet::new(FefetParams::paper_reference());
        assert_eq!(d.drain_current(1.5, 0.0), d.params().i_leak);
    }

    #[test]
    fn vth_offset_shifts_current() {
        let mut d = Fefet::new(FefetParams::paper_reference());
        let base = d.drain_current(0.5, 1.0);
        d.set_vth_offset(0.1);
        assert!(d.drain_current(0.5, 1.0) < base);
        d.set_vth_offset(-0.1);
        assert!(d.drain_current(0.5, 1.0) > base);
    }

    #[test]
    fn stored_bit_roundtrip() {
        assert_eq!(StoredBit::from_bit(1), StoredBit::One);
        assert_eq!(StoredBit::from_bit(0), StoredBit::Zero);
        assert_eq!(StoredBit::One.as_bit(), 1);
        assert_eq!(StoredBit::Zero.as_bit(), 0);
    }
}
