//! Scalar Preisach hysteresis model of the ferroelectric layer.
//!
//! The paper adopts the Preisach-based FeFET compact model of Ni et al.
//! (ref [35]) inside SPECTRE. This module implements the classical scalar
//! Preisach operator — a weighted grid of relay hysterons with a Gaussian
//! density over switching thresholds — and maps the resulting polarization
//! onto a threshold-voltage shift, which is what the annealer-level
//! simulation consumes.
//!
//! Key physical properties reproduced (and unit-tested):
//!
//! * saturating major loop with coercive voltage `V_c`;
//! * partial (minor) loops for sub-saturation pulses;
//! * return-point memory (wiping-out property);
//! * congruency of minor loops between the same reversal values.

use serde::{Deserialize, Serialize};

use crate::fefet::StoredBit;

/// Parameters of the Preisach ferroelectric model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreisachParams {
    /// Mean coercive voltage of the hysteron distribution, volts.
    pub coercive_voltage: f64,
    /// Standard deviation of the up/down switching thresholds, volts.
    pub sigma: f64,
    /// Number of grid points per threshold axis (`K×K` hysterons).
    pub grid: usize,
    /// Saturation program/erase voltage used by [`PreisachFefet::program`].
    pub saturation_voltage: f64,
    /// Threshold voltage at zero net polarization, volts.
    pub vth_mid: f64,
    /// Total `V_TH` excursion between the fully polarized states
    /// (the memory window), volts.
    pub memory_window: f64,
}

impl PreisachParams {
    /// Values representative of the 10 nm HZO FeFET of paper ref \[35\]:
    /// `V_c ≈ 1.5 V`, saturation at ±3 V, 1 V memory window centred at
    /// 0.5 V.
    pub fn paper_reference() -> PreisachParams {
        PreisachParams {
            coercive_voltage: 1.5,
            sigma: 0.45,
            grid: 48,
            saturation_voltage: 3.0,
            vth_mid: 0.5,
            memory_window: 1.0,
        }
    }
}

impl Default for PreisachParams {
    fn default() -> PreisachParams {
        PreisachParams::paper_reference()
    }
}

/// A relay hysteron grid implementing the scalar Preisach operator, plus
/// the polarization→`V_TH` mapping.
///
/// # Examples
///
/// ```
/// use fecim_device::{PreisachFefet, PreisachParams};
/// let mut fe = PreisachFefet::new(PreisachParams::paper_reference());
/// fe.apply_voltage(3.0);   // saturate up
/// assert!(fe.polarization() > 0.95);
/// fe.apply_voltage(-3.0);  // saturate down
/// assert!(fe.polarization() < -0.95);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreisachFefet {
    params: PreisachParams,
    /// Up-switching thresholds α (one per grid row) and down-switching
    /// thresholds β (one per grid column); hysteron (r, c) is valid when
    /// `beta[c] <= alpha[r]`.
    alpha: Vec<f64>,
    beta: Vec<f64>,
    weights: Vec<f64>,
    /// Relay states: `true` = up.
    states: Vec<bool>,
    weight_sum: f64,
}

impl PreisachFefet {
    /// Build the hysteron grid, initialized fully polarized *down*
    /// (high-`V_TH`, stored `'0'`).
    ///
    /// # Panics
    ///
    /// Panics if `grid < 2`, `sigma <= 0` or `memory_window <= 0`.
    pub fn new(params: PreisachParams) -> PreisachFefet {
        assert!(params.grid >= 2, "grid too small");
        assert!(params.sigma > 0.0, "sigma must be positive");
        assert!(params.memory_window > 0.0, "memory window must be positive");
        let k = params.grid;
        let span = 3.0 * params.sigma;
        let alpha: Vec<f64> = (0..k)
            .map(|r| params.coercive_voltage - span + 2.0 * span * r as f64 / (k - 1) as f64)
            .collect();
        let beta: Vec<f64> = (0..k)
            .map(|c| -params.coercive_voltage - span + 2.0 * span * c as f64 / (k - 1) as f64)
            .collect();
        let mut weights = vec![0.0; k * k];
        let mut weight_sum = 0.0;
        for r in 0..k {
            for c in 0..k {
                if beta[c] <= alpha[r] {
                    let da = (alpha[r] - params.coercive_voltage) / params.sigma;
                    let db = (beta[c] + params.coercive_voltage) / params.sigma;
                    let w = (-0.5 * (da * da + db * db)).exp();
                    weights[r * k + c] = w;
                    weight_sum += w;
                }
            }
        }
        PreisachFefet {
            params,
            alpha,
            beta,
            weights,
            states: vec![false; k * k],
            weight_sum,
        }
    }

    /// Model parameters.
    pub fn params(&self) -> &PreisachParams {
        &self.params
    }

    /// Apply a quasi-static gate voltage excursion from 0 to `v` and back
    /// to 0 (a program pulse). Relay states update according to the
    /// Preisach switching rules.
    pub fn apply_voltage(&mut self, v: f64) {
        let k = self.params.grid;
        for r in 0..k {
            for c in 0..k {
                if self.weights[r * k + c] == 0.0 {
                    continue;
                }
                let idx = r * k + c;
                if v >= self.alpha[r] {
                    self.states[idx] = true;
                } else if v <= self.beta[c] {
                    self.states[idx] = false;
                }
            }
        }
    }

    /// Apply a sequence of voltage extrema in order (models an arbitrary
    /// waveform by its turning points, which is exact for rate-independent
    /// Preisach hysteresis).
    pub fn apply_waveform(&mut self, extrema: &[f64]) {
        for &v in extrema {
            self.apply_voltage(v);
        }
    }

    /// Net normalized polarization in `[-1, 1]`.
    pub fn polarization(&self) -> f64 {
        if self.weight_sum == 0.0 {
            return 0.0;
        }
        let mut p = 0.0;
        for (idx, &w) in self.weights.iter().enumerate() {
            if w > 0.0 {
                p += if self.states[idx] { w } else { -w };
            }
        }
        p / self.weight_sum
    }

    /// Threshold voltage implied by the current polarization:
    /// `V_TH = V_mid − P · MW/2` (up-polarization lowers `V_TH`).
    pub fn vth(&self) -> f64 {
        self.params.vth_mid - self.polarization() * self.params.memory_window / 2.0
    }

    /// Saturating program pulse for a target logical state
    /// (`One` = erase to low `V_TH`, i.e. polarize up).
    pub fn program(&mut self, bit: StoredBit) {
        match bit {
            StoredBit::One => self.apply_voltage(self.params.saturation_voltage),
            StoredBit::Zero => self.apply_voltage(-self.params.saturation_voltage),
        }
    }

    /// Sample the major hysteresis loop `P(V)`: sweep down-up-down over
    /// `±saturation_voltage` with `points` samples per branch. Returns
    /// `(v, p)` pairs of the full loop (ascending then descending branch).
    pub fn major_loop(&self, points: usize) -> Vec<(f64, f64)> {
        let vs = self.params.saturation_voltage;
        let mut copy = self.clone();
        copy.apply_voltage(-vs);
        let mut loop_pts = Vec::with_capacity(points * 2);
        for k in 0..points {
            let v = -vs + 2.0 * vs * k as f64 / (points - 1) as f64;
            copy.apply_voltage(v);
            loop_pts.push((v, copy.polarization()));
        }
        for k in 0..points {
            let v = vs - 2.0 * vs * k as f64 / (points - 1) as f64;
            copy.apply_voltage(v);
            loop_pts.push((v, copy.polarization()));
        }
        loop_pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> PreisachFefet {
        PreisachFefet::new(PreisachParams::paper_reference())
    }

    #[test]
    fn saturation_reaches_full_polarization() {
        let mut fe = fresh();
        fe.apply_voltage(3.0);
        assert!(fe.polarization() > 0.95);
        fe.apply_voltage(-3.0);
        assert!(fe.polarization() < -0.95);
    }

    #[test]
    fn vth_tracks_polarization_and_spans_memory_window() {
        let mut fe = fresh();
        fe.program(StoredBit::One);
        let vth_low = fe.vth();
        fe.program(StoredBit::Zero);
        let vth_high = fe.vth();
        let window = vth_high - vth_low;
        assert!(window > 0.9 && window <= 1.0 + 1e-9, "window={window}");
        assert!(vth_low < fe.params().vth_mid);
        assert!(vth_high > fe.params().vth_mid);
    }

    #[test]
    fn hysteresis_remanence_at_zero_bias() {
        let mut fe = fresh();
        fe.apply_voltage(3.0);
        fe.apply_voltage(0.0);
        let p_up = fe.polarization();
        fe.apply_voltage(-3.0);
        fe.apply_voltage(0.0);
        let p_down = fe.polarization();
        // Removing bias must not erase the state (non-volatility).
        assert!(p_up > 0.9);
        assert!(p_down < -0.9);
    }

    #[test]
    fn partial_pulses_give_partial_switching() {
        let mut fe = fresh();
        fe.apply_voltage(-3.0);
        fe.apply_voltage(1.5); // around Vc: only part of the hysterons switch
        let p_mid = fe.polarization();
        assert!(p_mid > -0.9 && p_mid < 0.9, "p_mid={p_mid}");
        fe.apply_voltage(3.0);
        assert!(fe.polarization() > 0.95);
    }

    #[test]
    fn return_point_memory_wipes_inner_loop() {
        // Classic Preisach property: after an inner excursion returns to
        // its starting reversal point, the state equals the state before
        // the excursion.
        let mut fe = fresh();
        fe.apply_waveform(&[-3.0, 2.0]);
        let before = fe.polarization();
        fe.apply_waveform(&[0.5, 1.2, 0.8, 2.0]); // inner loop, return to 2.0
        let after = fe.polarization();
        assert!(
            (before - after).abs() < 1e-12,
            "before={before} after={after}"
        );
    }

    #[test]
    fn monotone_response_along_ascending_branch() {
        let mut fe = fresh();
        fe.apply_voltage(-3.0);
        let mut prev = fe.polarization();
        for k in 0..30 {
            let v = -3.0 + 6.0 * k as f64 / 29.0;
            fe.apply_voltage(v);
            let p = fe.polarization();
            assert!(p >= prev - 1e-12, "polarization must be monotone");
            prev = p;
        }
    }

    #[test]
    fn major_loop_is_a_proper_hysteresis_loop() {
        let fe = fresh();
        let pts = fe.major_loop(50);
        assert_eq!(pts.len(), 100);
        // Loop encloses area: ascending branch at V=0 sits below descending.
        let asc_at_zero = pts[..50]
            .iter()
            .min_by(|a, b| (a.0.abs()).partial_cmp(&b.0.abs()).unwrap())
            .unwrap()
            .1;
        let desc_at_zero = pts[50..]
            .iter()
            .min_by(|a, b| (a.0.abs()).partial_cmp(&b.0.abs()).unwrap())
            .unwrap()
            .1;
        assert!(
            desc_at_zero > asc_at_zero,
            "descending branch must lie above ascending at V=0"
        );
    }

    #[test]
    fn coercive_voltage_is_where_polarization_crosses_zero() {
        let mut fe = fresh();
        fe.apply_voltage(-3.0);
        // Walk up in fine steps, find zero crossing.
        let mut crossing = None;
        for k in 0..=300 {
            let v = -3.0 + 6.0 * k as f64 / 300.0;
            fe.apply_voltage(v);
            if fe.polarization() >= 0.0 {
                crossing = Some(v);
                break;
            }
        }
        let vc = crossing.expect("must cross zero");
        assert!(
            (vc - fe.params().coercive_voltage).abs() < 0.3,
            "vc={vc} expected≈{}",
            fe.params().coercive_voltage
        );
    }
}
