//! Counter-based read-noise generation: every draw is a pure function
//! of `(key, counter)`, so noise samples are order-independent and a
//! noisy sensing pass can fan out across threads with bit-reproducible
//! results — the GPU-simulation trick (Philox/Threefry counter RNGs)
//! applied to the annealer's multiplicative read noise.
//!
//! The serial alternative (one `StdRng` consumed in row-major sense
//! order) couples every draw to the traversal order, which forced the
//! tiled sensing path back onto a sequential sweep whenever
//! `read_noise_rel > 0`. With a counter RNG the draw for a cell depends
//! only on *which* read touched *which* cell, never on which thread got
//! there first.

use std::f64::consts::PI;

use serde::{Deserialize, Serialize};

/// Philox2x64-10 constants (Salmon et al., "Parallel random numbers:
/// as easy as 1, 2, 3", SC'11).
const PHILOX_M: u64 = 0xD2B7_4407_B1CE_6E93;
const PHILOX_W: u64 = 0x9E37_79B9_7F4A_7C15;
const PHILOX_ROUNDS: u32 = 10;

/// A keyed Philox2x64-10 counter RNG.
///
/// `next_pair(c0, c1)` maps a 128-bit counter to two independent `u64`
/// words; identical `(key, counter)` always yields identical output, so
/// draws may be evaluated in any order on any thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhiloxCounterRng {
    key: u64,
}

impl PhiloxCounterRng {
    /// New generator under `key`. Distinct keys give statistically
    /// independent streams.
    pub fn new(key: u64) -> PhiloxCounterRng {
        PhiloxCounterRng { key }
    }

    /// The stream key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// One Philox2x64-10 block: counter `(c0, c1)` → two output words.
    pub fn next_pair(&self, mut c0: u64, mut c1: u64) -> (u64, u64) {
        let mut key = self.key;
        for _ in 0..PHILOX_ROUNDS {
            let product = (PHILOX_M as u128) * (c0 as u128);
            let hi = (product >> 64) as u64;
            let lo = product as u64;
            c0 = hi ^ key ^ c1;
            c1 = lo;
            key = key.wrapping_add(PHILOX_W);
        }
        (c0, c1)
    }

    /// Two uniforms in `[0, 1)` from one counter block (53-bit mantissa
    /// precision, the standard `bits >> 11` construction).
    pub fn uniform_pair(&self, c0: u64, c1: u64) -> (f64, f64) {
        let (a, b) = self.next_pair(c0, c1);
        (u64_to_unit_f64(a), u64_to_unit_f64(b))
    }

    /// A standard-normal draw for counter `(c0, c1)` via the Box–Muller
    /// cosine branch (the same transform [`VariationSampler`] uses, so
    /// both noise paths share one distributional idiom).
    ///
    /// [`VariationSampler`]: crate::VariationSampler
    pub fn standard_normal(&self, c0: u64, c1: u64) -> f64 {
        let (u1, u2) = self.uniform_pair(c0, c1);
        let u1 = u1.max(f64::MIN_POSITIVE);
        (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }
}

/// Map a `u64` to `[0, 1)` keeping the top 53 bits.
fn u64_to_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Multiplicative read-noise source for sensed currents: a counter RNG
/// keyed per array plus the relative noise magnitude.
///
/// Each draw is addressed by `(read_ordinal, row, col)` — the array's
/// monotonically increasing read counter and the cell's *global*
/// coordinates. Within one read every driven cell is sensed exactly
/// once, so the triple uniquely identifies a draw regardless of which
/// stripe, chunk, or thread evaluates it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadNoise {
    rng: PhiloxCounterRng,
    rel: f64,
}

impl ReadNoise {
    /// Noise source with relative sigma `rel` under `key`.
    pub fn new(key: u64, rel: f64) -> ReadNoise {
        ReadNoise {
            rng: PhiloxCounterRng::new(key),
            rel,
        }
    }

    /// Relative standard deviation of the multiplicative noise.
    pub fn rel(&self) -> f64 {
        self.rel
    }

    /// `true` when reads are noiseless (`rel == 0`).
    pub fn is_silent(&self) -> bool {
        self.rel == 0.0
    }

    /// The multiplicative gain `1 + rel * N(0, 1)` for the cell at
    /// global `(row, col)` during read `ordinal`. Exactly `1.0` when the
    /// source is silent.
    pub fn gain(&self, ordinal: u64, row: usize, col: usize) -> f64 {
        if self.rel == 0.0 {
            return 1.0;
        }
        let cell = ((row as u64) << 32) | (col as u64 & 0xFFFF_FFFF);
        1.0 + self.rel * self.rng.standard_normal(ordinal, cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_stream(rng: &PhiloxCounterRng, n: usize) -> Vec<f64> {
        (0..n).map(|i| rng.standard_normal(i as u64, 0)).collect()
    }

    #[test]
    fn draws_are_pure_functions_of_key_and_counter() {
        let a = PhiloxCounterRng::new(42);
        let b = PhiloxCounterRng::new(42);
        for c0 in [0u64, 1, 7, u64::MAX] {
            for c1 in [0u64, 3, u64::MAX - 1] {
                assert_eq!(a.next_pair(c0, c1), b.next_pair(c0, c1));
                assert_eq!(a.standard_normal(c0, c1), b.standard_normal(c0, c1));
            }
        }
        let c = PhiloxCounterRng::new(43);
        assert_ne!(a.next_pair(0, 0), c.next_pair(0, 0));
    }

    #[test]
    fn normal_draws_have_standard_moments_and_tails() {
        let rng = PhiloxCounterRng::new(0xFEC1);
        let n = 200_000;
        let samples = normal_stream(&rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
        // Tail mass: P(|X| > 2) ≈ 4.55 %, P(|X| > 3) ≈ 0.27 %.
        let beyond2 = samples.iter().filter(|x| x.abs() > 2.0).count() as f64 / n as f64;
        let beyond3 = samples.iter().filter(|x| x.abs() > 3.0).count() as f64 / n as f64;
        assert!((beyond2 - 0.0455).abs() < 0.005, "P(|X|>2)={beyond2}");
        assert!((beyond3 - 0.0027).abs() < 0.0015, "P(|X|>3)={beyond3}");
    }

    #[test]
    fn adjacent_counters_are_decorrelated() {
        // Key avalanche: draws at neighbouring ordinals / cells must look
        // independent — sample correlation near zero and roughly half the
        // output bits flipping between adjacent counters.
        let rng = PhiloxCounterRng::new(0xABCD);
        let n = 50_000;
        let mut lag_products = 0.0;
        let mut bit_flips = 0u32;
        let mut pairs = 0u32;
        for i in 0..n {
            let x = rng.standard_normal(i, 0);
            let y = rng.standard_normal(i + 1, 0);
            let z = rng.standard_normal(i, 1);
            lag_products += x * y + x * z;
            let (a0, _) = rng.next_pair(i, 0);
            let (b0, _) = rng.next_pair(i + 1, 0);
            bit_flips += (a0 ^ b0).count_ones();
            pairs += 1;
        }
        let corr = lag_products / (2.0 * n as f64);
        assert!(corr.abs() < 0.01, "lag correlation={corr}");
        let mean_flips = f64::from(bit_flips) / f64::from(pairs);
        assert!(
            (mean_flips - 32.0).abs() < 1.0,
            "mean bit flips={mean_flips}"
        );
    }

    #[test]
    fn pinned_stream_golden() {
        // The exact output words and normal draws are part of the repro
        // contract: any change here silently invalidates every committed
        // DeviceAccurate golden. Never update these values casually.
        let rng = PhiloxCounterRng::new(0x1234_5678_9ABC_DEF0);
        assert_eq!(
            rng.next_pair(0, 0),
            (6786042769349037055, 11326669776442810550)
        );
        assert_eq!(
            rng.next_pair(1, 0),
            (7028900182397414914, 3977605205227953127)
        );
        assert_eq!(
            rng.next_pair(0, 1),
            (6320041209167587973, 16475792235501943709)
        );
        let draws: Vec<f64> = (0..4).map(|i| rng.standard_normal(i, 7)).collect();
        assert_eq!(
            draws,
            vec![
                -1.5446458881347234,
                0.38764754954098485,
                -1.1616307565933337,
                0.5295100792778569,
            ]
        );
    }

    #[test]
    fn silent_noise_is_exactly_unity() {
        let noise = ReadNoise::new(99, 0.0);
        assert!(noise.is_silent());
        for ordinal in 0..8 {
            assert_eq!(noise.gain(ordinal, 3, 5), 1.0);
        }
    }

    #[test]
    fn gain_scale_tracks_rel() {
        let noise = ReadNoise::new(0xFEC1, 0.02);
        let n = 100_000usize;
        let gains: Vec<f64> = (0..n).map(|i| noise.gain(i as u64, 1, 2)).collect();
        let mean = gains.iter().sum::<f64>() / n as f64;
        let var = gains.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.001, "mean={mean}");
        assert!((var.sqrt() - 0.02).abs() < 0.001, "sigma={}", var.sqrt());
    }

    #[test]
    fn gain_is_order_independent() {
        let noise = ReadNoise::new(7, 0.05);
        let forward: Vec<f64> = (0..64).map(|c| noise.gain(3, c / 8, c % 8)).collect();
        let backward: Vec<f64> = (0..64).rev().map(|c| noise.gain(3, c / 8, c % 8)).collect();
        let reversed: Vec<f64> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
    }
}
