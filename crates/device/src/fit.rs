//! Least-squares fitting of the fractional annealing factor
//! `f(T) = a/(bT + c) + d` to sampled data (paper Fig. 6c).
//!
//! The paper approximates the DG FeFET's normalized `I_SL(V_BG(T))` with
//! `f(T) ≈ 1/(−0.006·T + 5) − 0.2`. This module recovers such constants
//! from device samples with a damped Gauss–Newton (Levenberg–Marquardt)
//! solver over the reduced parameterization `f(T) = 1/(pT + q) + d`
//! (the form is scale-invariant in `a`, so `a = 1` is fixed without loss
//! of generality).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error raised by the curve fitter.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer samples than parameters.
    TooFewSamples(usize),
    /// The solver could not reduce the residual (singular system or
    /// divergence).
    DidNotConverge,
    /// Samples contain non-finite values.
    NonFiniteSample(usize),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples(n) => write!(f, "need at least 4 samples, got {n}"),
            FitError::DidNotConverge => write!(f, "levenberg-marquardt did not converge"),
            FitError::NonFiniteSample(i) => write!(f, "non-finite sample at index {i}"),
        }
    }
}

impl Error for FitError {}

/// A fitted fractional annealing factor `f(T) = a/(bT + c) + d`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FractionalFit {
    /// Numerator `a` (fixed to 1 by the reduced parameterization).
    pub a: f64,
    /// Slope `b` of the denominator.
    pub b: f64,
    /// Offset `c` of the denominator.
    pub c: f64,
    /// Additive constant `d`.
    pub d: f64,
    /// Root-mean-square residual of the fit.
    pub rmse: f64,
}

impl FractionalFit {
    /// Evaluate the fitted `f(T)`.
    pub fn evaluate(&self, t: f64) -> f64 {
        self.a / (self.b * t + self.c) + self.d
    }
}

/// Fit `f(T) = 1/(pT + q) + d` to `(T, y)` samples by damped Gauss–Newton.
///
/// # Errors
///
/// [`FitError::TooFewSamples`] for fewer than 4 samples,
/// [`FitError::NonFiniteSample`] on NaN/∞ input,
/// [`FitError::DidNotConverge`] when the solver stalls above a useful
/// residual.
///
/// # Examples
///
/// ```
/// use fecim_device::fit_fractional;
/// // Synthesize samples from the paper's constants.
/// let samples: Vec<(f64, f64)> = (0..=70)
///     .map(|k| {
///         let t = 10.0 * k as f64;
///         (t, 1.0 / (-0.006 * t + 5.0) - 0.2)
///     })
///     .collect();
/// let fit = fit_fractional(&samples)?;
/// assert!((fit.b - (-0.006)).abs() < 1e-6);
/// assert!((fit.c - 5.0).abs() < 1e-3);
/// assert!((fit.d - (-0.2)).abs() < 1e-4);
/// # Ok::<(), fecim_device::FitError>(())
/// ```
pub fn fit_fractional(samples: &[(f64, f64)]) -> Result<FractionalFit, FitError> {
    if samples.len() < 4 {
        return Err(FitError::TooFewSamples(samples.len()));
    }
    for (i, &(t, y)) in samples.iter().enumerate() {
        if !t.is_finite() || !y.is_finite() {
            return Err(FitError::NonFiniteSample(i));
        }
    }
    // Initial guess from the endpoints: assume d slightly below min(y).
    // (The length check above guarantees both endpoints exist.)
    let (t0, y0) = samples[0];
    let (t1, y1) = samples[samples.len() - 1];
    let ymin = samples
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::INFINITY, f64::min);
    let d0 = ymin - 0.05;
    let q0 = 1.0 / (y0 - d0);
    let p0 = if (t1 - t0).abs() > 1e-12 {
        (1.0 / (y1 - d0) - q0) / (t1 - t0)
    } else {
        0.0
    };
    let mut params = [p0, q0, d0];
    let mut lambda = 1e-3;
    let mut residual = sum_sq(samples, &params);

    for _ in 0..200 {
        // Numerical Jacobian of r_i = f(t_i) − y_i w.r.t. (p, q, d).
        let mut jtj = [[0.0f64; 3]; 3];
        let mut jtr = [0.0f64; 3];
        for &(t, y) in samples {
            let denom = params[0] * t + params[1];
            if denom.abs() < 1e-12 {
                continue;
            }
            let r = 1.0 / denom + params[2] - y;
            let g = [-t / (denom * denom), -1.0 / (denom * denom), 1.0];
            for i in 0..3 {
                jtr[i] += g[i] * r;
                for j in 0..3 {
                    jtj[i][j] += g[i] * g[j];
                }
            }
        }
        // Levenberg damping then 3×3 solve by Gaussian elimination.
        let mut a = jtj;
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += lambda * (1.0 + row[i]);
        }
        let step = match solve3(a, [-jtr[0], -jtr[1], -jtr[2]]) {
            Some(s) => s,
            None => {
                lambda *= 10.0;
                continue;
            }
        };
        let trial = [
            params[0] + step[0],
            params[1] + step[1],
            params[2] + step[2],
        ];
        let trial_res = sum_sq(samples, &trial);
        if trial_res < residual {
            params = trial;
            let improvement = residual - trial_res;
            residual = trial_res;
            lambda = (lambda * 0.5).max(1e-12);
            if improvement < 1e-15 {
                break;
            }
        } else {
            lambda *= 10.0;
            if lambda > 1e12 {
                break;
            }
        }
    }

    let rmse = (residual / samples.len() as f64).sqrt();
    let spread = samples
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::NEG_INFINITY, f64::max)
        - ymin;
    if !rmse.is_finite() || (spread > 0.0 && rmse > 0.5 * spread) {
        return Err(FitError::DidNotConverge);
    }
    Ok(FractionalFit {
        a: 1.0,
        b: params[0],
        c: params[1],
        d: params[2],
        rmse,
    })
}

fn sum_sq(samples: &[(f64, f64)], params: &[f64; 3]) -> f64 {
    samples
        .iter()
        .map(|&(t, y)| {
            let denom = params[0] * t + params[1];
            if denom.abs() < 1e-12 {
                return 1e18;
            }
            let r = 1.0 / denom + params[2] - y;
            r * r
        })
        .sum()
}

/// Solve a 3×3 linear system with partial pivoting; `None` if singular.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // total_cmp keeps NaN coefficients from panicking mid-pivot; a
        // NaN-polluted system falls through to the singular check below.
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        let magnitude = a[pivot][col].abs();
        if !magnitude.is_finite() || magnitude < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..3 {
            let factor = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, pivot_entry) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= factor * pivot_entry;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in (row + 1)..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn paper_samples(noise: f64, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..=70)
            .map(|k| {
                let t = 10.0 * k as f64;
                let y = 1.0 / (-0.006 * t + 5.0) - 0.2;
                let eps = if noise > 0.0 {
                    (rng.gen::<f64>() - 0.5) * 2.0 * noise
                } else {
                    0.0
                };
                (t, y + eps)
            })
            .collect()
    }

    #[test]
    fn recovers_paper_constants_exactly() {
        let fit = fit_fractional(&paper_samples(0.0, 0)).unwrap();
        assert!((fit.b + 0.006).abs() < 1e-6, "b={}", fit.b);
        assert!((fit.c - 5.0).abs() < 1e-3, "c={}", fit.c);
        assert!((fit.d + 0.2).abs() < 1e-4, "d={}", fit.d);
        assert!(fit.rmse < 1e-8);
    }

    #[test]
    fn tolerates_moderate_noise() {
        let fit = fit_fractional(&paper_samples(0.005, 1)).unwrap();
        assert!((fit.b + 0.006).abs() < 5e-4);
        assert!(fit.rmse < 0.01);
        // Fitted curve tracks the true one.
        for k in 0..=7 {
            let t = 100.0 * k as f64;
            let truth = 1.0 / (-0.006 * t + 5.0) - 0.2;
            assert!((fit.evaluate(t) - truth).abs() < 0.02, "t={t}");
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        // An empty calibration curve is an error, never a panic.
        assert!(matches!(
            fit_fractional(&[]),
            Err(FitError::TooFewSamples(0))
        ));
        assert!(matches!(
            fit_fractional(&[(0.0, 1.0)]),
            Err(FitError::TooFewSamples(1))
        ));
        let bad = vec![(0.0, 1.0), (1.0, f64::NAN), (2.0, 1.0), (3.0, 1.0)];
        assert!(matches!(
            fit_fractional(&bad),
            Err(FitError::NonFiniteSample(1))
        ));
    }

    #[test]
    fn fits_constant_data_with_small_rmse() {
        let samples: Vec<(f64, f64)> = (0..10).map(|k| (k as f64, 0.5)).collect();
        let fit = fit_fractional(&samples).unwrap();
        assert!(fit.rmse < 1e-3);
        assert!((fit.evaluate(5.0) - 0.5).abs() < 1e-2);
    }

    #[test]
    fn solve3_handles_identity_and_singularity() {
        let x = solve3(
            [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
            [1.0, 2.0, 3.0],
        )
        .unwrap();
        assert_eq!(x, [1.0, 2.0, 3.0]);
        assert!(solve3([[0.0; 3]; 3], [1.0, 1.0, 1.0]).is_none());
    }
}
