//! Double-gate (DG) FeFET model — the four-terminal device at the heart of
//! the paper's co-design (Sec. 2.2, Fig. 2c/2d; Sec. 3.3, Fig. 6a/6b).
//!
//! An FDSOI FeFET adds a non-ferroelectric back gate (BG) below the buried
//! oxide. The BG couples capacitively into the channel and shifts the
//! *effective* threshold voltage without disturbing the ferroelectric
//! state: `V_TH,eff = V_TH,FE − γ·V_BG`. The paper exploits this to make a
//! single transistor compute the four-input product
//! `I_SL = x · G · y · z` (front gate `x`, stored bit `G`, drain line `y`,
//! back gate analog `z`), which is exactly one term of the incremental-E
//! form `E_inc,p = σ_r · G · σ_c · f(T)`.

use serde::{Deserialize, Serialize};

use crate::fefet::{channel_current, FefetParams, StoredBit};

/// Parameters of the DG FeFET model: a front-gate FeFET plus back-gate
/// coupling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DgFefetParams {
    /// Front-gate FeFET parameters (thresholds, slope, current scale).
    pub front: FefetParams,
    /// Back-gate coupling ratio `γ = ΔV_TH/ΔV_BG` through the buried oxide.
    pub bg_coupling: f64,
    /// Front-gate read voltage representing a logic `1` input, volts.
    pub v_read: f64,
    /// Drain-line voltage representing a logic `1` input, volts.
    pub v_drain: f64,
    /// Maximum back-gate voltage of the in-situ annealing flow
    /// (paper Sec. 3.4: `V_BG` spans 0.7 V → 0 V), volts.
    pub vbg_max: f64,
    /// Back-gate DAC resolution of the annealing flow, volts
    /// (paper: 0.01 V gradient).
    pub vbg_step: f64,
}

impl DgFefetParams {
    /// Defaults calibrated so the `I_SL–V_BG` response (Fig. 6b) rises from
    /// ≈0 at `V_BG = 0 V` to ≈10 µA at `V_BG = 0.7 V` for a stored `'1'`,
    /// with the stored-`'0'` branch pinned at leakage level, matching the
    /// 22 nm BSIM-IMG model behaviour the paper simulates.
    pub fn paper_reference() -> DgFefetParams {
        DgFefetParams {
            front: FefetParams {
                vth_low: 1.05,
                vth_high: 2.05,
                ideality: 1.5,
                i_spec: 1.05e-6,
                i_leak: 5.0e-10,
            },
            bg_coupling: 0.45,
            v_read: 1.0,
            v_drain: 1.0,
            vbg_max: 0.7,
            vbg_step: 0.01,
        }
    }
}

impl Default for DgFefetParams {
    fn default() -> DgFefetParams {
        DgFefetParams::paper_reference()
    }
}

/// A four-terminal DG FeFET cell.
///
/// # Examples
///
/// ```
/// use fecim_device::{DgFefet, StoredBit};
/// let mut cell = DgFefet::new(Default::default());
/// cell.program(StoredBit::One);
/// // Four-input multiply: all inputs high → current flows.
/// let on = cell.sl_current(true, true, 0.7);
/// // Any binary input low → (near) zero output.
/// let gated = cell.sl_current(false, true, 0.7);
/// assert!(on > 1e-6);
/// assert!(gated < on * 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DgFefet {
    params: DgFefetParams,
    state: StoredBit,
    vth_offset: f64,
}

impl DgFefet {
    /// New cell in the erased (`'1'`) state.
    pub fn new(params: DgFefetParams) -> DgFefet {
        DgFefet {
            params,
            state: StoredBit::One,
            vth_offset: 0.0,
        }
    }

    /// Model parameters.
    pub fn params(&self) -> &DgFefetParams {
        &self.params
    }

    /// Currently stored bit `G`.
    pub fn stored(&self) -> StoredBit {
        self.state
    }

    /// Program the ferroelectric state. Back-gate biasing never changes the
    /// stored state (the paper's key device property), only programming
    /// pulses do.
    pub fn program(&mut self, bit: StoredBit) {
        self.state = bit;
    }

    /// Apply a static threshold offset (device variation).
    pub fn set_vth_offset(&mut self, offset: f64) {
        self.vth_offset = offset;
    }

    /// Effective threshold voltage under back-gate bias `v_bg`:
    /// `V_TH,eff = V_TH,FE − γ·V_BG + offset`.
    pub fn effective_vth(&self, v_bg: f64) -> f64 {
        let base = match self.state {
            StoredBit::One => self.params.front.vth_low,
            StoredBit::Zero => self.params.front.vth_high,
        };
        base - self.params.bg_coupling * v_bg + self.vth_offset
    }

    /// Raw drain current for arbitrary terminal voltages (Fig. 2d curves).
    pub fn drain_current(&self, v_fg: f64, v_ds: f64, v_bg: f64) -> f64 {
        channel_current(
            v_fg,
            v_ds,
            self.effective_vth(v_bg),
            self.params.front.ideality,
            self.params.front.i_spec,
            self.params.front.i_leak,
        )
    }

    /// The four-input multiply `I_SL = x·G·y·z` (paper Fig. 6a): binary
    /// front-gate input `x`, binary drain-line input `y`, analog back-gate
    /// voltage `v_bg` as `z`. Returns the source-line current in amperes.
    pub fn sl_current(&self, x: bool, y: bool, v_bg: f64) -> f64 {
        let v_fg = if x { self.params.v_read } else { 0.0 };
        let v_ds = if y { self.params.v_drain } else { 0.0 };
        self.drain_current(v_fg, v_ds, v_bg)
    }

    /// Sample the `I_SL–V_BG` characteristic with `x = y = 1`
    /// (paper Fig. 6b) over `[0, vbg_max]`.
    pub fn isl_vbg_curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two samples");
        (0..points)
            .map(|k| {
                let v = self.params.vbg_max * k as f64 / (points - 1) as f64;
                (v, self.sl_current(true, true, v))
            })
            .collect()
    }

    /// Sample an `I_D–V_FG` curve family over back-gate voltages
    /// (paper Fig. 2d): returns one curve per `v_bg` value.
    pub fn transfer_family(
        &self,
        v_fg_lo: f64,
        v_fg_hi: f64,
        points: usize,
        v_bg_values: &[f64],
        v_ds: f64,
    ) -> Vec<(f64, Vec<(f64, f64)>)> {
        assert!(points >= 2, "need at least two samples");
        v_bg_values
            .iter()
            .map(|&v_bg| {
                let curve = (0..points)
                    .map(|k| {
                        let v = v_fg_lo + (v_fg_hi - v_fg_lo) * k as f64 / (points - 1) as f64;
                        (v, self.drain_current(v, v_ds, v_bg))
                    })
                    .collect();
                (v_bg, curve)
            })
            .collect()
    }

    /// On-current at full back-gate bias (`x=y=1`, `V_BG = vbg_max`), the
    /// normalization reference for the fractional annealing factor
    /// (Fig. 6c "Normalized I_SL").
    pub fn full_scale_current(&self) -> f64 {
        let mut probe = self.clone();
        probe.program(StoredBit::One);
        probe.vth_offset = 0.0;
        probe.sl_current(true, true, self.params.vbg_max)
    }

    /// Quantize a requested back-gate voltage to the DAC grid
    /// (`vbg_step`, paper: 0.01 V), clamped to `[0, vbg_max]`.
    pub fn quantize_vbg(&self, v_bg: f64) -> f64 {
        let clamped = v_bg.clamp(0.0, self.params.vbg_max);
        (clamped / self.params.vbg_step).round() * self.params.vbg_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_storing(bit: StoredBit) -> DgFefet {
        let mut c = DgFefet::new(DgFefetParams::paper_reference());
        c.program(bit);
        c
    }

    #[test]
    fn four_input_multiply_truth_table() {
        let one = cell_storing(StoredBit::One);
        let zero = cell_storing(StoredBit::Zero);
        let v = 0.7;
        let on = one.sl_current(true, true, v);
        assert!(on > 1e-6, "on-current {on}");
        // Any zero input suppresses the output by orders of magnitude.
        for (x, y, cell) in [
            (false, true, &one),
            (true, false, &one),
            (false, false, &one),
            (true, true, &zero),
        ] {
            let i = cell.sl_current(x, y, v);
            assert!(i < on * 1e-2, "x={x} y={y} stored={:?}: {i}", cell.stored());
        }
    }

    #[test]
    fn isl_rises_monotonically_with_vbg_for_stored_one() {
        let one = cell_storing(StoredBit::One);
        let curve = one.isl_vbg_curve(71);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        let i_low = curve.first().unwrap().1;
        let i_high = curve.last().unwrap().1;
        assert!(i_high / i_low > 50.0, "dynamic range {}", i_high / i_low);
        // Fig. 6b scale: ~10 µA at V_BG = 0.7 V.
        assert!(i_high > 3e-6 && i_high < 3e-5, "i_high={i_high}");
    }

    #[test]
    fn stored_zero_branch_stays_at_leakage_level() {
        let zero = cell_storing(StoredBit::Zero);
        let curve = zero.isl_vbg_curve(15);
        let one = cell_storing(StoredBit::One);
        let full = one.full_scale_current();
        for (v, i) in curve {
            assert!(i < full * 1e-2, "V_BG={v}: leakage {i} too high");
        }
    }

    #[test]
    fn bg_bias_does_not_change_stored_state() {
        let c = cell_storing(StoredBit::One);
        let _ = c.sl_current(true, true, 0.7);
        let _ = c.sl_current(true, true, 0.0);
        assert_eq!(c.stored(), StoredBit::One);
    }

    #[test]
    fn transfer_family_shifts_left_with_increasing_vbg() {
        let c = cell_storing(StoredBit::One);
        let family = c.transfer_family(-0.5, 1.5, 21, &[-1.0, 0.0, 1.0], 1.0);
        assert_eq!(family.len(), 3);
        // At a fixed V_FG in the transition region, higher V_BG → higher I.
        let probe = 10; // middle sample
        let i_m1 = family[0].1[probe].1;
        let i_0 = family[1].1[probe].1;
        let i_p1 = family[2].1[probe].1;
        assert!(i_m1 < i_0 && i_0 < i_p1);
    }

    #[test]
    fn effective_vth_follows_coupling_ratio() {
        let c = cell_storing(StoredBit::One);
        let g = c.params().bg_coupling;
        let v0 = c.effective_vth(0.0);
        let v1 = c.effective_vth(1.0);
        assert!((v0 - v1 - g).abs() < 1e-12);
    }

    #[test]
    fn quantize_vbg_respects_grid_and_clamp() {
        let c = cell_storing(StoredBit::One);
        assert!((c.quantize_vbg(0.344) - 0.34).abs() < 1e-12);
        assert!((c.quantize_vbg(0.346) - 0.35).abs() < 1e-12);
        assert_eq!(c.quantize_vbg(-0.3), 0.0);
        assert!((c.quantize_vbg(2.0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn full_scale_current_ignores_state_and_offset() {
        let mut c = cell_storing(StoredBit::Zero);
        c.set_vth_offset(0.2);
        let one = cell_storing(StoredBit::One);
        assert!((c.full_scale_current() - one.full_scale_current()).abs() < 1e-18);
    }
}
