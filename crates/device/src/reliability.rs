//! FeFET reliability models: retention loss and program/erase endurance.
//!
//! The paper's evaluation assumes fresh devices; these models cover the
//! "what happens after a billion annealing iterations" question a
//! deployment would ask. Retention follows the standard log-time memory
//! window decay of HZO FeFETs; endurance follows the wake-up/fatigue
//! window evolution with cycle count. Both expose a window-scaling factor
//! that plugs into [`crate::FefetParams`]/[`crate::DgFefetParams`].

use serde::{Deserialize, Serialize};

/// Retention model: memory window shrinks ∝ log10(t) after programming.
///
/// `MW(t) = MW₀ · (1 − rate · log10(1 + t/t₀))` clamped to `[floor, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Fractional window loss per decade of time.
    pub loss_per_decade: f64,
    /// Reference time `t₀` in seconds (onset of measurable decay).
    pub onset_seconds: f64,
    /// Fraction of the window that never decays (deep traps).
    pub floor: f64,
}

impl RetentionModel {
    /// HZO-class defaults: ~3 % window loss per decade from 1 s, floored
    /// at 60 % — extrapolates to ≥10-year retention of a readable window.
    pub fn hzo_reference() -> RetentionModel {
        RetentionModel {
            loss_per_decade: 0.03,
            onset_seconds: 1.0,
            floor: 0.6,
        }
    }

    /// Window scale factor in `[floor, 1]` after `seconds` of retention.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative.
    pub fn window_scale(&self, seconds: f64) -> f64 {
        assert!(seconds >= 0.0, "time must be non-negative");
        let decades = (1.0 + seconds / self.onset_seconds).log10();
        (1.0 - self.loss_per_decade * decades).clamp(self.floor, 1.0)
    }

    /// Whether the window is still readable (above `margin` of the
    /// original) after `seconds`.
    pub fn retains(&self, seconds: f64, margin: f64) -> bool {
        self.window_scale(seconds) >= margin
    }
}

impl Default for RetentionModel {
    fn default() -> RetentionModel {
        RetentionModel::hzo_reference()
    }
}

/// Endurance model: wake-up (window grows over the first cycles), a flat
/// plateau, then fatigue (log-cycle decay) until breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceModel {
    /// Cycles over which wake-up completes.
    pub wakeup_cycles: f64,
    /// Window gain from wake-up (e.g. 0.1 = +10 %).
    pub wakeup_gain: f64,
    /// Cycle count where fatigue sets in.
    pub fatigue_onset: f64,
    /// Fractional window loss per decade beyond fatigue onset.
    pub fatigue_per_decade: f64,
    /// Hard breakdown cycle count (window collapses).
    pub breakdown_cycles: f64,
}

impl EnduranceModel {
    /// HZO-class defaults: wake-up over 10³ cycles (+8 %), fatigue from
    /// 10⁸, breakdown at 10¹¹ cycles.
    pub fn hzo_reference() -> EnduranceModel {
        EnduranceModel {
            wakeup_cycles: 1e3,
            wakeup_gain: 0.08,
            fatigue_onset: 1e8,
            fatigue_per_decade: 0.05,
            breakdown_cycles: 1e11,
        }
    }

    /// Window scale factor after `cycles` program/erase cycles
    /// (`0` after breakdown).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative.
    pub fn window_scale(&self, cycles: f64) -> f64 {
        assert!(cycles >= 0.0, "cycle count must be non-negative");
        if cycles >= self.breakdown_cycles {
            return 0.0;
        }
        let wakeup = self.wakeup_gain * (cycles / self.wakeup_cycles).min(1.0);
        let fatigue = if cycles > self.fatigue_onset {
            self.fatigue_per_decade * (cycles / self.fatigue_onset).log10()
        } else {
            0.0
        };
        (1.0 + wakeup - fatigue).max(0.0)
    }

    /// Cycles until the window falls below `margin` of nominal (`None`
    /// if breakdown hits first; search over log-spaced cycle counts).
    pub fn cycles_to_margin(&self, margin: f64) -> Option<f64> {
        let mut cycles = 1.0;
        while cycles < self.breakdown_cycles {
            if self.window_scale(cycles) < margin {
                return Some(cycles);
            }
            cycles *= 1.2589254117941673; // one fifth of a decade
        }
        None
    }
}

impl Default for EnduranceModel {
    fn default() -> EnduranceModel {
        EnduranceModel::hzo_reference()
    }
}

/// How many program/erase cycles one annealing run costs each cell.
///
/// In the in-situ flow the array is programmed once per *problem* (the
/// couplings never change during annealing — only inputs and the back
/// gate do), so lifetime is measured in problems, not iterations.
pub fn cycles_per_problem() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_ten_years_keeps_readable_window() {
        let r = RetentionModel::hzo_reference();
        let ten_years = 10.0 * 365.25 * 86400.0;
        let scale = r.window_scale(ten_years);
        assert!(scale >= 0.6, "scale={scale}");
        assert!(r.retains(ten_years, 0.6));
    }

    #[test]
    fn retention_is_monotone_nonincreasing() {
        let r = RetentionModel::hzo_reference();
        let mut prev = r.window_scale(0.0);
        assert!((prev - 1.0).abs() < 1e-9);
        for k in 1..12 {
            let t = 10f64.powi(k);
            let s = r.window_scale(t);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn endurance_wakeup_then_fatigue_then_breakdown() {
        let e = EnduranceModel::hzo_reference();
        let fresh = e.window_scale(0.0);
        let woken = e.window_scale(1e4);
        let fatigued = e.window_scale(1e10);
        let dead = e.window_scale(1e11);
        assert!(woken > fresh, "wake-up grows the window");
        assert!(fatigued < woken, "fatigue shrinks it");
        assert_eq!(dead, 0.0, "breakdown kills it");
    }

    #[test]
    fn cycles_to_margin_is_in_the_fatigue_regime() {
        let e = EnduranceModel::hzo_reference();
        let c = e.cycles_to_margin(0.95).expect("fatigue crosses 95%");
        assert!(c > e.fatigue_onset, "c={c}");
        assert!(c < e.breakdown_cycles);
        // A margin of 0 is never crossed before breakdown.
        assert!(e.cycles_to_margin(0.0).is_none());
    }

    #[test]
    fn annealing_lifetime_is_enormous() {
        // One program cycle per problem and fatigue onset at 1e8 cycles
        // ⇒ ~1e8 problems before any degradation — the reliability
        // argument for CiM annealers.
        let e = EnduranceModel::hzo_reference();
        let problems_before_fatigue = e.fatigue_onset / cycles_per_problem();
        assert!(problems_before_fatigue >= 1e8);
    }
}
