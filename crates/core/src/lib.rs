//! # fecim
//!
//! A full-system reproduction of **"Device-Algorithm Co-Design of
//! Ferroelectric Compute-in-Memory In-Situ Annealer for Combinatorial
//! Optimization Problems"** (Qian et al., DAC 2025): the incremental-E
//! transformation, the DG FeFET crossbar, the tunable back-gate in-situ
//! annealing flow, and the CiM/FPGA + CiM/ASIC baselines it is evaluated
//! against.
//!
//! The workspace layering (see `DESIGN.md` in the repository root):
//!
//! * [`fecim_ising`] — Ising/QUBO models, COP encodings, incremental-E math;
//! * [`fecim_gset`] — Gset-style Max-Cut benchmark instances;
//! * [`fecim_device`] — FeFET/DG FeFET device models and `f(T)` factors;
//! * [`fecim_crossbar`] — the CiM array simulator;
//! * [`fecim_hwcost`] — 22 nm energy/latency accounting;
//! * [`fecim_anneal`] — the annealing engines;
//! * [`fecim_sb`] — the simulated-bifurcation (bSB/dSB) engines on the
//!   crossbar's full-vector MVM read path;
//! * this crate — the user-facing job API, solvers and the paper's
//!   experiments.
//!
//! ## Quickstart: the job API
//!
//! Everything runs through one surface: describe the job as a
//! serde-serializable [`SolveRequest`] (problem + solver + typed
//! [`BackendPlan`] + [`RunPlan`]) and hand it to [`Session::run`]:
//!
//! ```
//! use fecim::{
//!     CimAnnealer, DirectAnnealer, ProblemSpec, RunPlan, Session, SolveRequest, SolverSpec,
//! };
//!
//! // An 8-vertex ring: optimal cut = 8.
//! let problem = ProblemSpec::MaxCut {
//!     vertices: 8,
//!     edges: (0..8).map(|i| (i, (i + 1) % 8, 1.0)).collect(),
//! };
//! let session = Session::new();
//! let ours = session.run(
//!     &SolveRequest::new(
//!         problem.clone(),
//!         SolverSpec::Cim(CimAnnealer::new(1500).with_flips(1)),
//!     )
//!     .with_run(RunPlan::Single { seed: 7 }),
//! )?;
//! let baseline = session.run(
//!     &SolveRequest::new(
//!         problem,
//!         SolverSpec::Direct(DirectAnnealer::cim_asic(1500).with_flips(1)),
//!     )
//!     .with_run(RunPlan::Single { seed: 7 }),
//! )?;
//! assert!(ours.summary.best_objective.unwrap() >= 6.0);
//! // The co-designed annealer runs the same workload far cheaper:
//! assert!(baseline.summary.total_energy / ours.summary.total_energy > 2.0);
//! # Ok::<(), fecim::SessionError>(())
//! ```
//!
//! Requests round-trip through JSON unchanged
//! ([`SolveRequest::to_json`]/[`SolveRequest::from_json`]), and a
//! deserialized request produces bit-identical Ideal-mode results — a
//! future HTTP or queue front-end is a serialization boundary, not a
//! refactor.
//!
//! ## One request, many execution modes
//!
//! The [`BackendPlan`] selects where energy measurements come from
//! (software-exact, simulated crossbar, tiled arrays, shared-grid
//! batching) and the [`RunPlan`] scales from one seeded trial to a
//! parallel ensemble — results are bit-identical at any thread count:
//!
//! ```
//! use fecim::{CimAnnealer, ProblemSpec, RunPlan, Session, SolveRequest, SolverSpec};
//!
//! let request = SolveRequest::new(
//!     ProblemSpec::MaxCut {
//!         vertices: 8,
//!         edges: (0..8).map(|i| (i, (i + 1) % 8, 1.0)).collect(),
//!     },
//!     SolverSpec::Cim(CimAnnealer::new(500).with_flips(1)),
//! )
//! .with_run(RunPlan::Ensemble {
//!     trials: 8,
//!     base_seed: 1,
//!     threads: None,
//! })
//! .with_reference(8.0);
//! let response = Session::new().run(&request)?;
//! assert_eq!(response.reports.len(), 8);
//! assert_eq!(response.normalized.as_ref().unwrap().len(), 8);
//! # Ok::<(), fecim::SessionError>(())
//! ```
//!
//! The builder-style solvers ([`CimAnnealer`], [`DirectAnnealer`],
//! [`MesaAnnealer`]) and the [`Solver`] trait remain the machinery
//! underneath — [`Solver::solve`] is still the right call for quick
//! one-off library use. Everything ensemble- or batch-shaped goes
//! through requests (the legacy `normalized_ensemble` /
//! `solve_batched_ensemble` free functions have been removed).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod annealer;
mod baselines;
mod batch;
pub mod experiment;
mod mesa_solver;
pub mod report;
mod request;
mod sb_solver;
mod session;
mod solver;

pub use annealer::{CimAnnealer, FactorChoice, SolveReport};
pub use baselines::DirectAnnealer;
pub use batch::{BatchGridSummary, BatchedEnsembleOutcome};
pub use experiment::{
    cost_trend, run_experiment, AlgoStats, ExperimentConfig, ExperimentOutcome, GroupOutcome,
    HardwareCost, Scale, TrendPoint,
};
pub use mesa_solver::MesaAnnealer;
pub use request::{BackendPlan, ProblemSpec, RunPlan, SolveRequest, SolverSpec};
pub use sb_solver::SbAnnealer;
pub use session::{NormalizedTrial, PreparedJob, RunSummary, Session, SessionError, SolveResponse};
pub use solver::Solver;

pub use fecim_anneal as anneal;
pub use fecim_crossbar as crossbar;
pub use fecim_device as device;
pub use fecim_gset as gset;
pub use fecim_hwcost as hwcost;
pub use fecim_ising as ising;
pub use fecim_sb as sb;
