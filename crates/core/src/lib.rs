//! # fecim
//!
//! A full-system reproduction of **"Device-Algorithm Co-Design of
//! Ferroelectric Compute-in-Memory In-Situ Annealer for Combinatorial
//! Optimization Problems"** (Qian et al., DAC 2025): the incremental-E
//! transformation, the DG FeFET crossbar, the tunable back-gate in-situ
//! annealing flow, and the CiM/FPGA + CiM/ASIC baselines it is evaluated
//! against.
//!
//! The workspace layering (see `DESIGN.md`):
//!
//! * [`fecim_ising`] — Ising/QUBO models, COP encodings, incremental-E math;
//! * [`fecim_gset`] — Gset-style Max-Cut benchmark instances;
//! * [`fecim_device`] — FeFET/DG FeFET device models and `f(T)` factors;
//! * [`fecim_crossbar`] — the CiM array simulator;
//! * [`fecim_hwcost`] — 22 nm energy/latency accounting;
//! * [`fecim_anneal`] — the annealing engines;
//! * this crate — the user-facing solvers and the paper's experiments.
//!
//! ## Quickstart
//!
//! ```
//! use fecim::{CimAnnealer, DirectAnnealer};
//! use fecim_ising::MaxCut;
//!
//! // An 8-vertex ring: optimal cut = 8.
//! let problem = MaxCut::new(8, (0..8).map(|i| (i, (i + 1) % 8, 1.0)).collect())?;
//! let ours = CimAnnealer::new(1500).with_flips(1).solve(&problem, 7)?;
//! let baseline = DirectAnnealer::cim_asic(1500).with_flips(1).solve(&problem, 7)?;
//! assert!(ours.objective.unwrap() >= 6.0);
//! // The co-designed annealer runs the same workload far cheaper:
//! assert!(baseline.energy.total() / ours.energy.total() > 2.0);
//! # Ok::<(), fecim_ising::IsingError>(())
//! ```
//!
//! ## One trait, three architectures
//!
//! All annealers implement [`Solver`], so experiment code dispatches over
//! `&dyn Solver` and fans seeded trials out with the rayon-backed
//! [`Ensemble`](fecim_anneal::Ensemble) runner (results are bit-identical
//! at any thread count):
//!
//! ```
//! use fecim::{CimAnnealer, DirectAnnealer, MesaAnnealer, Solver};
//! use fecim_anneal::Ensemble;
//! use fecim_ising::MaxCut;
//!
//! let problem = MaxCut::new(8, (0..8).map(|i| (i, (i + 1) % 8, 1.0)).collect())?;
//! let solvers: [&dyn Solver; 3] = [
//!     &CimAnnealer::new(500).with_flips(1),
//!     &DirectAnnealer::cim_asic(500).with_flips(1),
//!     &MesaAnnealer::new(500),
//! ];
//! for solver in solvers {
//!     let cuts = Ensemble::new(8, 1)
//!         .run(|seed| solver.solve(&problem, seed).expect("ring encodes").objective.unwrap());
//!     assert_eq!(cuts.len(), 8);
//! }
//! # Ok::<(), fecim_ising::IsingError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod annealer;
mod baselines;
mod batch;
pub mod experiment;
mod mesa_solver;
pub mod report;
mod solver;

pub use annealer::{CimAnnealer, FactorChoice, SolveReport};
pub use baselines::DirectAnnealer;
pub use batch::{solve_batched_ensemble, BatchGridSummary, BatchedEnsembleOutcome};
pub use experiment::{
    cost_trend, run_experiment, AlgoStats, ExperimentConfig, ExperimentOutcome, GroupOutcome,
    HardwareCost, Scale, TrendPoint,
};
pub use mesa_solver::MesaAnnealer;
pub use solver::{normalized_ensemble, Solver};

pub use fecim_anneal as anneal;
pub use fecim_crossbar as crossbar;
pub use fecim_device as device;
pub use fecim_gset as gset;
pub use fecim_hwcost as hwcost;
pub use fecim_ising as ising;
