//! The [`Session`] facade: one execution entry point for every
//! [`SolveRequest`], replacing the legacy free-function era (`solve`
//! plus the since-removed `normalized_ensemble` /
//! `solve_batched_ensemble` wrappers) with a single
//! `run(request) -> SolveResponse` surface.
//!
//! A session routes the request's typed [`BackendPlan`] to the existing
//! machinery:
//!
//! * [`BackendPlan::Analytic`] — software-exact incremental-E solves
//!   through the [`Solver`] pipeline;
//! * [`BackendPlan::DeviceInLoop`] — the same pipeline with the
//!   (optionally tiled) simulated crossbar in the measurement loop;
//! * [`BackendPlan::Batched`] — shared-grid batched ensembles on one
//!   physical tile grid.
//!
//! Every route is bit-identical to the legacy entry point it subsumes —
//! pinned by the `session_api` equivalence tests. This holds in noisy
//! `DeviceAccurate` fidelity too: read noise is counter-based and
//! batched trials reseed their grid instance from the trial seed, so
//! results are a pure function of the request.
//!
//! ## Trial-level execution: [`PreparedJob`]
//!
//! [`Session::run`] executes a request start to finish, but a scheduler
//! (`fecim-serve`) needs finer grain: validate once, then run *single
//! trials* whenever workers and grid stripes free up, possibly
//! interleaved with other requests' trials. [`Session::prepare`] splits
//! the pipeline at exactly that joint: it performs all validation and
//! problem building up front and returns a [`PreparedJob`] whose
//! [`run_trial`](PreparedJob::run_trial) /
//! [`run_batched_trial`](PreparedJob::run_batched_trial) produce the
//! same per-trial [`SolveReport`]s `Session::run` would, and whose
//! [`finish`](PreparedJob::finish) applies the same normalization and
//! summarization. `Session::run` itself is a thin loop over this API.

use std::fmt;

use serde::{Deserialize, Serialize};

use fecim_crossbar::{BatchInstance, CrossbarConfig, Fidelity};
use fecim_device::VariationConfig;
use fecim_ising::{CopProblem, CsrCoupling, IsingError, IsingModel, ObjectiveSense, SpinVector};

use fecim_hwcost::CostModel;

use crate::annealer::SolveReport;
use crate::batch::{
    batched_ensemble_prepared, batched_trial_report, BatchGridSummary, BatchedSolve,
};
use crate::request::{BackendPlan, RunPlan, SolveRequest, SolverSpec};
use crate::solver::Solver;

/// Error raised while validating or executing a [`SolveRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The request combines options the machinery cannot serve (e.g. a
    /// batched backend with a baseline solver, or zero trials).
    InvalidRequest(String),
    /// The problem spec failed to build or encode into Ising form.
    Problem(IsingError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            SessionError::Problem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::InvalidRequest(_) => None,
            SessionError::Problem(e) => Some(e),
        }
    }
}

impl From<IsingError> for SessionError {
    fn from(e: IsingError) -> SessionError {
        SessionError::Problem(e)
    }
}

impl SessionError {
    /// Collapse into the workspace's [`IsingError`] (request-shape
    /// errors become [`IsingError::InvalidProblem`]) — for callers whose
    /// signatures predate the job API.
    pub fn into_ising(self) -> IsingError {
        match self {
            SessionError::InvalidRequest(msg) => IsingError::InvalidProblem(msg),
            SessionError::Problem(e) => e,
        }
    }
}

fn invalid(msg: impl Into<String>) -> SessionError {
    SessionError::InvalidRequest(msg.into())
}

/// Normalized score of one trial (present when the request carries a
/// `reference` objective).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedTrial {
    /// Native objective divided by the request's reference.
    pub objective: f64,
    /// First iteration whose best energy reached the solver's configured
    /// target (`None` when the target was never hit or none was set) —
    /// the Table 1 time-to-solution numerator.
    pub first_target_hit: Option<usize>,
}

/// Aggregate view of a finished request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Trials executed.
    pub trials: usize,
    /// Trials whose best solution satisfied the problem's constraints.
    pub feasible_trials: usize,
    /// Best exact Ising energy over all trials (lower is better).
    pub best_energy: f64,
    /// Best native objective over all trials, honoring the problem's
    /// objective sense (`None` when solving a raw model).
    pub best_objective: Option<f64>,
    /// Mean native objective over all trials.
    pub mean_objective: Option<f64>,
    /// Total simulated hardware energy across trials, joules.
    pub total_energy: f64,
    /// Summed per-trial hardware latency, seconds (the serial-service
    /// time; batched grids additionally report their concurrent
    /// `batch_time` per [`BatchGridSummary`]).
    pub total_time: f64,
}

/// Outcome of [`Session::run`]: per-trial reports (with hardware
/// energy/time attribution and, on device backends, measured
/// [`ActivityStats`](fecim_crossbar::ActivityStats)), optional
/// normalized scores, shared-grid summaries, and the aggregate summary.
///
/// Fully serde-serializable, like the request that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveResponse {
    /// One report per trial, in trial order.
    pub reports: Vec<SolveReport>,
    /// Per-trial normalized scores (set when the request has a
    /// `reference`).
    pub normalized: Option<Vec<NormalizedTrial>>,
    /// Shared-grid summaries, one per physical grid the batched backend
    /// instantiated (empty for unbatched backends).
    pub grids: Vec<BatchGridSummary>,
    /// Aggregate summary.
    pub summary: RunSummary,
}

impl SolveResponse {
    /// The `(normalized objective, first target hit)` pairs the
    /// legacy `normalized_ensemble` free function used to return, when
    /// the request carried a reference.
    pub fn normalized_pairs(&self) -> Option<Vec<(f64, Option<usize>)>> {
        self.normalized.as_ref().map(|trials| {
            trials
                .iter()
                .map(|t| (t.objective, t.first_target_hit))
                .collect()
        })
    }

    /// Just the per-trial normalized objectives (the success-rate /
    /// mean-cut input of the sweeps), when the request carried a
    /// reference.
    pub fn normalized_objectives(&self) -> Option<Vec<f64>> {
        self.normalized
            .as_ref()
            .map(|trials| trials.iter().map(|t| t.objective).collect())
    }
}

/// Executes [`SolveRequest`]s.
///
/// A session is cheap to construct and stateless between runs; it exists
/// so deployment-level configuration (today: an overriding
/// [`CrossbarConfig`] for device backends) has a home that is not the
/// serialized request.
///
/// ```
/// use fecim::{CimAnnealer, ProblemSpec, RunPlan, Session, SolveRequest, SolverSpec};
///
/// let request = SolveRequest::new(
///     ProblemSpec::MaxCut {
///         vertices: 8,
///         edges: (0..8).map(|i| (i, (i + 1) % 8, 1.0)).collect(),
///     },
///     SolverSpec::Cim(CimAnnealer::new(1500).with_flips(1)),
/// )
/// .with_run(RunPlan::Single { seed: 7 });
/// let response = Session::new().run(&request)?;
/// assert!(response.summary.best_objective.unwrap() >= 6.0);
/// # Ok::<(), fecim::SessionError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Session {
    crossbar: Option<CrossbarConfig>,
}

impl Session {
    /// A session with default device-backend configuration: the paper's
    /// crossbar at the request's fidelity, with typical variation in
    /// [`Fidelity::DeviceAccurate`] mode.
    pub fn new() -> Session {
        Session::default()
    }

    /// Override the crossbar configuration device backends program
    /// (quantization/ADC bits, variation, wire technology, …). For
    /// [`BackendPlan::DeviceInLoop`] the plan's fidelity still wins over
    /// `config.fidelity`; a [`BackendPlan::Batched`] grid programs this
    /// config verbatim (including its fidelity). In non-`Ideal`
    /// fidelity every batched trial reseeds its grid instance from the
    /// trial seed before annealing, so results do not depend on
    /// `instances` chunking or grid placement.
    pub fn with_crossbar(mut self, config: CrossbarConfig) -> Session {
        self.crossbar = Some(config);
        self
    }

    /// Execute a request.
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidRequest`] when the request combines
    /// unsupported options (batched backend with a baseline solver, a
    /// device backend with MESA, zero trials/tiles/instances);
    /// [`SessionError::Problem`] when the problem spec fails to build or
    /// encode.
    pub fn run(&self, request: &SolveRequest) -> Result<SolveResponse, SessionError> {
        let job = self.prepare(request)?;
        let (reports, grids) = match &job.route {
            PreparedRoute::Solver { .. } => {
                let reports = job
                    .run
                    .to_ensemble()
                    .run(|seed| job.run_trial_seeded(seed))
                    .into_iter()
                    .collect::<Result<Vec<_>, SessionError>>()?;
                (reports, Vec::new())
            }
            PreparedRoute::Batched {
                solver,
                config,
                tile_rows,
                instances,
                model,
                quadratic,
                ..
            } => {
                // Replicas packed `instances` at a time onto successive
                // physical grids, with flat seed numbering across chunks
                // (the encoding from `prepare` is reused, not redone).
                let trials = job.run.trials();
                let base_seed = job.run.base_seed();
                let mut reports = Vec::with_capacity(trials);
                let mut grids = Vec::new();
                let mut start = 0usize;
                while start < trials {
                    let width = (*instances).min(trials - start);
                    let mut ensemble =
                        fecim_anneal::Ensemble::new(width, base_seed.wrapping_add(start as u64));
                    if let Some(cap) = job.run.threads() {
                        ensemble = ensemble.with_max_threads(cap);
                    }
                    let outcome = batched_ensemble_prepared(
                        solver.as_ref(),
                        job.problem.as_ref(),
                        model,
                        quadratic,
                        config.clone(),
                        *tile_rows,
                        &ensemble,
                        job.initial.as_ref(),
                    );
                    reports.extend(outcome.reports);
                    grids.push(outcome.grid);
                    start += width;
                }
                (reports, grids)
            }
        };
        job.finish(reports, grids)
    }

    /// Validate a request and build everything its trials share — the
    /// problem, the configured solver or shared-grid plan — without
    /// running anything. The returned [`PreparedJob`] runs trials one at
    /// a time; [`Session::run`] is a loop over it, and the `fecim-serve`
    /// scheduler interleaves trials of *different* prepared jobs on
    /// shared grids.
    ///
    /// # Errors
    ///
    /// Exactly the validation errors of [`Session::run`]:
    /// [`SessionError::InvalidRequest`] for unsupported combinations and
    /// [`SessionError::Problem`] when the problem fails to build or
    /// encode.
    pub fn prepare(&self, request: &SolveRequest) -> Result<PreparedJob, SessionError> {
        if request.run.trials() == 0 {
            return Err(invalid("run plan must schedule at least one trial"));
        }
        if request.run.threads() == Some(0) {
            return Err(invalid("thread cap must be at least one worker"));
        }
        if let SolverSpec::Sb(sb) = &request.solver {
            // Builder panics never run for wire-deserialized payloads;
            // reject unusable SB parameters (non-finite dt/schedule, …)
            // here, on every route.
            sb.validate().map_err(invalid)?;
        }
        let problem = request.problem.build()?;
        let initial = match &request.initial_spins {
            None => None,
            Some(spins) => {
                if spins.len() != problem.spin_count() {
                    return Err(invalid(format!(
                        "initial_spins length {} does not match the problem's {} spins",
                        spins.len(),
                        problem.spin_count()
                    )));
                }
                if spins.iter().any(|&s| s != 1 && s != -1) {
                    return Err(invalid("initial_spins entries must be -1 or +1"));
                }
                Some(SpinVector::from_signs(spins))
            }
        };
        let route = match request.backend {
            BackendPlan::Batched {
                tile_rows,
                instances,
            } => {
                let solver: Box<dyn BatchedSolve> = match &request.solver {
                    SolverSpec::Cim(solver) => Box::new(solver.clone().with_analytic_backend()),
                    SolverSpec::Sb(solver) => Box::new(solver.clone().with_analytic_backend()),
                    _ => {
                        return Err(invalid(
                            "the batched backend supports only the CiM in-situ and SB solvers",
                        ))
                    }
                };
                if tile_rows == 0 {
                    return Err(invalid("batched backend needs tile_rows > 0"));
                }
                if instances == 0 {
                    return Err(invalid("batched backend needs instances > 0"));
                }
                // The shared grid programs the session's crossbar
                // override verbatim (paper defaults otherwise): the
                // Batched plan carries no fidelity of its own. Chunk
                // boundaries are not observable in any fidelity — each
                // non-Ideal trial reseeds its instance from the trial
                // seed — see `Session::with_crossbar`.
                let config = self
                    .crossbar
                    .clone()
                    .unwrap_or_else(CrossbarConfig::paper_defaults);
                let model = problem.to_ising()?;
                let quadratic = model.to_quadratic_only();
                let cost_model =
                    CostModel::paper_22nm_tiled(model.dimension(), config.quant_bits, tile_rows);
                PreparedRoute::Batched {
                    solver,
                    config,
                    tile_rows,
                    instances,
                    model,
                    quadratic,
                    cost_model,
                }
            }
            _ => {
                // Encoding is deterministic: encode once up front so a
                // bad instance fails fast and trials reuse the model
                // instead of re-encoding per seed.
                let model = problem.to_ising()?;
                PreparedRoute::Solver {
                    solver: self.build_solver(&request.solver, request.backend)?,
                    model,
                }
            }
        };
        Ok(PreparedJob {
            problem,
            route,
            run: request.run,
            reference: request.reference,
            solver_name: request.solver.name().to_string(),
            initial,
        })
    }

    /// Configure the spec's solver for the plan's backend. The plan is
    /// the single authority: any device knobs already on the embedded
    /// solver are cleared first.
    fn build_solver(
        &self,
        spec: &SolverSpec,
        plan: BackendPlan,
    ) -> Result<Box<dyn Solver>, SessionError> {
        match spec {
            SolverSpec::Cim(solver) => self.plan_device_solver(solver.clone(), plan),
            SolverSpec::Direct(solver) => self.plan_device_solver(solver.clone(), plan),
            SolverSpec::Sb(solver) => self.plan_device_solver(solver.clone(), plan),
            SolverSpec::Mesa(solver) => match plan {
                BackendPlan::Analytic => Ok(Box::new(*solver)),
                _ => Err(invalid(
                    "the MESA baseline runs only on the analytic backend",
                )),
            },
        }
    }

    /// The shared Analytic/DeviceInLoop wiring for both device-capable
    /// architectures.
    fn plan_device_solver<S: DeviceBackendKnobs>(
        &self,
        solver: S,
        plan: BackendPlan,
    ) -> Result<Box<dyn Solver>, SessionError> {
        let solver = solver.analytic();
        match plan {
            BackendPlan::Analytic => Ok(Box::new(solver)),
            BackendPlan::DeviceInLoop {
                fidelity,
                tile_rows,
            } => {
                let config = self.crossbar_for(fidelity);
                Ok(match checked_tile_rows(tile_rows)? {
                    None => Box::new(solver.device_in_loop(config)),
                    Some(rows) => Box::new(solver.tiled_device_in_loop(config, rows)),
                })
            }
            BackendPlan::Batched { .. } => Err(invalid(
                "batched requests are executed by the shared-grid route, not a per-trial solver",
            )),
        }
    }

    /// The crossbar configuration for a device-in-the-loop plan: the
    /// session override when present (fidelity still forced to the
    /// plan's), else the paper defaults with typical variation in
    /// device-accurate mode.
    fn crossbar_for(&self, fidelity: Fidelity) -> CrossbarConfig {
        let mut config = self.crossbar.clone().unwrap_or_else(|| {
            let mut config = CrossbarConfig::paper_defaults();
            if fidelity == Fidelity::DeviceAccurate {
                config.variation = VariationConfig::typical();
            }
            config
        });
        config.fidelity = fidelity;
        config
    }
}

/// The device-backend knobs shared by the two device-capable annealers —
/// lets [`Session`] wire either architecture through one code path.
trait DeviceBackendKnobs: Solver + Sized + 'static {
    /// Strip device knobs back to the software-exact defaults.
    fn analytic(self) -> Self;
    /// Route measurements through the monolithic simulated crossbar.
    fn device_in_loop(self, config: CrossbarConfig) -> Self;
    /// Route measurements through the tiled array composition.
    fn tiled_device_in_loop(self, config: CrossbarConfig, tile_rows: usize) -> Self;
}

impl DeviceBackendKnobs for crate::CimAnnealer {
    fn analytic(self) -> Self {
        self.with_analytic_backend()
    }
    fn device_in_loop(self, config: CrossbarConfig) -> Self {
        self.with_device_in_loop(config)
    }
    fn tiled_device_in_loop(self, config: CrossbarConfig, tile_rows: usize) -> Self {
        self.with_tiled_device_in_loop(config, tile_rows)
    }
}

impl DeviceBackendKnobs for crate::SbAnnealer {
    fn analytic(self) -> Self {
        self.with_analytic_backend()
    }
    fn device_in_loop(self, config: CrossbarConfig) -> Self {
        self.with_device_in_loop(config)
    }
    fn tiled_device_in_loop(self, config: CrossbarConfig, tile_rows: usize) -> Self {
        self.with_tiled_device_in_loop(config, tile_rows)
    }
}

impl DeviceBackendKnobs for crate::DirectAnnealer {
    fn analytic(self) -> Self {
        self.with_analytic_backend()
    }
    fn device_in_loop(self, config: CrossbarConfig) -> Self {
        self.with_device_in_loop(config)
    }
    fn tiled_device_in_loop(self, config: CrossbarConfig, tile_rows: usize) -> Self {
        self.with_tiled_device_in_loop(config, tile_rows)
    }
}

fn checked_tile_rows(tile_rows: Option<usize>) -> Result<Option<usize>, SessionError> {
    match tile_rows {
        Some(0) => Err(invalid("device backend needs tile_rows > 0")),
        other => Ok(other),
    }
}

/// How a [`PreparedJob`]'s trials execute.
// One allocation per prepared job: the size skew between the two
// variants is irrelevant, boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum PreparedRoute {
    /// Analytic / device-in-the-loop: one configured solver per trial,
    /// annealing the model encoded once at prepare time.
    Solver {
        solver: Box<dyn Solver>,
        model: IsingModel,
    },
    /// Shared-grid batching: trials run as replicas on a
    /// [`BatchedTiledCrossbar`](fecim_crossbar::BatchedTiledCrossbar)
    /// (chunked grids under [`Session::run`]; live admission under the
    /// `fecim-serve` scheduler).
    Batched {
        solver: Box<dyn BatchedSolve>,
        config: CrossbarConfig,
        tile_rows: usize,
        instances: usize,
        model: IsingModel,
        quadratic: IsingModel,
        cost_model: CostModel,
    },
}

/// A validated request, split into independently runnable trials — the
/// unit of work a scheduler interleaves across workers and shared grids.
///
/// Produced by [`Session::prepare`]. Each trial is seed-deterministic
/// (trial `i` gets `base_seed + i`), so *when* and *where* a trial runs
/// cannot change its result in Ideal fidelity:
/// [`run_trial`](PreparedJob::run_trial) on any worker, or
/// [`run_batched_trial`](PreparedJob::run_batched_trial) on any live
/// grid slot, reproduce what [`Session::run`] computes bit for bit.
pub struct PreparedJob {
    problem: Box<dyn CopProblem + Send + Sync>,
    route: PreparedRoute,
    run: RunPlan,
    reference: Option<f64>,
    solver_name: String,
    /// Validated warm-start spins (original space), shared by every
    /// trial when the request carries `initial_spins`.
    initial: Option<SpinVector>,
}

impl fmt::Debug for PreparedJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedJob")
            .field("problem", &self.problem.name())
            .field("solver", &self.solver_name)
            .field(
                "route",
                &match self.route {
                    PreparedRoute::Solver { .. } => "solver",
                    PreparedRoute::Batched { .. } => "batched",
                },
            )
            .field("run", &self.run)
            .finish()
    }
}

impl PreparedJob {
    /// Trials the job's run plan schedules.
    pub fn trials(&self) -> usize {
        self.run.trials()
    }

    /// Seed of trial `trial` (the run plan's flat numbering).
    pub fn seed(&self, trial: usize) -> u64 {
        self.run.base_seed().wrapping_add(trial as u64)
    }

    /// The problem's human-readable name.
    pub fn problem_name(&self) -> &str {
        self.problem.name()
    }

    /// The solver architecture's human-readable name.
    pub fn solver_name(&self) -> &str {
        &self.solver_name
    }

    /// Whether trials run as shared-grid replicas
    /// ([`BackendPlan::Batched`]).
    pub fn is_batched(&self) -> bool {
        matches!(self.route, PreparedRoute::Batched { .. })
    }

    /// Physical tile height of the batched route (`None` for solver
    /// routes).
    pub fn tile_rows(&self) -> Option<usize> {
        match &self.route {
            PreparedRoute::Batched { tile_rows, .. } => Some(*tile_rows),
            PreparedRoute::Solver { .. } => None,
        }
    }

    /// The quadratic coupling a batched replica programs onto its grid
    /// block (`None` for solver routes).
    pub fn batch_coupling(&self) -> Option<&CsrCoupling> {
        match &self.route {
            PreparedRoute::Batched { quadratic, .. } => Some(quadratic.couplings()),
            PreparedRoute::Solver { .. } => None,
        }
    }

    /// The crossbar configuration a batched grid programs (`None` for
    /// solver routes).
    pub fn crossbar_config(&self) -> Option<&CrossbarConfig> {
        match &self.route {
            PreparedRoute::Batched { config, .. } => Some(config),
            PreparedRoute::Solver { .. } => None,
        }
    }

    /// Run one trial of a solver-route job.
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidRequest`] when `trial` is out of range or
    /// the job is batched (its trials need a grid slot — use
    /// [`run_batched_trial`](PreparedJob::run_batched_trial));
    /// [`SessionError::Problem`] when the solve itself fails.
    pub fn run_trial(&self, trial: usize) -> Result<SolveReport, SessionError> {
        if trial >= self.trials() {
            return Err(invalid(format!(
                "trial {trial} out of range for {} trials",
                self.trials()
            )));
        }
        self.run_trial_seeded(self.seed(trial))
    }

    fn run_trial_seeded(&self, seed: u64) -> Result<SolveReport, SessionError> {
        match &self.route {
            PreparedRoute::Solver { solver, model } => {
                // `Solver::solve` with the (deterministic) encoding
                // hoisted to prepare time — bit-identical, pinned by the
                // session equivalence tests.
                let (mut run, spins) = match &self.initial {
                    Some(start) => solver.anneal_model_from(model, start, seed),
                    None => solver.anneal_model(model, seed),
                };
                let objective = self.problem.native_objective(&spins);
                let feasible = self.problem.is_feasible(&spins);
                let (energy, time) = solver.hardware_report(&mut run, model.dimension());
                Ok(SolveReport {
                    kind: solver.kind(),
                    best_energy: run.best_energy,
                    objective: Some(objective),
                    feasible,
                    best_spins: spins,
                    energy,
                    time,
                    run,
                })
            }
            PreparedRoute::Batched { .. } => Err(invalid(
                "batched trials run on a shared grid; use run_batched_trial with a grid handle",
            )),
        }
    }

    /// Run one trial of a batched-route job as a replica on `handle`'s
    /// shared-grid slot. In Ideal fidelity the report is bit-identical
    /// to the same trial under [`Session::run`], whatever else occupies
    /// the grid.
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidRequest`] when `trial` is out of range or
    /// the job is not batched.
    pub fn run_batched_trial(
        &self,
        trial: usize,
        handle: BatchInstance,
    ) -> Result<SolveReport, SessionError> {
        if trial >= self.trials() {
            return Err(invalid(format!(
                "trial {trial} out of range for {} trials",
                self.trials()
            )));
        }
        let PreparedRoute::Batched {
            solver,
            model,
            quadratic,
            cost_model,
            ..
        } = &self.route
        else {
            return Err(invalid(
                "solver-route trials run without a grid; use run_trial",
            ));
        };
        Ok(batched_trial_report(
            solver.as_ref(),
            self.problem.as_ref(),
            model,
            quadratic,
            cost_model,
            self.seed(trial),
            handle,
            self.initial.as_ref(),
        ))
    }

    /// Normalize and summarize finished trials into the job's
    /// [`SolveResponse`] — the same post-processing [`Session::run`]
    /// applies. `reports` may cover fewer trials than planned (a
    /// cancelled job summarizes what completed).
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidRequest`] when the request asked for
    /// normalized scoring but a report carries no native objective.
    pub fn finish(
        &self,
        reports: Vec<SolveReport>,
        grids: Vec<BatchGridSummary>,
    ) -> Result<SolveResponse, SessionError> {
        let normalized = normalized_trials(self.reference, &self.solver_name, &reports)?;
        let summary = summarize(self.problem.objective_sense(), &reports);
        Ok(SolveResponse {
            reports,
            normalized,
            grids,
            summary,
        })
    }
}

fn normalized_trials(
    reference: Option<f64>,
    solver_name: &str,
    reports: &[SolveReport],
) -> Result<Option<Vec<NormalizedTrial>>, SessionError> {
    let Some(reference) = reference else {
        return Ok(None);
    };
    reports
        .iter()
        .map(|report| {
            let objective = report.objective.ok_or_else(|| {
                invalid(format!(
                    "solver `{solver_name}` returned no native objective to normalize"
                ))
            })?;
            Ok(NormalizedTrial {
                objective: objective / reference,
                first_target_hit: report.run.first_target_hit,
            })
        })
        .collect::<Result<Vec<_>, SessionError>>()
        .map(Some)
}

fn summarize(sense: ObjectiveSense, reports: &[SolveReport]) -> RunSummary {
    let better = |a: f64, b: f64| match sense {
        ObjectiveSense::Maximize => a.max(b),
        ObjectiveSense::Minimize => a.min(b),
    };
    let mut best_objective: Option<f64> = None;
    let mut objective_sum = 0.0f64;
    let mut scored = 0usize;
    let mut best_energy = f64::INFINITY;
    let mut feasible_trials = 0usize;
    let mut total_energy = 0.0f64;
    let mut total_time = 0.0f64;
    for report in reports {
        if let Some(objective) = report.objective {
            best_objective = Some(match best_objective {
                Some(best) => better(best, objective),
                None => objective,
            });
            objective_sum += objective;
            scored += 1;
        }
        best_energy = best_energy.min(report.best_energy);
        feasible_trials += usize::from(report.feasible);
        total_energy += report.energy.total();
        total_time += report.time.total();
    }
    RunSummary {
        trials: reports.len(),
        feasible_trials,
        best_energy,
        best_objective,
        mean_objective: (scored > 0).then(|| objective_sum / scored as f64),
        total_energy,
        total_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ProblemSpec, RunPlan};
    use crate::{CimAnnealer, DirectAnnealer, MesaAnnealer};

    fn ring_spec(n: usize) -> ProblemSpec {
        ProblemSpec::MaxCut {
            vertices: n,
            edges: (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect(),
        }
    }

    fn cim_request(n: usize, iterations: usize) -> SolveRequest {
        SolveRequest::new(
            ring_spec(n),
            SolverSpec::Cim(CimAnnealer::new(iterations).with_flips(1)),
        )
    }

    #[test]
    fn single_run_matches_legacy_solve() {
        let request = cim_request(12, 400).with_run(RunPlan::Single { seed: 5 });
        let response = Session::new().run(&request).expect("ring encodes");
        assert_eq!(response.reports.len(), 1);
        let ring = fecim_ising::MaxCut::new(12, (0..12).map(|i| (i, (i + 1) % 12, 1.0)).collect())
            .unwrap();
        let legacy = CimAnnealer::new(400).with_flips(1).solve(&ring, 5).unwrap();
        assert_eq!(response.reports[0].best_energy, legacy.best_energy);
        assert_eq!(response.reports[0].best_spins, legacy.best_spins);
        assert_eq!(response.summary.trials, 1);
        assert_eq!(response.summary.best_energy, legacy.best_energy);
        assert!(response.grids.is_empty());
        assert!(response.normalized.is_none());
    }

    #[test]
    fn ensemble_runs_in_trial_order_with_reference_scoring() {
        let request = cim_request(10, 200)
            .with_run(RunPlan::Ensemble {
                trials: 4,
                base_seed: 21,
                threads: Some(1),
            })
            .with_reference(10.0);
        let response = Session::new().run(&request).expect("ring encodes");
        assert_eq!(response.reports.len(), 4);
        let normalized = response.normalized.as_ref().expect("reference set");
        for (report, trial) in response.reports.iter().zip(normalized) {
            assert_eq!(trial.objective, report.objective.unwrap() / 10.0);
        }
        let pairs = response.normalized_pairs().unwrap();
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn backend_plan_overrides_solver_device_knobs() {
        // A solver that *carries* device-in-loop settings, run under an
        // Analytic plan: the plan wins, so results match the plain solver.
        let configured = CimAnnealer::new(150)
            .with_flips(1)
            .with_tiled_device_in_loop(CrossbarConfig::paper_defaults(), 4);
        let request = SolveRequest::new(ring_spec(10), SolverSpec::Cim(configured))
            .with_run(RunPlan::Single { seed: 3 });
        let response = Session::new().run(&request).unwrap();
        assert!(
            response.reports[0].run.activity.is_none(),
            "analytic plan must strip the device backend"
        );
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        let mesa = SolveRequest::new(ring_spec(8), SolverSpec::Mesa(MesaAnnealer::new(50)))
            .with_backend(BackendPlan::DeviceInLoop {
                fidelity: Fidelity::Ideal,
                tile_rows: None,
            });
        assert!(matches!(
            Session::new().run(&mesa),
            Err(SessionError::InvalidRequest(_))
        ));
        let direct_batched = SolveRequest::new(
            ring_spec(8),
            SolverSpec::Direct(DirectAnnealer::cim_asic(50)),
        )
        .with_backend(BackendPlan::Batched {
            tile_rows: 4,
            instances: 2,
        });
        assert!(matches!(
            Session::new().run(&direct_batched),
            Err(SessionError::InvalidRequest(_))
        ));
        let zero_trials = cim_request(8, 50).with_run(RunPlan::Ensemble {
            trials: 0,
            base_seed: 0,
            threads: None,
        });
        assert!(matches!(
            Session::new().run(&zero_trials),
            Err(SessionError::InvalidRequest(_))
        ));
        // A wire-deserializable thread cap of zero must error, not panic
        // in the ensemble runner.
        let zero_threads = cim_request(8, 50).with_run(RunPlan::Ensemble {
            trials: 2,
            base_seed: 0,
            threads: Some(0),
        });
        assert!(matches!(
            Session::new().run(&zero_threads),
            Err(SessionError::InvalidRequest(_))
        ));
        let zero_tiles = cim_request(8, 50).with_backend(BackendPlan::Batched {
            tile_rows: 0,
            instances: 2,
        });
        assert!(matches!(
            Session::new().run(&zero_tiles),
            Err(SessionError::InvalidRequest(_))
        ));
    }

    #[test]
    fn batched_backend_chunks_large_ensembles_into_grids() {
        let request = cim_request(16, 60)
            .with_backend(BackendPlan::Batched {
                tile_rows: 4,
                instances: 2,
            })
            .with_run(RunPlan::Ensemble {
                trials: 5,
                base_seed: 7,
                threads: None,
            });
        let response = Session::new().run(&request).expect("ring encodes");
        assert_eq!(response.reports.len(), 5);
        assert_eq!(response.grids.len(), 3, "2 + 2 + 1 replicas");
        assert_eq!(response.grids[0].instances, 2);
        assert_eq!(response.grids[2].instances, 1);
        // Chunked seeds stay aligned with the flat trial numbering.
        let flat = cim_request(16, 60)
            .with_backend(BackendPlan::Batched {
                tile_rows: 4,
                instances: 5,
            })
            .with_run(RunPlan::Ensemble {
                trials: 5,
                base_seed: 7,
                threads: None,
            });
        let flat_response = Session::new().run(&flat).unwrap();
        for (a, b) in response.reports.iter().zip(&flat_response.reports) {
            assert_eq!(a.best_energy, b.best_energy);
            assert_eq!(a.best_spins, b.best_spins);
        }
    }

    #[test]
    fn warm_started_zero_iteration_run_echoes_fresh_run_result() {
        // A fresh run's best spins, fed back as `initial_spins` with a
        // zero-iteration solver, come back verbatim with the same energy
        // — the contract campaign round-chaining builds on.
        let fresh = Session::new()
            .run(&cim_request(12, 300).with_run(RunPlan::Single { seed: 9 }))
            .expect("ring encodes");
        let best = fresh.reports[0].best_spins.clone();
        let warm_request = SolveRequest::new(
            ring_spec(12),
            SolverSpec::Cim(CimAnnealer::new(0).with_flips(1)),
        )
        .with_run(RunPlan::Single { seed: 9 })
        .with_initial_spins(best.as_slice().to_vec());
        let warm = Session::new().run(&warm_request).expect("ring encodes");
        assert_eq!(warm.reports[0].best_spins, best);
        assert_eq!(warm.reports[0].best_energy, fresh.reports[0].best_energy);
    }

    #[test]
    fn warm_start_applies_to_batched_route() {
        let fresh = cim_request(16, 60).with_backend(BackendPlan::Batched {
            tile_rows: 4,
            instances: 2,
        });
        let fresh_out = Session::new().run(&fresh).unwrap();
        let best = fresh_out.reports[0].best_spins.clone();
        let warm = SolveRequest::new(
            ring_spec(16),
            SolverSpec::Cim(CimAnnealer::new(0).with_flips(1)),
        )
        .with_backend(BackendPlan::Batched {
            tile_rows: 4,
            instances: 2,
        })
        .with_initial_spins(best.as_slice().to_vec());
        let warm_out = Session::new().run(&warm).unwrap();
        assert_eq!(warm_out.reports[0].best_spins, best);
    }

    #[test]
    fn invalid_initial_spins_are_rejected() {
        let wrong_len = cim_request(8, 50).with_initial_spins(vec![1; 7]);
        assert!(matches!(
            Session::new().run(&wrong_len),
            Err(SessionError::InvalidRequest(_))
        ));
        let bad_value = cim_request(8, 50).with_initial_spins(vec![1, -1, 1, -1, 1, -1, 1, 0]);
        assert!(matches!(
            Session::new().run(&bad_value),
            Err(SessionError::InvalidRequest(_))
        ));
    }

    #[test]
    fn errors_format_and_convert() {
        let err = invalid("zero trials");
        assert_eq!(err.to_string(), "invalid request: zero trials");
        assert!(matches!(err.into_ising(), IsingError::InvalidProblem(_)));
        let problem: SessionError = IsingError::InvalidProblem("x".into()).into();
        assert!(problem.to_string().contains("invalid problem"));
        use std::error::Error;
        assert!(problem.source().is_some());
    }
}
