//! Text rendering of experiment results: the figure/table surrogates the
//! bench harness prints, including the paper's Table 1 solver summary.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use fecim_hwcost::AnnealerKind;

use crate::experiment::ExperimentOutcome;

/// Render an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<String>, widths: &[usize], out: &mut String| {
        for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = w);
        }
        out.push('\n');
    };
    render_row(
        headers.iter().map(|h| h.to_string()).collect(),
        &widths,
        &mut out,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(row.clone(), &widths, &mut out);
    }
    out
}

/// Engineering-notation formatting for joules/seconds.
pub fn format_si(value: f64, unit: &str) -> String {
    let abs = value.abs();
    let (scaled, prefix) = if abs == 0.0 {
        (0.0, "")
    } else if abs >= 1.0 {
        (value, "")
    } else if abs >= 1e-3 {
        (value * 1e3, "m")
    } else if abs >= 1e-6 {
        (value * 1e6, "µ")
    } else if abs >= 1e-9 {
        (value * 1e9, "n")
    } else {
        (value * 1e12, "p")
    };
    format!("{scaled:.2} {prefix}{unit}")
}

/// Render the Fig. 8(a)/9(a)/10 summary of an experiment outcome.
pub fn format_outcome(outcome: &ExperimentOutcome) -> String {
    let headers = [
        "group",
        "n",
        "iters",
        "ours cut",
        "ours succ",
        "base cut",
        "base succ",
        "E ratio FPGA",
        "E ratio ASIC",
        "t ratio FPGA",
        "t ratio ASIC",
    ];
    let e_fpga = outcome.energy_ratios(AnnealerKind::CimFpga);
    let e_asic = outcome.energy_ratios(AnnealerKind::CimAsic);
    let t_fpga = outcome.time_ratios(AnnealerKind::CimFpga);
    let t_asic = outcome.time_ratios(AnnealerKind::CimAsic);
    let rows: Vec<Vec<String>> = outcome
        .groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            vec![
                format!("{:?}", g.group),
                g.spins.to_string(),
                g.iterations.to_string(),
                format!("{:.3}", g.in_situ.mean_normalized_cut),
                format!("{:.0}%", g.in_situ.success_rate * 100.0),
                format!("{:.3}", g.baseline.mean_normalized_cut),
                format!("{:.0}%", g.baseline.success_rate * 100.0),
                format!("{:.0}x", e_fpga[i].1),
                format!("{:.0}x", e_asic[i].1),
                format!("{:.2}x", t_fpga[i].1),
                format!("{:.2}x", t_asic[i].1),
            ]
        })
        .collect();
    format_table(&headers, &rows)
}

/// One row of the paper's Table 1 (solver summary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverRow {
    /// Citation / name.
    pub reference: String,
    /// COP class evaluated.
    pub cop: String,
    /// Per-iteration complexity.
    pub complexity: String,
    /// Whether an `eˣ` unit is required.
    pub exp_computation: bool,
    /// Crossbar / hardware substrate.
    pub hardware: String,
    /// Largest problem size demonstrated.
    pub problem_size: String,
    /// Time to solution (as reported).
    pub time_to_solution: String,
    /// Energy to solution (as reported).
    pub energy_to_solution: String,
    /// Average success rate, percent (`None` when unreported).
    pub success_rate: Option<f64>,
}

/// The literature rows of Table 1 (constants transcribed from the paper).
pub fn literature_rows() -> Vec<SolverRow> {
    vec![
        SolverRow {
            reference: "[39] memristor Hopfield".into(),
            cop: "Max-Cut".into(),
            complexity: "O(n^2)".into(),
            exp_computation: true,
            hardware: "memristor".into(),
            problem_size: "60 node".into(),
            time_to_solution: "6.6 us".into(),
            energy_to_solution: "0.07 uJ".into(),
            success_rate: Some(65.0),
        },
        SolverRow {
            reference: "[7] FeFET CiM".into(),
            cop: "Max-Cut/coloring".into(),
            complexity: "O(n^2)".into(),
            exp_computation: true,
            hardware: "FeFET".into(),
            problem_size: "21 node".into(),
            time_to_solution: "5.1 us".into(),
            energy_to_solution: "0.2 uJ".into(),
            success_rate: None,
        },
        SolverRow {
            reference: "[13] ReRAM SA".into(),
            cop: "Knapsack".into(),
            complexity: "O(n^2)".into(),
            exp_computation: true,
            hardware: "RRAM".into(),
            problem_size: "10 node".into(),
            time_to_solution: "3.8 us".into(),
            energy_to_solution: "-".into(),
            success_rate: Some(92.4),
        },
        SolverRow {
            reference: "[15] HyCiM".into(),
            cop: "Quadratic knapsack".into(),
            complexity: "O(n^2)".into(),
            exp_computation: true,
            hardware: "FeFET".into(),
            problem_size: "100 node".into(),
            time_to_solution: "1.3 ms".into(),
            energy_to_solution: "2.1 uJ".into(),
            success_rate: Some(98.54),
        },
        SolverRow {
            reference: "[14] C-Nash".into(),
            cop: "Nash equilibrium".into(),
            complexity: "O(n^2)".into(),
            exp_computation: true,
            hardware: "FeFET".into(),
            problem_size: "104 node".into(),
            time_to_solution: "0.08 s".into(),
            energy_to_solution: "-".into(),
            success_rate: Some(81.9),
        },
    ]
}

/// Build the "This Work" row from measured experiment data.
///
/// Time/energy-to-solution use the measured mean iterations-to-target of
/// successful runs (Table 1's definition); when no run of the largest
/// group succeeded, the full-budget cost is reported instead.
pub fn this_work_row(outcome: &ExperimentOutcome) -> SolverRow {
    let largest = outcome
        .groups
        .iter()
        .max_by_key(|g| g.spins)
        // audit:allow(panic-path): `run_experiment` always emits one group per problem size and sizes are never empty; an empty outcome is a harness bug
        .expect("nonempty outcome");
    let ours = largest
        .hardware
        .iter()
        .find(|h| h.kind == AnnealerKind::InSitu)
        // audit:allow(panic-path): every experiment group records hardware cost rows for both annealer kinds, InSitu included, by construction
        .expect("in-situ cost present");
    // Fraction of the iteration budget actually needed to reach the
    // target, on average over successful runs.
    let to_solution_fraction = largest
        .in_situ
        .mean_iterations_to_target
        .map(|iters| iters / largest.iterations as f64)
        .unwrap_or(1.0);
    SolverRow {
        reference: "This Work".into(),
        cop: "Max-Cut".into(),
        complexity: "O(n)".into(),
        exp_computation: false,
        hardware: "DG FeFET".into(),
        problem_size: format!("{} node", largest.spins),
        time_to_solution: format_si(ours.time * to_solution_fraction, "s"),
        energy_to_solution: format_si(ours.energy * to_solution_fraction, "J"),
        success_rate: Some(outcome.in_situ_mean_success() * 100.0),
    }
}

/// Render Table 1: literature rows plus the measured "This Work" row.
pub fn format_table1(outcome: &ExperimentOutcome) -> String {
    let mut rows = literature_rows();
    rows.push(this_work_row(outcome));
    let headers = [
        "solver",
        "COP",
        "complexity",
        "e^x",
        "hardware",
        "size",
        "time",
        "energy",
        "success",
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.reference.clone(),
                r.cop.clone(),
                r.complexity.clone(),
                if r.exp_computation { "yes" } else { "no" }.into(),
                r.hardware.clone(),
                r.problem_size.clone(),
                r.time_to_solution.clone(),
                r.energy_to_solution.clone(),
                r.success_rate
                    .map(|s| format!("{s:.1}%"))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    format_table(&headers, &cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_separator() {
        let t = format_table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = format_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn si_formatting() {
        assert_eq!(format_si(0.9e-6, "J"), "900.00 nJ");
        assert_eq!(format_si(2.1e-6, "J"), "2.10 µJ");
        assert_eq!(format_si(4.6e-3, "s"), "4.60 ms");
        assert_eq!(format_si(2.5e-12, "J"), "2.50 pJ");
        assert_eq!(format_si(1.5, "s"), "1.50 s");
        assert_eq!(format_si(0.0, "J"), "0.00 J");
    }

    #[test]
    fn literature_rows_match_paper_count() {
        // Table 1 has five literature solvers plus this work.
        assert_eq!(literature_rows().len(), 5);
        assert!(literature_rows().iter().all(|r| r.exp_computation));
    }
}
