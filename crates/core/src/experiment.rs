//! The paper's evaluation protocol (Sec. 4) as a reusable experiment
//! runner: the 30-instance Max-Cut suite, parallel solver ensembles
//! (rayon-backed, deterministic at any thread count), success-rate
//! scoring against 90 %-of-optimum targets, and hardware energy/time
//! accounting — the data behind Figs. 8, 9, 10 and Table 1.
//!
//! Every measured ensemble is submitted as a [`SolveRequest`] and
//! executed by a [`Session`], so the protocol never names an execution
//! path beyond the two architecture choices it compares; swapping either
//! is a one-line change in [`run_experiment`]'s request construction.

use serde::{Deserialize, Serialize};

use fecim_anneal::{multi_start_local_search, success_rate, Aggregate};
use fecim_gset::{paper_suite, quick_suite, SizeGroup, SuiteInstance};
use fecim_hwcost::{AnnealerKind, CostModel, IterationProfile};
use fecim_ising::{CopProblem, IsingError};

use crate::annealer::CimAnnealer;
use crate::baselines::DirectAnnealer;
use crate::request::{ProblemSpec, RunPlan, SolveRequest, SolverSpec};
use crate::session::Session;

/// Evaluation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Scaled-down suite (≈10 % node counts, 2 instances/group, 10 runs):
    /// minutes on a laptop, same qualitative shape.
    Quick,
    /// The paper's full protocol: 30 instances, 100 runs each, iteration
    /// budgets 700/1000/10⁴/10⁵.
    Paper,
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Evaluation scale.
    pub scale: Scale,
    /// Monte-Carlo runs per instance (paper: 100).
    pub runs_per_instance: usize,
    /// Success target as a fraction of the reference optimum (paper: 0.9).
    pub target_fraction: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Local-search starts for the reference optimum.
    pub reference_starts: usize,
    /// Physical tile height for hardware-cost accounting (`None` = one
    /// monolithic array per instance): row/column wire events are priced
    /// at tile geometry and the per-iteration activated-tile counts are
    /// reported per architecture.
    pub tile_rows: Option<usize>,
    /// Skip size groups whose instances exceed this many spins (used by
    /// the golden-regression suite and CI smoke runs to bound cost).
    pub max_spins: Option<usize>,
    /// Problem instances batched onto one shared tile grid for the
    /// hardware accounting (`1` = the classic one-grid-per-instance
    /// mapping). Sizes the reported shared grid
    /// ([`HardwareCost::grid_tiles`]); per-cycle utilization under full
    /// batching is batch-invariant by construction (grid and concurrent
    /// activations scale together — throughput grows at constant
    /// utilization, which is the batching argument). Never affects
    /// solution quality: batching is a placement change.
    pub batch_instances: usize,
}

impl ExperimentConfig {
    /// Defaults for a scale.
    pub fn new(scale: Scale) -> ExperimentConfig {
        match scale {
            Scale::Quick => ExperimentConfig {
                scale,
                runs_per_instance: 10,
                target_fraction: 0.9,
                seed: 2025,
                reference_starts: 8,
                tile_rows: None,
                max_spins: None,
                batch_instances: 1,
            },
            Scale::Paper => ExperimentConfig {
                scale,
                runs_per_instance: 100,
                target_fraction: 0.9,
                seed: 2025,
                reference_starts: 20,
                tile_rows: None,
                max_spins: None,
                batch_instances: 1,
            },
        }
    }

    /// The benchmark instances for this scale.
    pub fn instances(&self) -> Vec<SuiteInstance> {
        match self.scale {
            Scale::Quick => quick_suite(0.1),
            Scale::Paper => paper_suite(),
        }
    }

    /// Iteration budget for a group at this scale. Quick mode shrinks the
    /// budgets by the same factor as the instance sizes (10×), preserving
    /// the iterations-per-spin pressure that drives the Fig. 10
    /// separation between the annealers.
    pub fn iterations_for(&self, group: SizeGroup) -> usize {
        let full = group.iteration_budget();
        match self.scale {
            Scale::Quick => (full / 10).clamp(64, 10_000),
            Scale::Paper => full,
        }
    }
}

/// Solution-quality statistics of one annealer on one instance group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlgoStats {
    /// Mean cut normalized by the reference optimum.
    pub mean_normalized_cut: f64,
    /// Standard deviation of the normalized cut.
    pub std_normalized_cut: f64,
    /// Fraction of runs reaching the success target.
    pub success_rate: f64,
    /// Mean iterations to first reach the target, over successful runs
    /// (`None` when no run succeeded) — the Table 1 time-to-solution
    /// numerator.
    pub mean_iterations_to_target: Option<f64>,
}

/// Hardware cost of one annealer on one group (per run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareCost {
    /// Architecture.
    pub kind: AnnealerKind,
    /// Energy per run, joules.
    pub energy: f64,
    /// Time per run, seconds.
    pub time: f64,
    /// Physical tiles activated per iteration under the configured
    /// mapping (1 for the monolithic array).
    pub tiles_per_iteration: u64,
    /// Physical tiles of the shared grid implied by
    /// [`ExperimentConfig::batch_instances`] (see
    /// [`IterationProfile::grid_tiles`]).
    pub grid_tiles: u64,
    /// Fraction of the shared grid a fully batched iteration activates
    /// (see [`IterationProfile::batch_utilization`]; batch-invariant —
    /// serving the same grid one instance per cycle would divide it by
    /// the batch size).
    pub grid_utilization: f64,
}

/// Everything measured for one size group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupOutcome {
    /// The size group.
    pub group: SizeGroup,
    /// Vertices per instance at this scale.
    pub spins: usize,
    /// Iterations per run.
    pub iterations: usize,
    /// Instances evaluated.
    pub instances: usize,
    /// Monte-Carlo runs per instance.
    pub runs_per_instance: usize,
    /// Proposed in-situ annealer quality.
    pub in_situ: AlgoStats,
    /// Baseline (direct-E Metropolis; CiM/FPGA and CiM/ASIC share it).
    pub baseline: AlgoStats,
    /// Per-architecture hardware cost of one run.
    pub hardware: Vec<HardwareCost>,
}

/// Full experiment outcome (all groups).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Configuration used.
    pub config: ExperimentConfig,
    /// Per-group results in size order.
    pub groups: Vec<GroupOutcome>,
}

impl ExperimentOutcome {
    /// Mean success rate of the in-situ annealer across groups (the
    /// paper's "98 % average" headline).
    pub fn in_situ_mean_success(&self) -> f64 {
        mean(self.groups.iter().map(|g| g.in_situ.success_rate))
    }

    /// Mean success rate of the baselines across groups (the paper's
    /// "50 %" comparison point).
    pub fn baseline_mean_success(&self) -> f64 {
        mean(self.groups.iter().map(|g| g.baseline.success_rate))
    }

    /// Energy ratio `kind / in-situ` per group (Fig. 8a bar heights).
    pub fn energy_ratios(&self, kind: AnnealerKind) -> Vec<(SizeGroup, f64)> {
        self.ratios(kind, |h| h.energy)
    }

    /// Time ratio `kind / in-situ` per group (Fig. 9a bar heights).
    pub fn time_ratios(&self, kind: AnnealerKind) -> Vec<(SizeGroup, f64)> {
        self.ratios(kind, |h| h.time)
    }

    fn ratios(
        &self,
        kind: AnnealerKind,
        metric: impl Fn(&HardwareCost) -> f64,
    ) -> Vec<(SizeGroup, f64)> {
        self.groups
            .iter()
            .map(|g| {
                let get = |k: AnnealerKind| {
                    g.hardware
                        .iter()
                        .find(|h| h.kind == k)
                        .map(&metric)
                        .unwrap_or(f64::NAN)
                };
                (g.group, get(kind) / get(AnnealerKind::InSitu))
            })
            .collect()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Run the full efficiency-and-quality comparison (Figs. 8a, 9a, 10).
///
/// Solution quality uses the software-exact backend (the algorithms are
/// identical to the hardware flow; device effects are studied separately
/// in the ablation benches). Hardware costs come from the analytic
/// per-iteration activity model, which an integration test pins against
/// the cycle-level crossbar simulator.
///
/// # Errors
///
/// Propagates the first instance-encoding error instead of panicking
/// (impossible for the built-in Max-Cut suites, which always encode).
pub fn run_experiment(config: ExperimentConfig) -> Result<ExperimentOutcome, IsingError> {
    let instances = config.instances();
    let mut groups = Vec::new();
    for group in SizeGroup::all() {
        let members: Vec<&SuiteInstance> = instances.iter().filter(|i| i.group == group).collect();
        if members.is_empty() {
            continue;
        }
        if let Some(max) = config.max_spins {
            if members[0].config.vertex_count > max {
                continue;
            }
        }
        groups.push(run_group(&config, group, &members)?);
    }
    Ok(ExperimentOutcome { config, groups })
}

fn run_group(
    config: &ExperimentConfig,
    group: SizeGroup,
    members: &[&SuiteInstance],
) -> Result<GroupOutcome, IsingError> {
    let iterations = config.iterations_for(group);
    let mut in_situ_runs: Vec<(f64, Option<usize>)> = Vec::new();
    let mut baseline_runs: Vec<(f64, Option<usize>)> = Vec::new();
    let mut spins = 0usize;
    let session = Session::new();

    for (inst_idx, inst) in members.iter().enumerate() {
        let graph = inst.graph();
        spins = graph.vertex_count();
        let problem = graph.to_max_cut();
        let model = problem.to_ising()?;
        let reference = {
            let (_, energy) =
                multi_start_local_search(model.couplings(), config.reference_starts, config.seed);
            problem.cut_from_energy(energy)
        };
        // Target in energy units: the Ising energy of a 90%-of-optimum cut.
        let target_energy = problem.energy_from_cut(config.target_fraction * reference);
        let run = RunPlan::Ensemble {
            trials: config.runs_per_instance,
            base_seed: config.seed ^ ((inst_idx as u64) << 32),
            threads: None,
        };
        let spec = ProblemSpec::from_graph(&graph);
        let ours = CimAnnealer::new(iterations).with_target_energy(target_energy);
        let base = DirectAnnealer::cim_asic(iterations).with_target_energy(target_energy);
        for (solver, runs) in [
            (SolverSpec::Cim(ours), &mut in_situ_runs),
            (SolverSpec::Direct(base), &mut baseline_runs),
        ] {
            let request = SolveRequest::new(spec.clone(), solver)
                .with_run(run)
                .with_reference(reference);
            let response = session.run(&request).map_err(|e| e.into_ising())?;
            runs.extend(
                response
                    .normalized_pairs()
                    // audit:allow(panic-path): the request was built `with_reference` just above, so the response always carries normalized pairs
                    .expect("request carries a reference"),
            );
        }
    }

    let algo_stats = |runs: &[(f64, Option<usize>)]| {
        let cuts: Vec<f64> = runs.iter().map(|r| r.0).collect();
        let hits: Vec<f64> = runs.iter().filter_map(|r| r.1).map(|h| h as f64).collect();
        let agg = Aggregate::of(&cuts);
        AlgoStats {
            mean_normalized_cut: agg.mean,
            std_normalized_cut: agg.std_dev,
            success_rate: success_rate(&cuts, config.target_fraction, true),
            mean_iterations_to_target: if hits.is_empty() {
                None
            } else {
                Some(Aggregate::of(&hits).mean)
            },
        }
    };

    let (cost_model, profile) = match config.tile_rows {
        None => (
            CostModel::paper_22nm(spins, 4),
            IterationProfile::paper(spins),
        ),
        Some(tr) => (
            CostModel::paper_22nm_tiled(spins, 4, tr),
            IterationProfile::paper_tiled(spins, tr),
        ),
    };
    let profile = profile.batched(config.batch_instances.max(1));
    let hardware = AnnealerKind::all()
        .into_iter()
        .map(|kind| HardwareCost {
            kind,
            energy: profile.run_energy(kind, &cost_model, iterations).total(),
            time: profile.run_time(kind, &cost_model, iterations).total(),
            tiles_per_iteration: profile.activated_tiles(kind),
            grid_tiles: profile.grid_tiles(),
            grid_utilization: profile.batch_utilization(kind),
        })
        .collect();

    Ok(GroupOutcome {
        group,
        spins,
        iterations,
        instances: members.len(),
        runs_per_instance: config.runs_per_instance,
        in_situ: algo_stats(&in_situ_runs),
        baseline: algo_stats(&baseline_runs),
        hardware,
    })
}

/// Cumulative hardware cost vs iteration count for one problem size — the
/// series of Figs. 8(b) and 9(b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendPoint {
    /// Iteration count.
    pub iterations: usize,
    /// Cumulative energy per architecture, joules (same order as
    /// [`AnnealerKind::all`]).
    pub energy: Vec<f64>,
    /// Cumulative time per architecture, seconds.
    pub time: Vec<f64>,
}

/// Compute the iteration-sweep trends for an `n`-spin instance
/// (paper: `n = 1000`, sweep 0..1000).
pub fn cost_trend(spins: usize, max_iterations: usize, points: usize) -> Vec<TrendPoint> {
    assert!(points >= 2, "need at least two points");
    let cost_model = CostModel::paper_22nm(spins, 4);
    let profile = IterationProfile::paper(spins);
    (0..points)
        .map(|k| {
            let iterations = max_iterations * k / (points - 1);
            let energy = AnnealerKind::all()
                .into_iter()
                .map(|kind| profile.run_energy(kind, &cost_model, iterations).total())
                .collect();
            let time = AnnealerKind::all()
                .into_iter()
                .map(|kind| profile.run_time(kind, &cost_model, iterations).total())
                .collect();
            TrendPoint {
                iterations,
                energy,
                time,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_reproduces_paper_shape() {
        // The structural claims of Figs. 8–10 at quick scale:
        // (i) in-situ success ≥ baseline success;
        // (ii) energy ratios grow with problem size;
        // (iii) time ratios ≈ 8 for both baselines.
        let mut config = ExperimentConfig::new(Scale::Quick);
        config.runs_per_instance = 3;
        config.reference_starts = 4;
        let outcome = run_experiment(config).expect("quick suite encodes");
        assert_eq!(outcome.groups.len(), 4);

        assert!(
            outcome.in_situ_mean_success() >= outcome.baseline_mean_success(),
            "in-situ {} vs baseline {}",
            outcome.in_situ_mean_success(),
            outcome.baseline_mean_success()
        );

        let ratios = outcome.energy_ratios(AnnealerKind::CimAsic);
        assert!(ratios.windows(2).all(|w| w[1].1 > w[0].1), "{ratios:?}");

        for (_, r) in outcome.time_ratios(AnnealerKind::CimAsic) {
            assert!(r > 6.0 && r < 10.0, "time ratio {r}");
        }
        for (_, r) in outcome.time_ratios(AnnealerKind::CimFpga) {
            assert!(r > 6.0 && r < 10.5, "time ratio {r}");
        }
    }

    #[test]
    fn cost_trend_is_linear_in_iterations() {
        let trend = cost_trend(1000, 1000, 6);
        assert_eq!(trend.len(), 6);
        assert_eq!(trend[0].iterations, 0);
        assert_eq!(trend[0].energy.iter().sum::<f64>(), 0.0);
        // Linearity: value at 1000 = 5 × value at 200.
        for arch in 0..3 {
            let e200 = trend[1].energy[arch];
            let e1000 = trend[5].energy[arch];
            assert!((e1000 / e200 - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tiled_experiment_reports_activated_tiles() {
        let mut config = ExperimentConfig::new(Scale::Quick);
        config.runs_per_instance = 2;
        config.reference_starts = 2;
        config.max_spins = Some(100);
        config.tile_rows = Some(32);
        let outcome = run_experiment(config).expect("quick suite encodes");
        // max_spins keeps only the 80- and 100-spin quick groups.
        assert_eq!(outcome.groups.len(), 2);
        for g in &outcome.groups {
            let ours = g
                .hardware
                .iter()
                .find(|h| h.kind == AnnealerKind::InSitu)
                .unwrap();
            let base = g
                .hardware
                .iter()
                .find(|h| h.kind == AnnealerKind::CimAsic)
                .unwrap();
            // The in-situ read touches only the flipped stripes; the
            // baseline lights the whole grid.
            assert!(ours.tiles_per_iteration < base.tiles_per_iteration);
            assert!(base.tiles_per_iteration >= 9, "n={} grid", g.spins);
        }
    }

    #[test]
    fn batch_instances_scales_reported_grid_at_constant_utilization() {
        let mut config = ExperimentConfig::new(Scale::Quick);
        config.runs_per_instance = 2;
        config.reference_starts = 2;
        config.max_spins = Some(80);
        config.tile_rows = Some(32);
        let solo = run_experiment(config).expect("quick suite encodes");
        config.batch_instances = 4;
        let batched = run_experiment(config).expect("quick suite encodes");
        let get = |o: &ExperimentOutcome| o.groups[0].hardware[0];
        // The knob is observable: the shared grid grows with the batch…
        assert_eq!(get(&batched).grid_tiles, 4 * get(&solo).grid_tiles);
        // …while per-cycle utilization and per-run cost stay put (the
        // batching claim: throughput scales at constant utilization).
        assert_eq!(get(&batched).grid_utilization, get(&solo).grid_utilization);
        assert_eq!(get(&batched).energy, get(&solo).energy);
        assert_eq!(
            batched.groups[0].in_situ.mean_normalized_cut,
            solo.groups[0].in_situ.mean_normalized_cut,
            "placement change never touches solution quality"
        );
    }

    #[test]
    fn experiment_config_budgets() {
        let q = ExperimentConfig::new(Scale::Quick);
        // Quick mode: 10x smaller instances AND 10x smaller budgets.
        assert_eq!(q.iterations_for(SizeGroup::N800), 70);
        assert_eq!(q.iterations_for(SizeGroup::N1000), 100);
        assert_eq!(q.iterations_for(SizeGroup::N2000), 1000);
        assert_eq!(q.iterations_for(SizeGroup::N3000), 10_000);
        let p = ExperimentConfig::new(Scale::Paper);
        assert_eq!(p.iterations_for(SizeGroup::N3000), 100_000);
        assert_eq!(p.instances().len(), 30);
    }
}
