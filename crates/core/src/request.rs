//! The serde-serializable job API: one [`SolveRequest`] describes *what*
//! to solve (a [`ProblemSpec`]), *how* to anneal it (a [`SolverSpec`]),
//! *where* the energy measurements come from (a typed [`BackendPlan`])
//! and *how many* seeded trials to run (a [`RunPlan`]).
//!
//! A request is plain data: it round-trips through JSON unchanged, so a
//! network or queue front-end is a serialization boundary, not a
//! refactor. Execution lives in [`Session::run`](crate::Session::run),
//! which routes the request to the same solver/ensemble/batched
//! machinery the builder-style API uses — Ideal-fidelity results are
//! bit-identical to the legacy entry points.

use serde::{Deserialize, Serialize};

use fecim_crossbar::Fidelity;
use fecim_gset::{GeneratorConfig, Graph};
use fecim_ising::{CopProblem, GraphColoring, IsingError, Knapsack, MaxCut, Qubo, RawIsing};

use crate::annealer::CimAnnealer;
use crate::baselines::DirectAnnealer;
use crate::mesa_solver::MesaAnnealer;
use crate::sb_solver::SbAnnealer;

/// A serializable description of the combinatorial problem to solve.
///
/// Every variant carries only plain data, so a spec can be shipped over
/// a wire and rebuilt with [`ProblemSpec::build`] on the other side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProblemSpec {
    /// An explicit weighted Max-Cut instance.
    MaxCut {
        /// Vertex count.
        vertices: usize,
        /// Weighted edges `(u, v, w)`.
        edges: Vec<(usize, usize, f64)>,
    },
    /// A Gset-style generated Max-Cut instance (deterministic from the
    /// generator's seed, so the spec stays tiny at any problem size).
    Generated(GeneratorConfig),
    /// A 0/1 knapsack instance.
    Knapsack {
        /// Item values.
        values: Vec<u64>,
        /// Item weights.
        weights: Vec<u64>,
        /// Weight capacity.
        capacity: u64,
    },
    /// A graph `k`-coloring instance (objective: conflict count, lower
    /// is better).
    Coloring {
        /// Vertex count.
        vertices: usize,
        /// Number of colors.
        colors: usize,
        /// Edges `(u, v)`.
        edges: Vec<(usize, usize)>,
    },
    /// A raw QUBO payload: minimize `xᵀQx` over binary `x`, no named
    /// generator or COP encoding required. `q` is the full square
    /// coefficient matrix, row-major; `q[i][j] + q[j][i]` weight the
    /// pair `x_i·x_j` and diagonal entries are the linear terms.
    Qubo {
        /// Square coefficient matrix.
        q: Vec<Vec<f64>>,
    },
    /// A raw Ising payload: minimize `H(σ) = σᵀJσ + hᵀσ` over
    /// `σ ∈ {−1,+1}ⁿ`. The native objective is the energy itself.
    Ising {
        /// Linear fields, length `n`.
        h: Vec<f64>,
        /// Symmetric zero-diagonal coupling matrix, `n×n` row-major
        /// (carry linear terms in `h`).
        j: Vec<Vec<f64>>,
    },
}

impl ProblemSpec {
    /// The Max-Cut spec of a benchmark graph (explicit edge list, so the
    /// rebuilt problem is bit-identical to `graph.to_max_cut()`).
    pub fn from_graph(graph: &Graph) -> ProblemSpec {
        ProblemSpec::MaxCut {
            vertices: graph.vertex_count(),
            edges: graph.edges().to_vec(),
        }
    }

    /// Build the concrete [`CopProblem`] this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates the problem type's own construction errors (index out
    /// of range, self-loops, zero colors, …).
    pub fn build(&self) -> Result<Box<dyn CopProblem + Send + Sync>, IsingError> {
        Ok(match self {
            ProblemSpec::MaxCut { vertices, edges } => {
                Box::new(MaxCut::new(*vertices, edges.clone())?)
            }
            ProblemSpec::Generated(config) => Box::new(config.generate().to_max_cut()),
            ProblemSpec::Knapsack {
                values,
                weights,
                capacity,
            } => Box::new(Knapsack::new(values.clone(), weights.clone(), *capacity)?),
            ProblemSpec::Coloring {
                vertices,
                colors,
                edges,
            } => Box::new(GraphColoring::new(*vertices, *colors, edges.clone())?),
            ProblemSpec::Qubo { q } => Box::new(Qubo::from_matrix(q)?),
            ProblemSpec::Ising { h, j } => Box::new(RawIsing::new(h.clone(), j)?),
        })
    }
}

/// Which annealer architecture executes the request.
///
/// Each variant embeds the full solver configuration (iterations, flips,
/// annealing factor, schedule knobs, …) — the same builder types the
/// library API uses, which already serialize. Device-backend settings on
/// the embedded solver are ignored: the request's [`BackendPlan`] is the
/// single authority on where energy measurements come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolverSpec {
    /// The proposed ferroelectric CiM in-situ annealer.
    Cim(CimAnnealer),
    /// A direct-E baseline (CiM/FPGA or CiM/ASIC exponential unit).
    Direct(DirectAnnealer),
    /// The MESA multi-epoch baseline (software schedule on direct-E
    /// hardware; analytic backend only).
    Mesa(MesaAnnealer),
    /// The simulated-bifurcation family (bSB/dSB) on the same crossbar:
    /// one full-vector MVM read per step instead of per-flip sensing.
    Sb(SbAnnealer),
}

impl SolverSpec {
    /// Human-readable architecture name (mirrors
    /// [`Solver::name`](crate::Solver::name)).
    pub fn name(&self) -> &str {
        match self {
            SolverSpec::Cim(_) => "in-situ (this work)",
            SolverSpec::Direct(s) => match s.kind() {
                fecim_hwcost::AnnealerKind::CimFpga => "CiM/FPGA direct-E baseline",
                _ => "CiM/ASIC direct-E baseline",
            },
            SolverSpec::Mesa(_) => "MESA multi-epoch baseline",
            SolverSpec::Sb(s) => match s.variant() {
                fecim_sb::SbVariant::Ballistic => "simulated bifurcation (bSB)",
                fecim_sb::SbVariant::Discrete => "simulated bifurcation (dSB)",
            },
        }
    }
}

/// Where the annealer's energy measurements come from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendPlan {
    /// Software-exact incremental-E evaluation (no simulated hardware in
    /// the loop). This is the default, and the mode the quality
    /// experiments of Figs. 8–10 use.
    #[default]
    Analytic,
    /// Route every energy measurement through the simulated DG FeFET
    /// crossbar: quantization, ADC conversion, activity statistics, and
    /// — at [`Fidelity::DeviceAccurate`] — per-cell variation and read
    /// noise (typical magnitudes unless the
    /// [`Session`](crate::Session) carries an explicit
    /// [`CrossbarConfig`](fecim_crossbar::CrossbarConfig)).
    DeviceInLoop {
        /// Analog-path fidelity of the simulated array.
        fidelity: Fidelity,
        /// Physical tile height for the tiled array composition
        /// (`None` = one monolithic array; `Some(rows)` maps the
        /// coupling matrix onto fixed-size tiles, which is how
        /// beyond-array-size instances run device-in-the-loop).
        tile_rows: Option<usize>,
    },
    /// Shared-grid batching: pack up to `instances` ensemble replicas
    /// block-diagonally onto ONE physical tile grid and anneal them
    /// concurrently on disjoint ADC banks (CiM in-situ and SB solvers
    /// only). Ensembles larger than `instances` run as successive grids.
    Batched {
        /// Physical tile height of every replica's block.
        tile_rows: usize,
        /// Replicas sharing one grid.
        instances: usize,
    },
}

/// How many seeded trials the request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunPlan {
    /// One trial with the given seed.
    Single {
        /// RNG seed of the trial.
        seed: u64,
    },
    /// A parallel ensemble: trial `i` receives seed `base_seed + i` and
    /// results come back in trial order — bit-identical at any thread
    /// count (the [`Ensemble`](fecim_anneal::Ensemble) contract).
    Ensemble {
        /// Number of trials.
        trials: usize,
        /// Seed of trial 0.
        base_seed: u64,
        /// Optional cap on concurrent worker threads (`None` = the rayon
        /// pool's width). Never changes results, only wall-clock.
        threads: Option<usize>,
    },
}

impl Default for RunPlan {
    fn default() -> RunPlan {
        RunPlan::Single { seed: 0 }
    }
}

impl RunPlan {
    /// Number of trials this plan executes.
    pub fn trials(&self) -> usize {
        match *self {
            RunPlan::Single { .. } => 1,
            RunPlan::Ensemble { trials, .. } => trials,
        }
    }

    /// Seed of trial 0.
    pub fn base_seed(&self) -> u64 {
        match *self {
            RunPlan::Single { seed } => seed,
            RunPlan::Ensemble { base_seed, .. } => base_seed,
        }
    }

    /// The requested worker-thread cap, if any.
    pub fn threads(&self) -> Option<usize> {
        match *self {
            RunPlan::Single { .. } => None,
            RunPlan::Ensemble { threads, .. } => threads,
        }
    }

    /// The equivalent [`Ensemble`](fecim_anneal::Ensemble) plan.
    pub(crate) fn to_ensemble(self) -> fecim_anneal::Ensemble {
        let ensemble = fecim_anneal::Ensemble::new(self.trials(), self.base_seed());
        match self.threads() {
            Some(cap) => ensemble.with_max_threads(cap),
            None => ensemble,
        }
    }
}

/// One self-contained solve job: problem + solver + backend + run plan,
/// optionally with a reference objective for normalized scoring.
///
/// Requests serialize to JSON and back unchanged (see
/// [`SolveRequest::to_json`]), and a deserialized request produces
/// bit-identical Ideal-mode results — the contract a queued or
/// network-facing deployment builds on.
///
/// ```
/// use fecim::{CimAnnealer, ProblemSpec, RunPlan, Session, SolveRequest, SolverSpec};
///
/// let request = SolveRequest::new(
///     ProblemSpec::MaxCut {
///         vertices: 8,
///         edges: (0..8).map(|i| (i, (i + 1) % 8, 1.0)).collect(),
///     },
///     SolverSpec::Cim(CimAnnealer::new(1500).with_flips(1)),
/// )
/// .with_run(RunPlan::Single { seed: 7 });
/// let wire = request.to_json()?;
/// let response = Session::new().run(&SolveRequest::from_json(&wire)?)?;
/// assert!(response.summary.best_objective.unwrap() >= 6.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The problem to solve.
    pub problem: ProblemSpec,
    /// The annealer architecture and its configuration.
    pub solver: SolverSpec,
    /// Where energy measurements come from (default
    /// [`BackendPlan::Analytic`]).
    pub backend: BackendPlan,
    /// How many seeded trials to run (default one trial, seed 0).
    pub run: RunPlan,
    /// Reference objective for normalized scoring: when set, the
    /// response reports `objective / reference` per trial (the Fig. 10 /
    /// Table 1 record), alongside the first target-hit iteration.
    pub reference: Option<f64>,
    /// Warm-start spins in the problem's original `±1` space: when set,
    /// every trial starts from exactly these spins instead of drawing a
    /// random configuration from its seed (trials still differ through
    /// their seeded proposal streams). Length must equal the problem's
    /// spin count. A warm-started run whose solver performs zero
    /// iterations returns these spins verbatim — the contract campaign
    /// round-chaining builds on.
    pub initial_spins: Option<Vec<i8>>,
}

impl SolveRequest {
    /// A request with the default backend ([`BackendPlan::Analytic`])
    /// and run plan (one trial, seed 0).
    pub fn new(problem: ProblemSpec, solver: SolverSpec) -> SolveRequest {
        SolveRequest {
            problem,
            solver,
            backend: BackendPlan::default(),
            run: RunPlan::default(),
            reference: None,
            initial_spins: None,
        }
    }

    /// Select the backend plan.
    pub fn with_backend(mut self, backend: BackendPlan) -> SolveRequest {
        self.backend = backend;
        self
    }

    /// Select the run plan.
    pub fn with_run(mut self, run: RunPlan) -> SolveRequest {
        self.run = run;
        self
    }

    /// Score trials as `objective / reference` in the response.
    pub fn with_reference(mut self, reference: f64) -> SolveRequest {
        self.reference = Some(reference);
        self
    }

    /// Warm-start every trial from the given `±1` spins (length must
    /// equal the problem's spin count; validated by
    /// [`Session::prepare`](crate::Session::prepare)).
    pub fn with_initial_spins(mut self, spins: Vec<i8>) -> SolveRequest {
        self.initial_spins = Some(spins);
        self
    }

    /// Serialize the request to JSON.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error (practically unreachable for
    /// these plain-data types).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Rebuild a request from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed or mistyped JSON.
    pub fn from_json(json: &str) -> Result<SolveRequest, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_spec_from_graph_matches_to_max_cut() {
        let graph = GeneratorConfig::new(24, 7).generate();
        let spec = ProblemSpec::from_graph(&graph);
        let built = spec.build().expect("valid graph builds");
        let direct = graph.to_max_cut();
        let model_a = built.to_ising().unwrap();
        let model_b = fecim_ising::CopProblem::to_ising(&direct).unwrap();
        assert_eq!(model_a.dimension(), model_b.dimension());
        assert_eq!(built.name(), direct.name());
    }

    #[test]
    fn generated_spec_is_deterministic() {
        let config = GeneratorConfig::new(16, 99);
        let a = ProblemSpec::Generated(config).build().unwrap();
        let b = ProblemSpec::Generated(config).build().unwrap();
        assert_eq!(
            a.to_ising().unwrap().dimension(),
            b.to_ising().unwrap().dimension()
        );
    }

    #[test]
    fn invalid_specs_surface_construction_errors() {
        let bad_edge = ProblemSpec::MaxCut {
            vertices: 2,
            edges: vec![(0, 5, 1.0)],
        };
        assert!(bad_edge.build().is_err());
        let zero_colors = ProblemSpec::Coloring {
            vertices: 3,
            colors: 0,
            edges: vec![(0, 1)],
        };
        assert!(zero_colors.build().is_err());
        let nonsquare_q = ProblemSpec::Qubo {
            q: vec![vec![1.0, 2.0], vec![0.0]],
        };
        assert!(matches!(
            nonsquare_q.build(),
            Err(IsingError::DimensionMismatch { .. })
        ));
        let mismatched_ising = ProblemSpec::Ising {
            h: vec![0.0; 2],
            j: vec![vec![0.0; 3]; 3],
        };
        assert!(matches!(
            mismatched_ising.build(),
            Err(IsingError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn raw_payload_specs_build_solvable_problems() {
        // One frustrated pair: optimum picks exactly one of x0/x1.
        let qubo = ProblemSpec::Qubo {
            q: vec![vec![-1.0, 2.0], vec![0.0, -1.0]],
        }
        .build()
        .expect("valid payload");
        assert_eq!(qubo.name(), "qubo");
        assert_eq!(qubo.spin_count(), 2);
        let ising = ProblemSpec::Ising {
            h: vec![0.1, -0.1, 0.0],
            j: vec![
                vec![0.0, 0.5, 0.0],
                vec![0.5, 0.0, -0.25],
                vec![0.0, -0.25, 0.0],
            ],
        }
        .build()
        .expect("valid payload");
        assert_eq!(ising.name(), "raw-ising");
        assert_eq!(ising.to_ising().unwrap().dimension(), 3);
    }

    #[test]
    fn run_plan_accessors() {
        let single = RunPlan::Single { seed: 9 };
        assert_eq!(single.trials(), 1);
        assert_eq!(single.base_seed(), 9);
        assert_eq!(single.threads(), None);
        let ens = RunPlan::Ensemble {
            trials: 12,
            base_seed: 40,
            threads: Some(2),
        };
        assert_eq!(ens.trials(), 12);
        assert_eq!(ens.base_seed(), 40);
        assert_eq!(ens.threads(), Some(2));
        assert_eq!(RunPlan::default(), RunPlan::Single { seed: 0 });
        assert_eq!(BackendPlan::default(), BackendPlan::Analytic);
    }

    #[test]
    fn request_json_roundtrip_is_identity() {
        let request = SolveRequest::new(
            ProblemSpec::Knapsack {
                values: vec![3, 5, 8],
                weights: vec![1, 2, 3],
                capacity: 4,
            },
            SolverSpec::Cim(CimAnnealer::new(700).with_flips(1)),
        )
        .with_backend(BackendPlan::DeviceInLoop {
            fidelity: Fidelity::Ideal,
            tile_rows: Some(64),
        })
        .with_run(RunPlan::Ensemble {
            trials: 4,
            base_seed: 11,
            threads: None,
        })
        .with_reference(12.0)
        .with_initial_spins(vec![1, -1, 1, -1, 1, -1]);
        let wire = request.to_json().expect("serializes");
        let back = SolveRequest::from_json(&wire).expect("parses");
        assert_eq!(back, request);
    }

    #[test]
    fn requests_without_initial_spins_still_parse() {
        // Wire backward compatibility: pre-warm-start request JSON has no
        // `initial_spins` key and must keep parsing as `None`.
        let request = SolveRequest::new(
            ProblemSpec::MaxCut {
                vertices: 2,
                edges: vec![(0, 1, 1.0)],
            },
            SolverSpec::Cim(CimAnnealer::new(10)),
        );
        let wire = request.to_json().expect("serializes");
        let legacy = wire.replace(",\"initial_spins\":null", "");
        assert_ne!(legacy, wire, "fixture must actually drop the key");
        let parsed = SolveRequest::from_json(&legacy).expect("legacy JSON parses");
        assert_eq!(parsed, request);
    }

    #[test]
    fn solver_spec_names_match_solver_trait() {
        use crate::Solver;
        let cim = CimAnnealer::new(10);
        assert_eq!(SolverSpec::Cim(cim.clone()).name(), Solver::name(&cim));
        let fpga = DirectAnnealer::cim_fpga(10);
        assert_eq!(SolverSpec::Direct(fpga.clone()).name(), Solver::name(&fpga));
        let mesa = MesaAnnealer::new(10);
        assert_eq!(SolverSpec::Mesa(mesa).name(), Solver::name(&mesa));
        let bsb = SbAnnealer::ballistic(10);
        assert_eq!(SolverSpec::Sb(bsb.clone()).name(), Solver::name(&bsb));
        let dsb = SbAnnealer::discrete(10);
        assert_eq!(SolverSpec::Sb(dsb.clone()).name(), Solver::name(&dsb));
    }
}
