//! The simulated-bifurcation solver family (bSB/dSB) on the FeCIM
//! crossbar: the `fecim-sb` engine wrapped behind the same builder-style
//! [`Solver`] surface as the annealers, so sessions, schedulers and
//! campaigns accept SB jobs with zero transport changes.

use serde::{Deserialize, Serialize};

use fecim_anneal::RunResult;
use fecim_crossbar::{BatchInstance, Crossbar, CrossbarConfig, TiledCrossbar};
use fecim_hwcost::{AnnealerKind, CostModel, EnergyReport, IterationProfile, TimeReport};
use fecim_ising::{CopProblem, CsrCoupling, IsingError, IsingModel, SpinVector};
use fecim_sb::{DeviceMvm, ExactMvm, PressureSchedule, SbEngine, SbVariant};

use crate::annealer::SolveReport;
use crate::solver::Solver;

/// Default input-DAC resolution of the ballistic variant's bit-serial
/// continuous drive (matches the array's 4-bit weight quantization).
const DEFAULT_IN_BITS: u8 = 4;

/// Configuration of the simulated-bifurcation solver (bSB/dSB).
///
/// Each SB step performs one full-vector coupling MVM through the
/// crossbar read path instead of the annealers' per-flip incremental-E
/// sense: the ballistic variant drives the continuous positions through
/// an `in_bits`-pass bit-serial DAC decomposition, the discrete variant
/// reads one sign vector per step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SbAnnealer {
    variant: SbVariant,
    steps: usize,
    dt: f64,
    pressure_schedule: PressureSchedule,
    coupling_strength: Option<f64>,
    in_bits: u8,
    device_in_loop: Option<CrossbarConfig>,
    tile_rows: Option<usize>,
    trace_every: Option<usize>,
    target_energy: Option<f64>,
    quant_bits: u8,
    mux_ratio: usize,
}

impl SbAnnealer {
    /// An SB solver with the engine defaults: `dt = 0.25`, a linear
    /// pressure ramp to `1.0`, problem-adapted coupling strength, 4-bit
    /// input DAC, software-exact MVM (set
    /// [`SbAnnealer::with_device_in_loop`] for crossbar-in-the-loop
    /// simulation).
    pub fn new(variant: SbVariant, steps: usize) -> SbAnnealer {
        SbAnnealer {
            variant,
            steps,
            dt: 0.25,
            pressure_schedule: PressureSchedule::linear(),
            coupling_strength: None,
            in_bits: DEFAULT_IN_BITS,
            device_in_loop: None,
            tile_rows: None,
            trace_every: None,
            target_energy: None,
            quant_bits: crate::solver::DEFAULT_QUANT_BITS,
            mux_ratio: crate::solver::DEFAULT_MUX_RATIO,
        }
    }

    /// The ballistic variant (`f = J·x`, `in_bits` reads per step).
    pub fn ballistic(steps: usize) -> SbAnnealer {
        SbAnnealer::new(SbVariant::Ballistic, steps)
    }

    /// The discrete variant (`f = J·sign(x)`, one read per step).
    pub fn discrete(steps: usize) -> SbAnnealer {
        SbAnnealer::new(SbVariant::Discrete, steps)
    }

    /// Override the integration time step.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not finite and strictly positive.
    pub fn with_dt(mut self, dt: f64) -> SbAnnealer {
        assert!(dt.is_finite() && dt > 0.0, "dt must be finite and positive");
        self.dt = dt;
        self
    }

    /// Override the bifurcation-pressure ramp.
    ///
    /// # Panics
    ///
    /// Panics when the schedule's parameters are invalid (see
    /// [`PressureSchedule::validate`]).
    pub fn with_pressure_schedule(mut self, schedule: PressureSchedule) -> SbAnnealer {
        if let Err(e) = schedule.validate() {
            // audit:allow(panic-path): documented `# Panics` contract — builder misconfiguration fails loudly at build time, not mid-run
            panic!("invalid pressure schedule: {e}");
        }
        self.pressure_schedule = schedule;
        self
    }

    /// Fix the coupling prefactor `c₀` (default: problem-adapted
    /// [`fecim_sb::suggest_coupling_strength`]).
    ///
    /// # Panics
    ///
    /// Panics if `c0` is not finite and strictly positive.
    pub fn with_coupling_strength(mut self, c0: f64) -> SbAnnealer {
        assert!(
            c0.is_finite() && c0 > 0.0,
            "coupling strength must be finite and positive"
        );
        self.coupling_strength = Some(c0);
        self
    }

    /// Override the input-DAC resolution of the ballistic bit-serial
    /// drive (ignored by the discrete variant's sign reads).
    ///
    /// # Panics
    ///
    /// Panics if `in_bits == 0`.
    pub fn with_in_bits(mut self, in_bits: u8) -> SbAnnealer {
        assert!(in_bits > 0, "the input DAC needs at least one bit");
        self.in_bits = in_bits;
        self
    }

    /// Route every coupling MVM through the simulated DG FeFET crossbar
    /// (quantization, ADC conversion, activity statistics, and — in
    /// device-accurate fidelity — variation and counter-based read
    /// noise).
    pub fn with_device_in_loop(mut self, config: CrossbarConfig) -> SbAnnealer {
        self.quant_bits = config.quant_bits;
        self.mux_ratio = config.mux_ratio;
        self.device_in_loop = Some(config);
        self
    }

    /// Route every coupling MVM through the *tiled* array composition
    /// (fixed-size `tile_rows`-row tiles — how beyond-array-size
    /// instances run device-in-the-loop). In Ideal fidelity the tiled
    /// read is bit-identical to the monolithic one, so the whole SB
    /// trajectory is placement-invariant.
    ///
    /// # Panics
    ///
    /// Panics if `tile_rows == 0`.
    pub fn with_tiled_device_in_loop(
        mut self,
        config: CrossbarConfig,
        tile_rows: usize,
    ) -> SbAnnealer {
        assert!(tile_rows > 0, "tile_rows must be positive");
        self.tile_rows = Some(tile_rows);
        self.with_device_in_loop(config)
    }

    /// Strip any device backend and restore the software-exact defaults
    /// — the [`Session`](crate::Session) hook that makes the request's
    /// `BackendPlan` authoritative over knobs already on the solver.
    pub(crate) fn with_analytic_backend(mut self) -> SbAnnealer {
        self.device_in_loop = None;
        self.tile_rows = None;
        self.quant_bits = crate::solver::DEFAULT_QUANT_BITS;
        self.mux_ratio = crate::solver::DEFAULT_MUX_RATIO;
        self
    }

    /// Record a trace point every `every` steps.
    pub fn with_trace(mut self, every: usize) -> SbAnnealer {
        self.trace_every = Some(every.max(1));
        self
    }

    /// Record the first step whose best Ising energy reaches `target`
    /// (the time-to-solution metric); the result appears as
    /// `run.first_target_hit`.
    pub fn with_target_energy(mut self, target: f64) -> SbAnnealer {
        self.target_energy = Some(target);
        self
    }

    /// Which update variant this solver runs.
    pub fn variant(&self) -> SbVariant {
        self.variant
    }

    /// Symplectic Euler steps per run.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Full-array reads one SB step issues on the device path: `in_bits`
    /// bit-serial planes for the ballistic drive, one sign read for the
    /// discrete drive.
    pub fn reads_per_step(&self) -> u64 {
        match self.variant {
            SbVariant::Ballistic => self.in_bits as u64,
            SbVariant::Discrete => 1,
        }
    }

    /// Check a (possibly wire-deserialized) configuration the builders
    /// would have rejected: the builder panics never run for JSON
    /// payloads, so [`Session::prepare`](crate::Session::prepare) calls
    /// this instead.
    ///
    /// # Errors
    ///
    /// Returns a description when `steps` is zero, `dt` is not finite
    /// and positive, the pressure schedule is invalid, the input DAC has
    /// zero bits, or a fixed coupling strength is not finite and
    /// positive. (Zero-step warm-start echoes remain an engine-level
    /// contract — [`fecim_sb::SbEngine::run`] supports them — but a
    /// *request* for zero SB steps is a misconfiguration.)
    pub fn validate(&self) -> Result<(), String> {
        if self.steps == 0 {
            return Err("SB solver needs at least one step".to_string());
        }
        if !self.dt.is_finite() || self.dt <= 0.0 {
            return Err(format!(
                "SB time step must be finite and positive (got {})",
                self.dt
            ));
        }
        self.pressure_schedule.validate()?;
        if self.in_bits == 0 {
            return Err("SB input DAC needs at least one bit".to_string());
        }
        if let Some(c0) = self.coupling_strength {
            if !c0.is_finite() || c0 <= 0.0 {
                return Err(format!(
                    "SB coupling strength must be finite and positive (got {c0})"
                ));
            }
        }
        Ok(())
    }

    /// Solve a COP: transform to Ising, run the SB dynamics, and score
    /// the solution in the problem's native objective (convenience
    /// wrapper over the [`Solver`] pipeline).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors from the problem's Ising transformation.
    pub fn solve<P: CopProblem>(&self, problem: &P, seed: u64) -> Result<SolveReport, IsingError> {
        Solver::solve(self, problem, seed)
    }

    /// Run the SB dynamics on a raw Ising model and return the run plus
    /// the best solution projected back to the model's original spins
    /// (see [`Solver::anneal_model`]).
    pub fn anneal_model(&self, model: &IsingModel, seed: u64) -> (RunResult, SpinVector) {
        Solver::anneal_model(self, model, seed)
    }

    /// The configured `fecim-sb` engine.
    pub(crate) fn engine(&self) -> SbEngine {
        let mut engine = SbEngine::new(self.variant, self.steps)
            .with_dt(self.dt)
            .with_pressure(self.pressure_schedule);
        if let Some(c0) = self.coupling_strength {
            engine = engine.with_coupling_strength(c0);
        }
        if let Some(every) = self.trace_every {
            engine = engine.with_trace(every);
        }
        if let Some(target) = self.target_energy {
            engine = engine.with_target_energy(target);
        }
        engine
    }
}

impl Solver for SbAnnealer {
    fn name(&self) -> &str {
        match self.variant {
            SbVariant::Ballistic => "simulated bifurcation (bSB)",
            SbVariant::Discrete => "simulated bifurcation (dSB)",
        }
    }

    fn kind(&self) -> AnnealerKind {
        // SB runs on the same in-situ crossbar hardware; only the read
        // pattern (full-vector MVM vs per-flip sense) differs, which the
        // cost model prices separately.
        AnnealerKind::InSitu
    }

    fn iterations(&self) -> usize {
        self.steps
    }

    fn run_engine(&self, coupling: &CsrCoupling, initial: SpinVector, seed: u64) -> RunResult {
        let engine = self.engine();
        match (&self.device_in_loop, self.tile_rows) {
            (None, _) => {
                let mut source = ExactMvm::new(coupling);
                engine.run(coupling, &mut source, &initial, seed)
            }
            (Some(xb_config), None) => {
                let mut source =
                    DeviceMvm::new(Crossbar::program(coupling, xb_config.clone()), self.in_bits);
                engine.run(coupling, &mut source, &initial, seed)
            }
            (Some(xb_config), Some(tile_rows)) => {
                let mut source = DeviceMvm::new(
                    TiledCrossbar::program(coupling, xb_config.clone(), tile_rows),
                    self.in_bits,
                );
                engine.run(coupling, &mut source, &initial, seed)
            }
        }
    }

    fn hardware_report(&self, run: &mut RunResult, spins: usize) -> (EnergyReport, TimeReport) {
        let cost_model = match self.tile_rows {
            None => CostModel::paper_22nm(spins, self.quant_bits),
            Some(tr) => CostModel::paper_22nm_tiled(spins, self.quant_bits, tr),
        };
        let profile = IterationProfile {
            spins,
            quant_bits: self.quant_bits,
            // SB updates every spin per step; `flips` has no SB meaning
            // and only feeds the annealer arms of the profile.
            flips: 1,
            mux_ratio: self.mux_ratio,
            tile_rows: self.tile_rows,
            batch_instances: 1,
        };
        // Prefer measured activity (device-in-loop) over the analytic model.
        match &run.activity {
            Some(stats) => (
                fecim_hwcost::energy_of(stats, &cost_model, fecim_hwcost::ExpUnit::Asic),
                fecim_hwcost::time_of(stats, &cost_model, fecim_hwcost::ExpUnit::Asic),
            ),
            None => (
                profile.sb_run_energy(&cost_model, run.iterations, self.reads_per_step()),
                profile.sb_run_time(&cost_model, run.iterations, self.reads_per_step()),
            ),
        }
    }
}

impl crate::batch::BatchedSolve for SbAnnealer {
    fn anneal_batched(
        &self,
        coupling: &CsrCoupling,
        initial: SpinVector,
        handle: BatchInstance,
        seed: u64,
    ) -> RunResult {
        // The grid instance IS the MVM source: SB steps read the
        // replica's block-diagonal slice of the shared grid, so batched
        // SB trials are bit-identical to monolithic device runs in Ideal
        // fidelity (same per-column read, different placement).
        let mut source = DeviceMvm::new(handle, self.in_bits);
        self.engine().run(coupling, &mut source, &initial, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_ising::MaxCut;

    fn ring_problem(n: usize) -> MaxCut {
        MaxCut::new(n, (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect()).unwrap()
    }

    #[test]
    fn both_variants_solve_ring_max_cut() {
        let problem = ring_problem(16);
        for solver in [SbAnnealer::ballistic(600), SbAnnealer::discrete(600)] {
            let report = solver.solve(&problem, 11).unwrap();
            assert_eq!(report.kind, AnnealerKind::InSitu);
            assert!(report.feasible);
            let cut = report.objective.unwrap();
            assert!(cut >= 14.0, "{}: cut={cut}", Solver::name(&solver));
            assert!(report.energy.total() > 0.0);
            assert!(report.time.total() > 0.0);
        }
    }

    #[test]
    fn device_in_loop_produces_measured_activity() {
        let problem = ring_problem(12);
        let solver =
            SbAnnealer::discrete(200).with_device_in_loop(CrossbarConfig::paper_defaults());
        let report = solver.solve(&problem, 3).unwrap();
        let activity = report.run.activity.expect("device runs record stats");
        assert_eq!(activity.array_ops, 200, "one MVM read per dSB step");
        assert!(report.energy.total() > 0.0);
    }

    #[test]
    fn tiled_device_run_matches_monolithic_bit_for_bit() {
        let problem = ring_problem(24);
        for steps in [0usize, 150] {
            let mono = SbAnnealer::ballistic(steps)
                .with_device_in_loop(CrossbarConfig::paper_defaults())
                .solve(&problem, 5)
                .unwrap();
            let tiled = SbAnnealer::ballistic(steps)
                .with_tiled_device_in_loop(CrossbarConfig::paper_defaults(), 8)
                .solve(&problem, 5)
                .unwrap();
            assert_eq!(mono.best_energy, tiled.best_energy, "steps={steps}");
            assert_eq!(mono.best_spins, tiled.best_spins, "steps={steps}");
        }
    }

    #[test]
    fn handles_problems_with_linear_terms() {
        // MIS has linear fields, exercising the ancilla embedding.
        let problem = fecim_ising::MaxIndependentSet::new(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let solver = SbAnnealer::ballistic(800);
        let report = solver.solve(&problem, 5).unwrap();
        assert!(report.feasible);
        assert!(report.objective.unwrap() >= 2.0);
    }

    #[test]
    fn analytic_cost_model_prices_bsb_reads_above_dsb() {
        let problem = ring_problem(16);
        let bsb = SbAnnealer::ballistic(300).solve(&problem, 2).unwrap();
        let dsb = SbAnnealer::discrete(300).solve(&problem, 2).unwrap();
        let ratio = bsb.energy.total() / dsb.energy.total();
        assert!(
            (ratio - DEFAULT_IN_BITS as f64).abs() < 1e-9,
            "analytic bSB/dSB energy ratio = in_bits, got {ratio}"
        );
    }

    #[test]
    fn validate_catches_wire_deserialized_misconfigurations() {
        assert!(SbAnnealer::ballistic(100).validate().is_ok());
        assert!(
            SbAnnealer::ballistic(0).validate().is_err(),
            "zero steps rejected"
        );
        let mut bad_dt = SbAnnealer::discrete(10);
        bad_dt.dt = f64::NAN;
        assert!(bad_dt.validate().is_err());
        bad_dt.dt = 0.0;
        assert!(bad_dt.validate().is_err());
        let mut bad_schedule = SbAnnealer::discrete(10);
        bad_schedule.pressure_schedule = PressureSchedule::Linear { end: f64::INFINITY };
        assert!(bad_schedule.validate().is_err());
        let mut bad_bits = SbAnnealer::ballistic(10);
        bad_bits.in_bits = 0;
        assert!(bad_bits.validate().is_err());
        let mut bad_c0 = SbAnnealer::ballistic(10);
        bad_c0.coupling_strength = Some(-1.0);
        assert!(bad_c0.validate().is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = ring_problem(10);
        let solver = SbAnnealer::discrete(300);
        let a = solver.solve(&problem, 77).unwrap();
        let b = solver.solve(&problem, 77).unwrap();
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.best_spins, b.best_spins);
    }
}
