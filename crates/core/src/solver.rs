//! The unifying [`Solver`] abstraction over the three annealer
//! architectures.
//!
//! Every solver in this crate ([`CimAnnealer`](crate::CimAnnealer),
//! [`DirectAnnealer`](crate::DirectAnnealer),
//! [`MesaAnnealer`](crate::MesaAnnealer)) runs the same pipeline:
//!
//! 1. transform the COP to an Ising model (ancilla-embedding linear
//!    terms when present);
//! 2. draw the seeded random start configuration;
//! 3. run an architecture-specific annealing engine on the quadratic
//!    coupling;
//! 4. project the best embedded configuration back to the problem's
//!    original spins and score it in the native objective;
//! 5. attach hardware energy/time costs for the architecture.
//!
//! Steps 1, 2, 4 and 5 are identical across architectures and live here
//! as provided methods; implementors supply only the two
//! architecture-specific hooks [`Solver::run_engine`] (step 3) and
//! [`Solver::hardware_report`] (step 5's costing rule). Experiment
//! drivers dispatch over `&dyn Solver`, so adding a fourth architecture
//! never touches them.

use rand::SeedableRng;

#[cfg(test)]
use fecim_anneal::Ensemble;
use fecim_anneal::RunResult;
use fecim_hwcost::{AnnealerKind, EnergyReport, TimeReport};
use fecim_ising::{CopProblem, Coupling, CsrCoupling, IsingError, IsingModel, SpinVector};

use crate::annealer::SolveReport;

/// Seed salt applied before drawing the initial configuration, so the
/// start state and the engine's proposal stream come from decorrelated
/// streams of the same user seed.
pub(crate) const INIT_SEED_SALT: u64 = 0xA5A5_5A5A;

/// The paper's default coupling quantization (Fig. 6d) — the value a
/// solver prices when no device backend overrides it.
pub(crate) const DEFAULT_QUANT_BITS: u8 = 4;

/// The paper's default ADC column multiplexing ratio.
pub(crate) const DEFAULT_MUX_RATIO: usize = 8;

/// A combinatorial-optimization solver with hardware-cost accounting —
/// the common face of the paper's three annealer architectures.
///
/// Object safe: experiment drivers hold `&dyn Solver` / `Box<dyn Solver>`
/// and the [`Ensemble`](fecim_anneal::Ensemble) runner fans solver calls
/// out across threads (`Solver: Send + Sync`).
pub trait Solver: Send + Sync {
    /// Human-readable architecture name for reports and logs.
    fn name(&self) -> &str;

    /// The architecture tag attached to [`SolveReport::kind`].
    fn kind(&self) -> AnnealerKind;

    /// Iterations per run.
    fn iterations(&self) -> usize;

    /// Architecture hook: anneal a prepared quadratic coupling from the
    /// given start configuration. `seed` drives the engine's proposal
    /// stream.
    fn run_engine(&self, coupling: &CsrCoupling, initial: SpinVector, seed: u64) -> RunResult;

    /// Architecture hook: the hardware energy/time of a finished run over
    /// `spins` logical spins. Receives the run mutably so architectures
    /// can stamp architecture-implied activity (e.g. the baselines' one
    /// `eˣ` evaluation per iteration) before costing.
    fn hardware_report(&self, run: &mut RunResult, spins: usize) -> (EnergyReport, TimeReport);

    /// Anneal a raw Ising model and return the run plus the best solution
    /// projected back to the model's original spins.
    fn anneal_model(&self, model: &IsingModel, seed: u64) -> (RunResult, SpinVector) {
        let quadratic = model.to_quadratic_only();
        let coupling = quadratic.couplings();
        let n = coupling.dimension();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ INIT_SEED_SALT);
        let initial = SpinVector::random(n, &mut rng);
        let run = self.run_engine(coupling, initial, seed);
        let spins = if model.is_quadratic_only() {
            run.best_spins.clone()
        } else {
            model.project_from_quadratic(&run.best_spins)
        };
        (run, spins)
    }

    /// Anneal a raw Ising model from an explicitly supplied start
    /// configuration in the model's **original** spin space (warm
    /// start). When the model carries linear fields, the start is
    /// embedded into the ancilla-augmented quadratic space with the
    /// ancilla at `+1`, so projecting the result back recovers the
    /// supplied spins exactly — a zero-iteration engine run returns
    /// `start` verbatim.
    fn anneal_model_from(
        &self,
        model: &IsingModel,
        start: &SpinVector,
        seed: u64,
    ) -> (RunResult, SpinVector) {
        let quadratic = model.to_quadratic_only();
        let coupling = quadratic.couplings();
        let initial = embed_start(model, start);
        let run = self.run_engine(coupling, initial, seed);
        let spins = if model.is_quadratic_only() {
            run.best_spins.clone()
        } else {
            model.project_from_quadratic(&run.best_spins)
        };
        (run, spins)
    }

    /// Solve a COP: transform to Ising, anneal, score the best solution
    /// in the problem's native objective and attach hardware costs.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors from the problem's Ising transformation.
    fn solve(&self, problem: &dyn CopProblem, seed: u64) -> Result<SolveReport, IsingError> {
        let model = problem.to_ising()?;
        let (mut run, spins) = self.anneal_model(&model, seed);
        let objective = problem.native_objective(&spins);
        let feasible = problem.is_feasible(&spins);
        let (energy, time) = self.hardware_report(&mut run, model.dimension());
        Ok(SolveReport {
            kind: self.kind(),
            best_energy: run.best_energy,
            objective: Some(objective),
            feasible,
            best_spins: spins,
            energy,
            time,
            run,
        })
    }

    /// Solve a raw Ising model (no native objective to score against:
    /// `objective` is `None` and the solution is trivially feasible).
    ///
    /// # Errors
    ///
    /// Kept fallible for symmetry with [`Solver::solve`]; the provided
    /// implementation cannot fail.
    fn solve_model(&self, model: &IsingModel, seed: u64) -> Result<SolveReport, IsingError> {
        let (mut run, spins) = self.anneal_model(model, seed);
        let (energy, time) = self.hardware_report(&mut run, model.dimension());
        Ok(SolveReport {
            kind: self.kind(),
            best_energy: run.best_energy,
            objective: None,
            feasible: true,
            best_spins: spins,
            energy,
            time,
            run,
        })
    }
}

/// Embed a start configuration given in `model`'s original spin space
/// into the quadratic-only space [`Solver::run_engine`] anneals over.
/// Models with linear fields gain an ancilla spin at index 0, fixed to
/// `+1` so the gauge projection recovers the original spins unchanged.
pub(crate) fn embed_start(model: &IsingModel, start: &SpinVector) -> SpinVector {
    assert_eq!(
        start.len(),
        model.dimension(),
        "warm-start spins must match the model dimension"
    );
    if model.is_quadratic_only() {
        start.clone()
    } else {
        let mut signs = Vec::with_capacity(start.len() + 1);
        signs.push(1);
        signs.extend_from_slice(start.as_slice());
        SpinVector::from_signs(&signs)
    }
}

/// One parallel ensemble of `solver` on `problem`, scored per trial as
/// `(native objective / reference, first iteration reaching the target)`
/// — the per-run record behind Fig. 10, Table 1 and the calibration
/// sweeps. Dispatches through `&dyn Solver`, so any architecture plugs
/// in unchanged. The public route to the same record is a
/// [`SolveRequest`](crate::SolveRequest) with a `reference` and an
/// ensemble [`RunPlan`](crate::RunPlan) through
/// [`Session::run`](crate::Session::run) (read
/// `SolveResponse::normalized` / `normalized_pairs()`).
///
/// # Errors
///
/// Returns the problem's encoding error instead of panicking when the
/// instance has no Ising form (and an [`IsingError::InvalidProblem`] if
/// a solve ever came back without a native objective — impossible for
/// the COP types in this workspace, but a solver bug must surface as an
/// error, not a crash inside a worker thread).
#[cfg(test)] // production callers go through `Session`'s normalized scoring
pub(crate) fn normalized_ensemble_impl(
    solver: &dyn Solver,
    problem: &(dyn CopProblem + Sync),
    reference: f64,
    ensemble: &Ensemble,
) -> Result<Vec<(f64, Option<usize>)>, IsingError> {
    // Encoding is deterministic: validate once before fanning out so a
    // bad instance fails fast instead of `trials` times.
    problem.to_ising()?;
    ensemble
        .run(|seed| {
            let report = solver.solve(problem, seed)?;
            let objective = report.objective.ok_or_else(|| {
                IsingError::InvalidProblem(format!(
                    "solver `{}` returned no native objective for `{}`",
                    solver.name(),
                    problem.name()
                ))
            })?;
            Ok((objective / reference, report.run.first_target_hit))
        })
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CimAnnealer, DirectAnnealer, MesaAnnealer};
    use fecim_ising::MaxCut;

    fn ring_problem(n: usize) -> MaxCut {
        MaxCut::new(n, (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect()).unwrap()
    }

    #[test]
    fn all_three_architectures_dispatch_dynamically() {
        let ours = CimAnnealer::new(1500).with_flips(1);
        let fpga = DirectAnnealer::cim_fpga(1500).with_flips(1);
        let mesa = MesaAnnealer::new(1500);
        let solvers: [&dyn Solver; 3] = [&ours, &fpga, &mesa];
        let problem = ring_problem(12);
        for solver in solvers {
            let report = solver.solve(&problem, 5).unwrap();
            assert_eq!(report.kind, solver.kind(), "{}", solver.name());
            assert!(report.objective.unwrap() >= 8.0, "{}", solver.name());
            assert!(!solver.name().is_empty());
            assert_eq!(solver.iterations(), 1500);
        }
    }

    #[test]
    fn trait_solve_matches_inherent_solve() {
        let problem = ring_problem(10);
        let solver = CimAnnealer::new(500).with_flips(1);
        let inherent = solver.solve(&problem, 3).unwrap();
        let dynamic = Solver::solve(&solver, &problem, 3).unwrap();
        assert_eq!(inherent.best_energy, dynamic.best_energy);
        assert_eq!(inherent.best_spins, dynamic.best_spins);
        assert_eq!(inherent.energy.total(), dynamic.energy.total());
    }

    #[test]
    fn solve_model_reports_no_native_objective() {
        let problem = ring_problem(8);
        let model = fecim_ising::CopProblem::to_ising(&problem).unwrap();
        let report = MesaAnnealer::new(400).solve_model(&model, 2).unwrap();
        assert_eq!(report.objective, None);
        assert!(report.feasible);
        assert!(report.energy.total() > 0.0);
    }

    #[test]
    fn unencodable_problems_error_instead_of_panicking() {
        use fecim_anneal::Ensemble;
        use fecim_ising::{IsingError, ObjectiveSense};

        #[derive(Debug)]
        struct NoIsingForm;
        impl fecim_ising::CopProblem for NoIsingForm {
            fn spin_count(&self) -> usize {
                3
            }
            fn to_ising(&self) -> Result<fecim_ising::IsingModel, IsingError> {
                Err(IsingError::InvalidProblem(
                    "this model has no Ising form".into(),
                ))
            }
            fn native_objective(&self, _: &fecim_ising::SpinVector) -> f64 {
                0.0
            }
            fn objective_sense(&self) -> ObjectiveSense {
                ObjectiveSense::Maximize
            }
            fn is_feasible(&self, _: &fecim_ising::SpinVector) -> bool {
                true
            }
            fn name(&self) -> &str {
                "no-ising-form"
            }
        }

        let problem = NoIsingForm;
        for solver in [
            &CimAnnealer::new(50) as &dyn Solver,
            &DirectAnnealer::cim_asic(50),
            &MesaAnnealer::new(50),
        ] {
            let err = solver.solve(&problem, 1).expect_err("must not panic");
            assert!(matches!(err, IsingError::InvalidProblem(_)), "{err}");
        }
        let err =
            normalized_ensemble_impl(&CimAnnealer::new(50), &problem, 1.0, &Ensemble::new(4, 9))
                .expect_err("ensemble must propagate, not panic");
        assert!(matches!(err, IsingError::InvalidProblem(_)));
    }

    #[test]
    fn warm_start_zero_iteration_run_returns_start_verbatim() {
        // Quadratic-only model (Max-Cut ring): no ancilla embedding.
        let ring = ring_problem(8);
        let model = fecim_ising::CopProblem::to_ising(&ring).unwrap();
        let start = SpinVector::from_signs(&[1, -1, 1, 1, -1, -1, 1, -1]);
        let solver = CimAnnealer::new(0);
        let (run, spins) = solver.anneal_model_from(&model, &start, 7);
        assert_eq!(spins, start);
        assert_eq!(run.best_energy, model.energy(&start));

        // Model WITH linear fields: the ancilla embedding must project
        // the supplied spins back unchanged, for all three engines.
        let mut qubo = fecim_ising::Qubo::new(4);
        qubo.add_term(0, 0, -1.0);
        qubo.add_term(0, 1, 2.0);
        qubo.add_term(1, 1, 0.75);
        qubo.add_term(2, 3, -0.5);
        let model = fecim_ising::CopProblem::to_ising(&qubo).unwrap();
        assert!(!model.is_quadratic_only());
        let start = SpinVector::from_signs(&[-1, 1, -1, 1]);
        for solver in [
            &CimAnnealer::new(0) as &dyn Solver,
            &DirectAnnealer::cim_fpga(0),
            &MesaAnnealer::new(0),
        ] {
            let (run, spins) = solver.anneal_model_from(&model, &start, 3);
            assert_eq!(spins, start, "{}", solver.name());
            assert_eq!(run.iterations, 0, "{}", solver.name());
        }
    }

    #[test]
    fn warm_start_with_iterations_never_worsens_the_start() {
        let ring = ring_problem(16);
        let model = fecim_ising::CopProblem::to_ising(&ring).unwrap();
        let start = SpinVector::all_up(16); // worst cut: energy 16·J
        let solver = CimAnnealer::new(300).with_flips(1);
        let (run, _) = solver.anneal_model_from(&model, &start, 11);
        assert!(
            run.best_energy <= model.energy(&start),
            "best over a trajectory that includes the start cannot exceed it"
        );
    }

    #[test]
    fn boxed_solvers_compose() {
        let solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(CimAnnealer::new(300).with_flips(1)),
            Box::new(DirectAnnealer::cim_asic(300).with_flips(1)),
            Box::new(MesaAnnealer::new(300)),
        ];
        let problem = ring_problem(8);
        let energies: Vec<f64> = solvers
            .iter()
            .map(|s| s.solve(&problem, 1).unwrap().best_energy)
            .collect();
        assert_eq!(energies.len(), 3);
    }
}
