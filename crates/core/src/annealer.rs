//! The proposed ferroelectric CiM in-situ annealer (paper Sec. 3): the
//! device-algorithm co-design of incremental-E transformation, DG FeFET
//! crossbar and tunable back-gate annealing flow, wrapped behind a
//! builder-style solver API.

use serde::{Deserialize, Serialize};

use fecim_anneal::{
    run_in_situ, suggest_einc_scale, AnnealConfig, CrossbarBackend, ExactBackend, RunResult,
    SteppedSchedule, TiledBackend,
};
use fecim_crossbar::CrossbarConfig;
use fecim_device::{AnnealFactor, DeviceFactor, FractionalFactor, TableFactor};
use fecim_hwcost::{AnnealerKind, CostModel, EnergyReport, IterationProfile, TimeReport};
use fecim_ising::{CopProblem, Coupling, CsrCoupling, IsingError, IsingModel, SpinVector};

use crate::solver::Solver;

/// Which annealing-factor implementation drives the acceptance test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FactorChoice {
    /// The paper's analytic constants `1/(−0.006T+5) − 0.2` (Fig. 6c).
    PaperFractional,
    /// The physical DG FeFET normalized current under the quantized
    /// `V_BG(T)` mapping.
    Device,
    /// A custom fractional form `a/(bT+c) + d` over `[0, t_max]`.
    Fractional {
        /// Numerator.
        a: f64,
        /// Denominator slope.
        b: f64,
        /// Denominator offset.
        c: f64,
        /// Additive constant.
        d: f64,
        /// Temperature range.
        t_max: f64,
    },
    /// An arbitrary sampled `(T, f)` curve.
    Table(Vec<(f64, f64)>),
}

impl FactorChoice {
    /// Check that this choice can actually produce a factor — in
    /// particular that a [`FactorChoice::Table`] curve has enough
    /// strictly-increasing, non-negative samples.
    ///
    /// # Errors
    ///
    /// Returns the curve's [`fecim_device::CurveError`] when it cannot
    /// define an annealing factor.
    pub fn validate(&self) -> Result<(), fecim_device::CurveError> {
        if let FactorChoice::Table(points) = self {
            TableFactor::try_new(points.clone())?;
        }
        Ok(())
    }

    fn build(&self) -> Box<dyn AnnealFactor> {
        match self {
            FactorChoice::PaperFractional => Box::new(FractionalFactor::paper()),
            FactorChoice::Device => Box::new(DeviceFactor::paper()),
            FactorChoice::Fractional { a, b, c, d, t_max } => {
                Box::new(FractionalFactor::new(*a, *b, *c, *d, *t_max))
            }
            FactorChoice::Table(points) => Box::new(TableFactor::new(points.clone())),
        }
    }

    fn t_max(&self) -> f64 {
        match self {
            FactorChoice::PaperFractional | FactorChoice::Device => 700.0,
            FactorChoice::Fractional { t_max, .. } => *t_max,
            FactorChoice::Table(points) => points.last().map(|p| p.0).unwrap_or(700.0),
        }
    }
}

/// Configuration of the CiM in-situ annealer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CimAnnealer {
    iterations: usize,
    flips: usize,
    factor: FactorChoice,
    einc_scale: Option<f64>,
    device_in_loop: Option<CrossbarConfig>,
    tile_rows: Option<usize>,
    trace_every: Option<usize>,
    target_energy: Option<f64>,
    quant_bits: u8,
    mux_ratio: usize,
}

impl CimAnnealer {
    /// A solver with the paper's defaults: `t = 2` flips per iteration,
    /// the analytic fractional factor, software-exact energy evaluation
    /// (set [`CimAnnealer::with_device_in_loop`] for crossbar-in-the-loop
    /// simulation), 4-bit weights, 8:1 ADC muxing.
    pub fn new(iterations: usize) -> CimAnnealer {
        CimAnnealer {
            iterations,
            flips: 2,
            factor: FactorChoice::PaperFractional,
            einc_scale: None,
            device_in_loop: None,
            tile_rows: None,
            trace_every: None,
            target_energy: None,
            quant_bits: crate::solver::DEFAULT_QUANT_BITS,
            mux_ratio: crate::solver::DEFAULT_MUX_RATIO,
        }
    }

    /// Override the flip-set size `t = |F|`.
    ///
    /// # Panics
    ///
    /// Panics if `flips == 0`.
    pub fn with_flips(mut self, flips: usize) -> CimAnnealer {
        assert!(flips > 0, "need at least one flip");
        self.flips = flips;
        self
    }

    /// Select the annealing-factor implementation.
    ///
    /// # Panics
    ///
    /// Panics with the curve's [`fecim_device::CurveError`] description
    /// when a [`FactorChoice::Table`] calibration curve is empty,
    /// unsorted, or negative — the misconfiguration surfaces here, at
    /// build time, instead of deep inside a run.
    pub fn with_factor(mut self, factor: FactorChoice) -> CimAnnealer {
        if let Err(e) = factor.validate() {
            // audit:allow(panic-path): documented `# Panics` contract — builder misconfiguration fails loudly at build time, not mid-run
            panic!("invalid annealing factor: {e}");
        }
        self.factor = factor;
        self
    }

    /// Fix the `E_inc` normalization (default: problem-adapted
    /// [`suggest_einc_scale`]).
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn with_einc_scale(mut self, scale: f64) -> CimAnnealer {
        assert!(scale > 0.0, "scale must be positive");
        self.einc_scale = Some(scale);
        self
    }

    /// Route all energy measurements through the simulated DG FeFET
    /// crossbar (quantization, ADC, variation, activity statistics).
    pub fn with_device_in_loop(mut self, config: CrossbarConfig) -> CimAnnealer {
        self.quant_bits = config.quant_bits;
        self.mux_ratio = config.mux_ratio;
        self.device_in_loop = Some(config);
        self
    }

    /// Route all energy measurements through the *tiled* array
    /// composition: the coupling matrix is mapped onto fixed-size
    /// `tile_rows`-row tiles (see `fecim_crossbar::TiledCrossbar`), which
    /// is how instances larger than one physical array run
    /// device-in-the-loop. Hardware costs are priced at tile-scale wire
    /// geometry and per-tile activation counts.
    ///
    /// # Panics
    ///
    /// Panics if `tile_rows == 0`.
    pub fn with_tiled_device_in_loop(
        mut self,
        config: CrossbarConfig,
        tile_rows: usize,
    ) -> CimAnnealer {
        assert!(tile_rows > 0, "tile_rows must be positive");
        self.tile_rows = Some(tile_rows);
        self.with_device_in_loop(config)
    }

    /// Record a trace point every `every` iterations.
    pub fn with_trace(mut self, every: usize) -> CimAnnealer {
        self.trace_every = Some(every.max(1));
        self
    }

    /// Strip any device backend and restore the software-exact defaults
    /// — the [`Session`](crate::Session) hook that makes the request's
    /// `BackendPlan` authoritative over knobs already on the solver.
    pub(crate) fn with_analytic_backend(mut self) -> CimAnnealer {
        self.device_in_loop = None;
        self.tile_rows = None;
        self.quant_bits = crate::solver::DEFAULT_QUANT_BITS;
        self.mux_ratio = crate::solver::DEFAULT_MUX_RATIO;
        self
    }

    /// Record the first iteration whose best Ising energy reaches
    /// `target` (the time-to-solution metric of the paper's Table 1);
    /// the result appears as `run.first_target_hit`.
    pub fn with_target_energy(mut self, target: f64) -> CimAnnealer {
        self.target_energy = Some(target);
        self
    }

    /// Iterations per run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Solve a COP: transform to Ising (ancilla-embedding linear terms if
    /// present), anneal, and score the solution in the problem's native
    /// objective (convenience wrapper over the [`Solver`] pipeline).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors from the problem's Ising transformation.
    pub fn solve<P: CopProblem>(&self, problem: &P, seed: u64) -> Result<SolveReport, IsingError> {
        Solver::solve(self, problem, seed)
    }

    /// Anneal a raw Ising model and return the run plus the best solution
    /// projected back to the model's original spins (see
    /// [`Solver::anneal_model`]).
    pub fn anneal_model(&self, model: &IsingModel, seed: u64) -> (RunResult, SpinVector) {
        Solver::anneal_model(self, model, seed)
    }

    /// Run the in-situ flow against a caller-supplied energy backend —
    /// the hook behind shared-grid batching (the
    /// [`BackendPlan::Batched`](crate::BackendPlan::Batched) route builds
    /// one [`fecim_anneal::BatchedBackend`] per ensemble replica), and
    /// useful for any custom array model implementing
    /// [`fecim_anneal::EnergyBackend`]. Schedule, annealing factor and
    /// `E_inc` normalization come from this solver's configuration,
    /// exactly as in [`Solver::run_engine`]; the backend decides where
    /// the measurements come from.
    pub fn anneal_with_backend<B: fecim_anneal::EnergyBackend>(
        &self,
        coupling: &CsrCoupling,
        backend: &mut B,
        seed: u64,
    ) -> RunResult {
        let n = coupling.dimension();
        let factor = self.factor.build();
        // A zero-iteration run (warm-start verbatim contract) never
        // samples the schedule, but the constructor insists on ≥ 1.
        let schedule =
            SteppedSchedule::over_iterations(self.factor.t_max(), 70, self.iterations.max(1));
        // Default normalization: 1/80 of the typical |σ_rᵀJσ_c|. The
        // division is the one-time full-scale calibration a hardware
        // bring-up performs on the ADC reference; 80 places the sweep's
        // selective phase early enough that the paper's tight iteration
        // budgets (700 iterations for 800 spins) convert into cut gain
        // rather than random walk. The calibration sweep lives in the
        // `ablation` bench.
        let scale = self
            .einc_scale
            .unwrap_or_else(|| suggest_einc_scale(coupling, self.flips) / 80.0);
        let mut config = AnnealConfig::new(self.iterations, seed).with_flips(self.flips.min(n));
        if let Some(every) = self.trace_every {
            config = config.with_trace(every);
        }
        if let Some(target) = self.target_energy {
            config = config.with_target_energy(target);
        }
        run_in_situ(backend, &schedule, factor.as_ref(), scale, config)
    }
}

impl Solver for CimAnnealer {
    fn name(&self) -> &str {
        "in-situ (this work)"
    }

    fn kind(&self) -> AnnealerKind {
        AnnealerKind::InSitu
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn run_engine(&self, coupling: &CsrCoupling, initial: SpinVector, seed: u64) -> RunResult {
        match (&self.device_in_loop, self.tile_rows) {
            (None, _) => {
                let mut backend = ExactBackend::new(coupling, initial);
                self.anneal_with_backend(coupling, &mut backend, seed)
            }
            (Some(xb_config), None) => {
                let mut backend = CrossbarBackend::new(coupling, initial, xb_config.clone());
                self.anneal_with_backend(coupling, &mut backend, seed)
            }
            (Some(xb_config), Some(tile_rows)) => {
                let mut backend =
                    TiledBackend::new(coupling, initial, xb_config.clone(), tile_rows);
                self.anneal_with_backend(coupling, &mut backend, seed)
            }
        }
    }

    fn hardware_report(&self, run: &mut RunResult, spins: usize) -> (EnergyReport, TimeReport) {
        let cost_model = match self.tile_rows {
            None => CostModel::paper_22nm(spins, self.quant_bits),
            Some(tr) => CostModel::paper_22nm_tiled(spins, self.quant_bits, tr),
        };
        let profile = IterationProfile {
            spins,
            quant_bits: self.quant_bits,
            flips: self.flips,
            mux_ratio: self.mux_ratio,
            tile_rows: self.tile_rows,
            batch_instances: 1,
        };
        // Prefer measured activity (device-in-loop) over the analytic model.
        match &run.activity {
            Some(stats) => (
                fecim_hwcost::energy_of(stats, &cost_model, fecim_hwcost::ExpUnit::Asic),
                fecim_hwcost::time_of(stats, &cost_model, fecim_hwcost::ExpUnit::Asic),
            ),
            None => (
                profile.run_energy(AnnealerKind::InSitu, &cost_model, run.iterations),
                profile.run_time(AnnealerKind::InSitu, &cost_model, run.iterations),
            ),
        }
    }
}

/// Outcome of one solver invocation, with hardware costs attached.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveReport {
    /// Which architecture produced this run.
    pub kind: AnnealerKind,
    /// Best exact Ising energy reached.
    pub best_energy: f64,
    /// Native objective of the best solution (`None` when solving a raw
    /// Ising model).
    pub objective: Option<f64>,
    /// Whether the best solution satisfies the problem's constraints.
    pub feasible: bool,
    /// Best solution in the problem's original spin space.
    pub best_spins: SpinVector,
    /// Hardware energy of the run.
    pub energy: EnergyReport,
    /// Hardware latency of the run.
    pub time: TimeReport,
    /// The raw annealing run.
    pub run: RunResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_ising::MaxCut;

    fn ring_problem(n: usize) -> MaxCut {
        MaxCut::new(n, (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect()).unwrap()
    }

    #[test]
    fn solves_ring_max_cut_with_defaults() {
        let problem = ring_problem(16);
        let solver = CimAnnealer::new(2000).with_flips(1);
        let report = solver.solve(&problem, 11).unwrap();
        assert_eq!(report.kind, AnnealerKind::InSitu);
        assert!(report.feasible);
        let cut = report.objective.unwrap();
        assert!(cut >= 14.0, "cut={cut}");
        assert!(report.energy.total() > 0.0);
        assert!(report.time.total() > 0.0);
    }

    #[test]
    fn device_in_loop_produces_measured_activity() {
        let problem = ring_problem(12);
        let solver = CimAnnealer::new(300)
            .with_flips(1)
            .with_device_in_loop(CrossbarConfig::paper_defaults());
        let report = solver.solve(&problem, 3).unwrap();
        let activity = report.run.activity.expect("crossbar runs record stats");
        assert!(activity.adc_conversions > 0);
        assert!(activity.bg_updates as usize >= 300);
    }

    #[test]
    fn tiled_device_in_loop_records_per_tile_activity() {
        let problem = ring_problem(24);
        let solver = CimAnnealer::new(200)
            .with_flips(1)
            .with_tiled_device_in_loop(CrossbarConfig::paper_defaults(), 8);
        let report = solver.solve(&problem, 3).unwrap();
        let activity = report.run.activity.expect("tiled runs record stats");
        assert!(activity.tiles_activated > 0, "per-tile activity recorded");
        assert!(activity.adc_conversions > 0);
        assert!(report.energy.total() > 0.0);
        // Ideal-fidelity tiling is bit-identical to the monolithic read,
        // so the solve trajectory matches the untiled device run exactly.
        let mono = CimAnnealer::new(200)
            .with_flips(1)
            .with_device_in_loop(CrossbarConfig::paper_defaults())
            .solve(&problem, 3)
            .unwrap();
        assert_eq!(report.best_energy, mono.best_energy);
        assert_eq!(report.best_spins, mono.best_spins);
    }

    #[test]
    fn handles_problems_with_linear_terms() {
        // Knapsack-like field model via a tiny partition problem is pure
        // quadratic; use MIS (has linear terms) to exercise the ancilla.
        let problem = fecim_ising::MaxIndependentSet::new(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let solver = CimAnnealer::new(1500).with_flips(1);
        let report = solver.solve(&problem, 5).unwrap();
        assert!(report.feasible);
        // MIS of a path of 4 vertices has size 2.
        assert!(report.objective.unwrap() >= 2.0);
    }

    #[test]
    fn device_factor_solves_too() {
        let problem = ring_problem(12);
        let solver = CimAnnealer::new(1500)
            .with_flips(1)
            .with_factor(FactorChoice::Device);
        let report = solver.solve(&problem, 9).unwrap();
        assert!(report.objective.unwrap() >= 10.0);
    }

    #[test]
    fn empty_table_curve_fails_at_configuration_time_with_context() {
        let err = std::panic::catch_unwind(|| {
            let _ = CimAnnealer::new(100).with_factor(FactorChoice::Table(Vec::new()));
        })
        .expect_err("empty curve must be rejected");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("at least 2 points"),
            "descriptive message, got: {message}"
        );
        assert!(FactorChoice::Table(Vec::new()).validate().is_err());
        assert!(FactorChoice::PaperFractional.validate().is_ok());
        assert!(FactorChoice::Table(vec![(0.0, 0.1), (700.0, 1.0)])
            .validate()
            .is_ok());
    }

    #[test]
    fn trace_recording_respects_interval() {
        let problem = ring_problem(8);
        let solver = CimAnnealer::new(100).with_flips(1).with_trace(25);
        let report = solver.solve(&problem, 1).unwrap();
        assert_eq!(report.run.trace.points().len(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = ring_problem(10);
        let solver = CimAnnealer::new(500).with_flips(1);
        let a = solver.solve(&problem, 77).unwrap();
        let b = solver.solve(&problem, 77).unwrap();
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.best_spins, b.best_spins);
    }
}
