//! Shared-grid batched solving: a whole device-in-the-loop ensemble on
//! ONE physical tile grid.
//!
//! A single in-situ iteration activates only the flipped stripes of one
//! instance's block; everything else idles. The batched route (a
//! [`SolveRequest`](crate::SolveRequest) with
//! [`BackendPlan::Batched`](crate::BackendPlan::Batched) through
//! [`Session::run`](crate::Session::run)) turns that slack into
//! throughput: the ensemble's replicas are packed
//! side by side onto one [`BatchedTiledCrossbar`] (block-diagonal along
//! the stripe axis), every replica anneals against its own
//! [`BatchedBackend`] handle, and replicas convert concurrently on
//! disjoint ADC banks — the grid serves `trials` solves in the hardware
//! time of roughly one.
//!
//! In [`Fidelity::Ideal`](fecim_crossbar::Fidelity::Ideal) mode each
//! replica's trajectory is bit-identical to the same trial run unbatched
//! through [`CimAnnealer::with_tiled_device_in_loop`] — batching is a
//! placement change, not an algorithm change — which is exactly what the
//! equivalence tests pin.

use std::sync::PoisonError;

use serde::{Deserialize, Serialize};

use fecim_anneal::BatchedBackend;
use fecim_anneal::Ensemble;
use fecim_crossbar::{BatchInstance, BatchedTiledCrossbar, CrossbarConfig};
use fecim_hwcost::{energy_of, time_of, CostModel, ExpUnit};
#[cfg(test)]
use fecim_ising::IsingError;
use fecim_ising::{CopProblem, Coupling, IsingModel, SpinVector};

use crate::annealer::{CimAnnealer, SolveReport};
use crate::solver::{Solver, INIT_SEED_SALT};

/// A solver that can anneal one replica against a shared-grid instance
/// handle — the hook that lets the batched route serve both the CiM
/// in-situ annealer (incremental-E sensing through a [`BatchedBackend`])
/// and the SB family (full-vector MVM reads on the same grid block)
/// through one code path.
pub(crate) trait BatchedSolve: Solver {
    /// Run one trial against the instance's grid block. The handle has
    /// already been reseeded for the trial; `initial` is the embedded
    /// start configuration.
    fn anneal_batched(
        &self,
        coupling: &fecim_ising::CsrCoupling,
        initial: SpinVector,
        handle: BatchInstance,
        seed: u64,
    ) -> fecim_anneal::RunResult;
}

impl BatchedSolve for CimAnnealer {
    fn anneal_batched(
        &self,
        coupling: &fecim_ising::CsrCoupling,
        initial: SpinVector,
        handle: BatchInstance,
        seed: u64,
    ) -> fecim_anneal::RunResult {
        let mut backend = BatchedBackend::new(coupling, initial, handle);
        self.anneal_with_backend(coupling, &mut backend, seed)
    }
}

/// Grid-level summary of one batched ensemble solve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchGridSummary {
    /// Replicas that shared the grid.
    pub instances: usize,
    /// Physical tile height of every block.
    pub tile_rows: usize,
    /// Shared-grid dimensions `(row_bands, column_stripes)`.
    pub grid: (usize, usize),
    /// Physical tiles the shared grid instantiates.
    pub physical_tiles: usize,
    /// Fraction of the grid's tile-cycles activated when every replica
    /// iterates concurrently (lockstep estimate: summed per-instance
    /// activations over the grid's capacity for the longest replica's
    /// cycle count).
    pub concurrent_utilization: f64,
    /// Total hardware energy across all replicas, joules (attributed
    /// per replica in the individual [`SolveReport`]s).
    pub total_energy: f64,
    /// Hardware latency of the batch: replicas run concurrently on
    /// disjoint banks, so the batch finishes with its slowest replica.
    pub batch_time: f64,
    /// Hardware latency if the same grid served the replicas one at a
    /// time (the unbatched alternative): the sum of replica latencies.
    pub serial_time: f64,
    /// Solves per second of simulated hardware time under batching.
    pub instances_per_second: f64,
}

/// Outcome of one shared-grid batched ensemble: the per-replica reports
/// (trial order, bit-identical to unbatched runs in Ideal fidelity) plus
/// the shared-grid summary.
#[derive(Debug, Clone)]
pub struct BatchedEnsembleOutcome {
    /// One report per ensemble trial, in trial order.
    pub reports: Vec<SolveReport>,
    /// Grid-level sharing summary.
    pub grid: BatchGridSummary,
}

/// Solve `ensemble.trials()` device-in-the-loop replicas of `problem` on
/// one shared physical grid: encodes the problem once, then delegates to
/// [`batched_ensemble_prepared`]. Per-trial seeds and the
/// initial-configuration draw match
/// [`Solver::anneal_model`](crate::Solver::anneal_model), so in Ideal
/// fidelity trial `i` reproduces
/// `solver.with_tiled_device_in_loop(config, tile_rows)` solving the
/// same problem with seed `base_seed + i`, bit for bit.
///
/// # Errors
///
/// Propagates encoding errors from the problem's Ising transformation.
///
/// # Panics
///
/// Panics if `ensemble` plans zero trials or `tile_rows == 0`.
#[cfg(test)] // production callers go through `Session`'s prepared route
pub(crate) fn batched_ensemble(
    solver: &dyn BatchedSolve,
    problem: &(dyn CopProblem + Sync),
    config: CrossbarConfig,
    tile_rows: usize,
    ensemble: &Ensemble,
) -> Result<BatchedEnsembleOutcome, IsingError> {
    let model = problem.to_ising()?;
    let quadratic = model.to_quadratic_only();
    Ok(batched_ensemble_prepared(
        solver, problem, &model, &quadratic, config, tile_rows, ensemble, None,
    ))
}

/// One shared-grid ensemble over an already-encoded model; the
/// [`Session`](crate::Session) batched route calls this with the
/// encoding its `prepare` step produced, one grid per `instances`-wide
/// chunk of the run plan — no re-encoding per chunk.
#[allow(clippy::too_many_arguments)] // pub(crate) plumbing shared by two call sites
pub(crate) fn batched_ensemble_prepared(
    solver: &dyn BatchedSolve,
    problem: &(dyn CopProblem + Sync),
    model: &IsingModel,
    quadratic: &IsingModel,
    config: CrossbarConfig,
    tile_rows: usize,
    ensemble: &Ensemble,
    start: Option<&SpinVector>,
) -> BatchedEnsembleOutcome {
    assert!(ensemble.trials() > 0, "need at least one trial");
    let cost_model = CostModel::paper_22nm_tiled(model.dimension(), config.quant_bits, tile_rows);

    let grid = BatchedTiledCrossbar::replicate(
        quadratic.couplings(),
        ensemble.trials(),
        config,
        tile_rows,
    )
    .into_shared();
    let reports: Vec<SolveReport> = ensemble.run_batched(&grid, |_, seed, handle| {
        batched_trial_report(
            solver,
            problem,
            model,
            quadratic,
            &cost_model,
            seed,
            handle,
            start,
        )
    });

    let mut total_energy = 0.0f64;
    let mut batch_time = 0.0f64;
    let mut serial_time = 0.0f64;
    for report in &reports {
        total_energy += report.energy.total();
        batch_time = batch_time.max(report.time.total());
        serial_time += report.time.total();
    }

    let grid = grid.lock().unwrap_or_else(PoisonError::into_inner);
    let (bands, stripes) = grid.grid();
    let physical_tiles = grid.physical_tiles();
    let summary = BatchGridSummary {
        instances: grid.instance_count(),
        tile_rows,
        grid: (bands, stripes),
        physical_tiles,
        concurrent_utilization: concurrent_utilization(&grid),
        total_energy,
        batch_time,
        serial_time,
        instances_per_second: if batch_time > 0.0 {
            grid.instance_count() as f64 / batch_time
        } else {
            0.0
        },
    };
    BatchedEnsembleOutcome {
        reports,
        grid: summary,
    }
}

/// One device-in-the-loop trial of `problem` on a shared-grid instance:
/// the inner unit behind [`batched_ensemble`] *and* the scheduler's
/// live-grid admission (`fecim-serve`), so both execute replicas
/// identically. Per-trial seeding and the initial-configuration draw
/// match [`Solver::anneal_model`](crate::Solver::anneal_model); in Ideal
/// fidelity the trial is bit-identical to
/// `solver.with_tiled_device_in_loop(config, tile_rows)` solving the
/// same problem with the same seed. In device-accurate fidelity the
/// instance is first reseeded from the trial seed, so trial results are
/// a pure function of `(request, trial seed)` — invariant to chunking,
/// live-grid admission order, and scheduler worker count. The replica
/// is priced at tile-scale geometry from its own measured activity,
/// regardless of who else shares the grid.
#[allow(clippy::too_many_arguments)] // pub(crate) plumbing shared by two call sites
pub(crate) fn batched_trial_report(
    solver: &dyn BatchedSolve,
    problem: &dyn CopProblem,
    model: &IsingModel,
    quadratic: &IsingModel,
    cost_model: &CostModel,
    seed: u64,
    mut handle: BatchInstance,
    start: Option<&SpinVector>,
) -> SolveReport {
    use rand::SeedableRng;
    // Re-program the instance's stochastic state from the trial seed
    // (a write-verify pass for the new tenant) so device-accurate
    // results are invariant to slot placement, chunking, admission
    // order, and scheduler worker count. No-op in Ideal variation.
    handle.reseed_for_trial(seed);
    let coupling = quadratic.couplings();
    let initial = match start {
        // Warm start: every replica anneals from the request's supplied
        // spins (embedded into the ancilla space when fields exist).
        Some(start) => crate::solver::embed_start(model, start),
        None => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ INIT_SEED_SALT);
            SpinVector::random(coupling.dimension(), &mut rng)
        }
    };
    let run = solver.anneal_batched(coupling, initial, handle, seed);

    let spins = if model.is_quadratic_only() {
        run.best_spins.clone()
    } else {
        model.project_from_quadratic(&run.best_spins)
    };
    let objective = problem.native_objective(&spins);
    let feasible = problem.is_feasible(&spins);
    let stats = run
        .activity
        // audit:allow(panic-path): this path only runs trials through batched crossbar backends, which always populate `activity`; a None is a backend bug that must abort, not report zero cost
        .expect("batched backends always record activity");
    let energy = energy_of(&stats, cost_model, ExpUnit::Asic);
    let time = time_of(&stats, cost_model, ExpUnit::Asic);
    SolveReport {
        kind: solver.kind(),
        best_energy: run.best_energy,
        objective: Some(objective),
        feasible,
        best_spins: spins,
        energy,
        time,
        run,
    }
}

/// Lockstep utilization estimate: replicas iterate concurrently, so the
/// grid runs for the busiest replica's cycle count and every instance's
/// activated tiles land inside that window.
fn concurrent_utilization(grid: &BatchedTiledCrossbar) -> f64 {
    let mut activated = 0u64;
    let mut worst_cycles = 0u64;
    for i in 0..grid.instance_count() {
        let stats = grid.instance_stats(i);
        activated += stats.tiles_activated;
        worst_cycles = worst_cycles.max(stats.array_ops);
    }
    let capacity = worst_cycles * grid.physical_tiles() as u64;
    if capacity == 0 {
        return 0.0;
    }
    activated as f64 / capacity as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_ising::MaxCut;

    fn ring_problem(n: usize) -> MaxCut {
        MaxCut::new(n, (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect()).unwrap()
    }

    #[test]
    fn batched_ensemble_matches_unbatched_tiled_solves_bit_for_bit() {
        let problem = ring_problem(24);
        let solver = CimAnnealer::new(150).with_flips(1);
        let ensemble = Ensemble::new(3, 41);
        let batched = batched_ensemble(
            &solver,
            &problem,
            CrossbarConfig::paper_defaults(),
            8,
            &ensemble,
        )
        .expect("ring encodes");
        assert_eq!(batched.reports.len(), 3);
        let unbatched_solver = CimAnnealer::new(150)
            .with_flips(1)
            .with_tiled_device_in_loop(CrossbarConfig::paper_defaults(), 8);
        for (i, seed) in ensemble.seeds().enumerate() {
            let solo = unbatched_solver
                .solve(&problem, seed)
                .expect("ring encodes");
            assert_eq!(
                batched.reports[i].best_energy, solo.best_energy,
                "trial {i}"
            );
            assert_eq!(batched.reports[i].best_spins, solo.best_spins, "trial {i}");
            assert_eq!(
                batched.reports[i].run.accepted, solo.run.accepted,
                "trial {i}"
            );
        }
    }

    #[test]
    fn batch_summary_reports_sharing_win() {
        let problem = ring_problem(16);
        let solver = CimAnnealer::new(80).with_flips(1);
        let ensemble = Ensemble::new(4, 7);
        let out = batched_ensemble(
            &solver,
            &problem,
            CrossbarConfig::paper_defaults(),
            4,
            &ensemble,
        )
        .expect("ring encodes");
        let g = &out.grid;
        assert_eq!(g.instances, 4);
        assert_eq!(g.grid.0, 4);
        assert_eq!(g.grid.1, 16, "4 replicas × 4 stripes each");
        assert_eq!(g.physical_tiles, 64);
        // Concurrency: the batch finishes with its slowest replica, far
        // sooner than serving replicas one at a time.
        assert!(g.batch_time > 0.0);
        assert!(
            g.serial_time > 3.0 * g.batch_time,
            "serial {} vs batch {}",
            g.serial_time,
            g.batch_time
        );
        assert!(g.instances_per_second > 0.0);
        assert!(g.concurrent_utilization > 0.0 && g.concurrent_utilization <= 1.0);
        // Per-replica attribution survives batching.
        for r in &out.reports {
            assert!(r.energy.total() > 0.0);
            assert!(r.run.activity.is_some());
        }
        let attributed: f64 = out.reports.iter().map(|r| r.energy.total()).sum();
        assert!((attributed - g.total_energy).abs() < 1e-12 * g.total_energy.abs().max(1.0));
    }

    #[test]
    fn batched_ensemble_propagates_encoding_errors() {
        use fecim_ising::{IsingModel, ObjectiveSense, SpinVector};

        #[derive(Debug)]
        struct Unencodable;
        impl CopProblem for Unencodable {
            fn spin_count(&self) -> usize {
                4
            }
            fn to_ising(&self) -> Result<IsingModel, IsingError> {
                Err(IsingError::InvalidProblem("no Ising form".into()))
            }
            fn native_objective(&self, _: &SpinVector) -> f64 {
                0.0
            }
            fn objective_sense(&self) -> ObjectiveSense {
                ObjectiveSense::Maximize
            }
            fn is_feasible(&self, _: &SpinVector) -> bool {
                true
            }
            fn name(&self) -> &str {
                "unencodable"
            }
        }

        let solver = CimAnnealer::new(10);
        let err = batched_ensemble(
            &solver,
            &Unencodable,
            CrossbarConfig::paper_defaults(),
            4,
            &Ensemble::new(2, 1),
        )
        .expect_err("must propagate, not panic");
        assert!(matches!(err, IsingError::InvalidProblem(_)));
    }
}
