//! The two baseline annealers of the paper's evaluation (Sec. 4): FeFET
//! CiM direct-E simulated annealing with an FPGA or ASIC exponential
//! unit (refs [7] + [18]), plus the MESA variant of ref [7].

use serde::{Deserialize, Serialize};

use fecim_anneal::{
    run_direct, suggest_einc_scale, Acceptance, AnnealConfig, CrossbarBackend, ExactBackend,
    GeometricSchedule, RunResult, TiledBackend,
};
use fecim_crossbar::CrossbarConfig;
use fecim_hwcost::{AnnealerKind, CostModel, EnergyReport, ExpUnit, IterationProfile, TimeReport};
use fecim_ising::{CopProblem, Coupling, CsrCoupling, IsingError, IsingModel, SpinVector};

use crate::annealer::SolveReport;
use crate::solver::Solver;

/// Baseline direct-E CiM annealer (conventional FeFET crossbar + digital
/// Metropolis acceptance with a hardware `eˣ` unit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectAnnealer {
    iterations: usize,
    flips: usize,
    exp_unit: ExpUnit,
    acceptance: Acceptance,
    t0: Option<f64>,
    t_end_fraction: f64,
    device_in_loop: Option<CrossbarConfig>,
    tile_rows: Option<usize>,
    trace_every: Option<usize>,
    target_energy: Option<f64>,
    quant_bits: u8,
    mux_ratio: usize,
}

impl DirectAnnealer {
    /// The CiM/FPGA-based annealer of the paper.
    pub fn cim_fpga(iterations: usize) -> DirectAnnealer {
        DirectAnnealer::new(iterations, ExpUnit::Fpga)
    }

    /// The CiM/ASIC-based annealer of the paper.
    pub fn cim_asic(iterations: usize) -> DirectAnnealer {
        DirectAnnealer::new(iterations, ExpUnit::Asic)
    }

    fn new(iterations: usize, exp_unit: ExpUnit) -> DirectAnnealer {
        DirectAnnealer {
            iterations,
            flips: 2,
            exp_unit,
            acceptance: Acceptance::Metropolis,
            t0: None,
            t_end_fraction: 1e-2,
            device_in_loop: None,
            tile_rows: None,
            trace_every: None,
            target_energy: None,
            quant_bits: crate::solver::DEFAULT_QUANT_BITS,
            mux_ratio: crate::solver::DEFAULT_MUX_RATIO,
        }
    }

    /// The architecture tag of this baseline.
    pub fn kind(&self) -> AnnealerKind {
        match self.exp_unit {
            ExpUnit::Fpga => AnnealerKind::CimFpga,
            ExpUnit::Asic => AnnealerKind::CimAsic,
        }
    }

    /// Override the flip-set size.
    ///
    /// # Panics
    ///
    /// Panics if `flips == 0`.
    pub fn with_flips(mut self, flips: usize) -> DirectAnnealer {
        assert!(flips > 0, "need at least one flip");
        self.flips = flips;
        self
    }

    /// Override the acceptance rule (ablations).
    pub fn with_acceptance(mut self, acceptance: Acceptance) -> DirectAnnealer {
        self.acceptance = acceptance;
        self
    }

    /// Fix the initial temperature (default: problem-adapted).
    ///
    /// # Panics
    ///
    /// Panics if `t0 <= 0`.
    pub fn with_t0(mut self, t0: f64) -> DirectAnnealer {
        assert!(t0 > 0.0, "t0 must be positive");
        self.t0 = Some(t0);
        self
    }

    /// Route energy measurements through the simulated crossbar.
    pub fn with_device_in_loop(mut self, config: CrossbarConfig) -> DirectAnnealer {
        self.quant_bits = config.quant_bits;
        self.mux_ratio = config.mux_ratio;
        self.device_in_loop = Some(config);
        self
    }

    /// Route energy measurements through the tiled array composition
    /// (fixed-size `tile_rows`-row tiles; see
    /// `fecim_crossbar::TiledCrossbar`).
    ///
    /// # Panics
    ///
    /// Panics if `tile_rows == 0`.
    pub fn with_tiled_device_in_loop(
        mut self,
        config: CrossbarConfig,
        tile_rows: usize,
    ) -> DirectAnnealer {
        assert!(tile_rows > 0, "tile_rows must be positive");
        self.tile_rows = Some(tile_rows);
        self.with_device_in_loop(config)
    }

    /// Record a trace point every `every` iterations.
    pub fn with_trace(mut self, every: usize) -> DirectAnnealer {
        self.trace_every = Some(every.max(1));
        self
    }

    /// Strip any device backend and restore the software-exact defaults
    /// — the [`Session`](crate::Session) hook that makes the request's
    /// `BackendPlan` authoritative over knobs already on the solver.
    pub(crate) fn with_analytic_backend(mut self) -> DirectAnnealer {
        self.device_in_loop = None;
        self.tile_rows = None;
        self.quant_bits = crate::solver::DEFAULT_QUANT_BITS;
        self.mux_ratio = crate::solver::DEFAULT_MUX_RATIO;
        self
    }

    /// Record the first iteration whose best Ising energy reaches
    /// `target` (the time-to-solution metric of the paper's Table 1);
    /// the result appears as `run.first_target_hit`.
    pub fn with_target_energy(mut self, target: f64) -> DirectAnnealer {
        self.target_energy = Some(target);
        self
    }

    /// Iterations per run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Solve a COP with the baseline flow (convenience wrapper over the
    /// [`Solver`] pipeline).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors from the problem's Ising transformation.
    pub fn solve<P: CopProblem>(&self, problem: &P, seed: u64) -> Result<SolveReport, IsingError> {
        Solver::solve(self, problem, seed)
    }

    /// Anneal a raw Ising model with the baseline flow (see
    /// [`Solver::anneal_model`]).
    pub fn anneal_model(&self, model: &IsingModel, seed: u64) -> (RunResult, SpinVector) {
        Solver::anneal_model(self, model, seed)
    }
}

impl Solver for DirectAnnealer {
    fn name(&self) -> &str {
        match self.exp_unit {
            ExpUnit::Fpga => "CiM/FPGA direct-E baseline",
            ExpUnit::Asic => "CiM/ASIC direct-E baseline",
        }
    }

    fn kind(&self) -> AnnealerKind {
        DirectAnnealer::kind(self)
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn run_engine(&self, coupling: &CsrCoupling, initial: SpinVector, seed: u64) -> RunResult {
        let n = coupling.dimension();
        // Default T0: a few times the typical |ΔE| of a t-flip move, so
        // the Metropolis walk starts hot (the classical SA prescription).
        let t0 = self
            .t0
            .unwrap_or_else(|| 4.0 * 4.0 * suggest_einc_scale(coupling, self.flips));
        // A zero-iteration run (warm-start verbatim contract) never
        // samples the schedule, but the constructor insists on ≥ 1.
        let schedule = GeometricSchedule::over_iterations(
            t0,
            t0 * self.t_end_fraction,
            self.iterations.max(1),
        );
        let mut config = AnnealConfig::new(self.iterations, seed).with_flips(self.flips.min(n));
        if let Some(every) = self.trace_every {
            config = config.with_trace(every);
        }
        if let Some(target) = self.target_energy {
            config = config.with_target_energy(target);
        }
        match (&self.device_in_loop, self.tile_rows) {
            (None, _) => {
                let mut backend = ExactBackend::new(coupling, initial);
                run_direct(&mut backend, &schedule, self.acceptance, config)
            }
            (Some(xb_config), None) => {
                let mut backend = CrossbarBackend::new(coupling, initial, xb_config.clone());
                run_direct(&mut backend, &schedule, self.acceptance, config)
            }
            (Some(xb_config), Some(tile_rows)) => {
                let mut backend =
                    TiledBackend::new(coupling, initial, xb_config.clone(), tile_rows);
                run_direct(&mut backend, &schedule, self.acceptance, config)
            }
        }
    }

    fn hardware_report(&self, run: &mut RunResult, spins: usize) -> (EnergyReport, TimeReport) {
        // The baseline evaluates eˣ once per iteration (Fig. 1b digital
        // computation); stamp it into measured activity when present.
        if let Some(stats) = run.activity.as_mut() {
            stats.exp_evaluations = run.iterations as u64;
        }
        let cost_model = match self.tile_rows {
            None => CostModel::paper_22nm(spins, self.quant_bits),
            Some(tr) => CostModel::paper_22nm_tiled(spins, self.quant_bits, tr),
        };
        let profile = IterationProfile {
            spins,
            quant_bits: self.quant_bits,
            flips: self.flips,
            mux_ratio: self.mux_ratio,
            tile_rows: self.tile_rows,
            batch_instances: 1,
        };
        match &run.activity {
            Some(stats) => (
                fecim_hwcost::energy_of(stats, &cost_model, self.exp_unit),
                fecim_hwcost::time_of(stats, &cost_model, self.exp_unit),
            ),
            None => (
                profile.run_energy(self.kind(), &cost_model, run.iterations),
                profile.run_time(self.kind(), &cost_model, run.iterations),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_ising::MaxCut;

    fn ring_problem(n: usize) -> MaxCut {
        MaxCut::new(n, (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect()).unwrap()
    }

    #[test]
    fn asic_baseline_solves_ring() {
        let problem = ring_problem(16);
        let solver = DirectAnnealer::cim_asic(4000).with_flips(1);
        let report = solver.solve(&problem, 21).unwrap();
        assert_eq!(report.kind, AnnealerKind::CimAsic);
        assert!(report.objective.unwrap() >= 14.0);
    }

    #[test]
    fn fpga_and_asic_share_algorithm_but_not_cost() {
        // Paper Sec. 4.2: same algorithm → identical solving results;
        // different eˣ hardware → different energy.
        let problem = ring_problem(12);
        let fpga = DirectAnnealer::cim_fpga(500).solve(&problem, 3).unwrap();
        let asic = DirectAnnealer::cim_asic(500).solve(&problem, 3).unwrap();
        assert_eq!(fpga.best_energy, asic.best_energy);
        assert_eq!(fpga.best_spins, asic.best_spins);
        assert!(fpga.energy.total() > asic.energy.total());
    }

    #[test]
    fn baseline_energy_exceeds_in_situ_by_large_factor() {
        use crate::annealer::CimAnnealer;
        let problem = ring_problem(64);
        let ours = CimAnnealer::new(100).solve(&problem, 1).unwrap();
        let base = DirectAnnealer::cim_asic(100).solve(&problem, 1).unwrap();
        let ratio = base.energy.total() / ours.energy.total();
        // n/t = 64/2 = 32 for the analytic profile.
        assert!(ratio > 20.0, "ratio={ratio}");
    }

    #[test]
    fn device_in_loop_counts_exp_evaluations() {
        let problem = ring_problem(10);
        let solver = DirectAnnealer::cim_asic(50)
            .with_flips(1)
            .with_device_in_loop(CrossbarConfig::paper_defaults());
        let report = solver.solve(&problem, 7).unwrap();
        let stats = report.run.activity.unwrap();
        assert_eq!(stats.exp_evaluations, 50);
        assert!(report.energy.exp > 0.0);
    }

    #[test]
    fn greedy_ablation_differs_from_metropolis() {
        let problem = ring_problem(20);
        let greedy = DirectAnnealer::cim_asic(300)
            .with_acceptance(Acceptance::Greedy)
            .solve(&problem, 5)
            .unwrap();
        // Greedy accepts only downhill: acceptance ratio must be below a
        // hot Metropolis run's.
        let metro = DirectAnnealer::cim_asic(300)
            .with_t0(50.0)
            .solve(&problem, 5)
            .unwrap();
        assert!(greedy.run.acceptance_ratio() < metro.run.acceptance_ratio());
    }
}
