//! MESA solver facade: the Multi-Epoch SA variant of the FeFET CiM
//! annealer (paper ref [7]), costed like the CiM/ASIC baseline (same
//! direct-E hardware; MESA changes only the schedule logic).

use serde::{Deserialize, Serialize};

use fecim_anneal::{run_mesa, suggest_einc_scale, MesaConfig, RunResult};
use fecim_hwcost::{AnnealerKind, CostModel, EnergyReport, ExpUnit, IterationProfile, TimeReport};
use fecim_ising::{CopProblem, CsrCoupling, IsingError, SpinVector};

use crate::annealer::SolveReport;
use crate::solver::Solver;

/// The MESA baseline solver (ref \[7\]'s enhanced SA on direct-E hardware).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MesaAnnealer {
    iterations: usize,
    epochs: usize,
    reheat: f64,
}

impl MesaAnnealer {
    /// MESA with the defaults of ref \[7\]: 4 epochs, 0.5× re-heating.
    pub fn new(iterations: usize) -> MesaAnnealer {
        MesaAnnealer {
            iterations,
            epochs: 4,
            reheat: 0.5,
        }
    }

    /// Override the epoch count.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0`.
    pub fn with_epochs(mut self, epochs: usize) -> MesaAnnealer {
        assert!(epochs > 0, "need at least one epoch");
        self.epochs = epochs;
        self
    }

    /// Total iterations across all epochs.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Solve a COP with MESA (convenience wrapper over the [`Solver`]
    /// pipeline).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors from the problem's Ising transformation.
    pub fn solve<P: CopProblem>(&self, problem: &P, seed: u64) -> Result<SolveReport, IsingError> {
        Solver::solve(self, problem, seed)
    }
}

impl Solver for MesaAnnealer {
    fn name(&self) -> &str {
        "MESA multi-epoch baseline"
    }

    fn kind(&self) -> AnnealerKind {
        AnnealerKind::CimAsic
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn run_engine(&self, coupling: &CsrCoupling, initial: SpinVector, seed: u64) -> RunResult {
        if self.iterations == 0 {
            // `MesaConfig` floors iterations_per_epoch at 1, so a true
            // zero-sweep run (the warm-start verbatim contract) must
            // short-circuit before the epoch loop, like the other
            // engines' `0..iterations` loops do naturally.
            use fecim_ising::Coupling;
            let energy = coupling.energy(&initial);
            return RunResult {
                iterations: 0,
                accepted: 0,
                final_energy: energy,
                final_spins: initial.clone(),
                best_energy: energy,
                best_spins: initial,
                first_target_hit: None,
                trace: fecim_anneal::Trace::new(),
                activity: None,
            };
        }
        let t0 = 16.0 * suggest_einc_scale(coupling, 1);
        let mut config = MesaConfig::new(self.iterations, t0, seed);
        config.epochs = self.epochs;
        config.iterations_per_epoch = (self.iterations / self.epochs).max(1);
        config.reheat = self.reheat;
        run_mesa(coupling, initial, config)
    }

    fn hardware_report(&self, run: &mut RunResult, spins: usize) -> (EnergyReport, TimeReport) {
        // Same direct-E hardware as the ASIC baseline (one exp unit, full
        // array reads each iteration).
        let cost_model = CostModel::paper_22nm(spins, 4);
        let profile = IterationProfile::paper(spins);
        let mut activity = profile.activity(AnnealerKind::CimAsic);
        let iters = run.iterations as u64;
        activity.array_ops *= iters;
        activity.row_passes *= iters;
        activity.adc_conversions *= iters;
        activity.adc_slots *= iters;
        activity.cells_activated *= iters;
        activity.rows_driven *= iters;
        activity.columns_driven *= iters;
        activity.shift_add_ops *= iters;
        activity.buffer_writes *= iters;
        activity.exp_evaluations *= iters;
        let energy = fecim_hwcost::energy_of(&activity, &cost_model, ExpUnit::Asic);
        let time = fecim_hwcost::time_of(&activity, &cost_model, ExpUnit::Asic);
        (energy, time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_ising::MaxCut;

    fn ring_problem(n: usize) -> MaxCut {
        MaxCut::new(n, (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect()).unwrap()
    }

    #[test]
    fn mesa_solves_ring() {
        let problem = ring_problem(16);
        let report = MesaAnnealer::new(4000).solve(&problem, 3).unwrap();
        assert!(report.objective.unwrap() >= 14.0);
        assert_eq!(report.kind, AnnealerKind::CimAsic);
        assert!(report.energy.exp > 0.0, "MESA pays for the exp unit");
    }

    #[test]
    fn epoch_override() {
        let problem = ring_problem(12);
        let a = MesaAnnealer::new(1000)
            .with_epochs(2)
            .solve(&problem, 7)
            .unwrap();
        let b = MesaAnnealer::new(1000)
            .with_epochs(5)
            .solve(&problem, 7)
            .unwrap();
        // Different epoch structure → different trajectories (almost surely).
        assert!(a.best_energy != b.best_energy || a.run.accepted != b.run.accepted);
    }

    #[test]
    fn mesa_energy_cost_matches_asic_baseline_per_iteration() {
        use crate::baselines::DirectAnnealer;
        let problem = ring_problem(32);
        let mesa = MesaAnnealer::new(500).solve(&problem, 1).unwrap();
        let asic = DirectAnnealer::cim_asic(500).solve(&problem, 1).unwrap();
        let rel = (mesa.energy.total() - asic.energy.total()).abs() / asic.energy.total();
        assert!(rel < 1e-9, "MESA runs on the same hardware: rel={rel}");
    }
}
