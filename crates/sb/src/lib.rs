//! Simulated-bifurcation engines (bSB/dSB) on the FeCIM crossbar.
//!
//! The paper's in-situ annealer is *spin-serial*: every iteration flips a
//! `t`-spin subset and senses one incremental-E read, so hardware
//! throughput is capped at `t` column groups per array cycle. The
//! simulated-bifurcation (SB) family evolves a *continuous* position /
//! momentum pair `(x_i, y_i)` per spin under a symplectic Euler update
//! and needs the full coupling product `J·x` (ballistic, bSB) or
//! `J·sign(x)` (discrete, dSB) each step — exactly one full-vector MVM
//! read of the same crossbar, replacing `n` spin-serial reads. That is
//! where SB's parallelism advantage shows up on this hardware, and why
//! the engine talks to the array through the
//! [`InSituArray::mvm`](fecim_crossbar::InSituArray::mvm) primitive:
//! Ideal/DeviceAccurate fidelities, [`TiledCrossbar`](fecim_crossbar::TiledCrossbar)
//! composition and [`BatchedTiledCrossbar`](fecim_crossbar::BatchedTiledCrossbar)
//! shared grids all work unchanged.
//!
//! The crate has two layers:
//!
//! * [`MvmSource`] — where the per-step coupling product comes from:
//!   software-exact ([`ExactMvm`]) or the simulated crossbar
//!   ([`DeviceMvm`], which drives bSB's continuous input through a
//!   bit-serial sign-vector DAC decomposition);
//! * [`SbEngine`] — the bSB/dSB symplectic update loop, returning the
//!   same [`RunResult`](fecim_anneal::RunResult) shape as the annealing
//!   engines so solvers, sessions, schedulers and campaigns compose
//!   without new plumbing.
//!
//! Determinism: a run is a pure function of `(engine config, coupling,
//! initial spins, seed)`. The update loop is serial, the only randomness
//! is the seeded momentum draw, and the device MVM read is bit-identical
//! at any thread count (read noise is counter-based per MVM ordinal), so
//! SB trials inherit the workspace-wide bit-reproducibility contract.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod mvm;

pub use engine::{suggest_coupling_strength, PressureSchedule, SbEngine, SbVariant};
pub use mvm::{DeviceMvm, ExactMvm, MvmSource};
