//! MVM sources: where the simulated-bifurcation coupling product comes
//! from.
//!
//! Both SB variants consume one matrix-vector product per step. The
//! discrete variant drives a plain sign vector — one
//! [`InSituArray::mvm`] read. The ballistic variant needs `J·x` for
//! continuous `x ∈ [−1, 1]ⁿ`, which the crossbar serves *bit-serially*:
//! the input DAC quantizes `x` to a signed fixed-point code and drives
//! one sign-vector plane per input bit (entries `{−1, 0, +1}`; zero
//! rows conduct in neither polarity pass), and the digital periphery
//! recombines the per-plane outputs with shift-add weights `2^b`. A
//! `in_bits`-bit drive therefore costs `in_bits` array reads per step —
//! the hardware-cost differentiator between bSB and dSB that
//! `fecim-hwcost` prices.

use fecim_crossbar::{ActivityStats, InSituArray};
use fecim_ising::Coupling;

/// Where the per-step SB coupling product comes from.
///
/// Implementations must be deterministic: the same call sequence on the
/// same source yields bit-identical outputs (the device path inherits
/// this from the crossbar's counter-based read-noise contract).
pub trait MvmSource {
    /// Matrix dimension `n`.
    fn dimension(&self) -> usize;

    /// One sign-vector product `(Jσ)_j` for `σ ∈ {−1, 0, +1}ⁿ` — the
    /// dSB drive (and the per-plane primitive of the bSB drive).
    fn mvm_signs(&mut self, sigma: &[i8]) -> Vec<f64>;

    /// The continuous product `(Jx)_j` for `x ∈ [−1, 1]ⁿ` — the bSB
    /// drive.
    fn mvm_continuous(&mut self, x: &[f64]) -> Vec<f64>;

    /// Accumulated hardware activity (`None` for software sources).
    fn activity(&self) -> Option<ActivityStats>;
}

/// Software-exact coupling product, the SB analogue of the annealers'
/// `ExactBackend`: full-precision f64 arithmetic, no quantization, no
/// activity statistics.
#[derive(Debug)]
pub struct ExactMvm<'a, C: Coupling + ?Sized> {
    coupling: &'a C,
}

impl<'a, C: Coupling + ?Sized> ExactMvm<'a, C> {
    /// Wrap a coupling matrix.
    pub fn new(coupling: &'a C) -> ExactMvm<'a, C> {
        ExactMvm { coupling }
    }
}

impl<C: Coupling + ?Sized> MvmSource for ExactMvm<'_, C> {
    fn dimension(&self) -> usize {
        self.coupling.dimension()
    }

    fn mvm_signs(&mut self, sigma: &[i8]) -> Vec<f64> {
        let n = self.coupling.dimension();
        assert_eq!(sigma.len(), n, "dimension mismatch");
        let mut out = vec![0.0; n];
        for (i, &s) in sigma.iter().enumerate() {
            if s == 0 {
                continue;
            }
            let s = s as f64;
            // J is symmetric, so scattering row i into the output
            // columns computes (Jσ)_j = Σ_i J_ij σ_i.
            self.coupling
                .for_each_in_row(i, &mut |j, v| out[j] += s * v);
        }
        out
    }

    fn mvm_continuous(&mut self, x: &[f64]) -> Vec<f64> {
        let n = self.coupling.dimension();
        assert_eq!(x.len(), n, "dimension mismatch");
        let mut out = vec![0.0; n];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            self.coupling
                .for_each_in_row(i, &mut |j, v| out[j] += xi * v);
        }
        out
    }

    fn activity(&self) -> Option<ActivityStats> {
        None
    }
}

/// Crossbar-backed coupling product: every product is an
/// [`InSituArray::mvm`] read of a programmed array (monolithic, tiled,
/// or a shared-grid batch instance), so quantization, ADC behaviour,
/// fidelity modes and activity accounting all come from the simulated
/// hardware.
#[derive(Debug)]
pub struct DeviceMvm<A: InSituArray> {
    array: A,
    in_bits: u8,
}

impl<A: InSituArray> DeviceMvm<A> {
    /// Wrap a programmed array. `in_bits` is the input-DAC resolution of
    /// the bit-serial continuous drive: a bSB step issues `in_bits`
    /// sign-plane reads, while the dSB sign drive always costs one.
    ///
    /// # Panics
    ///
    /// Panics if `in_bits == 0`.
    pub fn new(array: A, in_bits: u8) -> DeviceMvm<A> {
        assert!(in_bits > 0, "the input DAC needs at least one bit");
        DeviceMvm { array, in_bits }
    }

    /// The wrapped array (configuration, wires, statistics).
    pub fn array(&self) -> &A {
        &self.array
    }
}

impl<A: InSituArray> MvmSource for DeviceMvm<A> {
    fn dimension(&self) -> usize {
        self.array.dimension()
    }

    fn mvm_signs(&mut self, sigma: &[i8]) -> Vec<f64> {
        self.array.mvm(sigma)
    }

    fn mvm_continuous(&mut self, x: &[f64]) -> Vec<f64> {
        let n = x.len();
        assert_eq!(self.array.dimension(), n, "dimension mismatch");
        // Signed fixed-point input code: full scale = 2^in_bits − 1.
        let levels = (1u32 << self.in_bits) - 1;
        let codes: Vec<i32> = x
            .iter()
            .map(|&v| {
                let c = (v.clamp(-1.0, 1.0) * levels as f64).round() as i32;
                c.clamp(-(levels as i32), levels as i32)
            })
            .collect();
        let mut out = vec![0.0; n];
        // One sign-vector plane per input bit, LSB first. Every plane is
        // issued even when all-zero: the bit-serial pipeline runs a
        // fixed schedule, which keeps the per-step read count (and the
        // noise-counter advance) data-independent.
        for b in 0..self.in_bits {
            let plane: Vec<i8> = codes
                .iter()
                .map(|&c| {
                    if (c.unsigned_abs() >> b) & 1 == 1 {
                        if c < 0 {
                            -1
                        } else {
                            1
                        }
                    } else {
                        0
                    }
                })
                .collect();
            let partial = self.array.mvm(&plane);
            let weight = (1u64 << b) as f64 / levels as f64;
            for (acc, term) in out.iter_mut().zip(partial) {
                *acc += weight * term;
            }
        }
        out
    }

    fn activity(&self) -> Option<ActivityStats> {
        Some(*self.array.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fecim_crossbar::{Crossbar, CrossbarConfig};
    use fecim_ising::{CsrCoupling, DenseCoupling};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_coupling(n: usize, seed: u64) -> CsrCoupling {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = DenseCoupling::random(n, 0.6, 1.0, &mut rng);
        let mut triplets = Vec::new();
        for i in 0..n {
            dense.for_each_in_row(i, &mut |j, v| {
                if j > i {
                    triplets.push((i, j, v));
                }
            });
        }
        CsrCoupling::from_triplets(n, &triplets).unwrap()
    }

    #[test]
    fn exact_sign_product_matches_dense_math() {
        let n = 12;
        let j = random_coupling(n, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let sigma: Vec<i8> = (0..n)
            .map(|_| [-1i8, 0, 1][rng.gen_range(0..3usize)])
            .collect();
        let mut exact = ExactMvm::new(&j);
        let out = exact.mvm_signs(&sigma);
        for (col, &got) in out.iter().enumerate() {
            let mut want = 0.0;
            for (row, &s) in sigma.iter().enumerate() {
                want += j.get(row, col) * s as f64;
            }
            assert!((got - want).abs() < 1e-12, "col {col}: {got} vs {want}");
        }
        assert!(exact.activity().is_none());
    }

    #[test]
    fn exact_continuous_product_matches_dense_math() {
        let n = 10;
        let j = random_coupling(n, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let x: Vec<f64> = (0..n).map(|_| 2.0 * rng.gen::<f64>() - 1.0).collect();
        let mut exact = ExactMvm::new(&j);
        let out = exact.mvm_continuous(&x);
        for (col, &got) in out.iter().enumerate() {
            let mut want = 0.0;
            for (row, &xi) in x.iter().enumerate() {
                want += j.get(row, col) * xi;
            }
            assert!((got - want).abs() < 1e-12, "col {col}: {got} vs {want}");
        }
    }

    #[test]
    fn device_bit_serial_drive_approximates_the_exact_product() {
        let n = 16;
        let j = random_coupling(n, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let x: Vec<f64> = (0..n).map(|_| 2.0 * rng.gen::<f64>() - 1.0).collect();
        let exact = ExactMvm::new(&j).mvm_continuous(&x);
        let mut device = DeviceMvm::new(Crossbar::program(&j, CrossbarConfig::paper_defaults()), 8);
        let got = device.mvm_continuous(&x);
        // Error budget: 4-bit weight quantization (LSB n·max|J|/(2^4−1)
        // per column in the worst case) plus the 8-bit input code.
        let mut max_abs = 0.0f64;
        for i in 0..n {
            j.for_each_in_row(i, &mut |_, v| max_abs = max_abs.max(v.abs()));
        }
        let tol = n as f64 * max_abs * (1.0 / 15.0 + 1.0 / 255.0) + 1e-9;
        for (col, (&g, &e)) in got.iter().zip(&exact).enumerate() {
            assert!((g - e).abs() < tol, "col {col}: {g} vs {e} (tol {tol})");
        }
        // Fixed bit-serial schedule: exactly in_bits array reads.
        let stats = device.activity().expect("device sources record stats");
        assert_eq!(stats.array_ops, 8);
    }

    #[test]
    fn device_sign_drive_is_one_read_and_deterministic() {
        let n = 12;
        let j = random_coupling(n, 9);
        let sigma: Vec<i8> = (0..n).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let run = || {
            let mut device =
                DeviceMvm::new(Crossbar::program(&j, CrossbarConfig::paper_defaults()), 4);
            let out = device.mvm_signs(&sigma);
            (out, device.activity().unwrap().array_ops)
        };
        let (a, ops_a) = run();
        let (b, ops_b) = run();
        assert_eq!(a, b, "bit-identical replays");
        assert_eq!(ops_a, 1);
        assert_eq!(ops_b, 1);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_input_bits_are_rejected() {
        let j = random_coupling(4, 1);
        let _ = DeviceMvm::new(Crossbar::program(&j, CrossbarConfig::paper_defaults()), 0);
    }
}
