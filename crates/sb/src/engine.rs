//! The simulated-bifurcation update loop.
//!
//! Both variants evolve a position/momentum pair `(x_i, y_i)` per spin
//! under the symplectic Euler update (Goto-style Kerr-free SB):
//!
//! ```text
//! y_i += dt · ( −(1 − a(t)) · x_i − c₀ · f_i )
//! x_i += dt · y_i
//! ```
//!
//! with inelastic walls (`|x_i| > 1` clamps the position and zeroes the
//! momentum), a bifurcation-pressure ramp `a(t): 0 → 1`, and the
//! coupling force `f_i = (Jx)_i` (ballistic) or `f_i = (J·sign(x))_i`
//! (discrete) read through an [`MvmSource`] — one full-vector crossbar
//! MVM per step. Energies are scored digitally on the exact coupling at
//! the sign readout `σ = sign(x)`, matching the workspace convention
//! that traces and best-solution tracking always report exact Ising
//! energies even when the force path is device-quantized.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fecim_anneal::{RunResult, Trace, TraceMode, TracePoint};
use fecim_ising::{Coupling, SpinVector};

use crate::mvm::MvmSource;

/// Magnitude of the deterministic position seed `x_i = ±X0` and of the
/// uniform momentum draw — small enough that the start sits deep in the
/// pre-bifurcation basin, large enough to break symmetry immediately.
const INITIAL_AMPLITUDE: f64 = 0.1;

/// Which simulated-bifurcation update the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SbVariant {
    /// Ballistic SB: the coupling force uses the continuous positions,
    /// `f = J·x` (an `in_bits`-pass bit-serial drive on hardware).
    Ballistic,
    /// Discrete SB: the coupling force uses the position signs,
    /// `f = J·sign(x)` (one sign-vector read per step) — the
    /// error-suppressed variant that tolerates coarse input DACs.
    Discrete,
}

impl SbVariant {
    /// Display label (`bSB` / `dSB`).
    pub fn label(self) -> &'static str {
        match self {
            SbVariant::Ballistic => "bSB",
            SbVariant::Discrete => "dSB",
        }
    }
}

/// The bifurcation-pressure ramp `a(t)` — the SB analogue of an
/// annealing schedule. `a` rises from 0 (stable paramagnetic phase)
/// towards `end` (fully bifurcated); the ramp's shape sets how long the
/// system lingers near the bifurcation point where the cut decision is
/// made.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PressureSchedule {
    /// Linear ramp `a(t) = end · (t+1)/steps` — reaches `end` exactly on
    /// the final step.
    Linear {
        /// Final pressure (the bifurcation parameter's end value,
        /// typically `1.0`).
        end: f64,
    },
    /// Hold `a = 0` for the first `onset` fraction of the run, then ramp
    /// linearly to `end` — lets the momenta thermalize before the
    /// bifurcation sweep starts.
    DelayedLinear {
        /// Fraction of the run spent at zero pressure, in `[0, 1)`.
        onset: f64,
        /// Final pressure.
        end: f64,
    },
}

impl PressureSchedule {
    /// The default ramp: linear to `1.0`.
    pub fn linear() -> PressureSchedule {
        PressureSchedule::Linear { end: 1.0 }
    }

    /// Pressure at `step` of a `steps`-long run.
    pub fn at(&self, step: usize, steps: usize) -> f64 {
        let steps = steps.max(1) as f64;
        let progress = (step + 1) as f64 / steps;
        match *self {
            PressureSchedule::Linear { end } => end * progress,
            PressureSchedule::DelayedLinear { onset, end } => {
                let span = (1.0 - onset).max(f64::MIN_POSITIVE);
                end * ((progress - onset) / span).clamp(0.0, 1.0)
            }
        }
    }

    /// Check the schedule's parameters define a usable ramp.
    ///
    /// # Errors
    ///
    /// Returns a description when a parameter is non-finite, a final
    /// pressure is not strictly positive, or an onset lies outside
    /// `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        let check_end = |end: f64| {
            if !end.is_finite() || end <= 0.0 {
                return Err(format!(
                    "pressure schedule needs a finite, positive end value (got {end})"
                ));
            }
            Ok(())
        };
        match *self {
            PressureSchedule::Linear { end } => check_end(end),
            PressureSchedule::DelayedLinear { onset, end } => {
                check_end(end)?;
                if !onset.is_finite() || !(0.0..1.0).contains(&onset) {
                    return Err(format!(
                        "pressure schedule onset must lie in [0, 1) (got {onset})"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Problem-adapted coupling prefactor `c₀ = 0.5 / (rms(J) · √deg)` —
/// Goto's `c₀ = 0.5/(σ̄·√N)` written in terms of the stored nonzeros
/// (`σ̄·√N = rms_nonzero · √(mean degree)`), so sparse and dense
/// instances normalize alike. Falls back to `1.0` for empty couplings.
pub fn suggest_coupling_strength<C: Coupling + ?Sized>(coupling: &C) -> f64 {
    let n = coupling.dimension();
    if n == 0 {
        return 1.0;
    }
    let mut sum_sq = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        coupling.for_each_in_row(i, &mut |_, v| {
            sum_sq += v * v;
            count += 1;
        });
    }
    if count == 0 {
        return 1.0;
    }
    let rms = (sum_sq / count as f64).sqrt();
    let mean_degree = count as f64 / n as f64;
    (0.5 / (rms * mean_degree.sqrt())).max(f64::MIN_POSITIVE)
}

/// The simulated-bifurcation engine: variant, step count, time step and
/// pressure ramp, plus the same trace/target instrumentation the
/// annealing engines carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SbEngine {
    /// Update variant (ballistic or discrete).
    pub variant: SbVariant,
    /// Symplectic Euler steps (each costs one coupling MVM).
    pub steps: usize,
    /// Integration time step `dt`.
    pub dt: f64,
    /// Bifurcation-pressure ramp.
    pub pressure: PressureSchedule,
    /// Coupling prefactor `c₀` override (`None` = problem-adapted
    /// [`suggest_coupling_strength`]).
    pub coupling_strength: Option<f64>,
    /// Trace sampling.
    pub trace: TraceMode,
    /// Optional target energy for first-hit recording.
    pub target_energy: Option<f64>,
}

impl SbEngine {
    /// An engine with the default time step (`dt = 0.25`) and the linear
    /// pressure ramp to `1.0`.
    pub fn new(variant: SbVariant, steps: usize) -> SbEngine {
        SbEngine {
            variant,
            steps,
            dt: 0.25,
            pressure: PressureSchedule::linear(),
            coupling_strength: None,
            trace: TraceMode::Off,
            target_energy: None,
        }
    }

    /// Override the integration time step.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not finite and strictly positive.
    pub fn with_dt(mut self, dt: f64) -> SbEngine {
        assert!(dt.is_finite() && dt > 0.0, "dt must be finite and positive");
        self.dt = dt;
        self
    }

    /// Override the pressure ramp.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's parameters are invalid (see
    /// [`PressureSchedule::validate`]).
    pub fn with_pressure(mut self, pressure: PressureSchedule) -> SbEngine {
        if let Err(e) = pressure.validate() {
            // audit:allow(panic-path): documented `# Panics` contract — builder misconfiguration fails loudly at build time, not mid-run
            panic!("invalid pressure schedule: {e}");
        }
        self.pressure = pressure;
        self
    }

    /// Fix the coupling prefactor `c₀`.
    ///
    /// # Panics
    ///
    /// Panics if `c0` is not finite and strictly positive.
    pub fn with_coupling_strength(mut self, c0: f64) -> SbEngine {
        assert!(
            c0.is_finite() && c0 > 0.0,
            "coupling strength must be finite and positive"
        );
        self.coupling_strength = Some(c0);
        self
    }

    /// Sample a trace point every `every` steps.
    pub fn with_trace(mut self, every: usize) -> SbEngine {
        self.trace = TraceMode::Every(every.max(1));
        self
    }

    /// Record the first step whose best energy reaches `target`.
    pub fn with_target_energy(mut self, target: f64) -> SbEngine {
        self.target_energy = Some(target);
        self
    }

    /// Run the SB dynamics: positions seeded as `x_i = ±0.1` from
    /// `initial`'s signs (so warm starts carry over, and a zero-step run
    /// echoes `initial` verbatim), momenta drawn uniformly from the
    /// seeded RNG, and the per-step coupling force read through
    /// `source`. `coupling` is the exact matrix used for digital energy
    /// scoring at the sign readout.
    ///
    /// # Panics
    ///
    /// Panics when `initial` or `source` disagree with `coupling`'s
    /// dimension.
    pub fn run<C: Coupling + ?Sized, M: MvmSource>(
        &self,
        coupling: &C,
        source: &mut M,
        initial: &SpinVector,
        seed: u64,
    ) -> RunResult {
        let n = coupling.dimension();
        assert_eq!(initial.len(), n, "initial spins must match the coupling");
        assert_eq!(source.dimension(), n, "MVM source must match the coupling");
        let c0 = self
            .coupling_strength
            .unwrap_or_else(|| suggest_coupling_strength(coupling));

        let mut rng = StdRng::seed_from_u64(seed);
        let mut x: Vec<f64> = initial
            .as_slice()
            .iter()
            .map(|&s| INITIAL_AMPLITUDE * s as f64)
            .collect();
        let mut y: Vec<f64> = (0..n)
            .map(|_| INITIAL_AMPLITUDE * (2.0 * rng.gen::<f64>() - 1.0))
            .collect();

        // Score the start before stepping: a zero-step warm start echoes
        // the supplied spins verbatim (the campaign-chaining contract).
        let mut spins = initial.clone();
        let mut energy = coupling.energy(&spins);
        let mut best_energy = energy;
        let mut best_spins = spins.clone();
        let mut accepted = 0usize;
        let mut first_target_hit = None;
        update_first_hit(&mut first_target_hit, self.target_energy, best_energy, 0);
        let mut trace = Trace::new();

        for step in 0..self.steps {
            let a = self.pressure.at(step, self.steps);
            // One full-vector MVM per step — the synchronous update that
            // replaces n spin-serial reads.
            let field = match self.variant {
                SbVariant::Ballistic => source.mvm_continuous(&x),
                SbVariant::Discrete => source.mvm_signs(spins.as_slice()),
            };
            for i in 0..n {
                // Minimizing E = σᵀJσ: the force is the negative local
                // field, −c₀·(Jx)_i.
                y[i] += self.dt * (-(1.0 - a) * x[i] - c0 * field[i]);
                x[i] += self.dt * y[i];
                // Inelastic walls: clamp the position, drop the momentum.
                if x[i] > 1.0 {
                    x[i] = 1.0;
                    y[i] = 0.0;
                } else if x[i] < -1.0 {
                    x[i] = -1.0;
                    y[i] = 0.0;
                }
            }
            // Digital sign readout; energies are exact, and only sign
            // changes trigger a rescore.
            let mut changed = false;
            for (i, &xi) in x.iter().enumerate() {
                let s: i8 = if xi >= 0.0 { 1 } else { -1 };
                if s != spins.get(i) {
                    spins.set(i, s);
                    changed = true;
                }
            }
            if changed {
                accepted += 1;
                energy = coupling.energy(&spins);
                if energy < best_energy {
                    best_energy = energy;
                    best_spins = spins.clone();
                    update_first_hit(
                        &mut first_target_hit,
                        self.target_energy,
                        best_energy,
                        step + 1,
                    );
                }
            }
            trace.record(
                self.trace,
                TracePoint {
                    iteration: step,
                    energy,
                    best_energy,
                    temperature: a,
                    accepted: changed,
                },
            );
        }

        RunResult {
            iterations: self.steps,
            accepted,
            final_energy: energy,
            final_spins: spins,
            best_energy,
            best_spins,
            first_target_hit,
            trace,
            activity: source.activity(),
        }
    }
}

/// Track the first step whose best energy reached the target.
fn update_first_hit(
    first_hit: &mut Option<usize>,
    target: Option<f64>,
    best_energy: f64,
    step: usize,
) {
    if first_hit.is_none() {
        if let Some(t) = target {
            if best_energy <= t {
                *first_hit = Some(step);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvm::{DeviceMvm, ExactMvm};
    use fecim_crossbar::{Crossbar, CrossbarConfig, TiledCrossbar};
    use fecim_ising::{CopProblem, CsrCoupling, MaxCut};

    fn ring_max_cut(n: usize) -> (MaxCut, CsrCoupling) {
        let edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        let mc = MaxCut::new(n, edges).unwrap();
        let model = mc.to_ising().unwrap();
        (mc, model.couplings().clone())
    }

    #[test]
    fn both_variants_solve_even_ring_max_cut() {
        let (mc, j) = ring_max_cut(16);
        for variant in [SbVariant::Ballistic, SbVariant::Discrete] {
            let engine = SbEngine::new(variant, 600);
            let initial = SpinVector::all_up(16);
            let mut source = ExactMvm::new(&j);
            let result = engine.run(&j, &mut source, &initial, 11);
            let cut = mc.cut_from_energy(result.best_energy);
            assert!(cut >= 14.0, "{}: cut={cut} (optimal 16)", variant.label());
            assert!(result.accepted > 0, "{}", variant.label());
            assert!(result.best_energy <= result.final_energy + 1e-12);
        }
    }

    #[test]
    fn zero_steps_echoes_the_start_verbatim() {
        let (_, j) = ring_max_cut(8);
        let start = SpinVector::from_signs(&[1, -1, 1, 1, -1, -1, 1, -1]);
        let engine = SbEngine::new(SbVariant::Ballistic, 0);
        let mut source = ExactMvm::new(&j);
        let result = engine.run(&j, &mut source, &start, 5);
        assert_eq!(result.best_spins, start);
        assert_eq!(result.final_spins, start);
        assert_eq!(result.best_energy, j.energy(&start));
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn same_seed_same_result_different_seed_differs() {
        let (_, j) = ring_max_cut(12);
        let run = |seed: u64| {
            let engine = SbEngine::new(SbVariant::Discrete, 300);
            let mut source = ExactMvm::new(&j);
            engine.run(&j, &mut source, &SpinVector::all_up(12), seed)
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "bit-identical replays");
        let c = run(43);
        assert!(
            a.final_spins != c.final_spins || a.accepted != c.accepted,
            "different momentum seeds explore differently"
        );
    }

    #[test]
    fn device_run_is_bit_identical_monolithic_vs_tiled() {
        // The device force path goes through `InSituArray::mvm`, whose
        // Ideal-mode tiled read is bit-identical to the monolithic one —
        // so the whole SB trajectory is placement-invariant.
        let (_, j) = ring_max_cut(24);
        let initial = SpinVector::all_up(24);
        for variant in [SbVariant::Ballistic, SbVariant::Discrete] {
            let engine = SbEngine::new(variant, 200);
            let mut mono =
                DeviceMvm::new(Crossbar::program(&j, CrossbarConfig::paper_defaults()), 4);
            let mut tiled = DeviceMvm::new(
                TiledCrossbar::program(&j, CrossbarConfig::paper_defaults(), 8),
                4,
            );
            let a = engine.run(&j, &mut mono, &initial, 9);
            let b = engine.run(&j, &mut tiled, &initial, 9);
            assert_eq!(a.best_energy, b.best_energy, "{}", variant.label());
            assert_eq!(a.best_spins, b.best_spins, "{}", variant.label());
            assert_eq!(a.final_spins, b.final_spins, "{}", variant.label());
            assert_eq!(a.accepted, b.accepted, "{}", variant.label());
        }
    }

    #[test]
    fn device_step_read_counts_differ_by_variant() {
        let (_, j) = ring_max_cut(12);
        let initial = SpinVector::all_up(12);
        let steps = 50;
        let reads = |variant: SbVariant| {
            let engine = SbEngine::new(variant, steps);
            let mut source =
                DeviceMvm::new(Crossbar::program(&j, CrossbarConfig::paper_defaults()), 4);
            let run = engine.run(&j, &mut source, &initial, 3);
            run.activity.expect("device runs record stats").array_ops
        };
        assert_eq!(reads(SbVariant::Discrete), steps as u64, "1 read/step");
        assert_eq!(
            reads(SbVariant::Ballistic),
            4 * steps as u64,
            "in_bits reads/step"
        );
    }

    #[test]
    fn pressure_schedules_ramp_and_validate() {
        let linear = PressureSchedule::linear();
        assert!(linear.validate().is_ok());
        assert!((linear.at(999, 1000) - 1.0).abs() < 1e-12);
        assert!(linear.at(0, 1000) < 0.01);
        let delayed = PressureSchedule::DelayedLinear {
            onset: 0.5,
            end: 1.0,
        };
        assert!(delayed.validate().is_ok());
        assert_eq!(delayed.at(99, 1000), 0.0, "flat before onset");
        assert!((delayed.at(999, 1000) - 1.0).abs() < 1e-12);
        // Ramps are monotone non-decreasing.
        for schedule in [linear, delayed] {
            let mut prev = 0.0;
            for step in 0..100 {
                let a = schedule.at(step, 100);
                assert!(a >= prev - 1e-15);
                prev = a;
            }
        }
        assert!(PressureSchedule::Linear { end: f64::NAN }
            .validate()
            .is_err());
        assert!(PressureSchedule::Linear { end: 0.0 }.validate().is_err());
        assert!(PressureSchedule::DelayedLinear {
            onset: f64::INFINITY,
            end: 1.0
        }
        .validate()
        .is_err());
        assert!(PressureSchedule::DelayedLinear {
            onset: 1.0,
            end: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn suggested_coupling_strength_matches_goto_normalization() {
        // Ring: degree 2, |J| = 0.25 → c₀ = 0.5/(0.25·√2) = √2.
        let (_, j) = ring_max_cut(32);
        let c0 = suggest_coupling_strength(&j);
        assert!((c0 - std::f64::consts::SQRT_2).abs() < 1e-9, "c0={c0}");
        let empty = CsrCoupling::from_triplets(5, &[]).unwrap();
        assert_eq!(suggest_coupling_strength(&empty), 1.0);
    }

    #[test]
    fn trace_and_target_instrumentation_work() {
        let (_, j) = ring_max_cut(16);
        let engine = SbEngine::new(SbVariant::Discrete, 200)
            .with_trace(20)
            .with_target_energy(-6.0);
        let mut source = ExactMvm::new(&j);
        let result = engine.run(&j, &mut source, &SpinVector::all_up(16), 7);
        assert_eq!(result.trace.points().len(), 10);
        for w in result.trace.points().windows(2) {
            assert!(w[1].best_energy <= w[0].best_energy + 1e-12);
            assert!(w[1].temperature >= w[0].temperature, "pressure ramps up");
        }
        if result.best_energy <= -6.0 {
            assert!(result.first_target_hit.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "dt must be finite and positive")]
    fn non_positive_dt_is_rejected() {
        let _ = SbEngine::new(SbVariant::Ballistic, 10).with_dt(0.0);
    }
}
