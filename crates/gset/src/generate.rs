//! Seeded generators for Gset-*style* Max-Cut instances.
//!
//! The paper evaluates on instances from the Stanford Gset suite (ref [38]).
//! Gset contains three structural families — uniform random graphs,
//! ±1-weighted random graphs, and (quasi-)toroidal lattices — which these
//! generators reproduce with controlled seeds. DESIGN.md records this
//! substitution: solver behaviour is driven by size/degree/weight
//! statistics, which are matched here, not by the specific Gset files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// The structural family of a generated instance, mirroring the Gset suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GsetFamily {
    /// Erdős–Rényi random graph with all weights `+1` (Gset G1–G5 style).
    RandomUnit,
    /// Erdős–Rényi random graph with weights drawn from `{−1, +1}`
    /// (Gset G6–G10 style).
    RandomSigned,
    /// 2-D torus lattice with unit weights (Gset G48–G50 style: an
    /// even-sided torus is bipartite, so the optimal cut equals the edge
    /// count exactly).
    ToroidalUnit,
    /// 2-D torus lattice with ±1 weights (Gset G11–G13 style).
    ToroidalSigned,
    /// "Almost planar" union of a torus and a sparse random matching
    /// (Gset G14+ style).
    AlmostPlanar,
}

impl GsetFamily {
    /// All families, for sweeps.
    pub fn all() -> [GsetFamily; 5] {
        [
            GsetFamily::RandomUnit,
            GsetFamily::RandomSigned,
            GsetFamily::ToroidalUnit,
            GsetFamily::ToroidalSigned,
            GsetFamily::AlmostPlanar,
        ]
    }
}

/// Configuration of an instance generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of vertices.
    pub vertex_count: usize,
    /// Structural family.
    pub family: GsetFamily,
    /// Target mean degree (random families; the torus is fixed at 4).
    pub mean_degree: f64,
    /// RNG seed; the same configuration and seed always produce the same
    /// graph.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Gset-like defaults: signed random graph of mean degree 10 — close to
    /// the G6–G10 family the paper's 800-node group resembles.
    pub fn new(vertex_count: usize, seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            vertex_count,
            family: GsetFamily::RandomSigned,
            mean_degree: 10.0,
            seed,
        }
    }

    /// Set the family.
    pub fn with_family(mut self, family: GsetFamily) -> GeneratorConfig {
        self.family = family;
        self
    }

    /// Set the target mean degree.
    ///
    /// # Panics
    ///
    /// Panics if `mean_degree` is not positive.
    pub fn with_mean_degree(mut self, mean_degree: f64) -> GeneratorConfig {
        assert!(mean_degree > 0.0, "mean degree must be positive");
        self.mean_degree = mean_degree;
        self
    }

    /// Generate the instance.
    pub fn generate(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.family {
            GsetFamily::RandomUnit => {
                random_graph(self.vertex_count, self.mean_degree, false, &mut rng)
            }
            GsetFamily::RandomSigned => {
                random_graph(self.vertex_count, self.mean_degree, true, &mut rng)
            }
            GsetFamily::ToroidalUnit => toroidal_graph(self.vertex_count, false, &mut rng),
            GsetFamily::ToroidalSigned => toroidal_graph(self.vertex_count, true, &mut rng),
            GsetFamily::AlmostPlanar => almost_planar_graph(self.vertex_count, &mut rng),
        }
    }
}

/// Erdős–Rényi `G(n, p)` with `p = mean_degree/(n−1)`; weights `+1`, or
/// uniform `{−1, +1}` when `signed`.
fn random_graph(n: usize, mean_degree: f64, signed: bool, rng: &mut StdRng) -> Graph {
    let mut g = Graph::empty(n);
    if n < 2 {
        return g;
    }
    let p = (mean_degree / (n as f64 - 1.0)).min(1.0);
    // Geometric skipping: expected O(m) instead of O(n²).
    let ln_q = (1.0 - p).ln();
    let total_pairs = n * (n - 1) / 2;
    let mut idx: i64 = -1;
    loop {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = if p >= 1.0 {
            1
        } else {
            1 + (r.ln() / ln_q).floor() as i64
        };
        idx += skip.max(1);
        if idx as usize >= total_pairs {
            break;
        }
        let (u, v) = pair_from_index(idx as usize, n);
        let w = if signed {
            if rng.gen::<bool>() {
                1.0
            } else {
                -1.0
            }
        } else {
            1.0
        };
        // audit:allow(panic-path): `pair_from_index` yields distinct in-range endpoints and ±1 weights are finite, so add_edge cannot fail
        g.add_edge(u, v, w).expect("generated edges are valid");
    }
    g
}

/// Map a linear index to the `idx`-th pair `(u, v)` with `u < v` in
/// lexicographic order.
fn pair_from_index(idx: usize, n: usize) -> (usize, usize) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve by walking rows;
    // binary search keeps it O(log n).
    let mut lo = 0usize;
    let mut hi = n - 1;
    let row_start = |u: usize| u * (2 * n - u - 1) / 2;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (idx - row_start(u));
    (u, v)
}

/// A `rows × cols` torus (mean degree 4) with unit or ±1 weights. An
/// even×even grid is chosen whenever `n` admits one, which makes the
/// unit-weight torus bipartite: the optimal cut then equals the edge count
/// (the Gset G48–G50 property). Leftover vertices stay isolated and do not
/// affect the cut.
fn toroidal_graph(n: usize, signed: bool, rng: &mut StdRng) -> Graph {
    let (rows, cols) = torus_grid(n);
    let mut g = Graph::empty(n.max(rows * cols));
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            let mut weight = || {
                if !signed || rng.gen::<bool>() {
                    1.0
                } else {
                    -1.0
                }
            };
            let w1 = weight();
            let w2 = weight();
            if v != right {
                // audit:allow(panic-path): torus neighbours are in-range, the v != right guard rules out self-loops, and ±1 weights are finite
                g.add_edge(v, right, w1).expect("torus edges valid");
            }
            if v != down {
                // audit:allow(panic-path): same torus-construction invariant as the edge above
                g.add_edge(v, down, w2).expect("torus edges valid");
            }
        }
    }
    g
}

/// Pick torus dimensions for `n` vertices: prefer an even×even factor pair
/// near √n (bipartite torus), falling back to the floor-square grid.
fn torus_grid(n: usize) -> (usize, usize) {
    let side = ((n as f64).sqrt().floor() as usize).max(2);
    let mut best: Option<(usize, usize)> = None;
    for rows in (2..=side).rev() {
        if rows % 2 != 0 || !n.is_multiple_of(rows) {
            continue;
        }
        let cols = n / rows;
        if cols.is_multiple_of(2) && cols >= 2 {
            best = Some((rows, cols));
            break;
        }
    }
    best.unwrap_or((side, (n / side).max(2)))
}

/// Torus plus a sparse random perfect-matching overlay, emulating the
/// "almost planar" Gset graphs.
fn almost_planar_graph(n: usize, rng: &mut StdRng) -> Graph {
    let mut g = toroidal_graph(n, true, rng);
    let n = g.vertex_count();
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    for chunk in perm.chunks_exact(2) {
        let (u, v) = (chunk[0], chunk[1]);
        if u != v {
            let w = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            // audit:allow(panic-path): u and v come from a permutation of 0..n (in-range, distinct by the guard above) and ±1 weights are finite
            g.add_edge(u, v, w).expect("matching edges valid");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GeneratorConfig::new(100, 42);
        assert_eq!(cfg.generate(), cfg.generate());
        let other = GeneratorConfig::new(100, 43).generate();
        assert_ne!(cfg.generate(), other);
    }

    #[test]
    fn random_unit_weights_are_all_one() {
        let g = GeneratorConfig::new(200, 1)
            .with_family(GsetFamily::RandomUnit)
            .generate();
        assert!(g.edges().iter().all(|&(_, _, w)| w == 1.0));
    }

    #[test]
    fn random_signed_has_both_signs() {
        let g = GeneratorConfig::new(300, 2).generate();
        let pos = g.edges().iter().filter(|&&(_, _, w)| w == 1.0).count();
        let neg = g.edges().iter().filter(|&&(_, _, w)| w == -1.0).count();
        assert!(pos > 0 && neg > 0);
        assert_eq!(pos + neg, g.edge_count());
    }

    #[test]
    fn mean_degree_is_close_to_target() {
        let g = GeneratorConfig::new(2000, 3)
            .with_mean_degree(10.0)
            .generate();
        let d = g.mean_degree();
        assert!((d - 10.0).abs() < 1.5, "mean degree {d} too far from 10");
    }

    #[test]
    fn torus_has_degree_four() {
        let g = GeneratorConfig::new(100, 4)
            .with_family(GsetFamily::ToroidalSigned)
            .generate();
        // Interior structure: every used vertex has degree 4 on a 10×10 torus.
        for v in 0..100 {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
    }

    #[test]
    fn almost_planar_increases_degree() {
        let torus = GeneratorConfig::new(100, 5)
            .with_family(GsetFamily::ToroidalSigned)
            .generate();
        let ap = GeneratorConfig::new(100, 5)
            .with_family(GsetFamily::AlmostPlanar)
            .generate();
        assert!(ap.edge_count() > torus.edge_count());
    }

    #[test]
    fn pair_from_index_enumerates_all_pairs() {
        let n = 7;
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v && v < n, "idx={idx} gave ({u},{v})");
            assert!(seen.insert((u, v)), "duplicate pair at idx={idx}");
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        for family in GsetFamily::all() {
            let g = GeneratorConfig::new(5, 9).with_family(family).generate();
            assert!(g.vertex_count() >= 4);
        }
    }
}
