//! Reader/writer for the Stanford Gset text format.
//!
//! The format is a header line `n m` followed by `m` lines `u v w` with
//! 1-based vertex indices and integer weights — the format of the files the
//! paper's evaluation pulls its Max-Cut instances from (ref [38]).

use std::io::{BufRead, BufReader, Read, Write};

use crate::graph::{Graph, GraphError};

/// Parse a graph from a Gset-format reader.
///
/// A `&mut R` can be passed for any `R: Read`.
///
/// # Errors
///
/// [`GraphError::Parse`] on malformed input (wrong token counts, bad
/// numbers, inconsistent edge count) and the usual structural errors for
/// invalid edges. I/O errors are reported as parse errors with the line at
/// which they occurred.
///
/// # Examples
///
/// ```
/// use fecim_gset::read_gset;
/// let text = "3 2\n1 2 1\n2 3 -1\n";
/// let g = read_gset(text.as_bytes())?;
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), fecim_gset::GraphError>(())
/// ```
pub fn read_gset<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();
    let (n, m) = loop {
        let (line_no, line) = lines.next().ok_or(GraphError::Parse {
            line: 1,
            message: "empty input".into(),
        })?;
        let line = line.map_err(|e| GraphError::Parse {
            line: line_no + 1,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let n: usize = parse_token(it.next(), line_no + 1, "vertex count")?;
        let m: usize = parse_token(it.next(), line_no + 1, "edge count")?;
        break (n, m);
    };
    let mut g = Graph::empty(n);
    let mut read_edges = 0usize;
    for (line_no, line) in lines {
        let line = line.map_err(|e| GraphError::Parse {
            line: line_no + 1,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: usize = parse_token(it.next(), line_no + 1, "edge tail")?;
        let v: usize = parse_token(it.next(), line_no + 1, "edge head")?;
        let w: f64 = parse_token(it.next(), line_no + 1, "edge weight")?;
        if u == 0 || v == 0 {
            return Err(GraphError::Parse {
                line: line_no + 1,
                message: "gset vertex indices are 1-based".into(),
            });
        }
        g.add_edge(u - 1, v - 1, w)?;
        read_edges += 1;
    }
    if read_edges != m {
        return Err(GraphError::Parse {
            line: 1,
            message: format!("header declared {m} edges, found {read_edges}"),
        });
    }
    Ok(g)
}

fn parse_token<T: std::str::FromStr>(
    token: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    token.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what}: {token:?}"),
    })
}

/// Write a graph in Gset format (1-based indices; weights printed as
/// integers when they are integral).
///
/// A `&mut W` can be passed for any `W: Write`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_gset<W: Write>(mut writer: W, graph: &Graph) -> std::io::Result<()> {
    writeln!(writer, "{} {}", graph.vertex_count(), graph.edge_count())?;
    for &(u, v, w) in graph.edges() {
        if w.fract() == 0.0 {
            writeln!(writer, "{} {} {}", u + 1, v + 1, w as i64)?;
        } else {
            writeln!(writer, "{} {} {}", u + 1, v + 1, w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GeneratorConfig;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = GeneratorConfig::new(50, 7).generate();
        let mut buf = Vec::new();
        write_gset(&mut buf, &g).unwrap();
        let g2 = read_gset(buf.as_slice()).unwrap();
        assert_eq!(g.vertex_count(), g2.vertex_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# comment\n\n3 1\n% another\n1 3 2\n";
        let g = read_gset(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edges()[0], (0, 2, 2.0));
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(matches!(
            read_gset("x y\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_gset("".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn zero_based_index_is_rejected() {
        let text = "2 1\n0 1 1\n";
        assert!(matches!(
            read_gset(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn edge_count_mismatch_is_rejected() {
        let text = "3 2\n1 2 1\n";
        assert!(matches!(
            read_gset(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn fractional_weights_roundtrip() {
        let g = Graph::from_edges(2, &[(0, 1, 0.5)]).unwrap();
        let mut buf = Vec::new();
        write_gset(&mut buf, &g).unwrap();
        let g2 = read_gset(buf.as_slice()).unwrap();
        assert_eq!(g2.edges()[0].2, 0.5);
    }
}
