//! Undirected weighted graphs backing the Max-Cut benchmark instances.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use fecim_ising::MaxCut;

/// Error raised when constructing or parsing a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint is out of range.
    VertexOutOfRange {
        /// Offending vertex id.
        vertex: usize,
        /// Number of vertices of the graph.
        vertex_count: usize,
    },
    /// Self-loops are not allowed.
    SelfLoop(usize),
    /// Weight is not finite.
    NonFiniteWeight {
        /// Edge tail.
        u: usize,
        /// Edge head.
        v: usize,
    },
    /// A Gset text stream could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex {vertex} out of range for {vertex_count} vertices"
            ),
            GraphError::SelfLoop(v) => write!(f, "self-loop at vertex {v}"),
            GraphError::NonFiniteWeight { u, v } => {
                write!(f, "non-finite weight on edge ({u}, {v})")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

/// An undirected, edge-weighted graph with adjacency lists.
///
/// # Examples
///
/// ```
/// use fecim_gset::Graph;
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, -1.0)])?;
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(1), 2);
/// # Ok::<(), fecim_gset::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
    adjacency: Vec<Vec<(usize, f64)>>,
}

impl Graph {
    /// Graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Graph {
        Graph {
            n,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Build from an undirected edge list (each edge listed once).
    ///
    /// # Errors
    ///
    /// See [`GraphError`]; rejects out-of-range endpoints, self-loops and
    /// non-finite weights.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Graph, GraphError> {
        let mut g = Graph::empty(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Add an undirected edge.
    ///
    /// # Errors
    ///
    /// Same validation as [`Graph::from_edges`].
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                vertex_count: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                vertex_count: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !w.is_finite() {
            return Err(GraphError::NonFiniteWeight { u, v });
        }
        self.edges.push((u, v, w));
        self.adjacency[u].push((v, w));
        self.adjacency[v].push((u, w));
        Ok(())
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge list (each undirected edge once).
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Neighbours of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, f64)] {
        &self.adjacency[v]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Mean vertex degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.n as f64
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// `true` if every weight is `+1` or `-1` (the Gset convention).
    pub fn is_unit_weighted(&self) -> bool {
        self.edges.iter().all(|&(_, _, w)| w == 1.0 || w == -1.0)
    }

    /// Convert to a [`MaxCut`] problem instance.
    pub fn to_max_cut(&self) -> MaxCut {
        // audit:allow(panic-path): every edge was admitted by `add_edge`'s checks (in-range, no self-loops, finite weights), exactly the invariants MaxCut::new validates
        MaxCut::new(self.n, self.edges.clone()).expect("graph invariants imply a valid instance")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, -1.0)]).unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(2), &[(1, 2.0), (3, -1.0)]);
        assert_eq!(g.total_weight(), 2.0);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 2, 1.0)]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(1, 1, 1.0)]),
            Err(GraphError::SelfLoop(1))
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 1, f64::NAN)]),
            Err(GraphError::NonFiniteWeight { .. })
        ));
    }

    #[test]
    fn unit_weight_detection() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, -1.0)]).unwrap();
        assert!(g.is_unit_weighted());
        let g2 = Graph::from_edges(3, &[(0, 1, 0.5)]).unwrap();
        assert!(!g2.is_unit_weighted());
    }

    #[test]
    fn to_max_cut_preserves_structure() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mc = g.to_max_cut();
        assert_eq!(mc.vertex_count(), 3);
        assert_eq!(mc.edges().len(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.total_weight(), 0.0);
    }
}
