//! The paper's 30-instance Max-Cut benchmark suite (Sec. 4.1):
//! 9×800-node, 9×1000-node, 9×2000-node and 3×3000-node instances, with the
//! per-group iteration budgets 700 / 1000 / 10 000 / 100 000 used in the
//! evaluation.

use serde::{Deserialize, Serialize};

use crate::generate::{GeneratorConfig, GsetFamily};
use crate::graph::Graph;

/// One of the four problem-size groups of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeGroup {
    /// 800-node group (9 instances, 700 iterations per run).
    N800,
    /// 1000-node group (9 instances, 1000 iterations per run).
    N1000,
    /// 2000-node group (9 instances, 10 000 iterations per run).
    N2000,
    /// 3000-node group (3 instances, 100 000 iterations per run).
    N3000,
}

impl SizeGroup {
    /// All groups in evaluation order.
    pub fn all() -> [SizeGroup; 4] {
        [
            SizeGroup::N800,
            SizeGroup::N1000,
            SizeGroup::N2000,
            SizeGroup::N3000,
        ]
    }

    /// Number of vertices of instances in this group.
    pub fn vertex_count(self) -> usize {
        match self {
            SizeGroup::N800 => 800,
            SizeGroup::N1000 => 1000,
            SizeGroup::N2000 => 2000,
            SizeGroup::N3000 => 3000,
        }
    }

    /// Number of instances the paper uses in this group.
    pub fn instance_count(self) -> usize {
        match self {
            SizeGroup::N800 | SizeGroup::N1000 | SizeGroup::N2000 => 9,
            SizeGroup::N3000 => 3,
        }
    }

    /// Annealing iterations per run in the paper's evaluation.
    pub fn iteration_budget(self) -> usize {
        match self {
            SizeGroup::N800 => 700,
            SizeGroup::N1000 => 1000,
            SizeGroup::N2000 => 10_000,
            SizeGroup::N3000 => 100_000,
        }
    }
}

/// A named instance of the benchmark suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteInstance {
    /// Instance label, e.g. `"F800-3"` (F for "fecim Gset-style").
    pub label: String,
    /// Size group the instance belongs to.
    pub group: SizeGroup,
    /// Generator configuration (fully determines the graph).
    pub config: GeneratorConfig,
}

impl SuiteInstance {
    /// Materialize the graph.
    pub fn graph(&self) -> Graph {
        self.config.generate()
    }
}

/// The full 30-instance suite of the paper, deterministically seeded.
///
/// Instances rotate through the three Gset structural families so each size
/// group mixes random-unit, random-signed and toroidal graphs, like the
/// Gset ranges the paper draws from.
///
/// # Examples
///
/// ```
/// use fecim_gset::{paper_suite, SizeGroup};
/// let suite = paper_suite();
/// assert_eq!(suite.len(), 30);
/// let n800: Vec<_> = suite.iter().filter(|i| i.group == SizeGroup::N800).collect();
/// assert_eq!(n800.len(), 9);
/// ```
pub fn paper_suite() -> Vec<SuiteInstance> {
    let mut out = Vec::with_capacity(30);
    for group in SizeGroup::all() {
        for k in 0..group.instance_count() {
            out.push(suite_instance(group, k));
        }
    }
    out
}

/// Gset structural statistics of a size group: the family and mean degree
/// of the actual Gset instances the paper draws from (G1–G9 at 800 nodes:
/// dense random, degree ≈ 48; G43+ at 1000/2000 nodes: random, degree
/// ≈ 20; G48–G50 at 3000 nodes: degree-4 torus).
fn group_family(group: SizeGroup) -> (GsetFamily, f64) {
    match group {
        SizeGroup::N800 => (GsetFamily::RandomUnit, 48.0),
        SizeGroup::N1000 | SizeGroup::N2000 => (GsetFamily::RandomUnit, 20.0),
        SizeGroup::N3000 => (GsetFamily::ToroidalUnit, 4.0),
    }
}

/// A single instance of the paper suite by group and index.
///
/// # Panics
///
/// Panics if `index >= group.instance_count()`.
pub fn suite_instance(group: SizeGroup, index: usize) -> SuiteInstance {
    assert!(
        index < group.instance_count(),
        "group has only {} instances",
        group.instance_count()
    );
    let n = group.vertex_count();
    let (family, degree) = group_family(group);
    let seed = 0xF3C1_0000 ^ ((n as u64) << 8) ^ index as u64;
    let config = GeneratorConfig::new(n, seed)
        .with_family(family)
        .with_mean_degree(degree);
    SuiteInstance {
        label: format!("F{n}-{index}"),
        group,
        config,
    }
}

/// A scaled-down analogue of the paper suite for fast CI / `--scale quick`
/// harness runs: same four-group structure at `scale` × the vertex counts
/// (minimum 32), 2 instances per group, degrees capped to stay sparse at
/// the reduced sizes.
pub fn quick_suite(scale: f64) -> Vec<SuiteInstance> {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let mut out = Vec::new();
    for group in SizeGroup::all() {
        let n = ((group.vertex_count() as f64 * scale) as usize).max(32);
        let (family, degree) = group_family(group);
        let degree = degree.min(n as f64 / 5.0).max(4.0);
        for k in 0..2usize {
            let seed = ((n as u64) << 8) ^ k as u64;
            out.push(SuiteInstance {
                label: format!("Q{n}-{k}"),
                group,
                config: GeneratorConfig::new(n, seed)
                    .with_family(family)
                    .with_mean_degree(degree),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_counts() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 30);
        for group in SizeGroup::all() {
            let cnt = suite.iter().filter(|i| i.group == group).count();
            assert_eq!(cnt, group.instance_count());
        }
    }

    #[test]
    fn iteration_budgets_match_paper() {
        assert_eq!(SizeGroup::N800.iteration_budget(), 700);
        assert_eq!(SizeGroup::N1000.iteration_budget(), 1000);
        assert_eq!(SizeGroup::N2000.iteration_budget(), 10_000);
        assert_eq!(SizeGroup::N3000.iteration_budget(), 100_000);
    }

    #[test]
    fn instances_have_declared_sizes() {
        let inst = suite_instance(SizeGroup::N800, 0);
        let g = inst.graph();
        assert_eq!(g.vertex_count(), 800);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn instances_are_distinct_within_group() {
        let a = suite_instance(SizeGroup::N1000, 0).graph();
        let b = suite_instance(SizeGroup::N1000, 1).graph();
        assert_ne!(a, b);
    }

    #[test]
    fn labels_are_unique() {
        let suite = paper_suite();
        let mut labels: Vec<&str> = suite.iter().map(|i| i.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 30);
    }

    #[test]
    fn quick_suite_is_small_and_structured() {
        let q = quick_suite(0.1);
        assert_eq!(q.len(), 8);
        for inst in &q {
            let g = inst.graph();
            assert!(g.vertex_count() >= 32);
            assert!(g.vertex_count() <= 300);
        }
    }

    #[test]
    #[should_panic(expected = "instances")]
    fn out_of_range_instance_panics() {
        let _ = suite_instance(SizeGroup::N3000, 3);
    }
}
