//! # fecim-gset
//!
//! Gset-style Max-Cut benchmark instances: graph data structures, seeded
//! generators matching the Stanford Gset structural families, the Gset text
//! format, and the 30-instance suite used in the paper's evaluation
//! (Sec. 4.1 of Qian et al., DAC 2025).
//!
//! ```
//! use fecim_gset::{GeneratorConfig, GsetFamily};
//!
//! let graph = GeneratorConfig::new(128, 7)
//!     .with_family(GsetFamily::RandomSigned)
//!     .with_mean_degree(6.0)
//!     .generate();
//! let max_cut = graph.to_max_cut();
//! assert_eq!(max_cut.vertex_count(), 128);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generate;
mod graph;
mod io;
mod registry;

pub use generate::{GeneratorConfig, GsetFamily};
pub use graph::{Graph, GraphError};
pub use io::{read_gset, write_gset};
pub use registry::{paper_suite, quick_suite, suite_instance, SizeGroup, SuiteInstance};
