//! Quadratic Unconstrained Binary Optimization (QUBO) form and the exact
//! QUBO ↔ Ising equivalence (`σ_i = 1 − 2 x_i`, paper Sec. 2.1).

use serde::{Deserialize, Serialize};

use crate::coupling::{CsrCoupling, IsingModel};
use crate::error::IsingError;
use crate::problems::{CopProblem, ObjectiveSense};
use crate::spin::SpinVector;

/// A QUBO instance: minimize `xᵀQx` over `x ∈ {0,1}ⁿ`, with `Q` upper
/// triangular (diagonal entries are the linear coefficients since `x² = x`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Qubo {
    n: usize,
    /// Upper-triangular entries `(i, j, q)` with `i <= j`.
    entries: Vec<(usize, usize, f64)>,
}

impl Qubo {
    /// Empty QUBO over `n` variables.
    pub fn new(n: usize) -> Qubo {
        Qubo {
            n,
            entries: Vec::new(),
        }
    }

    /// Number of binary variables.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Stored (upper-triangular) entries.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Add `q·x_i·x_j` (or `q·x_i` when `i == j`) to the objective.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `q` is not finite.
    pub fn add_term(&mut self, i: usize, j: usize, q: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        assert!(q.is_finite(), "coefficient must be finite");
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        self.entries.push((a, b, q));
    }

    /// Objective value `xᵀQx` for a binary assignment.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n` or any entry is not 0/1.
    pub fn evaluate(&self, x: &[u8]) -> f64 {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        assert!(x.iter().all(|&b| b <= 1), "entries must be binary");
        self.entries
            .iter()
            .map(|&(i, j, q)| q * (x[i] * x[j]) as f64)
            .sum()
    }

    /// Exact conversion to an Ising model via `x_i = (1 − σ_i)/2`.
    ///
    /// The returned model satisfies
    /// `model.energy(σ) == self.evaluate(x(σ))` for all assignments
    /// (offset included).
    ///
    /// # Errors
    ///
    /// Propagates coupling-construction errors (cannot occur for valid
    /// `Qubo` values, but kept in the signature for forward compatibility).
    pub fn to_ising(&self) -> Result<IsingModel, IsingError> {
        // q x_i x_j = q (1-σi)(1-σj)/4 = q/4 (1 - σi - σj + σiσj)
        // q x_i     = q (1-σi)/2
        let mut offset = 0.0;
        let mut fields = vec![0.0; self.n];
        let mut quad: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        for &(i, j, q) in &self.entries {
            if i == j {
                offset += q / 2.0;
                fields[i] -= q / 2.0;
            } else {
                offset += q / 4.0;
                fields[i] -= q / 4.0;
                fields[j] -= q / 4.0;
                *quad.entry((i, j)).or_insert(0.0) += q / 4.0;
            }
        }
        // σᵀJσ counts each pair twice, so J_ij = coeff/2.
        let triplets: Vec<(usize, usize, f64)> = quad
            .into_iter()
            .filter(|&(_, v)| v != 0.0)
            .map(|((i, j), v)| (i, j, v / 2.0))
            .collect();
        let couplings = CsrCoupling::from_triplets(self.n, &triplets)?;
        let mut model = IsingModel::with_fields(couplings, fields)?;
        model.set_offset(offset);
        Ok(model)
    }

    /// Decode an Ising configuration back to the binary assignment.
    pub fn decode(&self, spins: &SpinVector) -> Vec<u8> {
        spins.to_binaries()
    }

    /// Build from a full square coefficient matrix `q` (row-major):
    /// `q[i][j] + q[j][i]` weights the pair `x_i·x_j` and diagonal
    /// entries are the linear terms — the raw-payload wire format of
    /// `fecim::ProblemSpec::Qubo`. Zero coefficients are dropped.
    ///
    /// # Errors
    ///
    /// [`IsingError::InvalidProblem`] for an empty matrix,
    /// [`IsingError::DimensionMismatch`] when a row's length differs
    /// from the row count (non-square), and
    /// [`IsingError::NonFiniteCoupling`] on NaN/infinite entries.
    pub fn from_matrix(q: &[Vec<f64>]) -> Result<Qubo, IsingError> {
        let n = q.len();
        if n == 0 {
            return Err(IsingError::InvalidProblem(
                "QUBO payload needs at least one variable".into(),
            ));
        }
        for (i, row) in q.iter().enumerate() {
            if row.len() != n {
                return Err(IsingError::DimensionMismatch {
                    expected: n,
                    found: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(IsingError::NonFiniteCoupling { row: i, col: j });
                }
            }
        }
        let mut qubo = Qubo::new(n);
        for (i, row) in q.iter().enumerate() {
            if row[i] != 0.0 {
                qubo.add_term(i, i, row[i]);
            }
            for (j, &upper) in row.iter().enumerate().skip(i + 1) {
                let coeff = upper + q[j][i];
                if coeff != 0.0 {
                    qubo.add_term(i, j, coeff);
                }
            }
        }
        Ok(qubo)
    }
}

/// A QUBO is itself a solvable problem: the native objective is `xᵀQx`
/// under the binary decoding `x_i = (1 − σ_i)/2`, minimized, with no
/// hard constraints.
impl CopProblem for Qubo {
    fn spin_count(&self) -> usize {
        self.n
    }

    fn to_ising(&self) -> Result<IsingModel, IsingError> {
        Qubo::to_ising(self)
    }

    fn native_objective(&self, spins: &SpinVector) -> f64 {
        self.evaluate(&self.decode(spins))
    }

    fn objective_sense(&self) -> ObjectiveSense {
        ObjectiveSense::Minimize
    }

    fn is_feasible(&self, _spins: &SpinVector) -> bool {
        true
    }

    fn name(&self) -> &str {
        "qubo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exhaustive_check(qubo: &Qubo) {
        let model = qubo.to_ising().unwrap();
        let n = qubo.dimension();
        assert!(n <= 16, "exhaustive check only for small n");
        for bits in 0u32..(1 << n) {
            let x: Vec<u8> = (0..n).map(|i| ((bits >> i) & 1) as u8).collect();
            let spins = SpinVector::from_binaries(&x);
            let qv = qubo.evaluate(&x);
            let ev = model.energy(&spins);
            assert!(
                (qv - ev).abs() < 1e-9,
                "bits={bits:b}: qubo={qv} ising={ev}"
            );
        }
    }

    #[test]
    fn from_matrix_matches_explicit_terms() {
        // General (asymmetric) matrix: the pair weight is q_ij + q_ji.
        let q = Qubo::from_matrix(&[
            vec![2.0, 1.0, 0.0],
            vec![3.0, -1.0, 0.5],
            vec![0.0, 0.5, 0.0],
        ])
        .unwrap();
        let mut explicit = Qubo::new(3);
        explicit.add_term(0, 0, 2.0);
        explicit.add_term(0, 1, 4.0);
        explicit.add_term(1, 1, -1.0);
        explicit.add_term(1, 2, 1.0);
        for bits in 0u32..8 {
            let x: Vec<u8> = (0..3).map(|i| ((bits >> i) & 1) as u8).collect();
            assert_eq!(q.evaluate(&x), explicit.evaluate(&x), "bits={bits:b}");
        }
        exhaustive_check(&q);
    }

    #[test]
    fn from_matrix_validation_errors() {
        assert!(matches!(
            Qubo::from_matrix(&[]),
            Err(IsingError::InvalidProblem(_))
        ));
        assert!(matches!(
            Qubo::from_matrix(&[vec![0.0, 1.0], vec![1.0]]),
            Err(IsingError::DimensionMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(
            Qubo::from_matrix(&[vec![0.0, f64::INFINITY], vec![1.0, 0.0]]),
            Err(IsingError::NonFiniteCoupling { row: 0, col: 1 })
        ));
    }

    #[test]
    fn qubo_is_a_cop_problem() {
        let q = Qubo::from_matrix(&[vec![-1.0, 2.0], vec![0.0, -1.0]]).unwrap();
        assert_eq!(CopProblem::spin_count(&q), 2);
        assert_eq!(q.objective_sense(), ObjectiveSense::Minimize);
        assert_eq!(q.name(), "qubo");
        let model = CopProblem::to_ising(&q).unwrap();
        // The native objective of a configuration is its decoded xᵀQx —
        // which the exact QUBO↔Ising equivalence says equals the energy.
        for bits in 0u32..4 {
            let x: Vec<u8> = (0..2).map(|i| ((bits >> i) & 1) as u8).collect();
            let spins = SpinVector::from_binaries(&x);
            assert!((q.native_objective(&spins) - model.energy(&spins)).abs() < 1e-12);
            assert!(q.is_feasible(&spins));
        }
    }

    #[test]
    fn linear_only_conversion() {
        let mut q = Qubo::new(3);
        q.add_term(0, 0, 2.0);
        q.add_term(1, 1, -1.0);
        exhaustive_check(&q);
    }

    #[test]
    fn quadratic_conversion() {
        let mut q = Qubo::new(4);
        q.add_term(0, 1, 1.0);
        q.add_term(2, 3, -3.0);
        q.add_term(0, 3, 0.5);
        exhaustive_check(&q);
    }

    #[test]
    fn mixed_random_conversion() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5 {
            let n = 8;
            let mut q = Qubo::new(n);
            for i in 0..n {
                for j in i..n {
                    if rng.gen::<f64>() < 0.4 {
                        q.add_term(i, j, rng.gen_range(-2.0..2.0));
                    }
                }
            }
            exhaustive_check(&q);
        }
    }

    #[test]
    fn add_term_normalizes_order() {
        let mut q = Qubo::new(3);
        q.add_term(2, 0, 1.5);
        assert_eq!(q.entries()[0], (0, 2, 1.5));
    }

    #[test]
    fn evaluate_counts_terms_once() {
        let mut q = Qubo::new(2);
        q.add_term(0, 1, 3.0);
        assert_eq!(q.evaluate(&[1, 1]), 3.0);
        assert_eq!(q.evaluate(&[1, 0]), 0.0);
    }

    #[test]
    fn decode_matches_binary_convention() {
        let q = Qubo::new(2);
        let s = SpinVector::from_signs(&[1, -1]);
        assert_eq!(q.decode(&s), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_term_rejects_out_of_range() {
        let mut q = Qubo::new(2);
        q.add_term(0, 2, 1.0);
    }
}
