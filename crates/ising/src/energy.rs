//! Energy computation kernels: the direct `O(n²)` VMV form, the paper's
//! `O(n)` incremental-E form, and a local-field cache for fast software
//! annealing.
//!
//! These kernels back the Fig. 4/5 complexity claim of the paper: the
//! `complexity` Criterion bench sweeps `n` and shows the direct kernel
//! scaling quadratically while [`incremental_e`] scales linearly for a
//! constant flip count `|F|`.

use crate::coupling::Coupling;
use crate::spin::{FlipMask, SpinVector};

/// Direct Ising energy `E = σᵀJσ` over a dense row-major matrix, written as
/// the explicit `n²`-term double loop the paper ascribes to direct-E
/// transformation annealers.
///
/// # Panics
///
/// Panics if `matrix.len() != spins.len()²`.
pub fn direct_vmv(matrix: &[f64], spins: &SpinVector) -> f64 {
    let n = spins.len();
    assert_eq!(matrix.len(), n * n, "matrix must be n×n");
    let s = spins.as_slice();
    let mut e = 0.0;
    for i in 0..n {
        let row = &matrix[i * n..(i + 1) * n];
        let si = s[i] as f64;
        let mut acc = 0.0;
        for j in 0..n {
            acc += row[j] * s[j] as f64;
        }
        e += si * acc;
    }
    e
}

/// The paper's incremental-E bilinear form `σ_rᵀ J σ_c` over a dense
/// row-major matrix: only `(n − |F|)·|F|` products (Eq. 9, Fig. 5d).
///
/// Multiply by 4 to obtain `ΔE`, or by `f(T)` to obtain the in-situ
/// `E_inc` (Eq. 11).
///
/// # Panics
///
/// Panics if `matrix.len() != new_spins.len()²`.
pub fn incremental_e(matrix: &[f64], new_spins: &SpinVector, mask: &FlipMask) -> f64 {
    let n = new_spins.len();
    assert_eq!(matrix.len(), n * n, "matrix must be n×n");
    let s = new_spins.as_slice();
    let mut total = 0.0;
    for &j in mask.indices() {
        let sj = s[j] as f64;
        let row = &matrix[j * n..(j + 1) * n];
        let mut acc = 0.0;
        let mut flips = mask.indices().iter().peekable();
        for (i, &v) in row.iter().enumerate() {
            // Skip columns in F (two-flip terms cancel, Fig. 5c).
            if let Some(&&next_flip) = flips.peek() {
                if next_flip == i {
                    flips.next();
                    continue;
                }
            }
            acc += v * s[i] as f64;
        }
        total += sj * acc;
    }
    total
}

/// Incrementally-maintained local fields `l_i = Σ_j J_ij σ_j`, giving `O(deg)`
/// energy differences and `O(|F|·deg)` state updates.
///
/// This is the software-exact engine used for the baseline annealers and for
/// verifying the crossbar: it produces bit-identical energies to the direct
/// form while being fast enough for the paper's 10⁵-iteration runs.
///
/// # Examples
///
/// ```
/// use fecim_ising::{Coupling, CsrCoupling, FlipMask, LocalFieldState, SpinVector};
/// let j = CsrCoupling::from_triplets(3, &[(0, 1, 1.0), (1, 2, -0.5)])?;
/// let mut state = LocalFieldState::new(&j, SpinVector::all_up(3));
/// let mask = FlipMask::single(1, 3);
/// let de = state.delta_energy(&mask);
/// state.apply(&mask);
/// assert!((state.energy() - j.energy(state.spins())).abs() < 1e-12);
/// assert!((de - (-2.0)).abs() < 1e-12); // −4·σ₁·(J₁₀+J₁₂) = −4·0.5
/// # Ok::<(), fecim_ising::IsingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LocalFieldState<'a, C: Coupling> {
    coupling: &'a C,
    spins: SpinVector,
    fields: Vec<f64>,
    energy: f64,
}

impl<'a, C: Coupling> LocalFieldState<'a, C> {
    /// Initialize from a coupling matrix and starting configuration.
    ///
    /// Cost: one `O(n²)` (dense) or `O(nnz)` (sparse) pass.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn new(coupling: &'a C, spins: SpinVector) -> LocalFieldState<'a, C> {
        assert_eq!(spins.len(), coupling.dimension(), "dimension mismatch");
        let fields = coupling.local_fields(&spins);
        let energy = coupling.energy(&spins);
        LocalFieldState {
            coupling,
            spins,
            fields,
            energy,
        }
    }

    fn coupling(&self) -> &'a C {
        self.coupling
    }

    /// Current configuration.
    pub fn spins(&self) -> &SpinVector {
        &self.spins
    }

    /// Current energy `σᵀJσ` (maintained incrementally).
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Current local field of spin `i`.
    pub fn field(&self, i: usize) -> f64 {
        self.fields[i]
    }

    /// Energy difference of flipping the spins in `mask`, without applying.
    ///
    /// `ΔE = Σ_{i∈F} −4 σ_i l_i + 4 Σ_{i<j ∈ F} J_ij σ_i σ_j·2` — the pair
    /// correction accounts for both flipped endpoints.
    pub fn delta_energy(&self, mask: &FlipMask) -> f64 {
        let idx = mask.indices();
        let mut de = 0.0;
        for &i in idx {
            de += -4.0 * self.spins.get(i) as f64 * self.fields[i];
        }
        // Pairs inside F flipped together leave their term unchanged, but the
        // local-field sum above subtracted both directions; add them back.
        for (a, &i) in idx.iter().enumerate() {
            for &j in idx.iter().skip(a + 1) {
                let jij = self.coupling().get(i, j);
                if jij != 0.0 {
                    de += 8.0 * jij * (self.spins.get(i) * self.spins.get(j)) as f64;
                }
            }
        }
        de
    }

    /// Apply the flips in `mask`, updating spins, fields and energy in
    /// `O(|F|·deg)`. Returns the energy difference that was applied.
    pub fn apply(&mut self, mask: &FlipMask) -> f64 {
        let de = self.delta_energy(mask);
        let coupling = self.coupling;
        for &i in mask.indices() {
            let old = self.spins.get(i) as f64;
            self.spins.flip(i);
            // Neighbour fields see σ_i change by −2·old.
            let fields = &mut self.fields;
            coupling.for_each_in_row(i, &mut |j, v| {
                fields[j] += v * (-2.0 * old);
            });
        }
        self.energy += de;
        de
    }

    /// Recompute fields and energy from scratch (testing aid; also heals
    /// accumulated floating-point drift on very long runs).
    pub fn rebuild(&mut self) {
        self.fields = self.coupling().local_fields(&self.spins);
        self.energy = self.coupling().energy(&self.spins);
    }
}

/// Number of product terms of the direct form (`n²`, paper Fig. 5b).
pub fn direct_term_count(n: usize) -> usize {
    n * n
}

/// Number of product terms of the incremental form (`(n−|F|)·|F|`,
/// paper Fig. 5d).
pub fn incremental_term_count(n: usize, flips: usize) -> usize {
    n.saturating_sub(flips) * flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::{CsrCoupling, DenseCoupling};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn direct_vmv_matches_coupling_energy() {
        let mut rng = StdRng::seed_from_u64(21);
        let m = DenseCoupling::random(24, 0.4, 1.0, &mut rng);
        let s = SpinVector::random(24, &mut rng);
        assert!((direct_vmv(&m.to_vec(), &s) - m.energy(&s)).abs() < 1e-9);
    }

    #[test]
    fn incremental_e_times_four_is_delta() {
        let mut rng = StdRng::seed_from_u64(22);
        let m = DenseCoupling::random(32, 0.3, 1.5, &mut rng);
        let flat = m.to_vec();
        for t in [1usize, 2, 3, 8] {
            let s = SpinVector::random(32, &mut rng);
            let mask = FlipMask::random(t, 32, &mut rng);
            let s_new = s.flipped_by(&mask);
            let de_direct = direct_vmv(&flat, &s_new) - direct_vmv(&flat, &s);
            let de_inc = 4.0 * incremental_e(&flat, &s_new, &mask);
            assert!((de_direct - de_inc).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn empty_mask_gives_zero_increment() {
        let mut rng = StdRng::seed_from_u64(23);
        let m = DenseCoupling::random(10, 0.5, 1.0, &mut rng);
        let s = SpinVector::random(10, &mut rng);
        let mask = FlipMask::new(vec![], 10);
        assert_eq!(incremental_e(&m.to_vec(), &s, &mask), 0.0);
    }

    #[test]
    fn full_mask_gives_zero_increment() {
        // Flipping every spin leaves σᵀJσ invariant (global Z₂ symmetry).
        let mut rng = StdRng::seed_from_u64(24);
        let m = DenseCoupling::random(10, 0.5, 1.0, &mut rng);
        let s = SpinVector::random(10, &mut rng);
        let mask = FlipMask::new((0..10).collect(), 10);
        let s_new = s.flipped_by(&mask);
        assert!(incremental_e(&m.to_vec(), &s_new, &mask).abs() < 1e-12);
    }

    #[test]
    fn local_field_state_tracks_energy_over_run() {
        let mut rng = StdRng::seed_from_u64(25);
        let dense = DenseCoupling::random(20, 0.4, 1.0, &mut rng);
        let csr = CsrCoupling::from_dense(&dense);
        let start = SpinVector::random(20, &mut rng);
        let mut state = LocalFieldState::new(&csr, start);
        for _ in 0..200 {
            let t = rng.gen_range(1..=3);
            let mask = FlipMask::random(t, 20, &mut rng);
            let predicted = state.delta_energy(&mask);
            let before = state.energy();
            let applied = state.apply(&mask);
            assert!((predicted - applied).abs() < 1e-9);
            assert!((state.energy() - (before + predicted)).abs() < 1e-9);
        }
        // Energy must agree with a from-scratch recomputation.
        let fresh = csr.energy(state.spins());
        assert!((state.energy() - fresh).abs() < 1e-6);
    }

    #[test]
    fn local_field_state_multi_flip_matches_direct() {
        let mut rng = StdRng::seed_from_u64(26);
        let dense = DenseCoupling::random(15, 0.7, 2.0, &mut rng);
        let csr = CsrCoupling::from_dense(&dense);
        let s = SpinVector::random(15, &mut rng);
        let state = LocalFieldState::new(&csr, s.clone());
        for t in 1..=15 {
            let mask = FlipMask::random(t, 15, &mut rng);
            let s_new = s.flipped_by(&mask);
            let direct = csr.energy(&s_new) - csr.energy(&s);
            assert!((state.delta_energy(&mask) - direct).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn rebuild_is_idempotent() {
        let csr = CsrCoupling::from_triplets(3, &[(0, 1, 1.0)]).unwrap();
        let mut state = LocalFieldState::new(&csr, SpinVector::all_up(3));
        let e = state.energy();
        state.rebuild();
        assert_eq!(state.energy(), e);
    }

    #[test]
    fn term_counts_match_paper() {
        assert_eq!(direct_term_count(100), 10_000);
        assert_eq!(incremental_term_count(100, 2), 196);
        assert_eq!(incremental_term_count(2, 2), 0);
        assert_eq!(incremental_term_count(1, 2), 0);
    }
}
